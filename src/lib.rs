//! # nonctg — reproduction of *Performance of MPI Sends of Non-Contiguous Data*
//!
//! Umbrella crate re-exporting the whole stack:
//!
//! - [`datatype`] — the derived-datatype engine (`MPI_Type_*` equivalents);
//! - [`simnet`] — platform models, cost model, and virtual clocks;
//! - [`core`] — the MPI-like runtime (send/recv, Bsend, Pack, one-sided);
//! - [`schemes`] — the paper's eight send schemes and the ping-pong harness;
//! - [`report`] — CSV / table / plot output.
//!
//! See `examples/quickstart.rs` for a five-minute tour and DESIGN.md for the
//! full system inventory.

pub use nonctg_core as core;
pub use nonctg_datatype as datatype;
pub use nonctg_report as report;
pub use nonctg_schemes as schemes;
pub use nonctg_simnet as simnet;

/// Commonly used items, for `use nonctg::prelude::*`.
pub mod prelude {
    pub use nonctg_core::{Comm, Universe};
    pub use nonctg_datatype::{ArrayOrder, Datatype, Primitive};
    pub use nonctg_schemes::{PingPongConfig, Scheme, Workload};
    pub use nonctg_simnet::Platform;
}
