//! Quickstart: five minutes with the nonctg stack.
//!
//! Builds a derived datatype, sends it between two simulated ranks on the
//! Skylake/Intel-MPI platform model, measures a ping-pong the way the
//! paper does, and prints the slowdown of a derived-type send against the
//! contiguous reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nonctg::core::Universe;
use nonctg::datatype::{as_bytes, Datatype};
use nonctg::schemes::{run_scheme, PingPongConfig, Scheme, Workload};
use nonctg::simnet::Platform;

fn main() {
    // --- 1. Derived datatypes -------------------------------------------
    // "Every other element": N doubles at stride 2 (the paper's workload).
    let n = 1 << 16;
    let every_other = Datatype::vector(n, 1, 2, &Datatype::f64())
        .expect("valid type")
        .commit();
    println!(
        "vector({n}, 1, 2) of f64: size = {} bytes, extent = {} bytes, {} segments",
        every_other.size(),
        every_other.extent(),
        every_other.seg_count_hint()
    );

    // --- 2. Point-to-point with a derived type --------------------------
    let platform = Platform::skx_impi();
    let (_, received) = Universe::run_pair(platform.clone(), |comm| {
        if comm.rank() == 0 {
            let src: Vec<f64> = (0..2 * n).map(|i| i as f64).collect();
            comm.send(as_bytes(&src), 0, &every_other, 1, 1, 0).expect("send");
            0.0
        } else {
            let mut buf = vec![0.0f64; n];
            comm.recv_slice(&mut buf, Some(0), Some(0)).expect("recv");
            buf[n / 2] // element n/2 is source element n
        }
    });
    println!("rank 1 received element {}: {received}", n / 2);
    assert_eq!(received, n as f64);

    // --- 3. The paper's measurement -------------------------------------
    let w = Workload::every_other(n);
    let cfg = PingPongConfig::default();
    let reference = run_scheme(&platform, Scheme::Reference, &w, &cfg);
    let vector = run_scheme(&platform, Scheme::VectorType, &w, &cfg);
    let packing = run_scheme(&platform, Scheme::PackingVector, &w, &cfg);
    println!(
        "\n{} message ping-pong on {}:",
        w.msg_bytes(),
        platform.id
    );
    println!("  reference (contiguous): {:>10.2} us", reference.time() * 1e6);
    println!(
        "  vector type:            {:>10.2} us  (slowdown {:.2})",
        vector.time() * 1e6,
        vector.time() / reference.time()
    );
    println!(
        "  packing(v):             {:>10.2} us  (slowdown {:.2})",
        packing.time() * 1e6,
        packing.time() / reference.time()
    );
    println!("\npaper: expect a slowdown of roughly 2-3 for the non-contiguous schemes.");
}
