//! Halo exchange on a 2-D grid — the FEM/stencil boundary transfer the
//! paper's introduction motivates.
//!
//! Four ranks own quadrants of a square grid of `f64` cells. Each rank
//! exchanges its boundary row (contiguous in memory) and boundary column
//! (non-contiguous: one element per row) with its neighbors. Column halos
//! are described by subarray datatypes — no manual packing — and received
//! directly into the ghost column with a derived receive type.
//!
//! ```text
//! cargo run --release --example halo_exchange
//! ```

use nonctg::core::{CartTopology, Comm, Universe};
use nonctg::datatype::{as_bytes, as_bytes_mut, ArrayOrder, Datatype};
use nonctg::simnet::Platform;

/// Interior size per rank (cells per side), plus a one-cell ghost ring.
const N: usize = 64;
const W: usize = N + 2; // row width with ghosts

/// Index into the local (ghosted) grid.
fn at(row: usize, col: usize) -> usize {
    row * W + col
}

fn run(comm: &mut Comm) -> f64 {
    let rank = comm.rank();
    // Addressing via the Cartesian topology (MPI_Cart_create equivalent).
    let cart: CartTopology = comm.cart_create(&[2, 2], &[false, false]).expect("cart");
    let coords = cart.coords(rank).expect("coords");
    let (my_r, my_c) = (coords[0], coords[1]);
    let rank_of = |r: usize, c: usize| cart.rank_of(&[r as i64, c as i64]).expect("rank");

    // Local grid with ghost ring; interior initialized to a rank-tagged
    // pattern so neighbors can verify provenance.
    let mut grid = vec![0.0f64; W * W];
    for r in 1..=N {
        for c in 1..=N {
            grid[at(r, c)] = (rank * 1_000_000 + r * 1000 + c) as f64;
        }
    }

    // A column of the interior: N elements, one per row -> stride W.
    let col_t = Datatype::subarray(&[N, W], &[N, 1], &[0, 0], ArrayOrder::C, &Datatype::f64())
        .expect("column type")
        .commit();
    let row_t = Datatype::contiguous(N, &Datatype::f64()).expect("row type").commit();

    let tag_row = 10;
    let tag_col = 20;

    // East-west exchange (columns, non-contiguous).
    if my_c == 0 {
        let east = rank_of(my_r, 1);
        // send my east boundary column (col N), receive ghost col N+1
        let send_origin = at(1, N) * 8;
        comm.send(as_bytes(&grid), send_origin, &col_t, 1, east, tag_col).expect("send col");
        let recv_origin = at(1, N + 1) * 8;
        comm.recv(as_bytes_mut(&mut grid), recv_origin, &col_t, 1, Some(east), Some(tag_col))
            .expect("recv col");
    } else {
        let west = rank_of(my_r, 0);
        let recv_origin = at(1, 0) * 8;
        comm.recv(as_bytes_mut(&mut grid), recv_origin, &col_t, 1, Some(west), Some(tag_col))
            .expect("recv col");
        let send_origin = at(1, 1) * 8;
        comm.send(as_bytes(&grid), send_origin, &col_t, 1, west, tag_col).expect("send col");
    }

    // North-south exchange (rows, contiguous).
    if my_r == 0 {
        let south = rank_of(1, my_c);
        let send_origin = at(N, 1) * 8;
        comm.send(as_bytes(&grid), send_origin, &row_t, 1, south, tag_row).expect("send row");
        let recv_origin = at(N + 1, 1) * 8;
        comm.recv(as_bytes_mut(&mut grid), recv_origin, &row_t, 1, Some(south), Some(tag_row))
            .expect("recv row");
    } else {
        let north = rank_of(0, my_c);
        let recv_origin = at(0, 1) * 8;
        comm.recv(as_bytes_mut(&mut grid), recv_origin, &row_t, 1, Some(north), Some(tag_row))
            .expect("recv row");
        let send_origin = at(1, 1) * 8;
        comm.send(as_bytes(&grid), send_origin, &row_t, 1, north, tag_row).expect("send row");
    }

    // Verify a ghost cell: the east ghost column of rank (r,0) must hold
    // the west boundary column of rank (r,1), and so on.
    if my_c == 0 {
        let neighbor = rank_of(my_r, 1);
        let got = grid[at(5, N + 1)];
        let want = (neighbor * 1_000_000 + 5 * 1000 + 1) as f64;
        assert_eq!(got, want, "rank {rank}: east ghost mismatch");
    }
    if my_r == 1 {
        let neighbor = rank_of(0, my_c);
        let got = grid[at(0, 5)];
        let want = (neighbor * 1_000_000 + N * 1000 + 5) as f64;
        assert_eq!(got, want, "rank {rank}: north ghost mismatch");
    }

    comm.barrier().expect("barrier");
    comm.wtime()
}

fn main() {
    let times = Universe::run(Platform::skx_impi(), 4, run);
    println!("halo exchange on a 2x2 rank grid of {N}x{N} tiles: all ghosts verified");
    println!("virtual completion time: {:.2} us", times[0] * 1e6);
    println!(
        "(column halos moved as subarray datatypes — no manual packing, \
         received straight into the ghost column)"
    );
}
