//! Print per-iteration ping-pong times for every scheme at a few sizes —
//! a quick way to eyeball the cost model.
//!
//! ```text
//! cargo run --release --example scheme_times [elems ...]
//! ```

use nonctg::schemes::{run_scheme, PingPongConfig, Scheme, Workload};
use nonctg::simnet::Platform;

fn main() {
    let mut p = Platform::skx_impi();
    p.jitter_sigma = 0.0;
    let sizes: Vec<usize> = {
        let args: Vec<usize> =
            std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();
        if args.is_empty() {
            vec![128, 8192, 524288]
        } else {
            args
        }
    };
    let cfg = PingPongConfig { reps: 4, flush: true, flush_bytes: 50_000_000, verify: true };
    for elems in sizes {
        let w = Workload::every_other(elems);
        println!("--- {} bytes ---", w.msg_bytes());
        for s in Scheme::ALL {
            let r = run_scheme(&p, s, &w, &cfg);
            let us: Vec<f64> =
                r.times.iter().map(|t| (t * 1e8).round() / 100.0).collect();
            println!("{:12} {us:?}", s.key());
        }
    }
}
