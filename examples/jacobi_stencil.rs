//! Distributed 2-D Jacobi iteration — the kind of application the paper's
//! benchmark informs, built end-to-end on this stack:
//!
//! * a 2x2 process grid over a square domain;
//! * row halos exchanged as contiguous types, column halos as *subarray*
//!   derived types (no manual packing — the paper's §5 advice);
//! * deadlock-free neighbor exchange with `sendrecv`;
//! * convergence decided with an `allreduce(Max)` of the local residuals.
//!
//! Solves Laplace's equation with fixed boundary values and verifies the
//! distributed result against a single-rank reference run.
//!
//! ```text
//! cargo run --release --example jacobi_stencil
//! ```

use nonctg::core::{Comm, ReduceOp, Universe};
use nonctg::datatype::{as_bytes, as_bytes_mut, ArrayOrder, Datatype};
use nonctg::simnet::Platform;

const N: usize = 64; // interior cells per rank per side
const W: usize = N + 2; // with ghost ring
const PGRID: usize = 2; // 2x2 ranks
const TOL: f64 = 1e-3;
const MAX_ITERS: usize = 10_000;

fn at(r: usize, c: usize) -> usize {
    r * W + c
}

/// Boundary condition on the global domain edge: u = 100 on the top edge,
/// 0 elsewhere.
fn apply_global_boundary(grid: &mut [f64], my_r: usize) {
    if my_r == 0 {
        for c in 0..W {
            grid[at(0, c)] = 100.0;
        }
    }
}

struct Neighbors {
    north: Option<usize>,
    south: Option<usize>,
    west: Option<usize>,
    east: Option<usize>,
}

fn neighbors(rank: usize) -> Neighbors {
    let (r, c) = (rank / PGRID, rank % PGRID);
    Neighbors {
        north: (r > 0).then(|| (r - 1) * PGRID + c),
        south: (r + 1 < PGRID).then(|| (r + 1) * PGRID + c),
        west: (c > 0).then(|| r * PGRID + c - 1),
        east: (c + 1 < PGRID).then(|| r * PGRID + c + 1),
    }
}

// The `to_vec` clones below are required, not waste: `sendrecv` reads the
// send region and writes the ghost region of the *same* grid, so the send
// side is snapshotted to satisfy the borrow checker (and MPI's aliasing
// rules).
#[allow(clippy::unnecessary_to_owned)]
fn exchange_halos(comm: &mut Comm, grid: &mut [f64], col_t: &Datatype, row_t: &Datatype) {
    let nb = neighbors(comm.rank());
    // North/south rows (contiguous). Order: send north/recv south first on
    // even rows to pair up; sendrecv makes ordering deadlock-free anyway.
    if let Some(n) = nb.north {
        let send = at(1, 1) * 8;
        let recv = at(0, 1) * 8;
        comm.sendrecv(
            &as_bytes(grid).to_vec(), send, row_t, 1, n, 10,
            as_bytes_mut(grid), recv, row_t, 1, Some(n), Some(10),
        )
        .expect("north exchange");
    }
    if let Some(s) = nb.south {
        let send = at(N, 1) * 8;
        let recv = at(N + 1, 1) * 8;
        comm.sendrecv(
            &as_bytes(grid).to_vec(), send, row_t, 1, s, 10,
            as_bytes_mut(grid), recv, row_t, 1, Some(s), Some(10),
        )
        .expect("south exchange");
    }
    // West/east columns (subarray derived type, stride W).
    if let Some(w) = nb.west {
        let send = at(1, 1) * 8;
        let recv = at(1, 0) * 8;
        comm.sendrecv(
            &as_bytes(grid).to_vec(), send, col_t, 1, w, 11,
            as_bytes_mut(grid), recv, col_t, 1, Some(w), Some(11),
        )
        .expect("west exchange");
    }
    if let Some(e) = nb.east {
        let send = at(1, N) * 8;
        let recv = at(1, N + 1) * 8;
        comm.sendrecv(
            &as_bytes(grid).to_vec(), send, col_t, 1, e, 11,
            as_bytes_mut(grid), recv, col_t, 1, Some(e), Some(11),
        )
        .expect("east exchange");
    }
}

fn jacobi_distributed(comm: &mut Comm) -> (Vec<f64>, usize, f64) {
    let my_r = comm.rank() / PGRID;
    let mut grid = vec![0.0f64; W * W];
    let mut next = vec![0.0f64; W * W];
    apply_global_boundary(&mut grid, my_r);
    apply_global_boundary(&mut next, my_r);

    let col_t = Datatype::subarray(&[N, W], &[N, 1], &[0, 0], ArrayOrder::C, &Datatype::f64())
        .expect("col type")
        .commit();
    let row_t = Datatype::contiguous(N, &Datatype::f64()).expect("row type").commit();

    let mut iters = 0;
    let mut residual = f64::INFINITY;
    while iters < MAX_ITERS && residual > TOL {
        exchange_halos(comm, &mut grid, &col_t, &row_t);
        let mut local_max = 0.0f64;
        for r in 1..=N {
            for c in 1..=N {
                // Ghost cells hold either a neighbor's halo or the global
                // boundary value, so every interior cell updates uniformly.
                let v = 0.25
                    * (grid[at(r - 1, c)] + grid[at(r + 1, c)] + grid[at(r, c - 1)]
                        + grid[at(r, c + 1)]);
                local_max = local_max.max((v - grid[at(r, c)]).abs());
                next[at(r, c)] = v;
            }
        }
        std::mem::swap(&mut grid, &mut next);
        let mut res = [local_max];
        comm.allreduce(&mut res, ReduceOp::Max).expect("allreduce");
        residual = res[0];
        iters += 1;
    }
    (grid, iters, residual)
}

/// Single-rank reference on the full (2N)x(2N) domain.
fn jacobi_reference() -> Vec<f64> {
    let g = PGRID * N;
    let gw = g + 2;
    let mut grid = vec![0.0f64; gw * gw];
    let mut next = grid.clone();
    for c in 0..gw {
        grid[c] = 100.0;
        next[c] = 100.0;
    }
    let mut residual = f64::INFINITY;
    let mut iters = 0;
    while iters < MAX_ITERS && residual > TOL {
        let mut local_max = 0.0f64;
        for r in 1..=g {
            for c in 1..=g {
                let i = r * gw + c;
                let v = 0.25 * (grid[i - gw] + grid[i + gw] + grid[i - 1] + grid[i + 1]);
                local_max = local_max.max((v - grid[i]).abs());
                next[i] = v;
            }
        }
        std::mem::swap(&mut grid, &mut next);
        residual = local_max;
        iters += 1;
    }
    grid
}

fn main() {
    let results = Universe::run(Platform::skx_impi(), PGRID * PGRID, |comm| {
        let t0 = comm.wtime();
        let (grid, iters, residual) = jacobi_distributed(comm);
        (comm.rank(), grid, iters, residual, comm.wtime() - t0)
    });

    let reference = jacobi_reference();
    let g = PGRID * N;
    let gw = g + 2;

    // Verify every rank's interior against the reference solution.
    let mut max_err = 0.0f64;
    for (rank, grid, _, _, _) in &results {
        let (pr, pc) = (rank / PGRID, rank % PGRID);
        for r in 1..=N {
            for c in 1..=N {
                let gr = pr * N + r; // 1-based global interior row
                let gc = pc * N + c;
                let err = (grid[at(r, c)] - reference[gr * gw + gc]).abs();
                max_err = max_err.max(err);
            }
        }
    }
    let (_, _, iters, residual, vtime) = &results[0];
    println!("2-D Jacobi on a {g}x{g} domain over {} ranks:", PGRID * PGRID);
    println!("  stopped after {iters} iterations (residual {residual:.2e})");
    println!("  distributed vs single-rank max |error| = {max_err:.3e}");
    println!("  virtual time: {:.2} ms", vtime * 1e3);
    assert!(max_err < 1e-9, "distributed solution diverged from reference");
    println!("  verified ✓ (column halos were subarray datatypes, convergence via allreduce)");
}
