//! Redistribute a block-distributed global matrix to a block-cyclic
//! layout using darray datatypes — the `MPI_Type_create_darray` workflow
//! HPC codes use around MPI-IO and ScaLAPACK-style kernels.
//!
//! Four ranks own a 8x8 global matrix as 4x4 BLOCK x BLOCK tiles; the
//! program reshuffles it to CYCLIC(1) x CYCLIC(1) through rank 0 and every
//! rank verifies its new share — all selection logic expressed as
//! datatypes, no hand-written index arithmetic.
//!
//! ```text
//! cargo run --release --example redistribute
//! ```

use nonctg::core::{Comm, Universe};
use nonctg::datatype::{
    as_bytes, as_bytes_mut, pack, unpack_from, ArrayOrder, Datatype, DistArg, Distribution,
};
use nonctg::simnet::Platform;

const G: usize = 8; // global matrix is G x G
const P: usize = 4; // 2x2 process grid

fn darray(rank: usize, dist: Distribution) -> Datatype {
    Datatype::darray(
        P,
        rank,
        &[G, G],
        &[dist, dist],
        &[DistArg::Default, DistArg::Default],
        &[2, 2],
        ArrayOrder::C,
        &Datatype::f64(),
    )
    .expect("darray")
    .commit()
}

fn global_matrix() -> Vec<f64> {
    (0..G * G).map(|i| i as f64).collect()
}

fn run(comm: &mut Comm) {
    let me = comm.rank();
    let block_t = darray(me, Distribution::Block);
    let cyclic_t = darray(me, Distribution::Cyclic);

    // --- initial condition: every rank holds its BLOCK share -----------
    // (produced here by packing out of the global pattern).
    let global = global_matrix();
    let my_block = pack(as_bytes(&global), 0, &block_t, 1).expect("pack share");

    // --- redistribute through rank 0 -----------------------------------
    let mut reassembled = vec![0u8; G * G * 8];
    if me == 0 {
        // Unpack own share, then the others', each through its block type.
        unpack_from(&my_block, &block_t, 1, &mut reassembled, 0).expect("unpack");
        for _ in 1..P {
            let mut buf = vec![0u8; my_block.len()];
            let st = comm.recv_bytes(&mut buf, None, Some(1)).expect("recv share");
            let their_t = darray(st.source, Distribution::Block);
            unpack_from(&buf, &their_t, 1, &mut reassembled, 0).expect("unpack");
        }
    } else {
        comm.send_packed(&my_block, 0, 1).expect("send share");
    }

    // Rank 0 now sends each rank its CYCLIC share, selected by datatype.
    let mut my_cyclic = vec![0.0f64; (cyclic_t.size() / 8) as usize];
    if me == 0 {
        for r in 1..P {
            let t = darray(r, Distribution::Cyclic);
            comm.send(&reassembled, 0, &t, 1, r, 2).expect("send cyclic");
        }
        let mine = pack(&reassembled, 0, &cyclic_t, 1).expect("pack own");
        as_bytes_mut(&mut my_cyclic).copy_from_slice(&mine);
    } else {
        comm.recv_slice(&mut my_cyclic, Some(0), Some(2)).expect("recv cyclic");
    }

    // --- verify against the expected cyclic selection ------------------
    let expected = pack(as_bytes(&global), 0, &cyclic_t, 1).expect("expected");
    assert_eq!(as_bytes(&my_cyclic), &expected[..], "rank {me}: wrong cyclic share");
    comm.barrier().expect("barrier");
}

fn main() {
    let times = Universe::run(Platform::skx_impi(), P, |comm| {
        run(comm);
        comm.wtime()
    });
    println!(
        "redistributed an {G}x{G} matrix from BLOCKxBLOCK to CYCLICxCYCLIC over {P} ranks"
    );
    println!("every rank verified its new share byte-for-byte ✓");
    println!("virtual completion: {:.1} us", times.iter().cloned().fold(0.0, f64::max) * 1e6);
    println!("(all selection logic was darray datatypes — no index arithmetic in user code)");
}
