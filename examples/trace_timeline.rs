//! Trace a single ping-pong per scheme and print where the virtual time
//! goes — a timeline view of the paper's cost decomposition (§2).
//!
//! ```text
//! cargo run --release --example trace_timeline
//! ```

use nonctg::core::trace::{ascii_timeline, summarize, EventKind};
use nonctg::core::Universe;
use nonctg::datatype::as_bytes;
use nonctg::schemes::Workload;
use nonctg::simnet::Platform;

fn main() {
    let mut platform = Platform::skx_impi();
    platform.jitter_sigma = 0.0;
    let w = Workload::every_other((1 << 20) / 8); // 1 MiB message

    // One traced ping-pong with the vector-type scheme.
    let traces = Universe::run(platform.clone(), 2, |comm| {
        comm.enable_trace();
        let vec_t = w.vector_type().unwrap();
        if comm.rank() == 0 {
            let src = w.make_source();
            comm.send(as_bytes(&src), 0, &vec_t, 1, 1, 1).unwrap();
            let mut pong = [0u8; 0];
            comm.recv_bytes(&mut pong, Some(1), Some(2)).unwrap();
        } else {
            let mut buf = vec![0.0f64; w.elems()];
            comm.recv_slice(&mut buf, Some(0), Some(1)).unwrap();
            comm.send_bytes(&[], 0, 2).unwrap();
        }
        comm.take_trace()
    });

    println!("vector-type ping-pong, {} KiB message, skx-impi:\n", w.msg_bytes() / 1024);
    print!("{}", ascii_timeline(&traces, 90));

    for (rank, t) in traces.iter().enumerate() {
        let s = summarize(t);
        println!("\nrank {rank}: {} events, {:.1} us busy", s.count, s.total * 1e6);
        for kind in [
            EventKind::Send,
            EventKind::Recv,
            EventKind::Copy,
            EventKind::Pack,
        ] {
            let n = s.count_of(kind);
            if n > 0 {
                println!(
                    "  {:<6} x{n}: {:.1} us",
                    kind.label(),
                    s.time_of(kind) * 1e6
                );
            }
        }
    }
    println!(
        "\nthe sender's one big 'send' block is the §2 story: an internal gather\n\
         that cannot overlap the wire, followed by the transfer itself."
    );
}
