//! Sending the real parts of a complex array — the paper's first
//! motivating workload — plus multigrid coarsening (every other point).
//!
//! Demonstrates three equivalent datatype formulations of "every other
//! f64" (vector, subarray, resized-struct) and times the paper's
//! recommended scheme (pack a derived type, send the packed buffer)
//! against a direct derived-type send on all four platform models.
//!
//! ```text
//! cargo run --release --example complex_parts
//! ```

use nonctg::datatype::{pack, ArrayOrder, Datatype};
use nonctg::schemes::{run_scheme, PingPongConfig, Scheme, Workload};
use nonctg::simnet::Platform;

fn main() {
    let n = 1 << 15; // complex values
    // An interleaved complex array: [re0, im0, re1, im1, ...]
    let z: Vec<f64> = (0..2 * n).map(|i| if i % 2 == 0 { (i / 2) as f64 } else { -1.0 }).collect();

    // Three ways to describe "the real parts":
    let vector = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
    let subarr = Datatype::subarray(&[n, 2], &[n, 1], &[0, 0], ArrayOrder::C, &Datatype::f64())
        .unwrap()
        .commit();
    // one f64 resized to the extent of a complex pair, sent with count n
    let resized = Datatype::resized(&Datatype::f64(), 0, 16).unwrap().commit();

    let bytes = nonctg::datatype::as_bytes(&z);
    let a = pack(bytes, 0, &vector, 1).unwrap();
    let b = pack(bytes, 0, &subarr, 1).unwrap();
    let c = pack(bytes, 0, &resized, n).unwrap();
    assert_eq!(a, b);
    assert_eq!(a, c);
    println!("vector / subarray / resized-element formulations pack identically ✓");
    let re0 = f64::from_le_bytes(a[0..8].try_into().unwrap());
    let re_last = f64::from_le_bytes(a[a.len() - 8..].try_into().unwrap());
    assert_eq!((re0, re_last), (0.0, (n - 1) as f64));
    println!("real parts extracted: z[0].re = {re0}, z[{}].re = {re_last}", n - 1);

    // Multigrid coarsening is the same access pattern: every other grid
    // point. Time the paper's §5 recommendation on each installation.
    println!("\ncoarsening transfer ({} KiB) — direct vector send vs pack+send:", n * 8 / 1024);
    let w = Workload::every_other(n);
    let cfg = PingPongConfig { reps: 10, ..PingPongConfig::default() };
    println!(
        "{:>14} {:>12} {:>12} {:>12} {:>9}",
        "platform", "reference", "vector", "packing(v)", "winner"
    );
    for platform in Platform::all() {
        let r = run_scheme(&platform, Scheme::Reference, &w, &cfg).time();
        let v = run_scheme(&platform, Scheme::VectorType, &w, &cfg).time();
        let p = run_scheme(&platform, Scheme::PackingVector, &w, &cfg).time();
        println!(
            "{:>14} {:>10.1} us {:>10.1} us {:>10.1} us {:>9}",
            platform.id.name(),
            r * 1e6,
            v * 1e6,
            p * 1e6,
            if p <= v { "pack" } else { "vector" }
        );
    }
    println!(
        "\npaper §5: below ~10^8 bytes the schemes are close — use derived types\n\
         for convenience; the consistently best scheme applies pack to a derived type."
    );
}
