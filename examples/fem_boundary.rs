//! FEM boundary gather — irregularly spaced elements, the third workload
//! the paper's introduction names.
//!
//! A solver owns a large DOF vector; the subdomain boundary is an
//! irregular, sorted set of indices. We compare the schemes a practitioner
//! would reach for: an indexed datatype sent directly, pack-then-send of
//! that datatype, and a hand-written gather loop — and verify they move
//! identical bytes.
//!
//! ```text
//! cargo run --release --example fem_boundary
//! ```

use nonctg::core::Universe;
use nonctg::datatype::as_bytes;
use nonctg::schemes::{run_datatype_send, IrregularWorkload, PingPongConfig};
use nonctg::simnet::{Access, Platform};

fn main() {
    // 20k boundary DOFs out of ~120k, in irregular runs of 1-4.
    let boundary = IrregularWorkload::random(10_000, 2, 12, 2024);
    let indexed = boundary.indexed_type().expect("indexed type");
    println!(
        "FEM boundary: {} DOFs out of {} ({} index blocks, {} KiB payload)",
        boundary.elems(),
        boundary.array_elems,
        boundary.blocks.len(),
        boundary.msg_bytes() / 1024
    );

    // --- correctness: all three transports move the same bytes ----------
    let platform = Platform::skx_impi();
    let src = boundary.make_source();
    let expected = boundary.expected();

    let via_type = {
        let (_, got) = Universe::run_pair(platform.clone(), {
            let (indexed, src, n) = (indexed.clone(), src.clone(), expected.len());
            move |comm| {
                if comm.rank() == 0 {
                    comm.send(as_bytes(&src), 0, &indexed, 1, 1, 0).expect("send");
                    Vec::new()
                } else {
                    let mut buf = vec![0.0f64; n];
                    comm.recv_slice(&mut buf, Some(0), Some(0)).expect("recv");
                    buf
                }
            }
        });
        got
    };
    assert_eq!(via_type, expected, "indexed-type send corrupted the boundary");

    let via_pack = {
        let (_, got) = Universe::run_pair(platform.clone(), {
            let (indexed, src, n) = (indexed.clone(), src.clone(), expected.len());
            move |comm| {
                if comm.rank() == 0 {
                    let size = comm.pack_size(&indexed, 1).expect("size");
                    let mut packed = vec![0u8; size];
                    let mut pos = 0;
                    comm.pack(as_bytes(&src), 0, &indexed, 1, &mut packed, &mut pos)
                        .expect("pack");
                    comm.send_packed(&packed, 1, 0).expect("send");
                    Vec::new()
                } else {
                    let mut buf = vec![0.0f64; n];
                    comm.recv_slice(&mut buf, Some(0), Some(0)).expect("recv");
                    buf
                }
            }
        });
        got
    };
    assert_eq!(via_pack, expected, "pack+send corrupted the boundary");
    println!("indexed-type send and pack+send move identical bytes ✓");

    // --- performance: irregular vs regular gather ------------------------
    let cfg = PingPongConfig { reps: 10, ..PingPongConfig::default() };
    let t_irregular =
        run_datatype_send(&platform, &indexed, src.clone(), expected.clone(), &cfg).time();

    // A regular stride-2 workload of the same payload for comparison.
    let regular = nonctg::schemes::Workload::every_other(boundary.elems());
    let t_regular = run_datatype_send(
        &platform,
        &regular.vector_type().expect("type"),
        regular.make_source(),
        regular.expected(),
        &cfg,
    )
    .time();

    println!("\nping-pong, {} KiB payload:", boundary.msg_bytes() / 1024);
    println!("  regular stride-2 vector: {:>9.2} us", t_regular * 1e6);
    println!(
        "  irregular FEM boundary:  {:>9.2} us ({:.2}x — prefetch-hostile reads, paper §4.7)",
        t_irregular * 1e6,
        t_irregular / t_regular
    );

    let access = Access::classify(&indexed);
    println!("\ncost-model classification of the boundary type: {access:?}");
}
