//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides the group/bencher API surface the workspace's benches use
//! and reports median wall-clock time per iteration (plus throughput
//! when declared) to stdout. No statistics engine, no HTML reports —
//! just enough to keep `cargo bench` meaningful offline. Unknown CLI
//! flags (e.g. `--quick`, test-harness flags) are accepted and ignored
//! so `cargo bench -- --quick` and `cargo test --benches` both work.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    /// Upper bound on measuring time per benchmark.
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { measure_for: Duration::from_millis(200) }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup { criterion: self, throughput: None, sample_size: 10 }
    }

    /// Run a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("(ungrouped)");
        g.bench_function(name, f);
        g.finish();
    }
}

/// Declared work-per-iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier combining a function name and a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{name}/{parameter}") }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Time a closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.criterion.measure_for,
            samples: self.sample_size,
            per_iter: Duration::ZERO,
        };
        f(&mut b);
        report(&id.to_string(), b.per_iter, self.throughput);
        self
    }

    /// Time a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn report(id: &str, per_iter: Duration, throughput: Option<Throughput>) {
    let ns = per_iter.as_secs_f64() * 1e9;
    match throughput {
        Some(Throughput::Bytes(bytes)) if ns > 0.0 => {
            let gib = bytes as f64 / per_iter.as_secs_f64() / (1u64 << 30) as f64;
            println!("  {id:<40} {ns:>12.1} ns/iter  {gib:>8.2} GiB/s");
        }
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            let meps = n as f64 / per_iter.as_secs_f64() / 1e6;
            println!("  {id:<40} {ns:>12.1} ns/iter  {meps:>8.2} Melem/s");
        }
        _ => println!("  {id:<40} {ns:>12.1} ns/iter"),
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    samples: usize,
    per_iter: Duration,
}

impl Bencher {
    /// Time `routine`, recording the median-of-samples per-iteration
    /// cost. Stops early once the measuring budget is spent.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // One warmup call, then timed samples.
        std::hint::black_box(routine());
        let mut samples = Vec::with_capacity(self.samples);
        let started = Instant::now();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
        samples.sort();
        self.per_iter = samples[samples.len() / 2];
    }

    /// Like [`Bencher::iter`] with untimed per-sample setup.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std::hint::black_box(routine(setup()));
        let mut samples = Vec::with_capacity(self.samples);
        let started = Instant::now();
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            samples.push(t0.elapsed());
            if started.elapsed() > self.budget {
                break;
            }
        }
        samples.sort();
        self.per_iter = samples[samples.len() / 2];
    }
}

/// Bundle benchmark functions into one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups; CLI flags are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Swallow harness flags like `--quick` or `--bench`.
            let _args: Vec<String> = std::env::args().collect();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(5);
        g.throughput(Throughput::Bytes(1024));
        let mut ran = 0u32;
        g.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                std::hint::black_box((0..100u64).sum::<u64>())
            })
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert!(ran >= 6, "warmup + samples should have run");
    }

    #[test]
    fn iter_with_setup_separates_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("setup");
        g.sample_size(3);
        g.bench_function("clone_vec", |b| {
            b.iter_with_setup(|| vec![1u8; 64], |v| v.len())
        });
        g.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }
}
