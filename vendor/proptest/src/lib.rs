//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the generate-and-check core the workspace's property
//! tests rely on — `Strategy` with `prop_map` / `prop_recursive`,
//! `prop_oneof!`, `Just`, integer ranges, tuples, `collection::vec`,
//! `bool::ANY`, and the `proptest!` runner macro with
//! `ProptestConfig::with_cases`. Two deliberate simplifications versus
//! upstream: values are drawn from a deterministic per-test SplitMix64
//! stream (override the seed with `NONCTG_PROPTEST_SEED`), and there is
//! no shrinking — a failing case panics with the values visible in the
//! assert message instead.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type behind a cheaply cloneable
        /// handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let this = self;
            BoxedStrategy { f: Arc::new(move |rng| this.generate(rng)) }
        }

        /// Build a recursive strategy: `self` generates leaves and
        /// `recurse` wraps an inner strategy into composites, nested up
        /// to `depth` levels. (`desired_size` and `expected_branch_size`
        /// are accepted for API compatibility; depth alone bounds the
        /// trees here.) Each level mixes leaves back in 50/50 so all
        /// depths appear.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
            R: Strategy<Value = Self::Value> + 'static,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            strat
        }
    }

    /// Type-erased, cheaply cloneable strategy handle.
    pub struct BoxedStrategy<T> {
        f: Arc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> BoxedStrategy<T> {
            BoxedStrategy { f: Arc::clone(&self.f) }
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Mapped strategy, produced by [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several strategies of one value type.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from pre-boxed options; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Union<T> {
            Union { options: self.options.clone() }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Something usable as a vector-length range.
    pub trait SizeRange {
        /// Draw a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize % (self.end - self.start))
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy yielding vectors of `element` values with a length drawn
    /// from `size`.
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    /// Generate `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over both booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod test_runner {
    /// Configuration accepted by the `proptest!` macro.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Run `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 stream feeding the strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from `NONCTG_PROPTEST_SEED` if set, else from a hash of
        /// the test name, so every test has its own reproducible stream.
        pub fn for_test(name: &str) -> TestRng {
            let seed = std::env::var("NONCTG_PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
                    })
                });
            TestRng { state: seed }
        }

        /// Next raw word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Common imports, mirroring upstream's `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Map, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Assert inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            $(let $arg = $strat;)*
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut __rng);)*
                let __run = move || $body;
                __run();
            }
        }
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("ranges");
        let s = (1usize..5, 0i64..4);
        for _ in 0..200 {
            let (a, b) = s.generate(&mut rng);
            assert!((1..5).contains(&a));
            assert!((0..4).contains(&b));
        }
    }

    #[test]
    fn oneof_covers_options() {
        let mut rng = TestRng::for_test("oneof");
        let s = prop_oneof![Just(1), Just(2), Just(3)];
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[s.generate(&mut rng)] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = Just(Tree::Leaf).prop_recursive(3, 16, 4, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut rng = TestRng::for_test("recursive");
        for _ in 0..200 {
            assert!(depth(&s.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// The runner macro itself works end to end.
        fn macro_runs(x in 0u64..10, flag in crate::bool::ANY) {
            prop_assume!(x != 3);
            prop_assert!(x < 10);
            prop_assert_eq!(flag || !flag, true);
        }
    }
}
