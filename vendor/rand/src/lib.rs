//! Minimal offline stand-in for the `rand` crate.
//!
//! Provides `rngs::StdRng` with `SeedableRng::seed_from_u64` and
//! `Rng::gen_range` over integer ranges — the surface `nonctg-schemes`
//! uses to lay out irregular workloads. The generator is SplitMix64,
//! which is deterministic per seed like the real `StdRng` (the exact
//! stream differs from upstream, which callers must not rely on anyway).

use std::ops::{Range, RangeInclusive};

/// Types that can seed an [`Rng`] implementation.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling from a range, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value in the range from `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Core random-word source.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods.
pub trait Rng: RngCore + Sized {
    /// Uniform value in `range` (half-open or inclusive integer range).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + Sized> Rng for T {}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_int!(usize, u64, u32, u16, u8);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&v));
            let w = rng.gen_range(10u64..20);
            assert!((10..20).contains(&w));
        }
    }

    #[test]
    fn inclusive_zero_range() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(rng.gen_range(0usize..=0), 0);
    }
}
