//! Minimal offline stand-in for the `bytes` crate.
//!
//! The container this repository builds in has no network access and no
//! registry cache, so the real crates.io `bytes` cannot be fetched. This
//! crate implements the tiny slice of its API the workspace actually
//! uses: an immutable, cheaply cloneable byte buffer. Contiguous byte
//! storage behind an `Arc` gives the same O(1)-clone semantics the
//! runtime relies on when an envelope payload is shared between the
//! sender's send path and the receiver's mailbox.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted contiguous byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]) }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v.into_boxed_slice()) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes(len={})", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b, c);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(Bytes::new().is_empty());
    }
}
