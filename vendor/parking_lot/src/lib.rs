//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning
//! API: `lock()` returns a guard directly (no `Result`), and a panic
//! while holding a lock does not wedge later lockers. That last point
//! matters here — the supervised universe intentionally lets rank
//! threads panic, and peers must still be able to take the fabric locks
//! afterwards, so std poisoning is explicitly swallowed with
//! `into_inner`.

use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion lock whose guard is returned without a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`]. The inner std guard lives in an `Option`
/// only so [`Condvar::wait_for`] can temporarily take ownership of it;
/// it is `Some` at every other moment.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a std::sync::Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Temporarily release the lock while `f` runs, re-acquiring it
    /// before returning (parking_lot's `MutexGuard::unlocked`).
    pub fn unlocked<F, U>(s: &mut Self, f: F) -> U
    where
        F: FnOnce() -> U,
    {
        drop(s.inner.take().expect("guard taken"));
        let r = f();
        s.inner = Some(s.mutex.lock().unwrap_or_else(PoisonError::into_inner));
        r
    }
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available. Poison from a
    /// panicked holder is ignored, matching parking_lot semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { mutex: &self.inner, inner: Some(guard) }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.try_lock() {
            Ok(v) => f.debug_tuple("Mutex").field(&&*v).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken")
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Block until notified, re-acquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard taken");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard taken");
        let (inner, res) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let c = Condvar::new();
        let mut g = m.lock();
        let t0 = Instant::now();
        let r = c.wait_for(&mut g, Duration::from_millis(20));
        assert!(r.timed_out());
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn poison_is_ignored() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, c) = &*pair2;
            let mut g = m.lock();
            while !*g {
                let r = c.wait_for(&mut g, Duration::from_secs(5));
                assert!(!r.timed_out());
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, c) = &*pair;
        *m.lock() = true;
        c.notify_all();
        h.join().unwrap();
    }
}
