//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided, and only the pieces the
//! runtime uses: `bounded` channels with `send` / `recv_timeout` /
//! `try_recv`. Backed by `std::sync::mpsc::sync_channel`, which has the
//! same bounded-rendezvous behaviour the fabric's reply channels need.

pub mod channel {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{mpsc, Arc};
    use std::time::{Duration, Instant};

    /// Sending half of a bounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
        count: Arc<AtomicUsize>,
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
        count: Arc<AtomicUsize>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::send_timeout`]; carries the value back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// Timeout elapsed with the buffer still full.
        Timeout(T),
        /// The receiver was dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timeout elapsed with no message.
        Timeout,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        let count = Arc::new(AtomicUsize::new(0));
        (
            Sender { inner: tx, count: Arc::clone(&count) },
            Receiver { inner: rx, count },
        )
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued or the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            // Count before enqueueing (and roll back on failure): a
            // receiver can dequeue the instant the message lands, and
            // its decrement must never precede our increment or the
            // counter would transiently underflow.
            self.count.fetch_add(1, Ordering::Relaxed);
            self.inner.send(value).map_err(|mpsc::SendError(v)| {
                self.count.fetch_sub(1, Ordering::Relaxed);
                SendError(v)
            })
        }

        /// Messages currently buffered (a racy snapshot, like the real
        /// crossbeam `len`; may briefly overcount by in-flight sends,
        /// never undercounts below zero).
        pub fn len(&self) -> usize {
            self.count.load(Ordering::Relaxed)
        }

        /// True when no message is buffered (same snapshot caveat).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Block for at most `timeout` trying to enqueue the message.
        /// `std::sync::mpsc` has no native timed send, so this spins
        /// briefly then sleeps in short slices between `try_send`s.
        pub fn send_timeout(
            &self,
            value: T,
            timeout: Duration,
        ) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut value = value;
            let mut spins: u32 = 0;
            loop {
                self.count.fetch_add(1, Ordering::Relaxed);
                match self.inner.try_send(value) {
                    Ok(()) => return Ok(()),
                    Err(mpsc::TrySendError::Full(v)) => {
                        self.count.fetch_sub(1, Ordering::Relaxed);
                        if Instant::now() >= deadline {
                            return Err(SendTimeoutError::Timeout(v));
                        }
                        value = v;
                        if spins < 64 {
                            spins += 1;
                            for _ in 0..32 {
                                std::hint::spin_loop();
                            }
                        } else {
                            std::thread::sleep(Duration::from_micros(50));
                        }
                    }
                    Err(mpsc::TrySendError::Disconnected(v)) => {
                        self.count.fetch_sub(1, Ordering::Relaxed);
                        return Err(SendTimeoutError::Disconnected(v));
                    }
                }
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner
                .recv_timeout(timeout)
                .map(|v| {
                    self.count.fetch_sub(1, Ordering::Relaxed);
                    v
                })
                .map_err(|e| match e {
                    mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                    mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
                })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner
                .try_recv()
                .map(|v| {
                    self.count.fetch_sub(1, Ordering::Relaxed);
                    v
                })
                .map_err(|e| match e {
                    mpsc::TryRecvError::Empty => TryRecvError::Empty,
                    mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
                })
        }

        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.inner
                .recv()
                .map(|v| {
                    self.count.fetch_sub(1, Ordering::Relaxed);
                    v
                })
                .map_err(|_| RecvTimeoutError::Disconnected)
        }

        /// Messages currently buffered (racy snapshot; see
        /// [`Sender::len`]).
        pub fn len(&self) -> usize {
            self.count.load(Ordering::Relaxed)
        }

        /// True when no message is buffered (same snapshot caveat).
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = bounded(1);
        tx.send(41).unwrap();
        assert_eq!(tx.len(), 1);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(41));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        assert!(rx.is_empty());
    }

    #[test]
    fn len_tracks_occupancy() {
        let (tx, rx) = bounded(2);
        assert!(tx.is_empty());
        tx.send(1).unwrap();
        tx.send_timeout(2, Duration::from_secs(1)).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.len(), 1);
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(tx.len(), 0);
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = bounded::<i32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
