//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is provided, and only the pieces the
//! runtime uses: `bounded` channels with `send` / `recv_timeout` /
//! `try_recv`. Backed by `std::sync::mpsc::sync_channel`, which has the
//! same bounded-rendezvous behaviour the fabric's reply channels need.

pub mod channel {
    use std::sync::mpsc;
    use std::time::{Duration, Instant};

    /// Sending half of a bounded channel.
    #[derive(Debug, Clone)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::send_timeout`]; carries the value back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// Timeout elapsed with the buffer still full.
        Timeout(T),
        /// The receiver was dropped.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Timeout elapsed with no message.
        Timeout,
        /// All senders dropped and the buffer is drained.
        Disconnected,
    }

    /// Create a bounded channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued or the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }

        /// Block for at most `timeout` trying to enqueue the message.
        /// `std::sync::mpsc` has no native timed send, so this spins
        /// briefly then sleeps in short slices between `try_send`s.
        pub fn send_timeout(
            &self,
            value: T,
            timeout: Duration,
        ) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut value = value;
            let mut spins: u32 = 0;
            loop {
                match self.inner.try_send(value) {
                    Ok(()) => return Ok(()),
                    Err(mpsc::TrySendError::Full(v)) => {
                        if Instant::now() >= deadline {
                            return Err(SendTimeoutError::Timeout(v));
                        }
                        value = v;
                        if spins < 64 {
                            spins += 1;
                            for _ in 0..32 {
                                std::hint::spin_loop();
                            }
                        } else {
                            std::thread::sleep(Duration::from_micros(50));
                        }
                    }
                    Err(mpsc::TrySendError::Disconnected(v)) => {
                        return Err(SendTimeoutError::Disconnected(v));
                    }
                }
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Block until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.inner.recv().map_err(|_| RecvTimeoutError::Disconnected)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn bounded_roundtrip() {
        let (tx, rx) = bounded(1);
        tx.send(41).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)), Ok(41));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn timeout_and_disconnect() {
        let (tx, rx) = bounded::<i32>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
