//! Cross-crate integration: the umbrella API, custom platform specs,
//! collectives under the cost model, report generation from live sweeps,
//! and end-to-end determinism.

use nonctg::core::{ReduceOp, Universe};
use nonctg::datatype::{as_bytes, Datatype};
use nonctg::report;
use nonctg::schemes::{run_scheme, run_sweep, PingPongConfig, Scheme, SweepConfig, Workload};
use nonctg::simnet::Platform;

fn quiet() -> Platform {
    Platform::from_spec("skx-impi:jitter=0").unwrap()
}

#[test]
fn custom_platform_spec_changes_results() {
    let w = Workload::every_other(1 << 15);
    let cfg = PingPongConfig { reps: 3, flush: false, flush_bytes: 0, verify: true };
    let base = run_scheme(&quiet(), Scheme::Reference, &w, &cfg).time();
    let slow_net = Platform::from_spec("skx-impi:jitter=0,net.bw=1e9,net.dma_read_bw=2e9").unwrap();
    let slowed = run_scheme(&slow_net, Scheme::Reference, &w, &cfg).time();
    assert!(
        slowed > 5.0 * base,
        "a 12x slower fabric must show up: {base} vs {slowed}"
    );
}

#[test]
fn sweep_to_figure_pipeline() {
    let cfg = SweepConfig {
        schemes: vec![Scheme::Reference, Scheme::VectorType, Scheme::PackingVector],
        min_bytes: 1 << 10,
        max_bytes: 1 << 13,
        step: 2,
        base: PingPongConfig { reps: 2, flush: false, flush_bytes: 0, verify: true },
    };
    let sweep = run_sweep(&quiet(), &cfg);
    assert_eq!(sweep.points.len(), 3 * 4);

    // CSV table view parses back.
    let csv = nonctg_bench_csv(&sweep);
    let rows = report::csv::parse_csv(&csv);
    assert_eq!(rows.len(), 1 + 12);

    // SVG renders with one path per (scheme, panel).
    let panels: Vec<(report::PlotSpec, Vec<report::Series>)> = vec![(
        report::PlotSpec::loglog("Time (sec)", "bytes", "s"),
        sweep
            .series(Scheme::Reference)
            .iter()
            .map(|p| (p.msg_bytes as f64, p.time))
            .collect::<Vec<_>>(),
    )]
    .into_iter()
    .map(|(spec, pts)| (spec, vec![report::Series::new("reference", 0, pts)]))
    .collect();
    let svg = report::render_figure("integration", &panels, report::PanelGeom::default());
    assert!(svg.contains("<path"));
}

// A local stand-in for nonctg-bench's CSV (the bench crate is not a dep of
// the umbrella crate; the format is the contract being checked).
fn nonctg_bench_csv(sweep: &nonctg::schemes::Sweep) -> String {
    let rows: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|p| {
            vec![
                sweep.platform.name().to_string(),
                p.scheme.key().to_string(),
                p.msg_bytes.to_string(),
                format!("{:.9e}", p.time),
                format!("{:.6e}", p.bandwidth),
                format!("{:.4}", p.slowdown),
            ]
        })
        .collect();
    report::csv::to_csv(
        &["platform", "scheme", "msg_bytes", "time_s", "bandwidth_Bps", "slowdown"],
        &rows,
    )
}

#[test]
fn collectives_compose_with_datatype_sends() {
    // Gather per-rank derived-type ping times, then agree on the max via
    // allreduce — the shape of a real benchmark driver.
    let times = Universe::run(quiet(), 4, |comm| {
        let n = 512;
        let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        let partner = comm.rank() ^ 1;
        let t0 = comm.wtime();
        if comm.rank() % 2 == 0 {
            let src: Vec<f64> = (0..2 * n).map(|i| i as f64).collect();
            comm.send(as_bytes(&src), 0, &vec_t, 1, partner, 0).unwrap();
        } else {
            let mut buf = vec![0.0f64; n];
            comm.recv_slice(&mut buf, Some(partner), Some(0)).unwrap();
            assert_eq!(buf[1], 2.0);
        }
        let mut t = [comm.wtime() - t0];
        comm.allreduce(&mut t, ReduceOp::Max).unwrap();
        t[0]
    });
    // Allreduce(Max) makes every rank report the same value.
    for w in times.windows(2) {
        assert_eq!(w[0], w[1]);
    }
    assert!(times[0] > 0.0);
}

#[test]
fn whole_stack_deterministic_across_runs() {
    let run = || {
        let cfg = SweepConfig {
            schemes: vec![Scheme::Reference, Scheme::OneSided, Scheme::PackingElement],
            min_bytes: 1 << 12,
            max_bytes: 1 << 14,
            step: 4,
            base: PingPongConfig { reps: 3, flush: true, flush_bytes: 1 << 20, verify: true },
        };
        // Jitter ON: determinism must hold *with* noise (seeded).
        run_sweep(&Platform::skx_impi(), &cfg)
            .points
            .iter()
            .map(|p| p.time)
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn prelude_exposes_the_advertised_api() {
    use nonctg::prelude::*;
    let p = Platform::skx_impi();
    let w = Workload::every_other(64);
    let cfg = PingPongConfig { reps: 1, flush: false, flush_bytes: 0, verify: true };
    let r = nonctg::schemes::run_scheme(&p, Scheme::Reference, &w, &cfg);
    assert_eq!(r.msg_bytes, 512);
    let d = Datatype::vector(4, 1, 2, &Datatype::f64()).unwrap();
    assert_eq!(d.size(), 32);
    let _order = ArrayOrder::C;
}

#[test]
fn readme_quickstart_compiles_and_runs() {
    // The README's code block, kept honest.
    use nonctg::core::Universe;
    use nonctg::datatype::as_bytes;
    use nonctg::prelude::*;

    let every_other = Datatype::vector(1000, 1, 2, &Datatype::f64()).unwrap().commit();
    Universe::run_pair(Platform::skx_impi(), |comm| {
        if comm.rank() == 0 {
            let src: Vec<f64> = (0..2000).map(|i| i as f64).collect();
            comm.send(as_bytes(&src), 0, &every_other, 1, 1, 0).unwrap();
        } else {
            let mut buf = vec![0.0f64; 1000];
            comm.recv_slice(&mut buf, Some(0), Some(0)).unwrap();
            assert_eq!(buf[7], 14.0);
        }
    });
}

#[test]
fn explain_breakdown_consistent_with_measured_pingpong() {
    // The cost model's analytical decomposition and the executed harness
    // must agree: a one-way derived-type send predicted by `explain_send`
    // matches the measured ping time (ping-pong minus the zero-byte pong).
    use nonctg::simnet::{Access, SendPath};
    let p = quiet();
    let elems = 1 << 17; // 1 MiB
    let w = Workload::every_other(elems);
    let cfg = PingPongConfig { reps: 3, flush: true, flush_bytes: 50_000_000, verify: true };
    let measured = run_scheme(&p, Scheme::VectorType, &w, &cfg).time();

    let access = Access::Strided { blocklen: 8, stride: 16 };
    let predicted_ping = p
        .explain_send(SendPath::DerivedType, w.msg_bytes() as u64, &access, false)
        .total();
    // Pong: a zero-byte eager message (overhead + latency) plus receive
    // overheads on both sides.
    let pong = 2.0 * p.proto.eager_overhead + p.net.latency + p.proto.eager_overhead;
    let predicted = predicted_ping + pong;
    let ratio = measured / predicted;
    assert!(
        (0.85..1.15).contains(&ratio),
        "measured {measured} vs predicted {predicted} (ratio {ratio})"
    );
}

#[test]
fn wtick_reports_microsecond_metadata() {
    let ticks = Universe::run(quiet(), 1, |comm| comm.wtick());
    assert_eq!(ticks[0], 1e-6);
}
