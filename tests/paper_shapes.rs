//! Shape assertions: every qualitative finding of the paper's §4/§5 must
//! hold in the reproduction, so the model can't silently drift.

use nonctg::schemes::{run_scheme, PingPongConfig, Scheme, Workload};
use nonctg::simnet::{Platform, PlatformId};

fn quiet(id: PlatformId) -> Platform {
    let mut p = Platform::get(id);
    p.jitter_sigma = 0.0;
    p
}

fn cfg() -> PingPongConfig {
    PingPongConfig { reps: 3, flush: true, flush_bytes: 50_000_000, verify: true }
}

fn time(p: &Platform, s: Scheme, elems: usize) -> f64 {
    let w = Workload::every_other(elems);
    run_scheme(p, s, &w, &cfg().adaptive(w.msg_bytes())).time()
}

/// §5: non-contiguous schemes are considerably slower; the slowdown is
/// roughly a factor 2-3 at mid sizes (multiple reads, no overlap).
#[test]
fn slowdown_factor_two_to_three_mid_size() {
    for id in PlatformId::ALL {
        let p = quiet(id);
        let elems = 1 << 19; // 4 MiB
        let r = time(&p, Scheme::Reference, elems);
        // KNL's band is wider: figure 4 shows the weak scalar core pushing
        // copy-bound slowdowns well past the Skylake/Cray 2-3x.
        let band = if id == PlatformId::KnlImpi { 2.5..9.0 } else { 1.8..5.0 };
        for s in [Scheme::Copying, Scheme::VectorType, Scheme::PackingVector] {
            let slow = time(&p, s, elems) / r;
            assert!(
                band.contains(&slow),
                "{id}/{s}: slowdown {slow} outside the paper's band {band:?}"
            );
        }
    }
}

/// §4.1: derived-type sends track manual copying until a few tens of MB...
#[test]
fn derived_tracks_copying_below_internal_buffer() {
    for id in PlatformId::ALL {
        let p = quiet(id);
        for elems in [1usize << 14, 1 << 18, 1 << 21] {
            let c = time(&p, Scheme::Copying, elems);
            let v = time(&p, Scheme::VectorType, elems);
            let ratio = v / c;
            assert!(
                (0.85..1.15).contains(&ratio),
                "{id}: vector/copying = {ratio} at {elems} elems"
            );
        }
    }
}

/// §4.1 continued: ...and degrade beyond the internal buffer, where the
/// packed scheme does not.
#[test]
fn derived_degrades_past_internal_buffer_packing_does_not() {
    let p = quiet(PlatformId::SkxImpi);
    let elems = (96 << 20) / 8; // 96 MiB message, 3x the 32 MiB buffer
    let copying = time(&p, Scheme::Copying, elems);
    let vector = time(&p, Scheme::VectorType, elems);
    let packing = time(&p, Scheme::PackingVector, elems);
    assert!(
        vector > 1.3 * copying,
        "large derived send should degrade: vector {vector} vs copying {copying}"
    );
    let ratio = packing / copying;
    assert!(
        (0.9..1.1).contains(&ratio),
        "packing stays with copying at large sizes: {ratio}"
    );
}

/// §4.3: packing a derived type == manual copying; element-wise packing is
/// predictably terrible.
#[test]
fn packing_vector_equals_copying_elementwise_terrible() {
    for id in PlatformId::ALL {
        let p = quiet(id);
        let elems = 1 << 16;
        let c = time(&p, Scheme::Copying, elems);
        let pv = time(&p, Scheme::PackingVector, elems);
        let pe = time(&p, Scheme::PackingElement, elems);
        assert!((0.85..1.15).contains(&(pv / c)), "{id}: packing(v)/copying = {}", pv / c);
        assert!(pe > 4.0 * pv, "{id}: packing(e) must be far slower, got {}", pe / pv);
    }
}

/// §4.2: buffered sends perform worse, even at intermediate sizes, and a
/// user-space buffer does not rescue large messages.
#[test]
fn bsend_is_worse_at_all_sizes() {
    for id in PlatformId::ALL {
        let p = quiet(id);
        for elems in [1usize << 13, 1 << 17, 1 << 21] {
            let v = time(&p, Scheme::VectorType, elems);
            let b = time(&p, Scheme::Buffered, elems);
            assert!(b > v, "{id}: buffered {b} should exceed vector {v} at {elems}");
        }
    }
}

/// §4.4: one-sided is slow for small messages (fence overhead)...
#[test]
fn onesided_slow_small_competitive_mid() {
    for id in PlatformId::ALL {
        let p = quiet(id);
        let small = 128;
        let one = time(&p, Scheme::OneSided, small);
        let two = time(&p, Scheme::VectorType, small);
        assert!(one > 2.0 * two, "{id}: small one-sided {one} vs two-sided {two}");
    }
    // ...and competitive at intermediate sizes, except on MVAPICH2 where it
    // is several factors slower.
    let mid = 1 << 19;
    let impi = quiet(PlatformId::SkxImpi);
    let ratio_impi =
        time(&impi, Scheme::OneSided, mid) / time(&impi, Scheme::VectorType, mid);
    assert!(ratio_impi < 1.6, "impi one-sided should be competitive mid-size: {ratio_impi}");
    let mv = quiet(PlatformId::SkxMvapich);
    let ratio_mv = time(&mv, Scheme::OneSided, mid) / time(&mv, Scheme::VectorType, mid);
    assert!(ratio_mv > 2.0, "mvapich one-sided should be several factors slower: {ratio_mv}");
}

/// §4.8: on Cray, large one-sided is on par with the derived types; on
/// Stampede2 it shows a relative degradation.
#[test]
fn cray_onesided_on_par_at_large_sizes() {
    let elems = (64 << 20) / 8;
    let cray = quiet(PlatformId::Ls5CrayMpich);
    let ratio_cray =
        time(&cray, Scheme::OneSided, elems) / time(&cray, Scheme::VectorType, elems);
    assert!(
        (0.5..1.4).contains(&ratio_cray),
        "cray large one-sided should track derived types: {ratio_cray}"
    );
    let impi = quiet(PlatformId::SkxImpi);
    let ratio_impi =
        time(&impi, Scheme::OneSided, elems) / time(&impi, Scheme::VectorType, elems);
    assert!(
        ratio_impi > ratio_cray,
        "impi should degrade one-sided more than cray: {ratio_impi} vs {ratio_cray}"
    );
}

/// §4.5: a per-byte performance drop at the eager limit; on Cray the
/// packed scheme's drop sits at double the size.
#[test]
fn eager_limit_blip_and_cray_packed_quirk() {
    let p = quiet(PlatformId::SkxImpi);
    let limit = p.proto.eager_limit as usize;
    let per_byte = |elems: usize| time(&p, Scheme::Reference, elems) / (elems * 8) as f64;
    let under = per_byte(limit / 8);
    let over = per_byte(limit / 8 + 1);
    assert!(over > 1.04 * under, "no eager blip: {under} vs {over}");

    // Cray: packed sends switch at 2x.
    let cray = quiet(PlatformId::Ls5CrayMpich);
    let climit = cray.proto.eager_limit as usize;
    let packed_time = |elems: usize| {
        let w = Workload::every_other(elems);
        run_scheme(&cray, Scheme::PackingVector, &w, &cfg()).time() / w.msg_bytes() as f64
    };
    let at_limit_over = packed_time(climit / 8 + 1);
    let at_limit_under = packed_time(climit / 8);
    // No blip at 1x for the packed scheme...
    assert!(
        at_limit_over < 1.04 * at_limit_under,
        "cray packed should not blip at 1x limit: {at_limit_under} vs {at_limit_over}"
    );
    // ...but a blip at 2x.
    let at_2x_under = packed_time(2 * climit / 8);
    let at_2x_over = packed_time(2 * climit / 8 + 1);
    assert!(
        at_2x_over > 1.03 * at_2x_under,
        "cray packed blip missing at 2x: {at_2x_under} vs {at_2x_over}"
    );
}

/// §4.8: KNL has the same peak network but copy-bound schemes suffer.
#[test]
fn knl_same_network_worse_copies() {
    let skx = quiet(PlatformId::SkxImpi);
    let knl = quiet(PlatformId::KnlImpi);
    let elems = 1 << 21;
    let ref_ratio = time(&knl, Scheme::Reference, elems) / time(&skx, Scheme::Reference, elems);
    assert!(
        ref_ratio < 1.5,
        "peak network should be comparable (paper: same peak): {ref_ratio}"
    );
    let slow_skx = time(&skx, Scheme::Copying, elems) / time(&skx, Scheme::Reference, elems);
    let slow_knl = time(&knl, Scheme::Copying, elems) / time(&knl, Scheme::Reference, elems);
    assert!(
        slow_knl > 1.2 * slow_skx,
        "KNL copy-bound slowdown should exceed SKX: {slow_knl} vs {slow_skx}"
    );
}

/// §4.6: not flushing the cache helps intermediate sizes.
#[test]
fn no_flush_helps_intermediate() {
    let p = quiet(PlatformId::SkxImpi);
    let w = Workload::every_other(1 << 17);
    let flush = cfg();
    let warm = PingPongConfig { flush: false, ..flush.clone() };
    let cold_t = run_scheme(&p, Scheme::Copying, &w, &flush).time();
    let warm_t = run_scheme(&p, Scheme::Copying, &w, &warm).time();
    assert!(warm_t < 0.9 * cold_t, "warm {warm_t} vs cold {cold_t}");
}

/// §4.7: no degradation when all processes on a node communicate.
#[test]
fn procs_per_node_no_degradation() {
    let p = quiet(PlatformId::SkxImpi);
    let w = Workload::every_other(1 << 15);
    let c = cfg();
    let one = nonctg::schemes::run_scheme_pairs(&p, Scheme::VectorType, &w, &c, 1).time();
    let many = nonctg::schemes::run_scheme_pairs(&p, Scheme::VectorType, &w, &c, 4).time();
    let ratio = many / one;
    assert!(
        (0.95..1.05).contains(&ratio),
        "pairs should not degrade each other: {ratio}"
    );
}

/// §2: vector and subarray formulations of the same selection are
/// equivalent in cost.
#[test]
fn vector_equals_subarray() {
    for id in PlatformId::ALL {
        let p = quiet(id);
        let elems = 1 << 16;
        let v = time(&p, Scheme::VectorType, elems);
        let s = time(&p, Scheme::Subarray, elems);
        let ratio = v / s;
        assert!((0.95..1.05).contains(&ratio), "{id}: vector/subarray = {ratio}");
    }
}

/// §4.8: switching SKX from Intel MPI to MVAPICH2 gives "largely the same
/// results" for the two-sided schemes.
#[test]
fn mvapich_two_sided_similar_to_impi() {
    let impi = quiet(PlatformId::SkxImpi);
    let mv = quiet(PlatformId::SkxMvapich);
    for elems in [1usize << 14, 1 << 19] {
        for s in [Scheme::Reference, Scheme::Copying, Scheme::VectorType, Scheme::PackingVector] {
            let a = time(&impi, s, elems);
            let b = time(&mv, s, elems);
            let ratio = b / a;
            assert!(
                (0.7..1.4).contains(&ratio),
                "{s} at {elems}: impi vs mvapich ratio {ratio}"
            );
        }
    }
}

/// §4.8: the Cray installation also shows similar two-sided performance
/// (its network peaks lower, so compare slowdowns, not absolute times).
#[test]
fn cray_two_sided_slowdowns_similar() {
    let impi = quiet(PlatformId::SkxImpi);
    let cray = quiet(PlatformId::Ls5CrayMpich);
    let elems = 1 << 19;
    for s in [Scheme::Copying, Scheme::VectorType] {
        let slow_impi = time(&impi, s, elems) / time(&impi, Scheme::Reference, elems);
        let slow_cray = time(&cray, s, elems) / time(&cray, Scheme::Reference, elems);
        let ratio = slow_cray / slow_impi;
        assert!((0.7..1.3).contains(&ratio), "{s}: slowdown ratio {ratio}");
    }
}

/// §3.2: the smallest measurements sit in the paper's microsecond regime
/// (its minimum was ~6e-6 s) and timings are individually positive.
#[test]
fn smallest_message_latency_regime() {
    for id in PlatformId::ALL {
        let p = quiet(id);
        let w = Workload::every_other(128); // 1 KiB
        let r = run_scheme(&p, Scheme::Reference, &w, &cfg());
        let t = r.time();
        assert!(
            (2e-6..4e-5).contains(&t),
            "{id}: smallest ping-pong {t} outside the paper's regime"
        );
        assert!(r.times.iter().all(|&x| x > 0.0));
    }
}
