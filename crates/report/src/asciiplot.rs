//! Terminal log-log plots: one glyph per series on a character grid.

use crate::series::{bounds, unit, PlotSpec, Scale, Series};

/// Render series onto a `width` x `height` character canvas with axes and
/// a legend. Later series overwrite earlier glyphs on collision.
pub fn render(spec: &PlotSpec, series: &[Series], width: usize, height: usize) -> String {
    let width = width.max(20);
    let height = height.max(8);
    let Some((xmin, xmax, ymin, ymax)) = bounds(series, spec) else {
        return format!("{} — no data\n", spec.title);
    };

    let mut grid = vec![vec![' '; width]; height];
    for s in series {
        for &(x, y) in &s.points {
            if (spec.xscale == Scale::Log && x <= 0.0) || (spec.yscale == Scale::Log && y <= 0.0) {
                continue;
            }
            let y = spec.ymax.map_or(y, |m| y.min(m));
            let ux = unit(x, xmin, xmax, spec.xscale).clamp(0.0, 1.0);
            let uy = unit(y, ymin, ymax, spec.yscale).clamp(0.0, 1.0);
            let col = (ux * (width - 1) as f64).round() as usize;
            let row = ((1.0 - uy) * (height - 1) as f64).round() as usize;
            grid[row][col] = s.glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{}\n", spec.title));
    let ylab_hi = format_tick(ymax);
    let ylab_lo = format_tick(ymin);
    let margin = ylab_hi.len().max(ylab_lo.len());
    for (r, row) in grid.iter().enumerate() {
        let lab = if r == 0 {
            ylab_hi.clone()
        } else if r == height - 1 {
            ylab_lo.clone()
        } else {
            String::new()
        };
        out.push_str(&format!("{:>margin$} |", lab));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>margin$} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>margin$}  {:<w2$}{}\n",
        "",
        format_tick(xmin),
        format_tick(xmax),
        w2 = width.saturating_sub(format_tick(xmax).len()),
    ));
    out.push_str(&format!("{:>margin$}  {} ({})\n", "", spec.xlabel, spec.ylabel));
    out.push_str(&format!(
        "{:>margin$}  legend: {}\n",
        "",
        series
            .iter()
            .map(|s| format!("{}={}", s.glyph, s.label))
            .collect::<Vec<_>>()
            .join("  ")
    ));
    out
}

fn format_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let a = v.abs();
    if (1e-2..1e4).contains(&a) {
        if v.fract() == 0.0 && a < 1e4 {
            format!("{v}")
        } else {
            format!("{v:.3}")
        }
    } else {
        format!("{v:.1e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::PlotSpec;

    fn demo_series() -> Vec<Series> {
        vec![
            Series::new("ref", 0, (0..10).map(|i| (10f64.powi(i), 1e-6 * 2f64.powi(i))).collect()),
            Series::new("vec", 3, (0..10).map(|i| (10f64.powi(i), 3e-6 * 2f64.powi(i))).collect()),
        ]
    }

    #[test]
    fn renders_grid_with_legend() {
        let spec = PlotSpec::loglog("Time", "bytes", "sec");
        let out = render(&spec, &demo_series(), 60, 16);
        assert!(out.contains("Time"));
        assert!(out.contains("legend: r=ref  v=vec"));
        assert!(out.contains('r'));
        assert!(out.contains('v'));
        // grid rows + title + axis + labels + legend
        assert!(out.lines().count() >= 16 + 4);
    }

    #[test]
    fn empty_input_is_graceful() {
        let spec = PlotSpec::loglog("T", "x", "y");
        let out = render(&spec, &[], 40, 10);
        assert!(out.contains("no data"));
    }

    #[test]
    fn monotone_series_slopes_down_the_grid() {
        // Increasing y with x should put the glyph for the largest x at the
        // top row of the canvas.
        let spec = PlotSpec::loglog("T", "x", "y");
        let s = vec![Series::new("a", 0, vec![(1.0, 1.0), (10.0, 10.0), (100.0, 100.0)])];
        let out = render(&spec, &s, 30, 9);
        let grid_lines: Vec<&str> = out.lines().skip(1).take(9).collect();
        assert!(grid_lines[0].trim_end().ends_with('r'), "{out}");
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(0.0), "0");
        assert_eq!(format_tick(1024.0), "1024");
        assert_eq!(format_tick(1.0e9), "1.0e9");
        assert_eq!(format_tick(2.5e-5), "2.5e-5");
    }
}
