//! Plot data structures shared by the ASCII and SVG renderers.

/// The validated categorical palette (8 slots, fixed order — color follows
/// the scheme identity, never its rank in a particular figure).
pub const PALETTE: [&str; 8] = [
    "#2a78d6", // blue
    "#1baf7a", // aqua
    "#eda100", // yellow
    "#008300", // green
    "#4a3aa7", // violet
    "#e34948", // red
    "#e87ba4", // magenta
    "#eb6834", // orange
];

/// Single-character glyphs for the ASCII renderer, same fixed order.
pub const GLYPHS: [char; 8] = ['r', 'c', 'b', 'v', 's', 'o', 'e', 'p'];

/// One plotted line.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Stroke color (hex).
    pub color: String,
    /// ASCII glyph.
    pub glyph: char,
    /// `(x, y)` samples in increasing x.
    pub points: Vec<(f64, f64)>,
    /// Samples (a subset of `points`) to overlay with an open-circle
    /// marker — measurements that degraded gracefully under fault
    /// injection and should be visually distinct from clean ones.
    pub marked: Vec<(f64, f64)>,
    /// X positions of points that could not be measured at all; rendered
    /// as an `×` at the bottom of the panel so a gap in the line is
    /// distinguishable from a size that was never swept.
    pub failed_x: Vec<f64>,
    /// Samples (a subset of `points`) measured with the zero-copy iovec
    /// engine selected — overlaid as an open square so the adaptive
    /// datapath choice is visible next to the demotion circles.
    pub iov_marked: Vec<(f64, f64)>,
    /// Samples measured with the elementwise engine selected — overlaid
    /// as an open diamond.
    pub elem_marked: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series with palette slot `slot`.
    pub fn new(label: impl Into<String>, slot: usize, points: Vec<(f64, f64)>) -> Series {
        Series {
            label: label.into(),
            color: PALETTE[slot % PALETTE.len()].to_string(),
            glyph: GLYPHS[slot % GLYPHS.len()],
            points,
            marked: Vec::new(),
            failed_x: Vec::new(),
            iov_marked: Vec::new(),
            elem_marked: Vec::new(),
        }
    }

    /// Attach open-circle markers (degraded measurements).
    pub fn with_marked(mut self, marked: Vec<(f64, f64)>) -> Series {
        self.marked = marked;
        self
    }

    /// Attach failed-point x positions.
    pub fn with_failed(mut self, failed_x: Vec<f64>) -> Series {
        self.failed_x = failed_x;
        self
    }

    /// Attach open-square markers (zero-copy iovec engine selected).
    pub fn with_iov_marked(mut self, iov_marked: Vec<(f64, f64)>) -> Series {
        self.iov_marked = iov_marked;
        self
    }

    /// Attach open-diamond markers (elementwise engine selected).
    pub fn with_elem_marked(mut self, elem_marked: Vec<(f64, f64)>) -> Series {
        self.elem_marked = elem_marked;
        self
    }
}

/// Axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Log10 axis (positive values only; non-positive points are dropped).
    Log,
}

/// Description of one plot panel.
#[derive(Debug, Clone)]
pub struct PlotSpec {
    /// Panel title.
    pub title: String,
    /// X-axis label.
    pub xlabel: String,
    /// Y-axis label.
    pub ylabel: String,
    /// X scaling.
    pub xscale: Scale,
    /// Y scaling.
    pub yscale: Scale,
    /// Optional y clamp (the paper clamps the slowdown panel to ~10).
    pub ymax: Option<f64>,
}

impl PlotSpec {
    /// A log-log spec, the figures' default.
    pub fn loglog(title: &str, xlabel: &str, ylabel: &str) -> PlotSpec {
        PlotSpec {
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            xscale: Scale::Log,
            yscale: Scale::Log,
            ymax: None,
        }
    }

    /// Log x, linear y (the slowdown panel).
    pub fn semilogx(title: &str, xlabel: &str, ylabel: &str, ymax: f64) -> PlotSpec {
        PlotSpec {
            title: title.into(),
            xlabel: xlabel.into(),
            ylabel: ylabel.into(),
            xscale: Scale::Log,
            yscale: Scale::Linear,
            ymax: Some(ymax),
        }
    }
}

/// Data bounds of a set of series under a spec (after log filtering and
/// clamping).
pub(crate) fn bounds(series: &[Series], spec: &PlotSpec) -> Option<(f64, f64, f64, f64)> {
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for s in series {
        for &(x, y) in &s.points {
            if spec.xscale == Scale::Log && x <= 0.0 {
                continue;
            }
            if spec.yscale == Scale::Log && y <= 0.0 {
                continue;
            }
            if !x.is_finite() || !y.is_finite() {
                continue;
            }
            xs.push(x);
            ys.push(spec.ymax.map_or(y, |m| y.min(m)));
        }
    }
    if xs.is_empty() {
        return None;
    }
    let (xmin, xmax) = (
        xs.iter().copied().fold(f64::INFINITY, f64::min),
        xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    let (ymin, ymax) = (
        ys.iter().copied().fold(f64::INFINITY, f64::min),
        ys.iter().copied().fold(f64::NEG_INFINITY, f64::max),
    );
    Some((xmin, xmax, ymin, ymax))
}

/// Map a value into [0,1] under a scale.
pub(crate) fn unit(v: f64, lo: f64, hi: f64, scale: Scale) -> f64 {
    match scale {
        Scale::Linear => {
            if hi == lo {
                0.5
            } else {
                (v - lo) / (hi - lo)
            }
        }
        Scale::Log => {
            if hi == lo {
                0.5
            } else {
                (v.log10() - lo.log10()) / (hi.log10() - lo.log10())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palette_slots_stable() {
        let s = Series::new("reference", 0, vec![]);
        assert_eq!(s.color, "#2a78d6");
        assert_eq!(s.glyph, 'r');
        let s7 = Series::new("packing(v)", 7, vec![]);
        assert_eq!(s7.color, "#eb6834");
    }

    #[test]
    fn bounds_skip_nonpositive_on_log() {
        let spec = PlotSpec::loglog("t", "x", "y");
        let s = vec![Series::new("a", 0, vec![(0.0, 1.0), (10.0, 2.0), (100.0, 4.0)])];
        let (xmin, xmax, ymin, ymax) = bounds(&s, &spec).unwrap();
        assert_eq!((xmin, xmax), (10.0, 100.0));
        assert_eq!((ymin, ymax), (2.0, 4.0));
    }

    #[test]
    fn bounds_apply_ymax_clamp() {
        let spec = PlotSpec::semilogx("t", "x", "y", 10.0);
        let s = vec![Series::new("a", 0, vec![(1.0, 5.0), (2.0, 50.0)])];
        let (_, _, _, ymax) = bounds(&s, &spec).unwrap();
        assert_eq!(ymax, 10.0);
    }

    #[test]
    fn unit_mapping() {
        assert_eq!(unit(10.0, 1.0, 100.0, Scale::Log), 0.5);
        assert_eq!(unit(5.0, 0.0, 10.0, Scale::Linear), 0.5);
        assert_eq!(unit(3.0, 3.0, 3.0, Scale::Linear), 0.5);
    }

    #[test]
    fn empty_series_no_bounds() {
        let spec = PlotSpec::loglog("t", "x", "y");
        assert!(bounds(&[], &spec).is_none());
    }
}
