//! Slowdown heatmaps: scheme x message-size grids colored by magnitude
//! on a single-hue sequential ramp (light = near the reference, dark =
//! far above it), with the exact value printed in every cell — the table
//! view is built into the mark, so no color-only reading is required.

use std::fmt::Write as _;

/// The validated sequential blue ramp (steps 100..700).
const RAMP: [&str; 13] = [
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7", "#3987e5", "#2a78d6",
    "#256abf", "#1c5cab", "#184f95", "#104281", "#0d366b",
];

const SURFACE: &str = "#fcfcfb";
const INK: &str = "#0b0b0b";
const INK2: &str = "#52514e";

/// Ink color readable on a given ramp step (light text on dark steps).
fn cell_ink(step: usize) -> &'static str {
    if step >= 7 {
        "#ffffff"
    } else {
        INK
    }
}

/// Map a value in `[lo, hi]` (log-scaled) onto a ramp step.
fn step_of(v: f64, lo: f64, hi: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0;
    }
    let (l, h) = (lo.max(1e-30).ln(), hi.max(lo * 1.0001).ln());
    let u = ((v.ln() - l) / (h - l)).clamp(0.0, 1.0);
    (u * (RAMP.len() - 1) as f64).round() as usize
}

/// Input to [`render_heatmap`]: row labels, column labels, and values in
/// row-major order (`None` renders an empty cell).
pub struct HeatmapData {
    /// One label per row (e.g. scheme names).
    pub rows: Vec<String>,
    /// One label per column (e.g. message sizes).
    pub cols: Vec<String>,
    /// `rows.len() * cols.len()` values, row-major.
    pub values: Vec<Option<f64>>,
}

/// Render the heatmap as a standalone SVG. Values are colored on a
/// log-scaled sequential ramp between the data extremes and printed in
/// each cell with one decimal.
pub fn render_heatmap(title: &str, data: &HeatmapData) -> String {
    let (nr, nc) = (data.rows.len(), data.cols.len());
    assert_eq!(data.values.len(), nr * nc, "heatmap value count");
    let cell_w = 64.0;
    let cell_h = 24.0;
    let left = 110.0;
    let top = 52.0;
    let w = left + nc as f64 * cell_w + 16.0;
    let h = top + nr as f64 * cell_h + 30.0;

    let finite: Vec<f64> = data.values.iter().flatten().copied().filter(|v| v.is_finite()).collect();
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min).max(1e-9);
    let hi = finite.iter().copied().fold(0.0f64, f64::max).max(lo * 1.001);

    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}" font-family="system-ui, sans-serif"><rect width="100%" height="100%" fill="{SURFACE}"/>"#
    );
    let _ = write!(
        out,
        r#"<text x="{left}" y="20" fill="{INK}" font-size="13" font-weight="600">{}</text>"#,
        title.replace('&', "&amp;").replace('<', "&lt;")
    );
    for (j, c) in data.cols.iter().enumerate() {
        let x = left + (j as f64 + 0.5) * cell_w;
        let _ = write!(
            out,
            r#"<text x="{x:.1}" y="{:.1}" fill="{INK2}" font-size="10" text-anchor="middle">{}</text>"#,
            top - 8.0,
            c.replace('&', "&amp;").replace('<', "&lt;")
        );
    }
    for (i, r) in data.rows.iter().enumerate() {
        let y = top + (i as f64 + 0.5) * cell_h;
        let _ = write!(
            out,
            r#"<text x="{:.1}" y="{:.1}" fill="{INK}" font-size="11" text-anchor="end">{}</text>"#,
            left - 8.0,
            y + 3.5,
            r.replace('&', "&amp;").replace('<', "&lt;")
        );
        for j in 0..nc {
            let x = left + j as f64 * cell_w;
            match data.values[i * nc + j] {
                Some(v) => {
                    let s = step_of(v, lo, hi);
                    // 2px surface gap between fills, 3px rounded corners.
                    let _ = write!(
                        out,
                        r#"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" rx="3" fill="{}"/>"#,
                        x + 1.0,
                        top + i as f64 * cell_h + 1.0,
                        cell_w - 2.0,
                        cell_h - 2.0,
                        RAMP[s]
                    );
                    let label = if v >= 100.0 {
                        format!("{v:.0}")
                    } else {
                        format!("{v:.1}")
                    };
                    let _ = write!(
                        out,
                        r#"<text x="{:.1}" y="{:.1}" fill="{}" font-size="10" text-anchor="middle">{}</text>"#,
                        x + cell_w / 2.0,
                        y + 3.5,
                        cell_ink(s),
                        label
                    );
                }
                None => {
                    let _ = write!(
                        out,
                        r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" rx="3" fill="none" stroke="#ececea"/>"##,
                        x + 1.0,
                        top + i as f64 * cell_h + 1.0,
                        cell_w - 2.0,
                        cell_h - 2.0,
                    );
                }
            }
        }
    }
    let _ = write!(
        out,
        r#"<text x="{left}" y="{:.1}" fill="{INK2}" font-size="10">light = {lo:.2}, dark = {hi:.1} (log scale); values printed per cell</text>"#,
        h - 10.0
    );
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> HeatmapData {
        HeatmapData {
            rows: vec!["copying".into(), "packing(e)".into()],
            cols: vec!["1K".into(), "1M".into(), "256M".into()],
            values: vec![Some(1.0), Some(2.7), Some(3.2), Some(2.0), Some(64.0), None],
        }
    }

    #[test]
    fn renders_cells_and_labels() {
        let svg = render_heatmap("slowdown", &demo());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 1 + 6, "surface + 6 cells");
        assert!(svg.contains("copying"));
        assert!(svg.contains("256M"));
        assert!(svg.contains("64")); // the value is printed
    }

    #[test]
    fn color_scale_is_monotone() {
        assert_eq!(step_of(1.0, 1.0, 100.0), 0);
        assert_eq!(step_of(100.0, 1.0, 100.0), RAMP.len() - 1);
        let mid = step_of(10.0, 1.0, 100.0);
        assert!(mid > 0 && mid < RAMP.len() - 1);
        assert!(step_of(5.0, 1.0, 100.0) <= mid);
    }

    #[test]
    fn degenerate_inputs_safe() {
        assert_eq!(step_of(f64::NAN, 1.0, 10.0), 0);
        assert_eq!(step_of(-1.0, 1.0, 10.0), 0);
        let all_same = HeatmapData {
            rows: vec!["a".into()],
            cols: vec!["x".into()],
            values: vec![Some(2.0)],
        };
        let svg = render_heatmap("t", &all_same);
        assert!(svg.contains("2.0"));
    }

    #[test]
    fn dark_cells_use_light_ink() {
        assert_eq!(cell_ink(0), INK);
        assert_eq!(cell_ink(RAMP.len() - 1), "#ffffff");
    }
}
