//! Aligned plain-text tables for terminal output.

/// A simple column-aligned table builder.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Table {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row (padded or truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.headers.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with right-aligned numeric-looking cells and a rule under the
    /// header.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, h) in self.headers.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:>w$}", h, w = widths[i]));
        }
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{:>w$}", c, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Format seconds with an adaptive unit (s / ms / µs / ns).
pub fn fmt_time(seconds: f64) -> String {
    let a = seconds.abs();
    if a >= 1.0 {
        format!("{seconds:.3} s")
    } else if a >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if a >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Format bytes with binary units.
pub fn fmt_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{bytes} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

/// Format a bandwidth in Gb/s as the paper's figures label it.
pub fn fmt_gbps(bytes_per_sec: f64) -> String {
    format!("{:.2}", bytes_per_sec * 8.0 / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["size", "time"]);
        t.row(["1024", "1.5 us"]);
        t.row(["1048576", "800.0 us"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("size"));
        assert!(lines[1].starts_with('-'));
        // All rows the same rendered width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn time_units() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(0.0025), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 us");
        assert_eq!(fmt_time(3.0e-9), "3.0 ns");
    }

    #[test]
    fn byte_units() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.0 MiB");
    }

    #[test]
    fn gbps_matches_paper_axis() {
        // 12.5e9 bytes/s = 100 Gb/s... the paper's axis peaks around 12.5,
        // which corresponds to 12.5e9 bits-level units; our formatter
        // reports bits: 1.5625e9 B/s -> 12.50 Gb/s.
        assert_eq!(fmt_gbps(1.5625e9), "12.50");
    }
}
