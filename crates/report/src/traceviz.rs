//! Trace rendering: Chrome-tracing (Perfetto) JSON export and an ASCII
//! per-track timeline.
//!
//! The renderer is deliberately runtime-agnostic: it consumes [`Span`]s —
//! named, timed intervals on numbered tracks — so this crate stays free of
//! dependencies. The bench harness converts the core runtime's
//! `TraceEvent`s (one track per rank) into spans.
//!
//! The JSON export targets the Trace Event Format's complete-event (`X`)
//! flavor, which both `chrome://tracing` and [Perfetto](https://ui.perfetto.dev)
//! load directly: one `pid`, one `tid` per track, microsecond timestamps,
//! and `thread_name` metadata records naming each track.

use std::fmt::Write as _;

/// One named, timed interval on one track.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Track (rendered as a thread/row); ranks map 1:1 onto tracks.
    pub track: usize,
    /// Short operation name (`send`, `pack`, ...).
    pub name: String,
    /// Start time in seconds.
    pub t_start: f64,
    /// End time in seconds.
    pub t_end: f64,
    /// Payload bytes (0 for pure synchronization).
    pub bytes: usize,
    /// Peer track, when the operation has one.
    pub peer: Option<usize>,
    /// Message tag, when applicable.
    pub tag: Option<i64>,
    /// Position in an ordered stream (chunk sequence number), when the
    /// span belongs to a pipelined transfer.
    pub seq: Option<u32>,
    /// Chunk-ring occupancy sampled when the span was recorded, when the
    /// span belongs to a pipelined transfer.
    pub depth: Option<u32>,
}

impl Span {
    /// Duration in seconds.
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render spans as a Chrome-tracing / Perfetto JSON document.
///
/// `track_names` labels tracks by index (missing entries fall back to
/// `"track N"`); pass rank names like `"rank 0"` for MPI-style traces.
pub fn chrome_trace_json(spans: &[Span], process_name: &str, track_names: &[String]) -> String {
    let mut tracks: Vec<usize> = spans.iter().map(|s| s.track).collect();
    tracks.sort_unstable();
    tracks.dedup();

    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
    let _ = write!(
        out,
        "  {{\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": \"process_name\", \"args\": {{\"name\": \"{}\"}}}}",
        json_escape(process_name)
    );
    for &t in &tracks {
        let fallback = format!("track {t}");
        let name = track_names.get(t).map(String::as_str).unwrap_or(&fallback);
        let _ = write!(
            out,
            ",\n  {{\"ph\": \"M\", \"pid\": 0, \"tid\": {}, \"name\": \"thread_name\", \"args\": {{\"name\": \"{}\"}}}}",
            t,
            json_escape(name)
        );
    }
    for s in spans {
        let ts_us = s.t_start * 1e6;
        let dur_us = s.duration().max(0.0) * 1e6;
        let _ = write!(
            out,
            ",\n  {{\"ph\": \"X\", \"pid\": 0, \"tid\": {}, \"name\": \"{}\", \"cat\": \"op\", \"ts\": {:.6}, \"dur\": {:.6}, \"args\": {{\"bytes\": {}",
            s.track,
            json_escape(&s.name),
            ts_us,
            dur_us,
            s.bytes
        );
        if let Some(p) = s.peer {
            let _ = write!(out, ", \"peer\": {p}");
        }
        if let Some(t) = s.tag {
            let _ = write!(out, ", \"tag\": {t}");
        }
        if let Some(q) = s.seq {
            let _ = write!(out, ", \"seq\": {q}");
        }
        if let Some(d) = s.depth {
            let _ = write!(out, ", \"depth\": {d}");
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

/// Render spans as an ASCII timeline: `width` columns spanning
/// `[t_min, t_max]`, one row per track. Each cell shows the first letter
/// of the *innermost* span covering it (latest start wins), uppercased
/// for communication-ish names to keep rows readable.
pub fn ascii_spans(spans: &[Span], width: usize) -> String {
    let width = width.max(10);
    if spans.is_empty() {
        return "empty trace\n".into();
    }
    let t_min = spans.iter().map(|s| s.t_start).fold(f64::INFINITY, f64::min);
    let t_max = spans.iter().map(|s| s.t_end).fold(f64::NEG_INFINITY, f64::max);
    let range = t_max - t_min;
    if range <= 0.0 || range.is_nan() {
        return "empty trace\n".into();
    }
    let ntracks = spans.iter().map(|s| s.track).max().unwrap_or(0) + 1;

    // Cell -> (start of covering span, glyph); later starts overwrite.
    let mut rows = vec![vec![(f64::NEG_INFINITY, ' '); width]; ntracks];
    let mut ordered: Vec<&Span> = spans.iter().collect();
    ordered.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
    for s in ordered {
        let glyph = s.name.chars().next().unwrap_or('?');
        let a = (((s.t_start - t_min) / range) * (width - 1) as f64).floor() as usize;
        let b = (((s.t_end - t_min) / range) * (width - 1) as f64).ceil() as usize;
        for cell in rows[s.track]
            .iter_mut()
            .take(b.min(width - 1) + 1)
            .skip(a)
        {
            if s.t_start >= cell.0 {
                *cell = (s.t_start, glyph);
            }
        }
    }

    let mut out = String::new();
    for (track, row) in rows.iter().enumerate() {
        let _ = write!(out, "track {track:>2} |");
        out.extend(row.iter().map(|&(_, g)| g));
        out.push_str("|\n");
    }
    let lo = format!("{:.1} us", t_min * 1e6);
    let hi = format!("{:.1} us", t_max * 1e6);
    let _ = writeln!(out, "         {lo:<w$}{hi}", w = width.saturating_sub(7));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: usize, name: &str, a: f64, b: f64) -> Span {
        Span {
            track,
            name: name.into(),
            t_start: a,
            t_end: b,
            bytes: 64,
            peer: Some(1 - track.min(1)),
            tag: Some(7),
            seq: None,
            depth: None,
        }
    }

    #[test]
    fn chrome_json_has_tracks_and_events() {
        let spans = vec![span(0, "send", 0.0, 1e-6), span(1, "recv", 0.0, 2e-6)];
        let names = vec!["rank 0".to_string(), "rank 1".to_string()];
        let j = chrome_trace_json(&spans, "nonctg", &names);
        assert!(j.contains("\"process_name\""));
        assert!(j.contains("\"rank 1\""));
        assert!(j.contains("\"ph\": \"X\""));
        assert!(j.contains("\"tid\": 1"));
        assert!(j.contains("\"name\": \"send\""));
        assert!(j.contains("\"tag\": 7"));
        // crude structural sanity: balanced braces/brackets
        let open = j.matches('{').count();
        let close = j.matches('}').count();
        assert_eq!(open, close);
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn chrome_json_escapes_names() {
        let spans = vec![span(0, "we\"ird\\op", 0.0, 1e-6)];
        let j = chrome_trace_json(&spans, "p\"q", &[]);
        assert!(j.contains("we\\\"ird\\\\op"));
        assert!(j.contains("p\\\"q"));
        assert!(j.contains("track 0"));
    }

    #[test]
    fn chrome_json_emits_seq_and_depth() {
        let mut s = span(0, "chunk", 0.0, 1e-6);
        s.seq = Some(3);
        s.depth = Some(2);
        let j = chrome_trace_json(&[s], "nonctg", &[]);
        assert!(j.contains("\"seq\": 3"));
        assert!(j.contains("\"depth\": 2"));
        // Plain spans must not carry the keys at all.
        let j2 = chrome_trace_json(&[span(0, "send", 0.0, 1e-6)], "nonctg", &[]);
        assert!(!j2.contains("\"seq\""));
        assert!(!j2.contains("\"depth\""));
    }

    #[test]
    fn ascii_innermost_span_wins() {
        // A long send with a nested stage: the stage's cells must show 's'
        // from "stage"... both start with 's'; use distinct names.
        let spans = vec![span(0, "xfer", 0.0, 10.0), span(0, "gather", 2.0, 4.0)];
        let art = ascii_spans(&spans, 50);
        assert!(art.contains('x'));
        assert!(art.contains('g'));
    }

    #[test]
    fn ascii_empty_graceful() {
        assert_eq!(ascii_spans(&[], 40), "empty trace\n");
        let zero = vec![span(0, "a", 1.0, 1.0)];
        assert_eq!(ascii_spans(&zero, 40), "empty trace\n");
    }
}
