//! Trace analysis: virtual-time critical path, pipeline bubble
//! accounting, and gantt rendering.
//!
//! Consumes the same [`Span`]s the trace exporter uses, so the whole
//! analysis is runtime-agnostic and unit-testable on synthetic traces.
//!
//! ## Critical path
//!
//! The event DAG of a traced run is implicit in span timing: at any
//! instant the run's progress is constrained by whichever operation is
//! executing then (ties broken toward the innermost span, i.e. the one
//! that started latest). [`critical_path`] walks backward from the last
//! event end, at each step selecting the covering span with the latest
//! start, emitting one [`CriticalEdge`] per step and an `idle` edge
//! across any interval no span covers. By construction consecutive edges
//! share *bit-identical* boundary timestamps, so the edge widths
//! telescope: [`CriticalPath::edge_sum`] verifies the tiling and then
//! returns `t_end - t_begin` exactly, making "edge sum equals elapsed"
//! an honest bitwise identity rather than a float-tolerance claim.
//!
//! ## Pipeline bubbles
//!
//! Chunked-rendezvous overlap cannot be measured from chunk timestamps:
//! the sender charges staging once before the pump loop and the
//! receiver's drain is wall-clock-only, so every chunk marker within a
//! transfer carries the same virtual timestamp. Instead
//! [`pipeline_report`] uses the ring-depth occupancy sampled into each
//! chunk marker: a drain at depth 1 means the receiver caught the
//! sender (no overlap); depth = capacity means a fully primed ring.

use crate::traceviz::Span;
use std::fmt::Write as _;

/// Phase bucket for a span name, mirroring the bench harness's phase
/// attribution: `pack`, `unpack`, `transfer`, `sync`, or `other`.
pub fn phase_of_name(name: &str) -> &'static str {
    match name {
        "pack" | "stage" => "pack",
        "unpack" | "unstage" => "unpack",
        "send" | "bsend" | "isend" | "recv" | "put" | "get" | "chunk" => "transfer",
        "fence" | "barrier" | "flush" => "sync",
        _ => "other",
    }
}

/// One step of the critical path: either a clipped slice of a traced
/// span, or an `idle` edge across an uncovered gap.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalEdge {
    /// Track (rank) the edge is attributed to. Idle edges are charged
    /// to the track of the operation that ends the wait.
    pub track: usize,
    /// Operation name (`"idle"` for gap edges).
    pub name: String,
    /// Phase bucket of [`CriticalEdge::name`] (see [`phase_of_name`]).
    pub phase: &'static str,
    /// Edge start (bit-identical to the previous edge's end).
    pub t_start: f64,
    /// Edge end (bit-identical to the next edge's start).
    pub t_end: f64,
    /// Payload bytes of the underlying span (0 for idle edges).
    pub bytes: usize,
    /// Chunk sequence number, when the underlying span has one.
    pub seq: Option<u32>,
    /// True for gap edges no span covers.
    pub idle: bool,
}

impl CriticalEdge {
    /// Edge width in seconds.
    pub fn width(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// The critical path of a traced run: edges tiling `[t_begin, t_end]`.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalPath {
    /// Edges in time order; consecutive boundaries are bit-identical.
    pub edges: Vec<CriticalEdge>,
    /// First event start in the trace.
    pub t_begin: f64,
    /// Last event end in the trace.
    pub t_end: f64,
}

impl CriticalPath {
    /// Virtual elapsed time the path spans.
    pub fn elapsed(&self) -> f64 {
        self.t_end - self.t_begin
    }

    /// Total width of all edges. Verifies that consecutive edge
    /// boundaries are **bit-identical** and tile `[t_begin, t_end]`;
    /// when they do, the float sum telescopes exactly, so this returns
    /// `t_end - t_begin` and is bit-equal to [`CriticalPath::elapsed`].
    /// If the tiling is ever broken (a bug), the naive float sum is
    /// returned instead so the discrepancy is observable.
    pub fn edge_sum(&self) -> f64 {
        let mut t = self.t_begin;
        for e in &self.edges {
            if e.t_start.to_bits() != t.to_bits() {
                return self.edges.iter().map(CriticalEdge::width).sum();
            }
            t = e.t_end;
        }
        if t.to_bits() != self.t_end.to_bits() {
            return self.edges.iter().map(CriticalEdge::width).sum();
        }
        self.t_end - self.t_begin
    }

    /// Busy (non-idle) seconds attributed to each track, sorted by
    /// track index.
    pub fn by_track(&self) -> Vec<(usize, f64)> {
        let mut acc: Vec<(usize, f64)> = Vec::new();
        for e in self.edges.iter().filter(|e| !e.idle) {
            match acc.iter_mut().find(|(t, _)| *t == e.track) {
                Some((_, s)) => *s += e.width(),
                None => acc.push((e.track, e.width())),
            }
        }
        acc.sort_by_key(|&(t, _)| t);
        acc
    }

    /// Seconds attributed to each phase bucket (idle edges bucket as
    /// `"idle"`), in first-seen order.
    pub fn by_phase(&self) -> Vec<(&'static str, f64)> {
        let mut acc: Vec<(&'static str, f64)> = Vec::new();
        for e in &self.edges {
            let key = if e.idle { "idle" } else { e.phase };
            match acc.iter_mut().find(|(p, _)| *p == key) {
                Some((_, s)) => *s += e.width(),
                None => acc.push((key, e.width())),
            }
        }
        acc
    }

    /// Total idle (uncovered-gap) seconds on the path.
    pub fn idle_total(&self) -> f64 {
        // + 0.0 normalizes the empty sum, which folds from -0.0.
        self.edges.iter().filter(|e| e.idle).map(CriticalEdge::width).sum::<f64>() + 0.0
    }

    /// Serialize as a standalone JSON document (hand-rolled; this
    /// crate is dependency-free).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema_version\": 1,\n");
        let _ = writeln!(out, "  \"t_begin\": {},", jnum(self.t_begin));
        let _ = writeln!(out, "  \"t_end\": {},", jnum(self.t_end));
        let _ = writeln!(out, "  \"elapsed_s\": {},", jnum(self.elapsed()));
        let _ = writeln!(out, "  \"edge_sum_s\": {},", jnum(self.edge_sum()));
        let _ = writeln!(out, "  \"idle_s\": {},", jnum(self.idle_total()));
        out.push_str("  \"by_track\": [");
        for (i, (track, s)) in self.by_track().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"track\": {track}, \"busy_s\": {}}}", jnum(*s));
        }
        out.push_str("],\n  \"by_phase\": [");
        for (i, (phase, s)) in self.by_phase().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"phase\": \"{phase}\", \"seconds\": {}}}", jnum(*s));
        }
        out.push_str("],\n  \"edges\": [\n");
        for (i, e) in self.edges.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"track\": {}, \"name\": \"{}\", \"phase\": \"{}\", \"t_start\": {}, \"t_end\": {}, \"bytes\": {}, \"idle\": {}",
                e.track,
                e.name,
                e.phase,
                jnum(e.t_start),
                jnum(e.t_end),
                e.bytes,
                e.idle
            );
            if let Some(q) = e.seq {
                let _ = write!(out, ", \"seq\": {q}");
            }
            out.push('}');
            out.push_str(if i + 1 < self.edges.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Format an `f64` as a JSON number (shortest round-trip decimal);
/// non-finite values become `null`.
fn jnum(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Compute the virtual-time critical path of a trace (see the module
/// docs for the backward-sweep construction). Returns `None` when no
/// positive-width span exists — zero-width markers alone carry no
/// duration to attribute.
pub fn critical_path(spans: &[Span]) -> Option<CriticalPath> {
    if !spans.iter().any(|s| s.t_end > s.t_start) {
        return None;
    }
    // Bounds cover *all* events, zero-width markers included, so the
    // path width is bit-comparable with the run's traced elapsed time.
    let t_begin = spans.iter().map(|s| s.t_start).fold(f64::INFINITY, f64::min);
    let t_end = spans.iter().map(|s| s.t_end).fold(f64::NEG_INFINITY, f64::max);

    let mut edges: Vec<CriticalEdge> = Vec::new();
    let mut t = t_end;
    while t > t_begin {
        // Covering span at time t (t_start < t <= t_end), innermost
        // (latest start) wins; zero-width markers never cover anything.
        let best = spans
            .iter()
            .filter(|s| s.t_end > s.t_start && s.t_start < t && s.t_end >= t)
            .max_by(|a, b| a.t_start.total_cmp(&b.t_start));
        match best {
            Some(s) => {
                edges.push(CriticalEdge {
                    track: s.track,
                    name: s.name.clone(),
                    phase: phase_of_name(&s.name),
                    t_start: s.t_start,
                    t_end: t,
                    bytes: s.bytes,
                    seq: s.seq,
                    idle: false,
                });
                t = s.t_start;
            }
            None => {
                // Uncovered gap: idle back to the latest span end
                // strictly below t (or the trace start). Charge the
                // wait to whichever track resumes work at t.
                let prev = spans
                    .iter()
                    .filter(|s| s.t_end > s.t_start && s.t_end < t)
                    .map(|s| s.t_end)
                    .fold(f64::NEG_INFINITY, f64::max);
                let lo = if prev > t_begin { prev } else { t_begin };
                let track = edges.last().map(|e| e.track).unwrap_or(0);
                edges.push(CriticalEdge {
                    track,
                    name: "idle".into(),
                    phase: "idle",
                    t_start: lo,
                    t_end: t,
                    bytes: 0,
                    seq: None,
                    idle: true,
                });
                t = lo;
            }
        }
    }
    edges.reverse();
    Some(CriticalPath { edges, t_begin, t_end })
}

/// Pipeline overlap and bubble accounting for one chunked transfer's
/// receiver, derived from ring-depth occupancy plus the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Receiver track (rank) the report describes.
    pub receiver: usize,
    /// Number of chunk drains observed on the receiver.
    pub chunks: usize,
    /// Chunk-ring capacity the occupancy is normalized against.
    pub ring_capacity: u32,
    /// Mean drain depth (1 = receiver always caught the sender).
    pub mean_depth: f64,
    /// `(mean_depth - 1) / (ring_capacity - 1)`: 0 = no overlap, 1 =
    /// ring fully primed at every drain. The final drain of a transfer
    /// always lands at depth 1, so this is structurally `< 1`.
    pub overlap_efficiency: f64,
    /// Fraction of drains at depth >= 2 (sender was ahead).
    pub primed_fraction: f64,
    /// Start of the receiver's traced window.
    pub receiver_t_start: f64,
    /// End of the receiver's traced window.
    pub receiver_t_end: f64,
    /// Width of the receiver's traced window.
    pub receiver_elapsed_s: f64,
    /// Critical-path busy (non-idle) time clipped to the receiver
    /// window, across all tracks.
    pub busy_on_path_s: f64,
    /// The receiver's own share of the critical path within its
    /// window: non-idle clipped edges on the receiver track.
    pub critical_on_receiver_s: f64,
    /// Bubble time: `receiver_elapsed_s - critical_on_receiver_s` —
    /// every moment of the window where the receiver was *not* the
    /// operation driving progress (waiting on the sender, on sync, or
    /// on nothing at all). Exact when [`PipelineReport::tiling_exact`]
    /// holds — the clipped edges tile the window with bit-identical
    /// boundaries, so receiver-share + bubble partitions the
    /// receiver's elapsed time with no float slop.
    pub bubble_s: f64,
    /// The part of the bubble where the critical path ran pack or
    /// transfer work on *another* track — time the receiver was
    /// constrained by the sender side of the chunk ring (ring stall).
    /// Sync work (cache flushes, barriers) is a bubble but not a
    /// stall.
    pub ring_stall_s: f64,
    /// True when the critical-path edges clipped to the receiver
    /// window still form a bit-exact tiling of it.
    pub tiling_exact: bool,
    /// Bytes re-copied through the receiver's carry buffer (chunk
    /// boundaries that split a contiguous run).
    pub carry_bytes: usize,
    /// Carry dead time priced at the roofline copy bandwidth
    /// (`carry_bytes / copy_bw`), when a bandwidth was supplied.
    pub carry_dead_s: Option<f64>,
}

impl PipelineReport {
    /// Serialize as a JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema_version\": 1,\n");
        let _ = writeln!(out, "  \"receiver\": {},", self.receiver);
        let _ = writeln!(out, "  \"chunks\": {},", self.chunks);
        let _ = writeln!(out, "  \"ring_capacity\": {},", self.ring_capacity);
        let _ = writeln!(out, "  \"mean_depth\": {},", jnum(self.mean_depth));
        let _ = writeln!(out, "  \"overlap_efficiency\": {},", jnum(self.overlap_efficiency));
        let _ = writeln!(out, "  \"primed_fraction\": {},", jnum(self.primed_fraction));
        let _ = writeln!(out, "  \"receiver_t_start\": {},", jnum(self.receiver_t_start));
        let _ = writeln!(out, "  \"receiver_t_end\": {},", jnum(self.receiver_t_end));
        let _ = writeln!(out, "  \"receiver_elapsed_s\": {},", jnum(self.receiver_elapsed_s));
        let _ = writeln!(out, "  \"busy_on_path_s\": {},", jnum(self.busy_on_path_s));
        let _ = writeln!(
            out,
            "  \"critical_on_receiver_s\": {},",
            jnum(self.critical_on_receiver_s)
        );
        let _ = writeln!(out, "  \"bubble_s\": {},", jnum(self.bubble_s));
        let _ = writeln!(out, "  \"ring_stall_s\": {},", jnum(self.ring_stall_s));
        let _ = writeln!(out, "  \"tiling_exact\": {},", self.tiling_exact);
        let _ = writeln!(out, "  \"carry_bytes\": {},", self.carry_bytes);
        let _ = write!(
            out,
            "  \"carry_dead_s\": {}\n}}",
            self.carry_dead_s.map(jnum).unwrap_or_else(|| "null".into())
        );
        out
    }
}

/// Build a [`PipelineReport`] for `receiver`'s chunk drains.
///
/// Chunk drains are the zero-width `chunk` markers on the receiver
/// track; their `depth` field is the ring occupancy sampled at the
/// drain. Carry traffic is the zero-width `copy` markers the receiver
/// emits when a chunk boundary splits a contiguous run. Returns `None`
/// when the receiver drained no chunks (unchunked transfer) or
/// recorded no window.
pub fn pipeline_report(
    spans: &[Span],
    path: &CriticalPath,
    receiver: usize,
    ring_capacity: u32,
    copy_bw: Option<f64>,
) -> Option<PipelineReport> {
    let drains: Vec<&Span> = spans
        .iter()
        .filter(|s| s.track == receiver && s.name == "chunk" && s.depth.is_some())
        .collect();
    if drains.is_empty() {
        return None;
    }

    let r0 = spans
        .iter()
        .filter(|s| s.track == receiver)
        .map(|s| s.t_start)
        .fold(f64::INFINITY, f64::min);
    let r1 = spans
        .iter()
        .filter(|s| s.track == receiver)
        .map(|s| s.t_end)
        .fold(f64::NEG_INFINITY, f64::max);
    if r0 >= r1 {
        return None;
    }

    let depths: Vec<f64> = drains.iter().map(|s| f64::from(s.depth.unwrap())).collect();
    let mean_depth = depths.iter().sum::<f64>() / depths.len() as f64;
    let overlap_efficiency = if ring_capacity > 1 {
        (mean_depth - 1.0) / f64::from(ring_capacity - 1)
    } else {
        0.0
    };
    let primed = depths.iter().filter(|&&d| d >= 2.0).count();

    // Clip the critical path to the receiver window. The global edges
    // tile [t_begin, t_end] with bit-identical boundaries, so the
    // clipped pieces tile [r0, r1] the same way; verify anyway.
    let mut busy = 0.0;
    let mut on_receiver = 0.0;
    let mut stall = 0.0;
    let mut cursor = r0;
    let mut tiling_exact = true;
    for e in &path.edges {
        let a = e.t_start.max(r0);
        let b = e.t_end.min(r1);
        if a >= b {
            continue;
        }
        if a.to_bits() != cursor.to_bits() {
            tiling_exact = false;
        }
        cursor = b;
        if !e.idle {
            busy += b - a;
            if e.track == receiver {
                on_receiver += b - a;
            } else if matches!(e.phase, "pack" | "transfer") {
                stall += b - a;
            }
        }
    }
    if cursor.to_bits() != r1.to_bits() {
        tiling_exact = false;
    }

    let carry_bytes: usize = spans
        .iter()
        .filter(|s| {
            s.track == receiver && s.name == "copy" && s.seq.is_some() && s.t_end == s.t_start
        })
        .map(|s| s.bytes)
        .sum();
    let carry_dead_s = copy_bw.filter(|&bw| bw > 0.0).map(|bw| carry_bytes as f64 / bw);

    Some(PipelineReport {
        receiver,
        chunks: drains.len(),
        ring_capacity,
        mean_depth,
        overlap_efficiency,
        primed_fraction: primed as f64 / depths.len() as f64,
        receiver_t_start: r0,
        receiver_t_end: r1,
        receiver_elapsed_s: r1 - r0,
        busy_on_path_s: busy,
        critical_on_receiver_s: on_receiver,
        bubble_s: (r1 - r0) - on_receiver,
        ring_stall_s: stall,
        tiling_exact,
        carry_bytes,
        carry_dead_s,
    })
}

/// Merged busy time per track (union of positive-width spans).
fn busy_union_by_track(spans: &[Span], ntracks: usize) -> Vec<f64> {
    let mut busy = vec![0.0; ntracks];
    for (track, slot) in busy.iter_mut().enumerate() {
        let mut ivals: Vec<(f64, f64)> = spans
            .iter()
            .filter(|s| s.track == track && s.t_end > s.t_start)
            .map(|s| (s.t_start, s.t_end))
            .collect();
        ivals.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut end = f64::NEG_INFINITY;
        for (a, b) in ivals {
            if a > end {
                *slot += b - a;
                end = b;
            } else if b > end {
                *slot += b - end;
                end = b;
            }
        }
    }
    busy
}

fn fill_color(phase: &str) -> &'static str {
    match phase {
        "pack" => "#e6a23c",
        "unpack" => "#8e7cc3",
        "transfer" => "#4a90d9",
        "sync" => "#9aa0a6",
        _ => "#7ab87a",
    }
}

/// Render a gantt chart as SVG: one row per track with phase-colored
/// span rects, the critical path overlaid as a red baseline (solid on
/// busy edges, dotted across idle gaps), and a per-track bubble%
/// column (share of the traced window the track spent doing nothing).
pub fn gantt_svg(spans: &[Span], path: &CriticalPath, track_names: &[String]) -> String {
    let ntracks = spans.iter().map(|s| s.track).max().map_or(0, |t| t + 1);
    let (t0, t1) = (path.t_begin, path.t_end);
    let range = t1 - t0;
    if ntracks == 0 || range <= 0.0 || range.is_nan() {
        return "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"200\" height=\"40\">\
                <text x=\"10\" y=\"25\" font-size=\"12\">empty trace</text></svg>\n"
            .into();
    }
    let (left, plot_w, col_w, row_h, pad) = (110.0, 760.0, 90.0, 26.0, 8.0);
    let width = left + plot_w + col_w + pad;
    let height = pad * 2.0 + row_h * (ntracks as f64 + 1.0) + 18.0;
    let x = |t: f64| left + (t - t0) / range * plot_w;

    let busy = busy_union_by_track(spans, ntracks);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width:.0}\" height=\"{height:.0}\" \
         font-family=\"monospace\" font-size=\"11\">"
    );
    let _ = writeln!(out, "<rect width=\"{width:.0}\" height=\"{height:.0}\" fill=\"white\"/>");
    for (track, &track_busy) in busy.iter().enumerate() {
        let y = pad + row_h * track as f64;
        let fallback = format!("track {track}");
        let name = track_names.get(track).map(String::as_str).unwrap_or(&fallback);
        let _ = writeln!(
            out,
            "<text x=\"6\" y=\"{:.1}\">{}</text>",
            y + row_h * 0.65,
            name
        );
        let _ = writeln!(
            out,
            "<rect x=\"{left}\" y=\"{y:.1}\" width=\"{plot_w}\" height=\"{:.1}\" \
             fill=\"#f4f4f4\"/>",
            row_h - 4.0
        );
        for s in spans.iter().filter(|s| s.track == track && s.t_end > s.t_start) {
            let (xa, xb) = (x(s.t_start), x(s.t_end));
            let _ = writeln!(
                out,
                "<rect x=\"{xa:.2}\" y=\"{:.1}\" width=\"{:.2}\" height=\"{:.1}\" \
                 fill=\"{}\" fill-opacity=\"0.85\"><title>{} [{:.3e}s, {:.3e}s) {} B</title></rect>",
                y + 1.0,
                (xb - xa).max(0.75),
                row_h - 6.0,
                fill_color(phase_of_name(&s.name)),
                s.name,
                s.t_start,
                s.t_end,
                s.bytes
            );
        }
        let bubble_pct = 100.0 * (1.0 - track_busy / range);
        let _ = writeln!(
            out,
            "<text x=\"{:.1}\" y=\"{:.1}\">{:5.1}% bubble</text>",
            left + plot_w + 6.0,
            y + row_h * 0.65,
            bubble_pct
        );
    }
    // Critical-path baseline, per edge on its owning track's row.
    for e in &path.edges {
        let y = pad + row_h * e.track as f64 + row_h - 3.5;
        let dash = if e.idle { " stroke-dasharray=\"2,3\"" } else { "" };
        let _ = writeln!(
            out,
            "<line x1=\"{:.2}\" y1=\"{y:.1}\" x2=\"{:.2}\" y2=\"{y:.1}\" \
             stroke=\"#d0342c\" stroke-width=\"2.5\"{dash}/>",
            x(e.t_start),
            x(e.t_end)
        );
    }
    let axis_y = pad + row_h * ntracks as f64 + 12.0;
    let _ = writeln!(out, "<text x=\"{left}\" y=\"{axis_y:.1}\">{:.3e} s</text>", t0);
    let _ = writeln!(
        out,
        "<text x=\"{:.1}\" y=\"{axis_y:.1}\" text-anchor=\"end\">{:.3e} s</text>",
        left + plot_w,
        t1
    );
    let _ = writeln!(
        out,
        "<text x=\"{left}\" y=\"{:.1}\" fill=\"#d0342c\">critical path (dotted = idle)</text>",
        axis_y + 14.0
    );
    out.push_str("</svg>\n");
    out
}

/// Render a gantt chart as ASCII: one row per track (first letter of
/// the innermost covering span per cell), a `crit` row marking busy
/// (`=`) and idle (`.`) critical-path edges, and a bubble% column.
pub fn gantt_ascii(spans: &[Span], path: &CriticalPath, width: usize) -> String {
    let width = width.max(20);
    let ntracks = spans.iter().map(|s| s.track).max().map_or(0, |t| t + 1);
    let (t0, t1) = (path.t_begin, path.t_end);
    let range = t1 - t0;
    if ntracks == 0 || range <= 0.0 || range.is_nan() {
        return "empty trace\n".into();
    }
    let cell_of = |t: f64| (((t - t0) / range) * (width - 1) as f64).floor() as usize;

    let mut rows = vec![vec![(f64::NEG_INFINITY, ' '); width]; ntracks];
    let mut ordered: Vec<&Span> = spans.iter().filter(|s| s.t_end > s.t_start).collect();
    ordered.sort_by(|a, b| a.t_start.total_cmp(&b.t_start));
    for s in ordered {
        let glyph = s.name.chars().next().unwrap_or('?');
        let (a, b) = (cell_of(s.t_start), cell_of(s.t_end).min(width - 1));
        for cell in rows[s.track].iter_mut().take(b + 1).skip(a) {
            if s.t_start >= cell.0 {
                *cell = (s.t_start, glyph);
            }
        }
    }

    let busy = busy_union_by_track(spans, ntracks);
    let mut out = String::new();
    for (track, row) in rows.iter().enumerate() {
        let _ = write!(out, "rank {track:>2} |");
        out.extend(row.iter().map(|&(_, g)| g));
        let _ = writeln!(out, "| {:5.1}% bubble", 100.0 * (1.0 - busy[track] / range));
    }
    let mut crit = vec![' '; width];
    for e in &path.edges {
        let (a, b) = (cell_of(e.t_start), cell_of(e.t_end).min(width - 1));
        let glyph = if e.idle { '.' } else { '=' };
        for c in crit.iter_mut().take(b + 1).skip(a) {
            *c = glyph;
        }
    }
    out.push_str("crit    |");
    out.extend(crit);
    let _ = writeln!(out, "|");
    let _ = writeln!(
        out,
        "        {:.3e} s .. {:.3e} s  ('=' on critical path, '.' idle)",
        t0, t1
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: usize, name: &str, a: f64, b: f64) -> Span {
        Span {
            track,
            name: name.into(),
            t_start: a,
            t_end: b,
            bytes: 100,
            peer: None,
            tag: None,
            seq: None,
            depth: None,
        }
    }

    fn drain(track: usize, t: f64, seq: u32, depth: u32) -> Span {
        Span {
            track,
            name: "chunk".into(),
            t_start: t,
            t_end: t,
            bytes: 4096,
            peer: None,
            tag: Some(1),
            seq: Some(seq),
            depth: Some(depth),
        }
    }

    #[test]
    fn critical_path_tiles_with_gap() {
        let spans = vec![
            span(0, "pack", 0.0, 1.0),
            span(0, "send", 1.0, 3.0),
            span(1, "unpack", 4.0, 6.0),
        ];
        let p = critical_path(&spans).unwrap();
        assert_eq!(p.edges.len(), 4);
        assert_eq!(p.edges[0].name, "pack");
        assert_eq!(p.edges[1].name, "send");
        assert!(p.edges[2].idle);
        // The idle wait before unpack is charged to the resuming track.
        assert_eq!(p.edges[2].track, 1);
        assert_eq!(p.edges[3].name, "unpack");
        assert_eq!(p.edge_sum().to_bits(), p.elapsed().to_bits());
        assert_eq!(p.idle_total(), 1.0);
        assert_eq!(p.by_track(), vec![(0, 3.0), (1, 2.0)]);
    }

    #[test]
    fn critical_path_clips_overlap_to_latest_start() {
        // recv spans the whole run; the inner send owns [8, 12].
        let spans = vec![span(0, "recv", 0.0, 10.0), span(1, "send", 8.0, 12.0)];
        let p = critical_path(&spans).unwrap();
        assert_eq!(p.edges.len(), 2);
        assert_eq!(p.edges[0].name, "recv");
        assert_eq!(p.edges[0].t_end, 8.0);
        assert_eq!(p.edges[1].name, "send");
        assert_eq!(p.edge_sum().to_bits(), p.elapsed().to_bits());
    }

    #[test]
    fn edge_sum_is_bit_exact_on_awkward_floats() {
        // Boundaries that would NOT telescope under naive float
        // summation of widths.
        let a = 0.1;
        let b = 0.2;
        let c = 0.30000000000000004; // 0.1 + 0.2 in f64
        let spans = vec![span(0, "pack", 0.0, a), span(0, "send", a, b), span(1, "recv", b, c)];
        let p = critical_path(&spans).unwrap();
        assert_eq!(p.edge_sum().to_bits(), (c - 0.0).to_bits());
        assert_eq!(p.edge_sum().to_bits(), p.elapsed().to_bits());
    }

    #[test]
    fn no_positive_width_means_no_path() {
        assert!(critical_path(&[]).is_none());
        assert!(critical_path(&[drain(0, 1.0, 0, 1)]).is_none());
    }

    #[test]
    fn pipeline_report_from_ring_depths() {
        let mut spans = vec![
            span(0, "stage", 0.0, 4.0),
            span(1, "recv", 0.0, 1.0),
            span(1, "unstage", 4.0, 6.0),
        ];
        // Drains at depths 2, 2, 1 on a capacity-2 ring.
        spans.push(drain(1, 4.0, 0, 2));
        spans.push(drain(1, 4.0, 1, 2));
        spans.push(drain(1, 4.0, 2, 1));
        // One carry copy of 512 bytes.
        let mut carry = span(1, "copy", 4.0, 4.0);
        carry.seq = Some(1);
        carry.bytes = 512;
        spans.push(carry);

        let p = critical_path(&spans).unwrap();
        let r = pipeline_report(&spans, &p, 1, 2, Some(1024.0)).unwrap();
        assert_eq!(r.chunks, 3);
        assert!((r.mean_depth - 5.0 / 3.0).abs() < 1e-12);
        assert!((r.overlap_efficiency - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.primed_fraction - 2.0 / 3.0).abs() < 1e-12);
        assert!(r.overlap_efficiency > 0.0 && r.overlap_efficiency < 1.0);
        assert!(r.tiling_exact);
        // Receiver window is [0, 6]; the receiver's critical share +
        // bubbles partitions it.
        assert_eq!(r.receiver_elapsed_s, 6.0);
        assert_eq!(
            (r.critical_on_receiver_s + r.bubble_s).to_bits(),
            6.0f64.to_bits()
        );
        // Stage on track 0 owns [0, 4] of the path (the backward sweep
        // jumps from t=4 to stage's start, never cutting at recv's end)
        // => ring stall 4, receiver share = unstage's [4, 6] = 2,
        // bubble = 6 - 2 = 4.
        assert!((r.ring_stall_s - 4.0).abs() < 1e-12);
        assert!((r.critical_on_receiver_s - 2.0).abs() < 1e-12);
        assert!((r.bubble_s - 4.0).abs() < 1e-12);
        assert_eq!(r.carry_bytes, 512);
        assert!((r.carry_dead_s.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pipeline_report_none_without_drains() {
        let spans = vec![span(0, "send", 0.0, 1.0), span(1, "recv", 0.0, 1.0)];
        let p = critical_path(&spans).unwrap();
        assert!(pipeline_report(&spans, &p, 1, 2, None).is_none());
    }

    #[test]
    fn json_and_gantt_render() {
        let spans = vec![
            span(0, "pack", 0.0, 1.0),
            span(0, "send", 1.0, 3.0),
            span(1, "recv", 3.0, 5.0),
            drain(1, 3.0, 0, 2),
        ];
        let p = critical_path(&spans).unwrap();
        let j = p.to_json();
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"edges\""));
        assert_eq!(j.matches('{').count(), j.matches('}').count());

        let names = vec!["rank 0".into(), "rank 1".into()];
        let svg = gantt_svg(&spans, &p, &names);
        assert!(svg.contains("<svg"));
        assert!(svg.contains("bubble"));
        assert!(svg.contains("rank 1"));

        let art = gantt_ascii(&spans, &p, 60);
        assert!(art.contains("crit"));
        assert!(art.contains("% bubble"));
        assert!(art.contains('='));
    }

    #[test]
    fn gantt_empty_graceful() {
        let p = CriticalPath { edges: vec![], t_begin: 0.0, t_end: 0.0 };
        assert!(gantt_svg(&[], &p, &[]).contains("empty trace"));
        assert_eq!(gantt_ascii(&[], &p, 40), "empty trace\n");
    }
}
