//! # nonctg-report — result recording and rendering
//!
//! CSV table views, aligned terminal tables, ASCII log-log plots, and
//! static SVG figures in the paper's three-panel layout (time, bandwidth,
//! slowdown). The SVG marks follow a validated categorical palette with a
//! fixed scheme→color assignment; every figure is emitted next to its CSV
//! table view.

#![warn(missing_docs)]

pub mod analysis;
pub mod asciiplot;
pub mod csv;
pub mod heatmap;
pub mod html;
mod series;
mod svg;
mod table;
pub mod traceviz;

pub use analysis::{
    critical_path, gantt_ascii, gantt_svg, phase_of_name, pipeline_report, CriticalEdge,
    CriticalPath, PipelineReport,
};
pub use series::{PlotSpec, Scale, Series, GLYPHS, PALETTE};
pub use traceviz::{ascii_spans, chrome_trace_json, Span};
pub use svg::{legend_group, panel_group, render_figure, render_svg, PanelGeom};
pub use table::{fmt_bytes, fmt_gbps, fmt_time, Table};
