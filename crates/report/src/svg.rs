//! Static SVG line charts in the style of the paper's figures.
//!
//! Marks follow the data-viz spec: 2px lines, recessive grid and axes,
//! text in ink tokens (never the series color), a full legend for the
//! eight series. Each figure is written alongside its CSV table view,
//! which is the accessibility relief for the lighter palette slots.

use std::fmt::Write as _;

use crate::series::{bounds, unit, PlotSpec, Scale, Series};

const SURFACE: &str = "#fcfcfb";
const INK: &str = "#0b0b0b";
const INK2: &str = "#52514e";
const GRID: &str = "#ececea";

/// Pixel geometry of one panel.
#[derive(Debug, Clone, Copy)]
pub struct PanelGeom {
    /// Panel width in px (plot area plus margins).
    pub width: f64,
    /// Panel height in px.
    pub height: f64,
}

impl Default for PanelGeom {
    fn default() -> Self {
        PanelGeom { width: 420.0, height: 360.0 }
    }
}

const ML: f64 = 58.0; // left margin
const MR: f64 = 14.0;
const MT: f64 = 30.0;
const MB: f64 = 46.0;

/// Log-decade tick positions covering `[lo, hi]`.
fn log_ticks(lo: f64, hi: f64) -> Vec<f64> {
    let mut out = Vec::new();
    if lo <= 0.0 || hi <= 0.0 {
        return out;
    }
    let a = lo.log10().floor() as i32;
    let b = hi.log10().ceil() as i32;
    for e in a..=b {
        let v = 10f64.powi(e);
        if v >= lo * 0.999 && v <= hi * 1.001 {
            out.push(v);
        }
    }
    out
}

/// Linear "nice" ticks.
fn lin_ticks(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if hi <= lo {
        return vec![lo];
    }
    let raw = (hi - lo) / n as f64;
    let mag = 10f64.powf(raw.log10().floor());
    let step = [1.0, 2.0, 2.5, 5.0, 10.0]
        .iter()
        .map(|m| m * mag)
        .find(|s| (hi - lo) / s <= n as f64)
        .unwrap_or(mag * 10.0);
    let mut out = Vec::new();
    let mut v = (lo / step).ceil() * step;
    while v <= hi * 1.0001 {
        out.push(v);
        v += step;
    }
    out
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        return "0".into();
    }
    let e = v.abs().log10();
    if (-2.0..4.0).contains(&e) {
        if v.fract().abs() < 1e-9 {
            format!("{}", v.round() as i64)
        } else {
            format!("{v}")
        }
    } else {
        format!("1e{}", e.round() as i32)
    }
}

/// Render one panel as an SVG `<g>` translated to `(ox, oy)`.
pub fn panel_group(
    spec: &PlotSpec,
    series: &[Series],
    geom: PanelGeom,
    ox: f64,
    oy: f64,
) -> String {
    let mut g = String::new();
    let _ = write!(g, r#"<g transform="translate({ox:.1},{oy:.1})">"#);
    let pw = geom.width - ML - MR;
    let ph = geom.height - MT - MB;

    let _ = write!(
        g,
        r#"<text x="{:.1}" y="18" fill="{INK}" font-size="13" font-weight="600" text-anchor="middle">{}</text>"#,
        ML + pw / 2.0,
        esc(&spec.title)
    );

    let Some((xmin, xmax, ymin, ymax)) = bounds(series, spec) else {
        let _ = write!(
            g,
            r#"<text x="{:.1}" y="{:.1}" fill="{INK2}" font-size="12" text-anchor="middle">no data</text></g>"#,
            ML + pw / 2.0,
            MT + ph / 2.0
        );
        return g;
    };
    // Pad linear y to start at zero for slowdown-style panels.
    let (ymin, ymax) = match spec.yscale {
        Scale::Linear => (0.0f64.min(ymin), ymax * 1.05),
        Scale::Log => (ymin, ymax),
    };

    let px = |x: f64| ML + unit(x, xmin, xmax, spec.xscale).clamp(0.0, 1.0) * pw;
    let py = |y: f64| MT + (1.0 - unit(y, ymin, ymax, spec.yscale).clamp(0.0, 1.0)) * ph;

    // Grid + ticks.
    let xticks = match spec.xscale {
        Scale::Log => log_ticks(xmin, xmax),
        Scale::Linear => lin_ticks(xmin, xmax, 6),
    };
    let yticks = match spec.yscale {
        Scale::Log => log_ticks(ymin, ymax),
        Scale::Linear => lin_ticks(ymin, ymax, 6),
    };
    for &t in &xticks {
        let x = px(t);
        let _ = write!(
            g,
            r#"<line x1="{x:.1}" y1="{MT}" x2="{x:.1}" y2="{:.1}" stroke="{GRID}" stroke-width="1"/>"#,
            MT + ph
        );
        let _ = write!(
            g,
            r#"<text x="{x:.1}" y="{:.1}" fill="{INK2}" font-size="10" text-anchor="middle">{}</text>"#,
            MT + ph + 14.0,
            fmt_tick(t)
        );
    }
    for &t in &yticks {
        let y = py(t);
        let _ = write!(
            g,
            r#"<line x1="{ML}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="{GRID}" stroke-width="1"/>"#,
            ML + pw
        );
        let _ = write!(
            g,
            r#"<text x="{:.1}" y="{:.1}" fill="{INK2}" font-size="10" text-anchor="end">{}</text>"#,
            ML - 5.0,
            y + 3.5,
            fmt_tick(t)
        );
    }
    // Axes.
    let _ = write!(
        g,
        r#"<rect x="{ML}" y="{MT}" width="{pw:.1}" height="{ph:.1}" fill="none" stroke="{INK2}" stroke-width="1"/>"#
    );
    // Axis labels.
    let _ = write!(
        g,
        r#"<text x="{:.1}" y="{:.1}" fill="{INK2}" font-size="11" text-anchor="middle">{}</text>"#,
        ML + pw / 2.0,
        MT + ph + 32.0,
        esc(&spec.xlabel)
    );
    let _ = write!(
        g,
        r#"<text x="14" y="{:.1}" fill="{INK2}" font-size="11" text-anchor="middle" transform="rotate(-90 14 {:.1})">{}</text>"#,
        MT + ph / 2.0,
        MT + ph / 2.0,
        esc(&spec.ylabel)
    );

    // Series lines.
    for s in series {
        let mut d = String::new();
        let mut first = true;
        for &(x, y) in &s.points {
            if (spec.xscale == Scale::Log && x <= 0.0) || (spec.yscale == Scale::Log && y <= 0.0) {
                continue;
            }
            let y = spec.ymax.map_or(y, |m| y.min(m));
            let _ = write!(d, "{}{:.1} {:.1}", if first { "M" } else { " L" }, px(x), py(y));
            first = false;
        }
        if d.is_empty() {
            continue;
        }
        let _ = write!(
            g,
            r#"<path d="{d}" fill="none" stroke="{}" stroke-width="2" stroke-linejoin="round"/>"#,
            s.color
        );
    }
    // Overlays: open circles on degraded measurements, × marks along the
    // bottom edge for points that failed outright.
    for s in series {
        for &(x, y) in &s.marked {
            if (spec.xscale == Scale::Log && x <= 0.0) || (spec.yscale == Scale::Log && y <= 0.0) {
                continue;
            }
            let y = spec.ymax.map_or(y, |m| y.min(m));
            let _ = write!(
                g,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3.5" fill="{SURFACE}" stroke="{}" stroke-width="1.5"/>"#,
                px(x),
                py(y),
                s.color
            );
        }
        // Engine-selection markers: open squares where the adaptive
        // selector chose the zero-copy iovec engine, open diamonds for
        // the elementwise engine (rect/polygon, never <path>, so curve
        // counting stays unambiguous).
        for &(x, y) in &s.iov_marked {
            if (spec.xscale == Scale::Log && x <= 0.0) || (spec.yscale == Scale::Log && y <= 0.0) {
                continue;
            }
            let y = spec.ymax.map_or(y, |m| y.min(m));
            let _ = write!(
                g,
                r#"<rect x="{:.1}" y="{:.1}" width="6" height="6" fill="{SURFACE}" stroke="{}" stroke-width="1.5" class="selected-iov"/>"#,
                px(x) - 3.0,
                py(y) - 3.0,
                s.color
            );
        }
        for &(x, y) in &s.elem_marked {
            if (spec.xscale == Scale::Log && x <= 0.0) || (spec.yscale == Scale::Log && y <= 0.0) {
                continue;
            }
            let y = spec.ymax.map_or(y, |m| y.min(m));
            let (cx, cy) = (px(x), py(y));
            let _ = write!(
                g,
                r#"<polygon points="{:.1},{:.1} {:.1},{:.1} {:.1},{:.1} {:.1},{:.1}" fill="{SURFACE}" stroke="{}" stroke-width="1.5" class="selected-elem"/>"#,
                cx,
                cy - 4.0,
                cx + 4.0,
                cy,
                cx,
                cy + 4.0,
                cx - 4.0,
                cy,
                s.color
            );
        }
        for &x in &s.failed_x {
            if spec.xscale == Scale::Log && x <= 0.0 {
                continue;
            }
            let (cx, cy) = (px(x), MT + ph - 6.0);
            let _ = write!(
                g,
                r#"<path d="M{:.1} {:.1} L{:.1} {:.1} M{:.1} {:.1} L{:.1} {:.1}" stroke="{}" stroke-width="1.5" class="failed-mark"/>"#,
                cx - 3.0,
                cy - 3.0,
                cx + 3.0,
                cy + 3.0,
                cx - 3.0,
                cy + 3.0,
                cx + 3.0,
                cy - 3.0,
                s.color
            );
        }
    }
    g.push_str("</g>");
    g
}

/// Standalone legend group listing every series (text in ink; a colored
/// swatch carries identity).
pub fn legend_group(series: &[Series], ox: f64, oy: f64) -> String {
    let mut g = String::new();
    let _ = write!(g, r#"<g transform="translate({ox:.1},{oy:.1})">"#);
    for (i, s) in series.iter().enumerate() {
        let y = i as f64 * 18.0;
        let _ = write!(
            g,
            r#"<line x1="0" y1="{:.1}" x2="18" y2="{:.1}" stroke="{}" stroke-width="2.5"/>"#,
            y + 5.0,
            y + 5.0,
            s.color
        );
        let _ = write!(
            g,
            r#"<text x="24" y="{:.1}" fill="{INK}" font-size="11">{}</text>"#,
            y + 9.0,
            esc(&s.label)
        );
    }
    g.push_str("</g>");
    g
}

/// A complete single-panel SVG document.
pub fn render_svg(spec: &PlotSpec, series: &[Series], geom: PanelGeom) -> String {
    let legend_w = 110.0;
    let w = geom.width + legend_w;
    let h = geom.height;
    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}" font-family="system-ui, sans-serif"><rect width="100%" height="100%" fill="{SURFACE}"/>"#
    );
    out.push_str(&panel_group(spec, series, geom, 0.0, 0.0));
    out.push_str(&legend_group(series, geom.width + 6.0, MT));
    out.push_str("</svg>");
    out
}

/// A multi-panel figure (the paper's time / bandwidth / slowdown layout)
/// with one shared legend on the right.
pub fn render_figure(
    title: &str,
    panels: &[(PlotSpec, Vec<Series>)],
    geom: PanelGeom,
) -> String {
    let legend_w = 120.0;
    let w = geom.width * panels.len() as f64 + legend_w;
    let h = geom.height + 26.0;
    let mut out = String::new();
    let _ = write!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}" font-family="system-ui, sans-serif"><rect width="100%" height="100%" fill="{SURFACE}"/>"#
    );
    let _ = write!(
        out,
        r#"<text x="{:.1}" y="18" fill="{INK}" font-size="15" font-weight="700" text-anchor="middle">{}</text>"#,
        w / 2.0,
        esc(title)
    );
    for (i, (spec, series)) in panels.iter().enumerate() {
        out.push_str(&panel_group(spec, series, geom, i as f64 * geom.width, 26.0));
    }
    if let Some((_, series)) = panels.first() {
        out.push_str(&legend_group(series, geom.width * panels.len() as f64 + 8.0, 50.0));
    }
    out.push_str("</svg>");
    out
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Vec<Series> {
        vec![
            Series::new("reference", 0, (0..8).map(|i| (1e3 * 4f64.powi(i), 1e-6 * 2f64.powi(i))).collect()),
            Series::new("vector type", 3, (0..8).map(|i| (1e3 * 4f64.powi(i), 3e-6 * 2f64.powi(i))).collect()),
        ]
    }

    #[test]
    fn single_panel_is_valid_svgish() {
        let spec = PlotSpec::loglog("Time (sec)", "message bytes", "seconds");
        let svg = render_svg(&spec, &demo(), PanelGeom::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2);
        assert!(svg.contains("reference"));
        assert!(svg.contains("#2a78d6"));
        // balanced groups
        assert_eq!(svg.matches("<g ").count(), svg.matches("</g>").count());
    }

    #[test]
    fn figure_has_three_panels() {
        let mk = |t: &str| (PlotSpec::loglog(t, "bytes", "y"), demo());
        let svg = render_figure(
            "Packing on skx-impi",
            &[mk("Time (sec)"), mk("bwidth (Gb/s)"), mk("slowdown")],
            PanelGeom::default(),
        );
        assert!(svg.contains("Time (sec)"));
        assert!(svg.contains("bwidth"));
        assert!(svg.contains("slowdown"));
        assert_eq!(svg.matches("<path").count(), 6);
    }

    #[test]
    fn log_ticks_cover_decades() {
        assert_eq!(log_ticks(1e3, 1e6), vec![1e3, 1e4, 1e5, 1e6]);
        assert!(log_ticks(-1.0, 10.0).is_empty());
    }

    #[test]
    fn lin_ticks_reasonable() {
        let t = lin_ticks(0.0, 10.0, 6);
        assert!(t.contains(&0.0) && t.contains(&10.0));
        assert!(t.len() <= 7);
    }

    #[test]
    fn nonpositive_points_skipped_on_log() {
        let spec = PlotSpec::loglog("T", "x", "y");
        let s = vec![Series::new("a", 0, vec![(0.0, 1.0), (10.0, 1.0), (100.0, 2.0)])];
        let svg = render_svg(&spec, &s, PanelGeom::default());
        // Path must contain exactly two points (one M + one L).
        let path = svg.split("<path d=\"").nth(1).unwrap();
        let d = path.split('"').next().unwrap();
        assert_eq!(d.matches('L').count(), 1, "{d}");
    }

    #[test]
    fn escaping() {
        assert_eq!(esc("a<b&c"), "a&lt;b&amp;c");
    }

    /// Engine-selection markers use rect/polygon shapes — never <path>
    /// — so the per-panel curve count stays exactly one path per series.
    #[test]
    fn selector_markers_render_as_square_and_diamond() {
        let spec = PlotSpec::loglog("T", "x", "y");
        let s = vec![Series::new("a", 3, vec![(10.0, 1.0), (100.0, 2.0), (1000.0, 4.0)])
            .with_iov_marked(vec![(100.0, 2.0), (1000.0, 4.0)])
            .with_elem_marked(vec![(10.0, 1.0)])];
        let svg = render_svg(&spec, &s, PanelGeom::default());
        assert_eq!(svg.matches("selected-iov").count(), 2, "{svg}");
        assert_eq!(svg.matches("selected-elem").count(), 1);
        assert_eq!(svg.matches("<polygon").count(), 1);
        assert_eq!(svg.matches("<path").count(), 1, "markers must not add paths");
    }

    #[test]
    fn ymax_clamps_series() {
        let spec = PlotSpec::semilogx("s", "x", "slowdown", 10.0);
        let s = vec![Series::new("a", 0, vec![(1.0, 2.0), (10.0, 500.0)])];
        let svg = render_svg(&spec, &s, PanelGeom::default());
        assert!(svg.contains("<path"));
    }
}
