//! Static HTML report assembly: one self-contained page embedding SVG
//! figures and CSV-derived tables (the experiment suite's `site` binary).

use std::fmt::Write as _;

/// One section of the report.
#[derive(Debug, Clone)]
pub struct Section {
    /// Section heading.
    pub heading: String,
    /// Free-form explanatory paragraph (plain text; escaped).
    pub intro: String,
    /// Inline SVG documents to embed, in order.
    pub svgs: Vec<String>,
    /// Tables as (headers, rows).
    pub tables: Vec<(Vec<String>, Vec<Vec<String>>)>,
}

impl Section {
    /// An empty section with a heading and intro.
    pub fn new(heading: impl Into<String>, intro: impl Into<String>) -> Section {
        Section { heading: heading.into(), intro: intro.into(), svgs: Vec::new(), tables: Vec::new() }
    }
}

fn esc(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Render a complete standalone page.
pub fn render_page(title: &str, subtitle: &str, sections: &[Section]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        r#"<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{}</title>
<style>
  :root {{ color-scheme: light; }}
  body {{ font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 1500px;
         padding: 0 1rem; background: #fcfcfb; color: #0b0b0b; }}
  h1 {{ font-size: 1.5rem; }} h2 {{ font-size: 1.15rem; margin-top: 2.2rem; }}
  p.sub {{ color: #52514e; }}
  figure {{ margin: 1rem 0; overflow-x: auto; }}
  table {{ border-collapse: collapse; font-size: 0.85rem; margin: 0.8rem 0; }}
  th, td {{ padding: 0.25rem 0.7rem; text-align: right; border-bottom: 1px solid #ececea; }}
  th {{ color: #52514e; font-weight: 600; }}
  td:first-child, th:first-child {{ text-align: left; }}
</style></head><body>
<h1>{}</h1>
<p class="sub">{}</p>
"#,
        esc(title),
        esc(title),
        esc(subtitle)
    );
    for s in sections {
        let _ = write!(out, "<h2>{}</h2>\n<p class=\"sub\">{}</p>\n", esc(&s.heading), esc(&s.intro));
        for svg in &s.svgs {
            let _ = writeln!(out, "<figure>{svg}</figure>");
        }
        for (headers, rows) in &s.tables {
            out.push_str("<table><thead><tr>");
            for h in headers {
                let _ = write!(out, "<th>{}</th>", esc(h));
            }
            out.push_str("</tr></thead><tbody>\n");
            for row in rows {
                out.push_str("<tr>");
                for c in row {
                    let _ = write!(out, "<td>{}</td>", esc(c));
                }
                out.push_str("</tr>\n");
            }
            out.push_str("</tbody></table>\n");
        }
    }
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_embeds_svg_and_tables() {
        let mut s = Section::new("Figure 1", "time & bandwidth");
        s.svgs.push("<svg xmlns=\"http://www.w3.org/2000/svg\"></svg>".into());
        s.tables.push((
            vec!["scheme".into(), "slowdown".into()],
            vec![vec!["copying".into(), "3.1".into()]],
        ));
        let html = render_page("nonctg", "reproduction", &[s]);
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<svg"));
        assert!(html.contains("<td>copying</td>"));
        assert!(html.contains("Figure 1"));
    }

    #[test]
    fn text_is_escaped() {
        let s = Section::new("a<b", "x & y");
        let html = render_page("t<t", "s", &[s]);
        assert!(html.contains("a&lt;b"));
        assert!(html.contains("x &amp; y"));
        assert!(!html.contains("a<b"));
    }
}
