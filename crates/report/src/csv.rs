//! Minimal CSV writing (no external dependency): the table view that
//! accompanies every figure.

/// Build a CSV document from a header and rows, quoting where needed.
pub fn to_csv<S: AsRef<str>>(header: &[S], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str(
        &header.iter().map(|h| quote(h.as_ref())).collect::<Vec<_>>().join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

fn quote(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Parse a CSV document produced by [`to_csv`] (used in tests and by the
/// experiment-diff tooling). Handles quoted fields.
pub fn parse_csv(text: &str) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    let mut row: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut in_quotes = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    chars.next();
                    field.push('"');
                }
                '"' => in_quotes = false,
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    row.push(std::mem::take(&mut field));
                }
                '\n' => {
                    row.push(std::mem::take(&mut field));
                    rows.push(std::mem::take(&mut row));
                }
                '\r' => {}
                _ => field.push(c),
            }
        }
    }
    if !field.is_empty() || !row.is_empty() {
        row.push(field);
        rows.push(row);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let csv = to_csv(
            &["a", "b"],
            &[
                vec!["1".into(), "x".into()],
                vec!["2".into(), "y,z".into()],
            ],
        );
        let rows = parse_csv(&csv);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec!["a", "b"]);
        assert_eq!(rows[2], vec!["2", "y,z"]);
    }

    #[test]
    fn quotes_escaped() {
        let csv = to_csv(&["v"], &[vec!["say \"hi\"".into()]]);
        assert!(csv.contains("\"say \"\"hi\"\"\""));
        let rows = parse_csv(&csv);
        assert_eq!(rows[1][0], "say \"hi\"");
    }

    #[test]
    fn newline_in_field() {
        let csv = to_csv(&["v"], &[vec!["a\nb".into()]]);
        let rows = parse_csv(&csv);
        assert_eq!(rows[1][0], "a\nb");
    }
}
