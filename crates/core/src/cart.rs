//! Cartesian process topologies (`MPI_Cart_create` and friends).
//!
//! A [`CartTopology`] wraps a communicator with an n-dimensional grid
//! structure: rank ↔ coordinate conversion, neighbor shifts (with or
//! without periodic wraparound), and convenience halo-exchange addressing.
//! Row-major rank ordering, as MPI specifies.

use crate::comm::Comm;
use crate::error::{CoreError, Result};

/// A Cartesian view over the ranks of a communicator.
///
/// Pure addressing: it borrows no state from the `Comm` and is `Copy`-ish
/// cheap to clone; communication still goes through the `Comm` itself.
#[derive(Debug, Clone)]
pub struct CartTopology {
    dims: Vec<usize>,
    periodic: Vec<bool>,
    size: usize,
}

impl CartTopology {
    /// Build a topology over `dims` with per-dimension periodicity. The
    /// grid must exactly cover the communicator (`MPI_Cart_create` with
    /// `reorder = false` and no leftover ranks).
    pub fn new(comm: &Comm, dims: &[usize], periodic: &[bool]) -> Result<CartTopology> {
        if dims.is_empty() || dims.len() != periodic.len() {
            return Err(CoreError::Rma("cart: dims/periodic length mismatch"));
        }
        let cells: usize = dims.iter().product();
        if cells != comm.size() {
            return Err(CoreError::InvalidRank { rank: cells, size: comm.size() });
        }
        Ok(CartTopology { dims: dims.to_vec(), periodic: periodic.to_vec(), size: cells })
    }

    /// Suggest a near-square factorization of `nranks` over `ndims`
    /// dimensions (`MPI_Dims_create`).
    pub fn dims_create(nranks: usize, ndims: usize) -> Vec<usize> {
        assert!(ndims >= 1);
        let mut dims = vec![1usize; ndims];
        let mut n = nranks;
        // Repeatedly peel the smallest prime factor onto the smallest dim.
        let mut factor = 2;
        let mut factors = Vec::new();
        while n > 1 {
            while n.is_multiple_of(factor) {
                factors.push(factor);
                n /= factor;
            }
            factor += 1;
            if factor * factor > n && n > 1 {
                factors.push(n);
                break;
            }
        }
        // Assign largest factors first to the currently-smallest dimension.
        factors.sort_unstable_by(|a, b| b.cmp(a));
        for f in factors {
            let i = (0..ndims).min_by_key(|&i| dims[i]).unwrap();
            dims[i] *= f;
        }
        dims.sort_unstable_by(|a, b| b.cmp(a));
        dims
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Grid extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Coordinates of `rank` (`MPI_Cart_coords`).
    pub fn coords(&self, rank: usize) -> Result<Vec<usize>> {
        if rank >= self.size {
            return Err(CoreError::InvalidRank { rank, size: self.size });
        }
        let mut c = vec![0usize; self.dims.len()];
        let mut rem = rank;
        for d in (0..self.dims.len()).rev() {
            c[d] = rem % self.dims[d];
            rem /= self.dims[d];
        }
        Ok(c)
    }

    /// Rank at `coords` (`MPI_Cart_rank`), with periodic wrapping where
    /// enabled. Out-of-range coordinates in non-periodic dimensions error.
    pub fn rank_of(&self, coords: &[i64]) -> Result<usize> {
        if coords.len() != self.dims.len() {
            return Err(CoreError::Rma("cart: coordinate dimension mismatch"));
        }
        let mut rank = 0usize;
        for ((&dim, &periodic), &coord) in
            self.dims.iter().zip(self.periodic.iter()).zip(coords.iter())
        {
            let extent = dim as i64;
            let c = if periodic {
                coord.rem_euclid(extent)
            } else if (0..extent).contains(&coord) {
                coord
            } else {
                return Err(CoreError::InvalidRank {
                    rank: coord.unsigned_abs() as usize,
                    size: dim,
                });
            };
            rank = rank * dim + c as usize;
        }
        Ok(rank)
    }

    /// Source and destination for a shift of `disp` along `dim`
    /// (`MPI_Cart_shift`): `(recv_from, send_to)`, `None` at a
    /// non-periodic edge.
    pub fn shift(&self, rank: usize, dim: usize, disp: i64) -> Result<(Option<usize>, Option<usize>)> {
        if dim >= self.dims.len() {
            return Err(CoreError::Rma("cart: shift dimension out of range"));
        }
        let c = self.coords(rank)?;
        let mut up = c.iter().map(|&x| x as i64).collect::<Vec<_>>();
        let mut down = up.clone();
        up[dim] += disp;
        down[dim] -= disp;
        let send_to = self.rank_of(&up).ok();
        let recv_from = self.rank_of(&down).ok();
        Ok((recv_from, send_to))
    }
}

impl Comm {
    /// Attach a Cartesian topology to this communicator
    /// (`MPI_Cart_create` with `reorder = false`).
    pub fn cart_create(&self, dims: &[usize], periodic: &[bool]) -> Result<CartTopology> {
        CartTopology::new(self, dims, periodic)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;
    use nonctg_simnet::Platform;

    fn quiet() -> Platform {
        let mut p = Platform::skx_impi();
        p.jitter_sigma = 0.0;
        p
    }

    #[test]
    fn coords_roundtrip() {
        Universe::run(quiet(), 6, |comm| {
            let cart = comm.cart_create(&[2, 3], &[false, false]).unwrap();
            let c = cart.coords(comm.rank()).unwrap();
            assert_eq!(c, vec![comm.rank() / 3, comm.rank() % 3]);
            let back = cart.rank_of(&[c[0] as i64, c[1] as i64]).unwrap();
            assert_eq!(back, comm.rank());
        });
    }

    #[test]
    fn shift_non_periodic_edges() {
        Universe::run(quiet(), 4, |comm| {
            let cart = comm.cart_create(&[2, 2], &[false, false]).unwrap();
            let (from, to) = cart.shift(comm.rank(), 0, 1).unwrap();
            let r = comm.rank();
            // dim 0 extent 2: row 0 has no source above, row 1 no dest below
            if r / 2 == 0 {
                assert_eq!(from, None);
                assert_eq!(to, Some(r + 2));
            } else {
                assert_eq!(from, Some(r - 2));
                assert_eq!(to, None);
            }
        });
    }

    #[test]
    fn shift_periodic_wraps() {
        Universe::run(quiet(), 4, |comm| {
            let cart = comm.cart_create(&[4], &[true]).unwrap();
            let (from, to) = cart.shift(comm.rank(), 0, 1).unwrap();
            assert_eq!(to, Some((comm.rank() + 1) % 4));
            assert_eq!(from, Some((comm.rank() + 3) % 4));
        });
    }

    #[test]
    fn grid_must_cover_comm() {
        Universe::run(quiet(), 4, |comm| {
            assert!(comm.cart_create(&[3], &[false]).is_err());
            assert!(comm.cart_create(&[2, 2], &[false, false]).is_ok());
            assert!(comm.cart_create(&[2], &[false, false]).is_err());
        });
    }

    #[test]
    fn dims_create_near_square() {
        assert_eq!(CartTopology::dims_create(4, 2), vec![2, 2]);
        assert_eq!(CartTopology::dims_create(12, 2), vec![4, 3]);
        assert_eq!(CartTopology::dims_create(7, 2), vec![7, 1]);
        assert_eq!(CartTopology::dims_create(8, 3), vec![2, 2, 2]);
        assert_eq!(CartTopology::dims_create(1, 2), vec![1, 1]);
        let d = CartTopology::dims_create(36, 2);
        assert_eq!(d.iter().product::<usize>(), 36);
        assert_eq!(d, vec![6, 6]);
    }

    #[test]
    fn ring_pass_with_periodic_shift() {
        // Token passes around a periodic ring using cart_shift addressing.
        Universe::run(quiet(), 5, |comm| {
            let cart = comm.cart_create(&[5], &[true]).unwrap();
            let (from, to) = cart.shift(comm.rank(), 0, 1).unwrap();
            let (from, to) = (from.unwrap(), to.unwrap());
            let send = [comm.rank() as f64];
            let mut recv = [0.0f64];
            comm.sendrecv(
                nonctg_datatype::as_bytes(&send),
                0,
                &nonctg_datatype::Datatype::f64(),
                1,
                to,
                0,
                nonctg_datatype::as_bytes_mut(&mut recv),
                0,
                &nonctg_datatype::Datatype::f64(),
                1,
                Some(from),
                Some(0),
            )
            .unwrap();
            assert_eq!(recv[0], ((comm.rank() + 4) % 5) as f64);
        });
    }
}
