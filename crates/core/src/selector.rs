//! The adaptive datapath selector: pack plan vs zero-copy iovec vs
//! element copies, per message.
//!
//! A non-contiguous send can move its bytes three ways:
//!
//! * **pack** — gather through the compiled [`nonctg_datatype::PackPlan`]
//!   into a staging buffer, send contiguously, unpack at the receiver;
//! * **iov** — ship the plan's `(offset, len)` region list and let the
//!   NIC DMA-gather/scatter the user regions directly (no staging copy,
//!   but a per-region descriptor cost);
//! * **elem** — the uncompiled per-segment engine, which skips plan
//!   compilation entirely and wins only for tiny messages.
//!
//! The selector picks per `(platform, byte size, region shape)` from a
//! [`CrossoverTable`] seeded by the `datapath_baseline` calibration
//! sweep: iovec wins once the mean region length clears the platform's
//! measured crossover, because the per-region descriptor cost amortizes
//! while the avoided gather copy scales with the payload. Decisions are
//! observable through [`EventKind::Select`](crate::trace::EventKind)
//! trace events and the process-wide [`selector_counters`].
//!
//! Overrides, strongest first: `Platform::with_datapath` (in-process),
//! the `NONCTG_DATAPATH` environment variable (pack|iov|elem|auto), then
//! the table itself (`NONCTG_IOV_CROSSOVER`, `NONCTG_ELEM_CUTOFF`,
//! `NONCTG_IOV_MAX_REGIONS`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use nonctg_simnet::{Datapath, PlatformId};

/// Default cap on how many regions an iovec send may carry; region lists
/// beyond this fall back to the pack path (descriptor tables stop
/// fitting the NIC's scatter/gather queue). Override with
/// `NONCTG_IOV_MAX_REGIONS`.
pub const DEFAULT_IOV_MAX_REGIONS: usize = 1024;

/// The iovec region-count cap in force: `NONCTG_IOV_MAX_REGIONS` when
/// set and positive, else [`DEFAULT_IOV_MAX_REGIONS`]. Resolved once.
pub fn iov_max_regions() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    *V.get_or_init(|| {
        std::env::var("NONCTG_IOV_MAX_REGIONS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or(DEFAULT_IOV_MAX_REGIONS)
    })
}

/// Measured pack/iovec/element crossovers for one platform.
///
/// Seeded per installation from the `datapath_baseline` calibration
/// sweep (see BENCH_datapath.json): the region length where zero-copy
/// iovec overtakes the staged pack, and the message size under which
/// the uncompiled element engine beats both compiled paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossoverTable {
    /// Messages at or under this many bytes route to the element engine
    /// (plan compilation and staging don't amortize).
    pub elem_max_bytes: u64,
    /// Mean region length at or above which iovec beats pack.
    pub iov_min_region_bytes: u64,
}

impl CrossoverTable {
    /// Calibration-seeded table for one installation.
    ///
    /// The per-region descriptor cost scales with the CPU's call
    /// overhead while the avoided gather scales with copy bandwidth, so
    /// the weak-core KNL needs longer regions before iovec pays off.
    pub fn seeded(id: PlatformId) -> CrossoverTable {
        match id {
            PlatformId::SkxImpi => {
                CrossoverTable { elem_max_bytes: 256, iov_min_region_bytes: 160 }
            }
            PlatformId::SkxMvapich => {
                CrossoverTable { elem_max_bytes: 256, iov_min_region_bytes: 160 }
            }
            PlatformId::Ls5CrayMpich => {
                CrossoverTable { elem_max_bytes: 256, iov_min_region_bytes: 160 }
            }
            PlatformId::KnlImpi => {
                CrossoverTable { elem_max_bytes: 256, iov_min_region_bytes: 192 }
            }
        }
    }

    /// The table in force: the seeded values with any `NONCTG_IOV_CROSSOVER`
    /// / `NONCTG_ELEM_CUTOFF` (bytes) environment overrides applied.
    /// Overrides are resolved once per process.
    pub fn effective(id: PlatformId) -> CrossoverTable {
        static IOV: OnceLock<Option<u64>> = OnceLock::new();
        static ELEM: OnceLock<Option<u64>> = OnceLock::new();
        let env_u64 = |name: &str| {
            std::env::var(name).ok().and_then(|v| v.trim().parse::<u64>().ok())
        };
        let mut t = Self::seeded(id);
        if let Some(v) = IOV.get_or_init(|| env_u64("NONCTG_IOV_CROSSOVER")) {
            t.iov_min_region_bytes = *v;
        }
        if let Some(v) = ELEM.get_or_init(|| env_u64("NONCTG_ELEM_CUTOFF")) {
            t.elem_max_bytes = *v;
        }
        t
    }
}

/// Shape summary of an iovec region list: the descriptor count plus how
/// many of those regions are shorter than one cacheline. Sub-line
/// descriptors fall off the NIC's batched fast path and each cost a full
/// per-call overhead instead of the batched quarter (see
/// `Platform::iov_overhead`), so a skewed layout mixing a few long
/// regions with many tiny ones is far more expensive than its *mean*
/// region length suggests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionShape {
    /// Total regions in the list.
    pub n: u64,
    /// Regions shorter than the platform cacheline.
    pub subline: u64,
}

impl RegionShape {
    /// Summarize a concrete `(offset, len)` region list against a
    /// platform's cacheline size.
    pub fn of(regions: &[(i64, u64)], cacheline: u64) -> RegionShape {
        let subline = regions.iter().filter(|&&(_, len)| len < cacheline).count() as u64;
        RegionShape { n: regions.len() as u64, subline }
    }

    /// A list of `n` regions all at or above the cacheline — the shape
    /// the calibration probe sweeps and the legacy mean-length rule
    /// assumed for everything.
    pub fn uniform(n: u64) -> RegionShape {
        RegionShape { n, subline: 0 }
    }

    /// Descriptor-cost-weighted region count: a sub-line region costs a
    /// full per-call overhead, 4x the batched fraction a cacheline-sized
    /// one pays, so it counts as 4 descriptors. This is the per-region
    /// model the cost tables charge; dividing `bytes` by it replaces the
    /// variance-blind mean.
    pub fn weighted(&self) -> u64 {
        self.n + 3 * self.subline
    }
}

/// Pick the engine for one non-contiguous send of `bytes` payload, given
/// the [`RegionShape`] of its bounded region list (`None` = no compiled
/// plan or the list blew the [`iov_max_regions`] cap, which rules iovec
/// out). Pure in its inputs: the same `(platform id, bytes, shape)`
/// always selects the same engine, so recorded selections are
/// reproducible across runs and sharding.
///
/// The iovec rule charges by the descriptor model rather than the naive
/// mean region length: `bytes / shape.weighted()` must clear the
/// platform crossover. For uniform lists the two agree; on high-variance
/// layouts (LAMMPS mixes 24 B and 4 KiB regions) the weighted statistic
/// correctly prices the swarm of tiny descriptors the mean hides.
pub fn choose_shape(id: PlatformId, bytes: u64, shape: Option<RegionShape>) -> Datapath {
    let table = CrossoverTable::effective(id);
    if bytes <= table.elem_max_bytes {
        return Datapath::Elem;
    }
    if let Some(s) = shape {
        let w = s.weighted();
        if w > 0 && bytes / w >= table.iov_min_region_bytes {
            return Datapath::Iov;
        }
    }
    Datapath::Pack
}

/// [`choose_shape`] for a uniform region list of `nregions` regions —
/// the calibration probe's shape, kept as the stable entry point for
/// callers that only know a count.
pub fn choose(id: PlatformId, bytes: u64, nregions: Option<u64>) -> Datapath {
    choose_shape(id, bytes, nregions.map(RegionShape::uniform))
}

static SEL_PACK: AtomicU64 = AtomicU64::new(0);
static SEL_IOV: AtomicU64 = AtomicU64::new(0);
static SEL_ELEM: AtomicU64 = AtomicU64::new(0);

/// Process-wide tallies of selector decisions (auto mode only — forced
/// datapaths bypass the selector and are not counted).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectorCounters {
    /// Sends routed to the pack-plan engine.
    pub pack: u64,
    /// Sends routed to the zero-copy iovec engine.
    pub iov: u64,
    /// Sends routed to the uncompiled element engine.
    pub elem: u64,
}

impl SelectorCounters {
    /// Total decisions recorded.
    pub fn total(&self) -> u64 {
        self.pack + self.iov + self.elem
    }

    /// Counter deltas since an earlier snapshot (saturating, so a
    /// concurrent [`reset_selector_counters`] cannot underflow).
    pub fn delta_since(&self, base: &SelectorCounters) -> SelectorCounters {
        SelectorCounters {
            pack: self.pack.saturating_sub(base.pack),
            iov: self.iov.saturating_sub(base.iov),
            elem: self.elem.saturating_sub(base.elem),
        }
    }
}

/// Record one auto-mode selector decision.
pub(crate) fn record(choice: Datapath) {
    match choice {
        Datapath::Pack => SEL_PACK.fetch_add(1, Ordering::Relaxed),
        Datapath::Iov => SEL_IOV.fetch_add(1, Ordering::Relaxed),
        Datapath::Elem => SEL_ELEM.fetch_add(1, Ordering::Relaxed),
        Datapath::Auto => 0,
    };
}

/// Snapshot the process-wide selector decision counters.
pub fn selector_counters() -> SelectorCounters {
    SelectorCounters {
        pack: SEL_PACK.load(Ordering::Relaxed),
        iov: SEL_IOV.load(Ordering::Relaxed),
        elem: SEL_ELEM.load(Ordering::Relaxed),
    }
}

/// Reset the selector decision counters to zero (tests).
pub fn reset_selector_counters() {
    SEL_PACK.store(0, Ordering::Relaxed);
    SEL_IOV.store(0, Ordering::Relaxed);
    SEL_ELEM.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_messages_go_elementwise() {
        for id in PlatformId::ALL {
            assert_eq!(choose(id, 64, Some(8)), Datapath::Elem);
            assert_eq!(choose(id, 256, None), Datapath::Elem);
        }
    }

    #[test]
    fn long_regions_go_iovec() {
        for id in PlatformId::ALL {
            // 4 KiB mean regions are far beyond every platform's
            // crossover.
            assert_eq!(choose(id, 1 << 20, Some(256)), Datapath::Iov);
        }
    }

    #[test]
    fn short_regions_and_capped_lists_go_pack() {
        for id in PlatformId::ALL {
            // 8-byte regions: descriptor cost dominates.
            assert_eq!(choose(id, 1 << 20, Some(1 << 17)), Datapath::Pack);
            // No bounded region list at all.
            assert_eq!(choose(id, 1 << 20, None), Datapath::Pack);
        }
    }

    #[test]
    fn skewed_layouts_price_subline_descriptors() {
        // LAMMPS-shaped skew: 6 x 16 KiB blocks + 700 x 24 B records.
        // The mean region length (163 B) clears the skx crossover (160),
        // but 700 sub-line descriptors each cost a full call overhead —
        // the weighted statistic keeps the send on the pack path.
        let bytes = 6 * 16384u64 + 700 * 24;
        let shape = RegionShape { n: 706, subline: 700 };
        assert_eq!(choose_shape(PlatformId::SkxImpi, bytes, Some(shape)), Datapath::Pack);
        // A uniform list of the same total and count (the mean-length
        // view of the same message) would take iovec.
        assert_eq!(choose(PlatformId::SkxImpi, bytes, Some(706)), Datapath::Iov);
    }

    #[test]
    fn uniform_shapes_match_legacy_choose() {
        for id in PlatformId::ALL {
            for bytes in [300u64, 1 << 12, 1 << 20] {
                for n in [1u64, 64, 4096] {
                    assert_eq!(
                        choose(id, bytes, Some(n)),
                        choose_shape(id, bytes, Some(RegionShape::uniform(n)))
                    );
                }
            }
        }
    }

    #[test]
    fn region_shape_of_counts_sublines() {
        let regions = [(0i64, 24u64), (64, 4096), (8192, 63), (16384, 64)];
        let s = RegionShape::of(&regions, 64);
        assert_eq!(s, RegionShape { n: 4, subline: 2 });
        assert_eq!(s.weighted(), 4 + 3 * 2);
        assert_eq!(RegionShape::uniform(9).weighted(), 9);
    }

    #[test]
    fn knl_needs_longer_regions_than_skx() {
        let skx = CrossoverTable::seeded(PlatformId::SkxImpi);
        let knl = CrossoverTable::seeded(PlatformId::KnlImpi);
        assert!(knl.iov_min_region_bytes > skx.iov_min_region_bytes);
    }

    #[test]
    fn counters_record_and_reset() {
        // Other tests' sends may bump the process-wide counters
        // concurrently, so assert lower bounds, not exact deltas.
        let base = selector_counters();
        record(Datapath::Pack);
        record(Datapath::Iov);
        record(Datapath::Iov);
        record(Datapath::Elem);
        record(Datapath::Auto); // never counted
        let now = selector_counters().delta_since(&base);
        assert!(now.pack >= 1 && now.iov >= 2 && now.elem >= 1);
        assert!(now.total() >= 4);
    }

    #[test]
    fn decisions_are_deterministic() {
        for id in PlatformId::ALL {
            for bytes in [300u64, 1 << 12, 1 << 20, 1 << 26] {
                for n in [1u64, 64, 4096] {
                    assert_eq!(
                        choose(id, bytes, Some(n)),
                        choose(id, bytes, Some(n)),
                    );
                }
            }
        }
    }
}
