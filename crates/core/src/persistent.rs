//! Persistent communication requests (`MPI_Send_init` / `MPI_Recv_init` /
//! `MPI_Start`).
//!
//! A persistent request freezes the argument list of a repeated transfer —
//! exactly the shape of the paper's measurement loop, which re-sends the
//! same buffer twenty times. `start` begins one communication using the
//! current buffer contents; each started send is completed through the
//! returned [`SendRequest`], and a started receive through
//! [`PersistentRecv::wait`].

use nonctg_datatype::{self as dt, Datatype, Scalar};

use crate::comm::Comm;
use crate::error::{CoreError, Result};
use crate::nonblocking::SendRequest;
use crate::p2p::RecvStatus;

/// A frozen send argument list (`MPI_Send_init`).
pub struct PersistentSend<'buf> {
    buf: &'buf [u8],
    origin: usize,
    dtype: Datatype,
    count: usize,
    dst: usize,
    tag: i32,
}

impl<'buf> PersistentSend<'buf> {
    /// Begin one send of the buffer's *current* contents (`MPI_Start`).
    /// Complete it with [`SendRequest::wait`].
    pub fn start(&self, comm: &mut Comm) -> Result<SendRequest> {
        comm.isend(self.buf, self.origin, &self.dtype, self.count, self.dst, self.tag)
    }

    /// Start and immediately wait (a blocking send of the frozen args).
    pub fn run(&self, comm: &mut Comm) -> Result<()> {
        self.start(comm)?.wait(comm)
    }
}

/// A frozen receive argument list (`MPI_Recv_init`).
pub struct PersistentRecv<'buf> {
    buf: &'buf mut [u8],
    origin: usize,
    dtype: Datatype,
    count: usize,
    src: Option<usize>,
    tag: Option<i32>,
    started_at: Option<f64>,
}

impl<'buf> PersistentRecv<'buf> {
    /// Post the receive (`MPI_Start`): records the posting time that
    /// governs rendezvous timing, without blocking.
    pub fn start(&mut self, comm: &Comm) -> Result<()> {
        if self.started_at.is_some() {
            return Err(CoreError::Rma("persistent receive already started"));
        }
        self.started_at = Some(comm.wtime());
        Ok(())
    }

    /// Complete a started receive (`MPI_Wait`).
    pub fn wait(&mut self, comm: &mut Comm) -> Result<RecvStatus> {
        let t_post = self
            .started_at
            .take()
            .ok_or(CoreError::Rma("persistent receive was not started"))?;
        comm.recv_with_post_time(
            self.buf,
            self.origin,
            &self.dtype,
            self.count,
            self.src,
            self.tag,
            t_post,
        )
    }

    /// Start and immediately wait (a blocking receive of the frozen args).
    pub fn run(&mut self, comm: &mut Comm) -> Result<RecvStatus> {
        self.start(comm)?;
        self.wait(comm)
    }
}

impl Comm {
    /// Freeze a send argument list (`MPI_Send_init`).
    pub fn send_init<'buf>(
        &self,
        buf: &'buf [u8],
        origin: usize,
        dtype: &Datatype,
        count: usize,
        dst: usize,
        tag: i32,
    ) -> Result<PersistentSend<'buf>> {
        self.check_rank(dst)?;
        dtype.require_committed()?;
        Ok(PersistentSend { buf, origin, dtype: dtype.clone(), count, dst, tag })
    }

    /// Freeze a typed-slice send argument list.
    pub fn send_init_slice<'buf, T: Scalar>(
        &self,
        data: &'buf [T],
        dst: usize,
        tag: i32,
    ) -> Result<PersistentSend<'buf>> {
        let t = Datatype::of::<T>();
        self.send_init(dt::as_bytes(data), 0, &t, data.len(), dst, tag)
    }

    /// Freeze a receive argument list (`MPI_Recv_init`).
    pub fn recv_init<'buf>(
        &self,
        buf: &'buf mut [u8],
        origin: usize,
        dtype: &Datatype,
        count: usize,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> Result<PersistentRecv<'buf>> {
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        dtype.require_committed()?;
        Ok(PersistentRecv {
            buf,
            origin,
            dtype: dtype.clone(),
            count,
            src,
            tag,
            started_at: None,
        })
    }

    /// Freeze a typed-slice receive argument list.
    pub fn recv_init_slice<'buf, T: Scalar>(
        &self,
        buf: &'buf mut [T],
        src: Option<usize>,
        tag: Option<i32>,
    ) -> Result<PersistentRecv<'buf>> {
        let t = Datatype::of::<T>();
        let n = buf.len();
        self.recv_init(dt::as_bytes_mut(buf), 0, &t, n, src, tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;
    use nonctg_datatype::as_bytes;
    use nonctg_simnet::Platform;

    fn quiet() -> Platform {
        let mut p = Platform::skx_impi();
        p.jitter_sigma = 0.0;
        p
    }

    #[test]
    fn persistent_pingpong_reuses_requests() {
        let reps = 5;
        Universe::run_pair(quiet(), move |comm| {
            if comm.rank() == 0 {
                let mut data = vec![0.0f64; 256];
                for rep in 0..reps {
                    data.iter_mut().for_each(|v| *v = rep as f64);
                    // Re-freeze per mutation is not needed: the request
                    // reads the buffer at start time, like MPI.
                    let ps = comm.send_init_slice(&data, 1, 0).unwrap();
                    ps.run(comm).unwrap();
                }
            } else {
                let mut buf = vec![0.0f64; 256];
                let mut pr = comm.recv_init_slice(&mut buf, Some(0), Some(0)).unwrap();
                for _rep in 0..reps {
                    let st = pr.run(comm).unwrap();
                    assert_eq!(st.bytes, 256 * 8);
                }
                drop(pr);
                assert!(buf.iter().all(|&v| v == (reps - 1) as f64));
            }
        });
    }

    #[test]
    fn start_reads_current_buffer_contents() {
        Universe::run_pair(quiet(), |comm| {
            if comm.rank() == 0 {
                let mut data = vec![1.0f64; 8];
                {
                    let ps = comm.send_init_slice(&data, 1, 0).unwrap();
                    ps.run(comm).unwrap();
                }
                data[0] = 42.0;
                let ps = comm.send_init_slice(&data, 1, 0).unwrap();
                ps.run(comm).unwrap();
            } else {
                let mut buf = vec![0.0f64; 8];
                comm.recv_slice(&mut buf, Some(0), Some(0)).unwrap();
                assert_eq!(buf[0], 1.0);
                comm.recv_slice(&mut buf, Some(0), Some(0)).unwrap();
                assert_eq!(buf[0], 42.0);
            }
        });
    }

    #[test]
    fn recv_double_start_rejected() {
        Universe::run(quiet(), 1, |comm| {
            let mut buf = vec![0.0f64; 4];
            let mut pr = comm.recv_init_slice(&mut buf, Some(0), Some(0)).unwrap();
            pr.start(comm).unwrap();
            assert!(pr.start(comm).is_err());
        });
    }

    #[test]
    fn wait_without_start_rejected() {
        Universe::run(quiet(), 1, |comm| {
            let mut buf = vec![0.0f64; 4];
            let mut pr = comm.recv_init_slice(&mut buf, Some(0), Some(0)).unwrap();
            assert!(pr.wait(comm).is_err());
        });
    }

    #[test]
    fn persistent_derived_type_send() {
        let n = 64;
        Universe::run_pair(quiet(), move |comm| {
            let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
            if comm.rank() == 0 {
                let src: Vec<f64> = (0..2 * n).map(|i| i as f64).collect();
                let ps = comm.send_init(as_bytes(&src), 0, &vec_t, 1, 1, 0).unwrap();
                for _ in 0..3 {
                    ps.run(comm).unwrap();
                }
            } else {
                let mut buf = vec![0.0f64; n];
                for _ in 0..3 {
                    comm.recv_slice(&mut buf, Some(0), Some(0)).unwrap();
                    assert_eq!(buf[9], 18.0);
                }
            }
        });
    }

    #[test]
    fn uncommitted_type_rejected_at_init() {
        Universe::run(quiet(), 1, |comm| {
            let t = Datatype::vector(4, 1, 2, &Datatype::f64()).unwrap();
            let buf = [0u8; 64];
            assert!(comm.send_init(&buf, 0, &t, 1, 0, 0).is_err());
        });
    }
}
