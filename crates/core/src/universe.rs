//! Launching a simulated MPI universe.
//!
//! Ranks run as real OS threads over a shared [`crate::fabric::Fabric`];
//! each gets a [`Comm`] with its own virtual clock. `Universe::run` blocks
//! until every rank's closure returns and hands back the per-rank results
//! in rank order, so harness code reads like an SPMD `main`.

use nonctg_simnet::Platform;

use crate::comm::Comm;
use crate::fabric::Fabric;

/// Entry point for running SPMD closures over simulated ranks.
pub struct Universe;

impl Universe {
    /// Run `f` on `nranks` ranks of `platform`; returns each rank's result
    /// in rank order.
    ///
    /// # Panics
    /// Panics if `nranks == 0` or if any rank's closure panics (the panic
    /// is propagated).
    pub fn run<T, F>(platform: Platform, nranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        assert!(nranks > 0, "universe needs at least one rank");
        let fabric = Fabric::new(platform, nranks);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..nranks)
                .map(|rank| {
                    let fabric = std::sync::Arc::clone(&fabric);
                    let f = &f;
                    scope.spawn(move || {
                        let mut comm = Comm::new(fabric, rank);
                        f(&mut comm)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }

    /// [`Universe::run`] on the paper's standard two ranks.
    pub fn run_pair<T, F>(platform: Platform, f: F) -> (T, T)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let mut v = Self::run(platform, 2, f);
        let b = v.pop().expect("two results");
        let a = v.pop().expect("two results");
        (a, b)
    }
}
