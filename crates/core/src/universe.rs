//! Launching a simulated MPI universe.
//!
//! Ranks run as real OS threads over a shared [`crate::fabric::Fabric`];
//! each gets a [`Comm`] with its own virtual clock. `Universe::run` blocks
//! until every rank's closure returns and hands back the per-rank results
//! in rank order, so harness code reads like an SPMD `main`.
//!
//! Every launch is *supervised*: a rank that panics (including a crash
//! injected by a [`nonctg_simnet::FaultPlan`]) or returns an error poisons
//! the fabric, so peers blocked in receives, rendezvous, barriers or
//! fences fail promptly with [`CoreError::PeerFailed`] instead of stalling
//! until the deadlock timeout. [`Universe::run`] re-raises the first
//! panic; [`Universe::run_supervised`] converts it into a per-rank
//! [`CoreError::RankPanicked`] result instead.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use nonctg_simnet::Platform;

use crate::comm::Comm;
use crate::error::{CoreError, Result};
use crate::fabric::Fabric;

/// Entry point for running SPMD closures over simulated ranks.
pub struct Universe;

enum RankOutcome<T> {
    Ok(T),
    Err(CoreError),
    Panicked(Box<dyn Any + Send>),
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_impl<T, F>(platform: Platform, nranks: usize, f: F) -> (Vec<RankOutcome<T>>, Option<usize>)
where
    T: Send,
    F: Fn(&mut Comm) -> Result<T> + Send + Sync,
{
    assert!(nranks > 0, "universe needs at least one rank");
    let fabric = Fabric::new(platform, nranks);
    let outcomes = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..nranks)
            .map(|rank| {
                let fabric = std::sync::Arc::clone(&fabric);
                let f = &f;
                scope.spawn(move || {
                    let mut comm = Comm::new(std::sync::Arc::clone(&fabric), rank);
                    match catch_unwind(AssertUnwindSafe(|| f(&mut comm))) {
                        Ok(Ok(v)) => RankOutcome::Ok(v),
                        Ok(Err(e)) => {
                            // An erroring rank stops participating: poison
                            // so peers do not stall waiting for it.
                            fabric.supervision.poison(rank);
                            RankOutcome::Err(e)
                        }
                        Err(payload) => {
                            fabric.supervision.poison(rank);
                            RankOutcome::Panicked(payload)
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank supervisor thread itself panicked"))
            .collect()
    });
    let first_failed = fabric.supervision.failed_rank();
    (outcomes, first_failed)
}

impl Universe {
    /// Run `f` on `nranks` ranks of `platform`; returns each rank's result
    /// in rank order.
    ///
    /// # Panics
    /// Panics if `nranks == 0` or if any rank's closure panics (the first
    /// panic in rank order is propagated with its original payload).
    pub fn run<T, F>(platform: Platform, nranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let (mut outcomes, first_failed) = run_impl(platform, nranks, |comm| Ok(f(comm)));
        // Re-raise the root cause: the first rank the supervision saw
        // fail, not a peer that panicked on an unwrapped `PeerFailed`.
        if let Some(culprit) = first_failed {
            if matches!(outcomes[culprit], RankOutcome::Panicked(_)) {
                let RankOutcome::Panicked(payload) =
                    outcomes.swap_remove(culprit)
                else {
                    unreachable!()
                };
                resume_unwind(payload);
            }
        }
        let mut results = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            match outcome {
                RankOutcome::Ok(v) => results.push(v),
                RankOutcome::Err(_) => unreachable!("infallible closure"),
                RankOutcome::Panicked(payload) => resume_unwind(payload),
            }
        }
        results
    }

    /// Run a fallible closure on `nranks` ranks, catching rank panics:
    /// each rank yields `Ok`, its own error, or
    /// [`CoreError::RankPanicked`] if its closure panicked. Peers of a
    /// failed rank typically yield [`CoreError::PeerFailed`].
    ///
    /// # Panics
    /// Panics only if `nranks == 0`.
    pub fn run_supervised<T, F>(platform: Platform, nranks: usize, f: F) -> Vec<Result<T>>
    where
        T: Send,
        F: Fn(&mut Comm) -> Result<T> + Send + Sync,
    {
        run_impl(platform, nranks, f)
            .0
            .into_iter()
            .enumerate()
            .map(|(rank, outcome)| match outcome {
                RankOutcome::Ok(v) => Ok(v),
                RankOutcome::Err(e) => Err(e),
                RankOutcome::Panicked(payload) => Err(CoreError::RankPanicked {
                    rank,
                    message: panic_message(payload.as_ref()),
                }),
            })
            .collect()
    }

    /// [`Universe::run`] on the paper's standard two ranks.
    pub fn run_pair<T, F>(platform: Platform, f: F) -> (T, T)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let mut v = Self::run(platform, 2, f);
        let b = v.pop().expect("two results");
        let a = v.pop().expect("two results");
        (a, b)
    }
}
