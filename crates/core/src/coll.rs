//! Collective operations over the whole universe: broadcast, gather,
//! scatter, reduce/allreduce, and all-to-all.
//!
//! Implemented *on top of* the point-to-point layer (like any MPI's
//! fallback collectives), so every virtual-time property of the p2p cost
//! model — eager limits, rendezvous, staging — carries over. Tree-shaped
//! algorithms give the expected `O(log P)` latency scaling:
//!
//! * `bcast`: binomial tree;
//! * `gather`/`scatter`: flat to/from the root (bandwidth-bound);
//! * `reduce`: binomial tree with per-hop combine cost;
//! * `allreduce`: reduce + bcast;
//! * `alltoall`: pairwise exchange rounds.
//!
//! All collectives accept a tag space of their own so they never match
//! user point-to-point traffic.

use nonctg_datatype::{as_bytes_mut, Scalar};

use crate::comm::Comm;
use crate::error::Result;

/// Tag base reserved for collectives (outside the typical user range).
const COLL_TAG: i32 = i32::MAX - 1024;

/// A binary combining operation for reductions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum.
    Sum,
    /// Elementwise minimum.
    Min,
    /// Elementwise maximum.
    Max,
    /// Elementwise product.
    Prod,
}

impl ReduceOp {
    fn combine_f64(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
            ReduceOp::Prod => a * b,
        }
    }
}

/// Trait for element types usable in reductions.
pub trait Reducible: Scalar {
    /// Combine two values under `op`.
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self;
}

impl Reducible for f64 {
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
        op.combine_f64(a, b)
    }
}

impl Reducible for f32 {
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
        op.combine_f64(a as f64, b as f64) as f32
    }
}

macro_rules! impl_reducible_int {
    ($($t:ty),*) => {$(
        impl Reducible for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Min => a.min(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Prod => a.wrapping_mul(b),
                }
            }
        }
    )*};
}

impl_reducible_int!(i8, u8, i16, u16, i32, u32, i64, u64);

/// A zero-initialized scalar (all supported scalars accept the all-zero
/// byte pattern).
fn send_default<T: Scalar>() -> T {
    // SAFETY: Scalar is a sealed set of plain integer/float types for
    // which the all-zeros bit pattern is a valid value.
    unsafe { std::mem::zeroed() }
}

impl Comm {
    /// Broadcast `buf` from `root` to every rank (binomial tree).
    pub fn bcast<T: Scalar>(&mut self, buf: &mut [T], root: usize) -> Result<()> {
        self.check_rank(root)?;
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        // Virtual rank with the root rotated to 0.
        let vrank = (self.rank() + size - root) % size;
        let tag = COLL_TAG;

        // Receive from the parent: vrank minus its lowest set bit.
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask != 0 {
                let parent = (vrank - mask + root) % size;
                self.recv_slice(buf, Some(parent), Some(tag))?;
                break;
            }
            mask <<= 1;
        }
        // Forward to children at descending offsets below that bit.
        mask >>= 1;
        while mask > 0 {
            if vrank + mask < size {
                let child = (vrank + mask + root) % size;
                self.send_slice(buf, child, tag)?;
            }
            mask >>= 1;
        }
        Ok(())
    }

    /// Gather equal-size contributions to `root`. On the root, `recv` must
    /// hold `size() * send.len()` elements (rank-major); on other ranks it
    /// is ignored and may be empty.
    pub fn gather<T: Scalar>(&mut self, send: &[T], recv: &mut [T], root: usize) -> Result<()> {
        self.check_rank(root)?;
        let n = send.len();
        let tag = COLL_TAG + 1;
        if self.rank() == root {
            assert!(
                recv.len() >= n * self.size(),
                "gather: root buffer too small ({} < {})",
                recv.len(),
                n * self.size()
            );
            recv[root * n..(root + 1) * n].copy_from_slice(send);
            for _ in 0..self.size() - 1 {
                let bytes = as_bytes_mut(recv);
                self.recv_probe_into::<T>(bytes, n, tag)?;
            }
            Ok(())
        } else {
            self.send_slice(send, root, tag)
        }
    }

    /// Internal helper: receive `n` elements from any source and place
    /// them at `source * n` within `bytes`.
    fn recv_probe_into<T: Scalar>(
        &mut self,
        bytes: &mut [u8],
        n: usize,
        tag: i32,
    ) -> Result<usize> {
        // Two-phase: match any source, then place by the status source.
        // Staged in the communicator's reusable scratch buffer.
        let nbytes = n * std::mem::size_of::<T>();
        let mut staging = self.take_scratch(nbytes);
        let st = self.recv_bytes_as::<T>(&mut staging[..nbytes], None, Some(tag))?;
        let off = st.source * nbytes;
        bytes[off..off + nbytes].copy_from_slice(&staging[..nbytes]);
        self.put_scratch(staging);
        Ok(st.source)
    }

    /// Typed receive into a raw byte buffer (signature checked as `T`).
    fn recv_bytes_as<T: Scalar>(
        &mut self,
        buf: &mut [u8],
        src: Option<usize>,
        tag: Option<i32>,
    ) -> Result<crate::RecvStatus> {
        let t = nonctg_datatype::Datatype::of::<T>();
        let n = buf.len() / std::mem::size_of::<T>();
        self.recv(buf, 0, &t, n, src, tag)
    }

    /// Variable-count gather (`MPI_Gatherv`): rank `r`'s `send` (of length
    /// `counts[r]`) lands at `displs[r]` in the root's `recv`.
    pub fn gatherv<T: Scalar>(
        &mut self,
        send: &[T],
        recv: &mut [T],
        counts: &[usize],
        displs: &[usize],
        root: usize,
    ) -> Result<()> {
        self.check_rank(root)?;
        let size = self.size();
        assert!(counts.len() >= size && displs.len() >= size, "gatherv: counts/displs too short");
        assert_eq!(send.len(), counts[self.rank()], "gatherv: send length != counts[rank]");
        let tag = COLL_TAG + 5;
        if self.rank() == root {
            recv[displs[root]..displs[root] + counts[root]].copy_from_slice(send);
            // Stage each contribution by source in the reusable scratch
            // buffer, then place it at that source's displacement. The
            // payload length tells us nothing we don't already know from
            // counts, but the source drives placement.
            let sz = std::mem::size_of::<T>();
            let max_bytes = counts.iter().copied().max().unwrap_or(0) * sz;
            for _ in 0..size - 1 {
                let mut staging = self.take_scratch(max_bytes);
                let st = self.recv_bytes_as::<T>(&mut staging[..max_bytes], None, Some(tag))?;
                let src = st.source;
                assert_eq!(st.bytes, counts[src] * sz, "gatherv: count mismatch from {src}");
                let off = displs[src] * sz;
                as_bytes_mut(recv)[off..off + counts[src] * sz]
                    .copy_from_slice(&staging[..counts[src] * sz]);
                self.put_scratch(staging);
            }
            Ok(())
        } else {
            self.send_slice(send, root, tag)
        }
    }

    /// Variable-count scatter (`MPI_Scatterv`): rank `r` receives
    /// `counts[r]` elements from `displs[r]` of the root's `send`.
    pub fn scatterv<T: Scalar>(
        &mut self,
        send: &[T],
        counts: &[usize],
        displs: &[usize],
        recv: &mut [T],
        root: usize,
    ) -> Result<()> {
        self.check_rank(root)?;
        let size = self.size();
        assert!(counts.len() >= size && displs.len() >= size, "scatterv: counts/displs too short");
        assert_eq!(recv.len(), counts[self.rank()], "scatterv: recv length != counts[rank]");
        let tag = COLL_TAG + 6;
        if self.rank() == root {
            for r in 0..size {
                let part = &send[displs[r]..displs[r] + counts[r]];
                if r == root {
                    recv.copy_from_slice(part);
                } else {
                    self.send_slice(part, r, tag)?;
                }
            }
            Ok(())
        } else {
            self.recv_slice(recv, Some(root), Some(tag))?;
            Ok(())
        }
    }

    /// Scatter equal-size slices from `root`: rank `r` receives elements
    /// `r*n..(r+1)*n` of the root's `send` into its `recv` (length `n`).
    pub fn scatter<T: Scalar>(&mut self, send: &[T], recv: &mut [T], root: usize) -> Result<()> {
        self.check_rank(root)?;
        let n = recv.len();
        let tag = COLL_TAG + 2;
        if self.rank() == root {
            assert!(
                send.len() >= n * self.size(),
                "scatter: root buffer too small"
            );
            for r in 0..self.size() {
                if r == root {
                    recv.copy_from_slice(&send[r * n..(r + 1) * n]);
                } else {
                    self.send_slice(&send[r * n..(r + 1) * n], r, tag)?;
                }
            }
            Ok(())
        } else {
            self.recv_slice(recv, Some(root), Some(tag))?;
            Ok(())
        }
    }

    /// Reduce elementwise onto `root` (binomial tree). `inout` holds this
    /// rank's contribution on entry and, on the root, the result on exit.
    pub fn reduce<T: Reducible>(
        &mut self,
        inout: &mut [T],
        op: ReduceOp,
        root: usize,
    ) -> Result<()> {
        self.check_rank(root)?;
        let size = self.size();
        if size == 1 {
            return Ok(());
        }
        let vrank = (self.rank() + size - root) % size;
        let tag = COLL_TAG + 3;
        let mut recvbuf = vec![inout[0]; inout.len()];
        let mut mask = 1usize;
        // Binomial reduction: at round k, ranks with bit k set send to
        // their partner and retire.
        while mask < size {
            if vrank & mask != 0 {
                let vdst = vrank & !mask;
                let dst = (vdst + root) % size;
                self.send_slice(inout, dst, tag)?;
                return Ok(()); // retired; only root holds the result
            } else if vrank + mask < size {
                let vsrc = vrank | mask;
                let src = (vsrc + root) % size;
                self.recv_slice(&mut recvbuf, Some(src), Some(tag))?;
                // Combine cost: one pass over the data.
                let bytes = std::mem::size_of_val(inout) as u64;
                let t = self.platform().gather_time(
                    bytes,
                    &nonctg_simnet::Access::Contiguous,
                    self.is_warm(),
                );
                self.charge(t);
                for (a, b) in inout.iter_mut().zip(recvbuf.iter()) {
                    *a = T::combine(op, *a, *b);
                }
            }
            mask <<= 1;
        }
        Ok(())
    }

    /// Allreduce: reduce to rank 0 then broadcast.
    pub fn allreduce<T: Reducible>(&mut self, inout: &mut [T], op: ReduceOp) -> Result<()> {
        self.reduce(inout, op, 0)?;
        self.bcast(inout, 0)
    }

    /// Allgather: every rank contributes `send` and receives every rank's
    /// contribution rank-major in `recv` (gather to 0 + bcast).
    pub fn allgather<T: Scalar>(&mut self, send: &[T], recv: &mut [T]) -> Result<()> {
        self.gather(send, recv, 0)?;
        let n = send.len() * self.size();
        self.bcast(&mut recv[..n], 0)
    }

    /// Reduce-scatter with equal blocks (`MPI_Reduce_scatter_block`): the
    /// elementwise reduction of every rank's `send` (length
    /// `size() * recv.len()`) is computed and block `r` lands on rank `r`.
    pub fn reduce_scatter_block<T: Reducible>(
        &mut self,
        send: &[T],
        recv: &mut [T],
        op: ReduceOp,
    ) -> Result<()> {
        let n = recv.len();
        assert!(send.len() >= n * self.size(), "reduce_scatter_block: send too short");
        // Reduce the full vector onto rank 0, then scatter the blocks.
        let mut work = send[..n * self.size()].to_vec();
        self.reduce(&mut work, op, 0)?;
        self.scatter(&work, recv, 0)
    }

    /// Inclusive prefix reduction (`MPI_Scan`): rank `r` ends with the
    /// combination of ranks `0..=r`'s contributions.
    pub fn scan<T: Reducible>(&mut self, inout: &mut [T], op: ReduceOp) -> Result<()> {
        let tag = COLL_TAG + 7;
        let me = self.rank();
        if me > 0 {
            let mut prefix = vec![send_default::<T>(); inout.len()];
            self.recv_slice(&mut prefix, Some(me - 1), Some(tag))?;
            for (a, b) in inout.iter_mut().zip(prefix.iter()) {
                *a = T::combine(op, *b, *a);
            }
        }
        if me + 1 < self.size() {
            self.send_slice(inout, me + 1, tag)?;
        }
        Ok(())
    }

    /// Exclusive prefix reduction (`MPI_Exscan`): rank `r` ends with the
    /// combination of ranks `0..r` (rank 0's buffer is left untouched).
    pub fn exscan<T: Reducible>(&mut self, inout: &mut [T], op: ReduceOp) -> Result<()> {
        let tag = COLL_TAG + 8;
        let me = self.rank();
        let mine = inout.to_vec();
        if me > 0 {
            let mut prefix = vec![send_default::<T>(); inout.len()];
            self.recv_slice(&mut prefix, Some(me - 1), Some(tag))?;
            inout.copy_from_slice(&prefix);
        }
        if me + 1 < self.size() {
            // Forward inclusive prefix = exclusive prefix (+) own value.
            let fwd: Vec<T> = if me == 0 {
                mine
            } else {
                inout.iter().zip(mine.iter()).map(|(&p, &m)| T::combine(op, p, m)).collect()
            };
            self.send_slice(&fwd, me + 1, tag)?;
        }
        Ok(())
    }

    /// All-to-all personalized exchange of equal `n`-element slices:
    /// `send[r*n..]` goes to rank `r`; `recv[r*n..]` arrives from rank `r`.
    /// Pairwise-exchange algorithm (`size()` rounds, no hot spots).
    pub fn alltoall<T: Scalar>(&mut self, send: &[T], recv: &mut [T], n: usize) -> Result<()> {
        let size = self.size();
        assert!(send.len() >= n * size && recv.len() >= n * size, "alltoall buffers too small");
        let me = self.rank();
        let tag = COLL_TAG + 4;
        recv[me * n..(me + 1) * n].copy_from_slice(&send[me * n..(me + 1) * n]);
        // One consistent pairing per universe size: XOR exchange when the
        // size is a power of two, shifted ring otherwise.
        let pot = size.is_power_of_two();
        for round in 1..size {
            let (to, from) = if pot {
                let p = me ^ round;
                (p, p)
            } else {
                ((me + round) % size, (me + size - round) % size)
            };
            let req = self.isend_slice(&send[to * n..(to + 1) * n], to, tag)?;
            self.recv_slice(&mut recv[from * n..(from + 1) * n], Some(from), Some(tag))?;
            req.wait(self)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;
    use nonctg_simnet::Platform;

    fn quiet() -> Platform {
        let mut p = Platform::skx_impi();
        p.jitter_sigma = 0.0;
        p
    }

    #[test]
    fn bcast_reaches_all_ranks() {
        for nranks in [1usize, 2, 3, 4, 7, 8] {
            for root in [0, nranks - 1] {
                Universe::run(quiet(), nranks, move |comm| {
                    let mut buf = if comm.rank() == root {
                        vec![42.0f64, 7.0, root as f64]
                    } else {
                        vec![0.0; 3]
                    };
                    comm.bcast(&mut buf, root).unwrap();
                    assert_eq!(buf, vec![42.0, 7.0, root as f64], "rank {}", comm.rank());
                });
            }
        }
    }

    #[test]
    fn bcast_latency_scales_logarithmically() {
        let time_for = |nranks: usize| {
            let times = Universe::run(quiet(), nranks, move |comm| {
                let mut buf = vec![1.0f64; 16];
                comm.barrier().unwrap();
                let t0 = comm.wtime();
                comm.bcast(&mut buf, 0).unwrap();
                comm.barrier().unwrap();
                comm.wtime() - t0
            });
            times[0]
        };
        let t2 = time_for(2);
        let t16 = time_for(16);
        assert!(t16 < t2 * 6.0, "binomial bcast should be ~log2: {t2} vs {t16}");
        assert!(t16 > t2, "more ranks must cost more: {t2} vs {t16}");
    }

    #[test]
    fn gather_collects_rank_major() {
        Universe::run(quiet(), 4, |comm| {
            let me = comm.rank() as f64;
            let send = [me, me + 0.5];
            let mut recv = vec![0.0f64; 8];
            comm.gather(&send, &mut recv, 2).unwrap();
            if comm.rank() == 2 {
                assert_eq!(recv, vec![0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5]);
            }
        });
    }

    #[test]
    fn scatter_distributes_slices() {
        Universe::run(quiet(), 3, |comm| {
            let send: Vec<f64> = if comm.rank() == 0 {
                (0..6).map(|i| i as f64).collect()
            } else {
                Vec::new()
            };
            let mut recv = vec![0.0f64; 2];
            comm.scatter(&send, &mut recv, 0).unwrap();
            let r = comm.rank() as f64;
            assert_eq!(recv, vec![2.0 * r, 2.0 * r + 1.0]);
        });
    }

    #[test]
    fn reduce_sums_on_root() {
        for nranks in [2usize, 3, 5, 8] {
            Universe::run(quiet(), nranks, move |comm| {
                let mut v = vec![comm.rank() as f64 + 1.0, 1.0];
                comm.reduce(&mut v, ReduceOp::Sum, 0).unwrap();
                if comm.rank() == 0 {
                    let expect: f64 = (1..=nranks).map(|r| r as f64).sum();
                    assert_eq!(v, vec![expect, nranks as f64]);
                }
            });
        }
    }

    #[test]
    fn reduce_min_max_prod() {
        Universe::run(quiet(), 4, |comm| {
            let r = comm.rank() as i64;
            let mut mn = [r + 10];
            comm.reduce(&mut mn, ReduceOp::Min, 0).unwrap();
            let mut mx = [r];
            comm.reduce(&mut mx, ReduceOp::Max, 0).unwrap();
            let mut pr = [r + 1];
            comm.reduce(&mut pr, ReduceOp::Prod, 0).unwrap();
            if comm.rank() == 0 {
                assert_eq!(mn[0], 10);
                assert_eq!(mx[0], 3);
                assert_eq!(pr[0], 24);
            }
        });
    }

    #[test]
    fn allreduce_agrees_everywhere() {
        Universe::run(quiet(), 6, |comm| {
            let mut v = [comm.rank() as u64, 1];
            comm.allreduce(&mut v, ReduceOp::Sum).unwrap();
            assert_eq!(v, [15, 6]);
        });
    }

    #[test]
    fn alltoall_power_of_two_and_odd() {
        for nranks in [2usize, 4, 3, 5] {
            Universe::run(quiet(), nranks, move |comm| {
                let me = comm.rank();
                let n = 2usize;
                // send[r] = [me*100 + r, ...]
                let send: Vec<u64> = (0..nranks)
                    .flat_map(|r| [(me * 100 + r) as u64, 7])
                    .collect();
                let mut recv = vec![0u64; n * nranks];
                comm.alltoall(&send, &mut recv, n).unwrap();
                for r in 0..nranks {
                    assert_eq!(
                        recv[r * n],
                        (r * 100 + me) as u64,
                        "rank {me} from {r} ({nranks} ranks)"
                    );
                }
            });
        }
    }

    #[test]
    fn allgather_everyone_sees_everything() {
        for nranks in [2usize, 5] {
            Universe::run(quiet(), nranks, move |comm| {
                let send = [comm.rank() as f64, -1.0];
                let mut recv = vec![0.0f64; 2 * nranks];
                comm.allgather(&send, &mut recv).unwrap();
                for r in 0..nranks {
                    assert_eq!(recv[2 * r], r as f64);
                    assert_eq!(recv[2 * r + 1], -1.0);
                }
            });
        }
    }

    #[test]
    fn reduce_scatter_block_distributes_sums() {
        Universe::run(quiet(), 3, |comm| {
            // send[r*2..] from every rank: value rank+block
            let send: Vec<u64> = (0..6).map(|i| (comm.rank() * 100 + i) as u64).collect();
            let mut recv = vec![0u64; 2];
            comm.reduce_scatter_block(&send, &mut recv, ReduceOp::Sum).unwrap();
            let r = comm.rank() as u64;
            // sum over ranks of (rank*100 + block index)
            let expect = |i: u64| 300 + 3 * i;
            assert_eq!(recv, vec![expect(2 * r), expect(2 * r + 1)]);
        });
    }

    #[test]
    fn scan_computes_inclusive_prefixes() {
        Universe::run(quiet(), 5, |comm| {
            let mut v = [comm.rank() as u64 + 1];
            comm.scan(&mut v, ReduceOp::Sum).unwrap();
            let r = comm.rank() as u64;
            assert_eq!(v[0], (r + 1) * (r + 2) / 2);
        });
    }

    #[test]
    fn exscan_computes_exclusive_prefixes() {
        Universe::run(quiet(), 4, |comm| {
            let mut v = [2u64];
            comm.exscan(&mut v, ReduceOp::Prod).unwrap();
            match comm.rank() {
                0 => assert_eq!(v[0], 2, "rank 0 buffer untouched"),
                r => assert_eq!(v[0], 1 << r),
            }
        });
    }

    #[test]
    fn collectives_do_not_cross_match_user_tags() {
        Universe::run(quiet(), 2, |comm| {
            if comm.rank() == 0 {
                // A user message posted *before* the collective must not be
                // stolen by it.
                comm.send_slice(&[9.0f64], 1, 5).unwrap();
                let mut b = vec![0.0f64; 1];
                comm.bcast(&mut b, 1).unwrap();
                assert_eq!(b[0], 3.0);
            } else {
                let mut b = vec![3.0f64; 1];
                comm.bcast(&mut b, 1).unwrap();
                let mut user = [0.0f64; 1];
                comm.recv_slice(&mut user, Some(0), Some(5)).unwrap();
                assert_eq!(user[0], 9.0);
            }
        });
    }
}
