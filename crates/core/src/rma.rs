//! One-sided communication: windows, `put`, `get`, and active-target
//! synchronization with `fence`.
//!
//! Timing follows the paper's §2.5/§4.4 observations: puts dispense with
//! the rendezvous handshake (cheap per-transfer) but every epoch pays the
//! heavyweight fence synchronization, which dominates small messages.
//! Transfer completion is only guaranteed — and only charged — at the
//! closing fence, where all ranks' clocks max-combine with the pending
//! transfer times.
//!
//! Data is applied to the target window under a lock at call time; MPI
//! declares concurrent target access during an epoch erroneous, so this
//! early visibility is unobservable to correct programs.

use std::sync::Arc;

use nonctg_datatype::{self as dt, Datatype};
use nonctg_simnet::Access;

use crate::comm::{CacheState, Comm};
use crate::error::{CoreError, Result};
use crate::fabric::{SimBarrier, Supervision};
use parking_lot::Mutex;

/// Shared state of one window across all ranks.
pub struct WindowState {
    /// Per-rank exposed memory.
    pub(crate) mems: Vec<Mutex<Vec<u8>>>,
    /// Completion-time candidates of transfers issued this epoch.
    pub(crate) pending: Mutex<Vec<f64>>,
    /// Fence barrier (separate generations from the communicator barrier).
    pub(crate) barrier: SimBarrier,
}

impl WindowState {
    pub(crate) fn new(nranks: usize, sup: Arc<Supervision>) -> WindowState {
        WindowState {
            mems: (0..nranks).map(|_| Mutex::new(Vec::new())).collect(),
            pending: Mutex::new(Vec::new()),
            barrier: SimBarrier::new(nranks, sup),
        }
    }
}

/// A rank-local handle on a one-sided window (`MPI_Win`).
pub struct Window {
    state: Arc<WindowState>,
    rank: usize,
    in_epoch: bool,
}

impl Comm {
    /// Collectively create a window exposing `local_bytes` of zeroed memory
    /// on this rank (`MPI_Win_create` + allocation). Every rank must call
    /// this the same number of times, in the same order.
    pub fn win_create(&mut self, local_bytes: usize) -> Result<Window> {
        let id = self.next_win_id;
        self.next_win_id += 1;
        let key = (self.context(), id);
        let state = {
            let mut wins = self.fabric().windows.lock();
            let n = self.size();
            let sup = Arc::clone(&self.fabric().supervision);
            Arc::clone(wins.entry(key).or_insert_with(|| Arc::new(WindowState::new(n, sup))))
        };
        *state.mems[self.rank()].lock() = vec![0u8; local_bytes];
        // Window creation is collective and synchronizing.
        self.barrier()?;
        Ok(Window { state, rank: self.rank(), in_epoch: false })
    }
}

impl Window {
    /// Size of this rank's exposed region.
    pub fn local_len(&self) -> usize {
        self.state.mems[self.rank].lock().len()
    }

    /// Read this rank's exposed memory (e.g. after a closing fence).
    pub fn read_local(&self, range: std::ops::Range<usize>) -> Result<Vec<u8>> {
        let mem = self.state.mems[self.rank].lock();
        if range.end > mem.len() {
            return Err(CoreError::RmaOutOfRange {
                offset: range.start,
                len: range.end - range.start,
                window: mem.len(),
            });
        }
        Ok(mem[range].to_vec())
    }

    /// Overwrite part of this rank's exposed memory (outside epochs).
    pub fn write_local(&self, offset: usize, data: &[u8]) -> Result<()> {
        let mut mem = self.state.mems[self.rank].lock();
        let end = offset + data.len();
        if end > mem.len() {
            return Err(CoreError::RmaOutOfRange { offset, len: data.len(), window: mem.len() });
        }
        mem[offset..end].copy_from_slice(data);
        Ok(())
    }

    /// Active-target fence (`MPI_Win_fence`): closes the previous epoch
    /// (completing all puts/gets) and opens a new one. Collective.
    pub fn fence(&mut self, comm: &mut Comm) -> Result<()> {
        let t0 = comm.wtime();
        let p = comm.platform().clone();
        let sup = Arc::clone(&comm.fabric().supervision);
        let me = comm.world_rank();
        sup.set_blocked(me, Some("fence participants"));
        let rounds = (|| -> Result<f64> {
            // Round 1: everyone has issued their epoch's operations.
            let t1 = self.state.barrier.wait(comm.clock.now())?;
            // All pending completion times are now visible.
            let pending_max = {
                let pend = self.state.pending.lock();
                pend.iter().copied().fold(t1, f64::max)
            };
            // Round 2: agree on the epoch completion time.
            let t2 = self.state.barrier.wait(pending_max)?;
            // Designated rank clears the pending list for the next epoch.
            if comm.rank() == 0 {
                self.state.pending.lock().clear();
            }
            // Round 3: nobody may add new operations until the clear happened.
            self.state.barrier.wait(t2)
        })();
        sup.set_blocked(me, None);
        let t3 = rounds.map_err(|e| comm.fabric().enrich(e))?;
        comm.clock.sync_to(t3);
        comm.charge_exact(p.fence_time(comm.size()));
        comm.trace(crate::trace::EventKind::Fence, t0, None, 0, None);
        self.in_epoch = true;
        Ok(())
    }

    /// One-sided put (`MPI_Put`): write `count` instances of `dtype`, read
    /// from `buf` at byte `origin`, into `target` rank's window at byte
    /// `target_disp`. Completes at the closing [`Window::fence`].
    #[allow(clippy::too_many_arguments)]
    pub fn put(
        &self,
        comm: &mut Comm,
        buf: &[u8],
        origin: usize,
        dtype: &Datatype,
        count: usize,
        target: usize,
        target_disp: usize,
    ) -> Result<()> {
        if !self.in_epoch {
            return Err(CoreError::Rma("put outside a fence epoch"));
        }
        let t0 = comm.wtime();
        comm.check_rank(target)?;
        dtype.require_committed()?;
        let bytes = dt::pack_size(dtype, count)?;
        let p = comm.platform().clone();
        let access = Access::classify(dtype);
        let warm = comm.is_warm();

        // Real data: pack origin layout, deposit into the target window.
        let payload = dt::pack(buf, origin, dtype, count)?;
        {
            let mut mem = self.state.mems[target].lock();
            let end = target_disp + bytes;
            if end > mem.len() {
                return Err(CoreError::RmaOutOfRange {
                    offset: target_disp,
                    len: bytes,
                    window: mem.len(),
                });
            }
            mem[target_disp..end].copy_from_slice(&payload);
        }

        // Origin CPU is busy for the overhead plus any gather staging;
        // the wire part completes by the closing fence.
        let gather = match access {
            Access::Contiguous => 0.0,
            ref a => p.gather_time(bytes as u64, a, warm),
        };
        let t_work = comm.clock.now();
        comm.charge(p.rma.put_overhead + gather);
        if gather > 0.0 {
            // The overhead and the gather are charged as one jittered
            // quantity (splitting would draw two jitter factors and change
            // every figure); the Stage event takes the gather's
            // proportional share of the jittered interval.
            let t_now = comm.clock.now();
            let frac = gather / (p.rma.put_overhead + gather);
            let t_stage = t_now - (t_now - t_work) * frac;
            comm.trace(crate::trace::EventKind::Stage, t_stage, Some(target), bytes, None);
        }
        comm.cache = CacheState::Warm;

        let mut wire = p.wire_time(bytes as u64, p.rma.bw_factor);
        if bytes as u64 > p.proto.internal_buffer {
            wire *= p.rma.large_penalty;
            wire += bytes.div_ceil(p.proto.chunk_size.max(1) as usize) as f64
                * p.proto.chunk_overhead;
        }
        let done = comm.clock.now() + p.net.latency + wire * comm.jitter.factor();
        self.state.pending.lock().push(done);
        comm.trace(crate::trace::EventKind::Put, t0, Some(target), bytes, None);
        Ok(())
    }

    /// One-sided get (`MPI_Get`): read `bytes` from `target`'s window at
    /// `target_disp` into `buf` at `origin` with layout `dtype`×`count`.
    /// Data is valid only after the closing [`Window::fence`].
    #[allow(clippy::too_many_arguments)]
    pub fn get(
        &self,
        comm: &mut Comm,
        buf: &mut [u8],
        origin: usize,
        dtype: &Datatype,
        count: usize,
        target: usize,
        target_disp: usize,
    ) -> Result<()> {
        if !self.in_epoch {
            return Err(CoreError::Rma("get outside a fence epoch"));
        }
        let t0 = comm.wtime();
        comm.check_rank(target)?;
        dtype.require_committed()?;
        let bytes = dt::pack_size(dtype, count)?;
        let p = comm.platform().clone();
        let access = Access::classify(dtype);

        let packed = {
            let mem = self.state.mems[target].lock();
            let end = target_disp + bytes;
            if end > mem.len() {
                return Err(CoreError::RmaOutOfRange {
                    offset: target_disp,
                    len: bytes,
                    window: mem.len(),
                });
            }
            mem[target_disp..end].to_vec()
        };
        dt::unpack_from(&packed, dtype, count, buf, origin)?;

        let scatter = match access {
            Access::Contiguous => 0.0,
            ref a => p.scatter_time(bytes as u64, a, comm.is_warm()),
        };
        let t_work = comm.clock.now();
        comm.charge(p.rma.put_overhead + scatter);
        if scatter > 0.0 {
            // Proportional share of the single jittered charge, as in put.
            let t_now = comm.clock.now();
            let frac = scatter / (p.rma.put_overhead + scatter);
            let t_scatter = t_now - (t_now - t_work) * frac;
            comm.trace(crate::trace::EventKind::Unstage, t_scatter, Some(target), bytes, None);
        }
        comm.cache = CacheState::Warm;

        let mut wire = p.wire_time(bytes as u64, p.rma.bw_factor);
        if bytes as u64 > p.proto.internal_buffer {
            wire *= p.rma.large_penalty;
            wire += bytes.div_ceil(p.proto.chunk_size.max(1) as usize) as f64
                * p.proto.chunk_overhead;
        }
        let done = comm.clock.now() + p.net.latency + wire * comm.jitter.factor();
        self.state.pending.lock().push(done);
        comm.trace(crate::trace::EventKind::Get, t0, Some(target), bytes, None);
        Ok(())
    }
}
