//! Nonblocking point-to-point: `isend`, `irecv`, `sendrecv`, and request
//! completion.
//!
//! Overlap is modeled faithfully in virtual time: an `isend` charges only
//! the local staging work and returns; an `irecv` records its *posting*
//! time; the transfer's completion time is computed from those stamps, so
//! computation performed between posting and `wait` genuinely hides
//! communication (the clock only syncs forward at `wait`).

use std::time::Instant;

use crossbeam::channel::{Receiver, RecvTimeoutError};
use nonctg_datatype::{self as dt, Datatype, Scalar};

use crate::comm::Comm;
use crate::error::{CoreError, Result};
use crate::fabric::{poll_slice, spin_round, SPIN_ROUNDS};
use crate::p2p::RecvStatus;

/// Handle on an in-flight nonblocking send.
#[must_use = "a send request must be waited on"]
pub struct SendRequest {
    state: SendState,
}

pub(crate) enum SendState {
    /// Locally complete at the given virtual time (eager/buffered path).
    Done(f64),
    /// Rendezvous in flight; the receiver reports the completion time.
    Pending(Receiver<f64>),
}

impl SendRequest {
    pub(crate) fn new(state: SendState) -> SendRequest {
        SendRequest { state }
    }

    /// Block until the send is complete (`MPI_Wait`); the clock advances
    /// to the completion time if it has not already passed it.
    ///
    /// Fails with [`CoreError::PeerFailed`] if the fabric is poisoned
    /// while the rendezvous is pending, or [`CoreError::Deadlock`] after
    /// the supervision timeout.
    pub fn wait(self, comm: &mut Comm) -> Result<()> {
        match self.state {
            SendState::Done(t) => {
                comm.clock.sync_to(t);
                Ok(())
            }
            SendState::Pending(rx) => {
                let sup = std::sync::Arc::clone(&comm.fabric().supervision);
                let me = comm.world_rank();
                let deadline = Instant::now() + sup.timeout();
                sup.set_blocked(me, Some("rendezvous completion"));
                let mut spins = SPIN_ROUNDS;
                let res = loop {
                    let now = Instant::now();
                    if let Some(rank) = sup.failed_rank() {
                        // A queued completion still wins over poison.
                        if let Ok(done) = rx.try_recv() {
                            break Ok(done);
                        }
                        break Err(CoreError::PeerFailed { rank });
                    }
                    if now >= deadline {
                        break Err(CoreError::deadlock("rendezvous completion"));
                    }
                    // Spin briefly before parking: rendezvous replies
                    // usually land within microseconds of the wait.
                    if spins > 0 {
                        spins -= 1;
                        if let Ok(done) = rx.try_recv() {
                            break Ok(done);
                        }
                        spin_round();
                        continue;
                    }
                    let slice = (deadline - now).min(poll_slice());
                    match rx.recv_timeout(slice) {
                        Ok(done) => break Ok(done),
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => {
                            // The receiver dropped the envelope without
                            // replying — its rank failed mid-receive.
                            break match sup.failed_rank() {
                                Some(rank) => Err(CoreError::PeerFailed { rank }),
                                None => Err(CoreError::deadlock("rendezvous completion")),
                            };
                        }
                    }
                };
                sup.set_blocked(me, None);
                let done = res.map_err(|e| comm.fabric().enrich(e))?;
                comm.clock.sync_to(done);
                Ok(())
            }
        }
    }

    /// Like [`Self::wait`], but additionally bounded by `timeout_s`
    /// seconds of wall-clock time. Returns [`CoreError::WaitTimeout`]
    /// (and counts it in [`crate::FaultStats::timeouts`]) if neither
    /// completion, poison, nor the supervision watchdog fires first —
    /// so every blocking wait in a chaos run is bounded even when the
    /// fabric-wide timeout is long.
    pub fn wait_timeout(self, comm: &mut Comm, timeout_s: f64) -> Result<()> {
        match self.state {
            SendState::Done(t) => {
                comm.clock.sync_to(t);
                Ok(())
            }
            SendState::Pending(rx) => {
                let sup = std::sync::Arc::clone(&comm.fabric().supervision);
                let me = comm.world_rank();
                let caller = std::time::Duration::from_secs_f64(timeout_s.max(0.0));
                let caller_is_shorter = caller <= sup.timeout();
                let deadline = Instant::now() + caller.min(sup.timeout());
                sup.set_blocked(me, Some("rendezvous completion (bounded)"));
                let mut spins = SPIN_ROUNDS;
                let res = loop {
                    let now = Instant::now();
                    if let Some(rank) = sup.failed_rank() {
                        if let Ok(done) = rx.try_recv() {
                            break Ok(done);
                        }
                        break Err(CoreError::PeerFailed { rank });
                    }
                    if now >= deadline {
                        break if caller_is_shorter {
                            sup.with_faults(me, |f| f.timeouts += 1);
                            Err(CoreError::WaitTimeout {
                                waiting_for: "send completion",
                                timeout_ms: (timeout_s.max(0.0) * 1e3) as u64,
                            })
                        } else {
                            Err(CoreError::deadlock("rendezvous completion"))
                        };
                    }
                    if spins > 0 {
                        spins -= 1;
                        if let Ok(done) = rx.try_recv() {
                            break Ok(done);
                        }
                        spin_round();
                        continue;
                    }
                    let slice = (deadline - now).min(poll_slice());
                    match rx.recv_timeout(slice) {
                        Ok(done) => break Ok(done),
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => {
                            break match sup.failed_rank() {
                                Some(rank) => Err(CoreError::PeerFailed { rank }),
                                None => Err(CoreError::deadlock("rendezvous completion")),
                            };
                        }
                    }
                };
                sup.set_blocked(me, None);
                let done = res.map_err(|e| comm.fabric().enrich(e))?;
                comm.clock.sync_to(done);
                Ok(())
            }
        }
    }

    /// Cancel the request (`MPI_Cancel` + free). A locally-complete send
    /// cannot be cancelled — its completion time is simply applied. A
    /// pending rendezvous is abandoned: dropping the back-channel lets
    /// the peer's stream pump observe the disconnect and stop cleanly
    /// (never a hang), and the cancellation is counted in
    /// [`crate::FaultStats::cancels`]. Returns [`CoreError::Cancelled`]
    /// when the request was actually torn down.
    pub fn cancel(self, comm: &mut Comm) -> Result<()> {
        match self.state {
            SendState::Done(t) => {
                comm.clock.sync_to(t);
                Ok(())
            }
            SendState::Pending(rx) => {
                let me = comm.world_rank();
                // A completion that already arrived wins over the cancel,
                // exactly as MPI_Cancel may fail to cancel a matched send.
                if let Ok(done) = rx.try_recv() {
                    comm.clock.sync_to(done);
                    return Ok(());
                }
                drop(rx);
                comm.fabric().supervision.with_faults(me, |f| f.cancels += 1);
                Err(CoreError::Cancelled { what: "send request" })
            }
        }
    }

    /// Nonblocking completion check (`MPI_Test`). On `true` the request is
    /// finished and the clock has advanced; the request is consumed either
    /// way, so call [`Self::wait`] instead when you must have completion.
    pub fn test(self, comm: &mut Comm) -> std::result::Result<(), SendRequest> {
        match self.state {
            SendState::Done(t) => {
                comm.clock.sync_to(t);
                Ok(())
            }
            SendState::Pending(rx) => match rx.try_recv() {
                Ok(done) => {
                    comm.clock.sync_to(done);
                    Ok(())
                }
                Err(_) => Err(SendRequest { state: SendState::Pending(rx) }),
            },
        }
    }
}

/// Handle on a posted nonblocking receive. Holds the destination buffer
/// borrow until completion, which is what makes the API data-race free.
#[must_use = "a receive request must be waited on"]
pub struct RecvRequest<'buf> {
    buf: &'buf mut [u8],
    origin: usize,
    dtype: Datatype,
    count: usize,
    src: Option<usize>,
    tag: Option<i32>,
    t_post: f64,
}

impl RecvRequest<'_> {
    /// Block until the message arrives and is delivered (`MPI_Wait`).
    pub fn wait(self, comm: &mut Comm) -> Result<RecvStatus> {
        comm.recv_with_post_time(
            self.buf,
            self.origin,
            &self.dtype,
            self.count,
            self.src,
            self.tag,
            self.t_post,
        )
    }

    /// Complete only if a matching message has already arrived
    /// (`MPI_Test`).
    pub fn test(self, comm: &mut Comm) -> std::result::Result<RecvStatus, Self> {
        if comm.probe(self.src, self.tag) {
            // A matching envelope is queued: wait cannot block for long.
            match comm.recv_with_post_time(
                self.buf,
                self.origin,
                &self.dtype,
                self.count,
                self.src,
                self.tag,
                self.t_post,
            ) {
                Ok(st) => Ok(st),
                Err(_) => panic!("probed message vanished"),
            }
        } else {
            Err(self)
        }
    }
}

impl Comm {
    /// Nonblocking standard send (`MPI_Isend`). The gather/staging work is
    /// charged immediately (it runs on this core); the wire proceeds in
    /// the background and [`SendRequest::wait`] syncs to its completion.
    pub fn isend(
        &mut self,
        buf: &[u8],
        origin: usize,
        dtype: &Datatype,
        count: usize,
        dst: usize,
        tag: i32,
    ) -> Result<SendRequest> {
        let t0 = self.wtime();
        let bytes = dt::pack_size(dtype, count)?;
        let req =
            // `may_stream: false` — an isend must not block pumping chunks
            // (sendrecv posts the receive only after the isend returns).
            self.send_impl(buf, origin, dtype, count, dst, tag, crate::p2p::SendMode::Standard, false)?;
        self.trace(crate::trace::EventKind::Isend, t0, Some(dst), bytes, Some(tag));
        Ok(req)
    }

    /// Nonblocking send of a contiguous scalar slice.
    pub fn isend_slice<T: Scalar>(
        &mut self,
        data: &[T],
        dst: usize,
        tag: i32,
    ) -> Result<SendRequest> {
        let t = Datatype::of::<T>();
        self.isend(dt::as_bytes(data), 0, &t, data.len(), dst, tag)
    }

    /// Post a nonblocking receive (`MPI_Irecv`).
    pub fn irecv<'buf>(
        &mut self,
        buf: &'buf mut [u8],
        origin: usize,
        dtype: &Datatype,
        count: usize,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> Result<RecvRequest<'buf>> {
        dtype.require_committed()?;
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        Ok(RecvRequest {
            buf,
            origin,
            dtype: dtype.clone(),
            count,
            src,
            tag,
            t_post: self.wtime(),
        })
    }

    /// Post a nonblocking receive into a scalar slice.
    pub fn irecv_slice<'buf, T: Scalar>(
        &mut self,
        buf: &'buf mut [T],
        src: Option<usize>,
        tag: Option<i32>,
    ) -> Result<RecvRequest<'buf>> {
        let t = Datatype::of::<T>();
        let n = buf.len();
        self.irecv(dt::as_bytes_mut(buf), 0, &t, n, src, tag)
    }

    /// Combined send+receive that cannot deadlock (`MPI_Sendrecv`): the
    /// send is initiated nonblockingly, the receive progresses, then the
    /// send completes.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &mut self,
        sendbuf: &[u8],
        send_origin: usize,
        send_type: &Datatype,
        send_count: usize,
        dst: usize,
        send_tag: i32,
        recvbuf: &mut [u8],
        recv_origin: usize,
        recv_type: &Datatype,
        recv_count: usize,
        src: Option<usize>,
        recv_tag: Option<i32>,
    ) -> Result<RecvStatus> {
        let req = self.isend(sendbuf, send_origin, send_type, send_count, dst, send_tag)?;
        let status = self.recv(recvbuf, recv_origin, recv_type, recv_count, src, recv_tag)?;
        req.wait(self)?;
        Ok(status)
    }

    /// Exchange equal-shaped scalar slices with a partner (`MPI_Sendrecv`
    /// convenience).
    pub fn sendrecv_slices<T: Scalar>(
        &mut self,
        send: &[T],
        recv: &mut [T],
        partner: usize,
        tag: i32,
    ) -> Result<RecvStatus> {
        let t = Datatype::of::<T>();
        let (ns, nr) = (send.len(), recv.len());
        self.sendrecv(
            dt::as_bytes(send),
            0,
            &t,
            ns,
            partner,
            tag,
            dt::as_bytes_mut(recv),
            0,
            &t,
            nr,
            Some(partner),
            Some(tag),
        )
    }

    /// Wait on a set of send requests (`MPI_Waitall` for sends).
    pub fn waitall(&mut self, requests: Vec<SendRequest>) -> Result<()> {
        for r in requests {
            r.wait(self)?;
        }
        Ok(())
    }
}
