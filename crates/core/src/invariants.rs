//! Gated fabric invariant checking — the runtime half of the correctness
//! oracle.
//!
//! When enabled (environment variable `NONCTG_ORACLE=1`, or
//! [`set_oracle_checks`] from a harness), the fabric audits itself at the
//! points where past bugs have hidden:
//!
//! - **payload-pool aliasing** — a pooled staging buffer must never be
//!   handed out twice while still in flight;
//! - **chunk-ring order** — a streamed message's chunks must drain in the
//!   exact order and length they were emitted, and their cumulative size
//!   must land exactly on the advertised total;
//! - **clock monotonicity** — a rank's virtual time never moves backwards
//!   across operations, including across `split` communicator handles;
//! - **receive conservation** — a matched receive consumes the packed
//!   bytes of whole instances and may drop only a sub-instance remainder.
//!
//! A violation panics immediately with a `fabric invariant violated:`
//! message; inside a [`crate::Universe`] the panic surfaces as the rank's
//! failure. The checks cost a few atomic loads when disabled.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

use parking_lot::Mutex;

static STATE: AtomicU8 = AtomicU8::new(0); // 0 unknown, 1 off, 2 on

/// Whether oracle invariant checks are active for this process.
pub fn oracle_checks_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        0 => {
            let on = std::env::var("NONCTG_ORACLE")
                .map(|v| matches!(v.as_str(), "1" | "true" | "on"))
                .unwrap_or(false);
            STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        2 => true,
        _ => false,
    }
}

/// Force the checks on or off, overriding the environment (test harnesses
/// and the oracle driver flip this on for the whole process).
pub fn set_oracle_checks(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

#[cold]
pub(crate) fn violation(msg: &str) -> ! {
    panic!("fabric invariant violated: {msg}");
}

/// Per-rank floor on virtual time: operations may only move it forward.
pub(crate) struct ClockLedger {
    last: Vec<Mutex<f64>>,
}

impl ClockLedger {
    pub(crate) fn new(nranks: usize) -> ClockLedger {
        ClockLedger { last: (0..nranks).map(|_| Mutex::new(0.0)).collect() }
    }

    /// Record rank `rank`'s clock reading `now`; panics if it regressed.
    pub(crate) fn tick(&self, rank: usize, now: f64) {
        if !oracle_checks_enabled() {
            return;
        }
        let mut last = self.last[rank].lock();
        if now < *last {
            violation(&format!(
                "virtual time of rank {rank} moved backwards: {now} after {last}",
                last = *last
            ));
        }
        *last = now;
    }
}

/// Shared audit of one chunked stream: the sender logs every emitted
/// chunk, the receiver checks each drained chunk against that log.
#[derive(Debug)]
pub(crate) struct StreamAudit {
    total: usize,
    emitted: Mutex<VecDeque<usize>>,
    emitted_bytes: AtomicUsize,
    drained_bytes: AtomicUsize,
}

impl StreamAudit {
    pub(crate) fn new(total: usize) -> StreamAudit {
        StreamAudit {
            total,
            emitted: Mutex::new(VecDeque::new()),
            emitted_bytes: AtomicUsize::new(0),
            drained_bytes: AtomicUsize::new(0),
        }
    }

    /// Sender side: one chunk of `len` bytes entered the ring.
    pub(crate) fn emit(&self, len: usize) {
        if !oracle_checks_enabled() {
            return;
        }
        if len == 0 {
            violation("chunk ring carried an empty chunk");
        }
        let sent = self.emitted_bytes.fetch_add(len, Ordering::AcqRel) + len;
        if sent > self.total {
            violation(&format!(
                "chunk ring overflowed its advertised total: {sent} emitted of {}",
                self.total
            ));
        }
        self.emitted.lock().push_back(len);
    }

    /// Receiver side: one chunk of `len` bytes left the ring. Must match
    /// the oldest un-drained emission exactly (order and length).
    pub(crate) fn drain(&self, len: usize) {
        if !oracle_checks_enabled() {
            return;
        }
        match self.emitted.lock().pop_front() {
            Some(expect) if expect == len => {}
            Some(expect) => violation(&format!(
                "chunk ring drained out of order: got {len} bytes, expected the {expect}-byte chunk"
            )),
            None => violation(&format!("chunk ring drained a {len}-byte chunk never emitted")),
        }
        self.drained_bytes.fetch_add(len, Ordering::AcqRel);
    }

    /// Receiver side, after the drain loop ran to completion: every
    /// emitted byte was drained and the stream hit its advertised total.
    pub(crate) fn finish(&self) {
        if !oracle_checks_enabled() {
            return;
        }
        let drained = self.drained_bytes.load(Ordering::Acquire);
        if drained != self.total {
            violation(&format!(
                "chunk stream closed at {drained} of {} advertised bytes",
                self.total
            ));
        }
        if let Some(len) = self.emitted.lock().front() {
            violation(&format!("chunk stream closed with an undrained {len}-byte chunk"));
        }
    }
}

/// Receive conservation: `consumed` packed bytes were deposited out of
/// `total` sent; anything dropped must be smaller than one instance
/// (`instance` bytes; 0 for empty types, which must consume nothing).
pub(crate) fn check_recv_conservation(total: usize, consumed: usize, instance: usize) {
    if !oracle_checks_enabled() {
        return;
    }
    if consumed > total {
        violation(&format!("receive consumed {consumed} of only {total} sent bytes"));
    }
    let dropped = total - consumed;
    if instance == 0 {
        if consumed != 0 {
            violation(&format!("receive of an empty type consumed {consumed} bytes"));
        }
    } else if !consumed.is_multiple_of(instance) {
        violation(&format!(
            "receive consumed {consumed} bytes, not a whole number of {instance}-byte instances"
        ));
    } else if dropped >= instance {
        violation(&format!(
            "receive dropped {dropped} bytes, at least one whole {instance}-byte instance"
        ));
    }
}

/// Payload-pool aliasing registry: the addresses of buffers currently
/// lent out. Owned by the pool; a pointer appearing twice means two live
/// [`crate::fabric::PooledBuf`]s share an allocation.
#[derive(Default)]
pub(crate) struct AliasRegistry {
    out: Mutex<Vec<usize>>,
}

impl AliasRegistry {
    /// A buffer at `ptr` left the pool.
    pub(crate) fn lend(&self, ptr: usize) {
        if !oracle_checks_enabled() || ptr == 0 {
            return;
        }
        let mut out = self.out.lock();
        if out.contains(&ptr) {
            violation(&format!("payload pool lent buffer {ptr:#x} twice while in flight"));
        }
        out.push(ptr);
    }

    /// The buffer at `ptr` came back (returned or freed).
    pub(crate) fn give_back(&self, ptr: usize) {
        if !oracle_checks_enabled() || ptr == 0 {
            return;
        }
        let mut out = self.out.lock();
        if let Some(i) = out.iter().position(|&p| p == ptr) {
            out.swap_remove(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on() {
        set_oracle_checks(true);
    }

    #[test]
    fn stream_audit_accepts_matching_drain() {
        on();
        let a = StreamAudit::new(10);
        a.emit(4);
        a.emit(6);
        a.drain(4);
        a.drain(6);
        a.finish();
    }

    #[test]
    #[should_panic(expected = "fabric invariant violated")]
    fn stream_audit_rejects_reordered_drain() {
        on();
        let a = StreamAudit::new(10);
        a.emit(4);
        a.emit(6);
        a.drain(6);
    }

    #[test]
    #[should_panic(expected = "fabric invariant violated")]
    fn stream_audit_rejects_short_stream() {
        on();
        let a = StreamAudit::new(10);
        a.emit(4);
        a.drain(4);
        a.finish();
    }

    #[test]
    #[should_panic(expected = "fabric invariant violated")]
    fn conservation_rejects_dropped_instance() {
        on();
        // 24 sent, 8 consumed, 8-byte instances: a whole instance vanished.
        check_recv_conservation(24, 8, 8);
    }

    #[test]
    fn conservation_allows_partial_trailing_instance() {
        on();
        check_recv_conservation(20, 16, 8);
        check_recv_conservation(0, 0, 8);
        check_recv_conservation(5, 0, 0);
    }

    #[test]
    #[should_panic(expected = "fabric invariant violated")]
    fn alias_registry_rejects_double_lend() {
        on();
        let r = AliasRegistry::default();
        r.lend(0x1000);
        r.lend(0x1000);
    }

    #[test]
    fn alias_registry_allows_relend_after_return() {
        on();
        let r = AliasRegistry::default();
        r.lend(0x2000);
        r.give_back(0x2000);
        r.lend(0x2000);
    }

    #[test]
    #[should_panic(expected = "virtual time of rank 1 moved backwards")]
    fn clock_ledger_rejects_regression() {
        on();
        let l = ClockLedger::new(2);
        l.tick(1, 5.0);
        l.tick(1, 4.0);
    }
}
