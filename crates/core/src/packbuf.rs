//! `MPI_Pack` / `MPI_Unpack` / `MPI_Pack_size` equivalents on [`Comm`].
//!
//! These wrap the datatype crate's pack engine with the cost accounting
//! the paper's packing schemes exercise: each call pays a fixed library
//! overhead plus a gather exactly as fast as a user copy loop (§4.3) —
//! which is why packing-by-element is disastrous and packing-a-vector
//! matches manual copying.

use nonctg_datatype::{self as dt, Datatype};
use nonctg_simnet::Access;

use crate::comm::{CacheState, Comm};
use crate::error::Result;

impl Comm {
    /// Upper bound (here: exact) packed size of `count` instances
    /// (`MPI_Pack_size`).
    pub fn pack_size(&self, dtype: &Datatype, count: usize) -> Result<usize> {
        Ok(dt::pack_size(dtype, count)?)
    }

    /// Warm the compiled pack-plan cache for `(dtype, count)` without
    /// moving data or advancing virtual time.
    ///
    /// Call before a timed loop so the first timed pack/send does not pay
    /// plan compilation — a wall-clock-only effect; the virtual-time cost
    /// model charges identically either way.
    pub fn pack_prepare(&self, dtype: &Datatype, count: usize) {
        let _ = dt::plan_for(dtype, count);
    }

    /// Pack `count` instances of `dtype` (read from `src` at byte
    /// `origin`) into `outbuf`, advancing `position` (`MPI_Pack`).
    ///
    /// Charges one library-call overhead plus the gather cost — calling
    /// this once per element reproduces the paper's packing(e) scheme.
    ///
    /// An explicit pack rides the same degradation ladder as the
    /// internal staging pack: an injected plan-compile failure falls
    /// back to the uncompiled interpreter, an injected parallel-pack
    /// worker failure pins the serial kernel — both counted in
    /// [`crate::FaultStats`] and traced as demotions.
    pub fn pack(
        &mut self,
        src: &[u8],
        origin: usize,
        dtype: &Datatype,
        count: usize,
        outbuf: &mut [u8],
        position: &mut usize,
    ) -> Result<()> {
        dtype.require_committed()?;
        let bytes = dt::pack_size(dtype, count)? as u64;
        let access = Access::classify(dtype);
        let mut plan_failed = false;
        let mut serial = false;
        if !matches!(access, Access::Contiguous) {
            if let Some(fp) = self.platform().fault.clone() {
                let me = self.world_rank();
                let sup = std::sync::Arc::clone(&self.fabric().supervision);
                let op = sup.next_op(me);
                if fp.plan_compile_fails(me, op) {
                    plan_failed = true;
                    sup.with_faults(me, |s| s.plan_fallbacks += 1);
                    let t = self.wtime();
                    self.trace(crate::trace::EventKind::Demote, t, None, bytes as usize, None);
                } else if fp.pack_worker_fails(me, op)
                    && dt::pack_threads() > 1
                    && bytes as usize >= dt::parallel_threshold()
                {
                    serial = true;
                    sup.with_faults(me, |s| s.serial_fallbacks += 1);
                    let t = self.wtime();
                    self.trace(crate::trace::EventKind::Demote, t, None, bytes as usize, None);
                }
            }
        }
        if *position > outbuf.len() {
            return Err(dt::DatatypeError::InvalidPosition {
                position: *position,
                buffer_len: outbuf.len(),
            }
            .into());
        }
        let written = if plan_failed {
            dt::pack_into_uncompiled(src, origin, dtype, count, &mut outbuf[*position..])?
        } else if serial {
            dt::pack_into_serial(src, origin, dtype, count, &mut outbuf[*position..])?
        } else {
            dt::pack_into(src, origin, dtype, count, &mut outbuf[*position..])?
        };
        *position += written;
        let warm = self.is_warm();
        let t0 = self.wtime();
        let t = self.platform().pack_call_time(bytes, &access, warm);
        self.charge(t);
        self.cache = CacheState::Warm;
        self.trace(crate::trace::EventKind::Pack, t0, None, bytes as usize, None);
        Ok(())
    }

    /// Element-wise packing: exactly equivalent (in data *and* virtual
    /// time) to calling [`Comm::pack`] once per element with a primitive
    /// `elem` type, reading element `i` from byte
    /// `first_origin + i*stride_bytes` — but performs the data movement in
    /// one batched strided copy so the wall-clock cost stays sane at 10^8
    /// elements. This is the paper's packing(e) scheme.
    #[allow(clippy::too_many_arguments)]
    pub fn pack_elementwise(
        &mut self,
        src: &[u8],
        first_origin: usize,
        stride_bytes: usize,
        elem: &Datatype,
        n: usize,
        outbuf: &mut [u8],
        position: &mut usize,
    ) -> Result<()> {
        elem.require_committed()?;
        let sz = elem.size() as usize;
        // Real data movement, identical to n individual packs. Left
        // uncommitted on purpose: a fresh type per call would churn the
        // compiled-plan cache; the uncompiled strided path is used instead.
        let strided = Datatype::hvector(n, 1, stride_bytes as i64, elem)?;
        dt::pack_with_position(src, first_origin, &strided, 1, outbuf, position)?;
        // Virtual time: n library calls, each gathering one element. A
        // single element of a primitive type classifies as contiguous,
        // exactly as n separate `pack` calls would.
        let warm = self.is_warm();
        let t0 = self.wtime();
        let per_call = self.platform().pack_call_time(sz as u64, &Access::Contiguous, warm);
        self.charge(per_call * n as f64);
        self.cache = CacheState::Warm;
        self.trace(crate::trace::EventKind::Pack, t0, None, sz * n, None);
        Ok(())
    }

    /// Unpack from `inbuf` at `position` into `count` instances of `dtype`
    /// laid out in `dst` at byte `origin` (`MPI_Unpack`).
    pub fn unpack(
        &mut self,
        inbuf: &[u8],
        position: &mut usize,
        dtype: &Datatype,
        count: usize,
        dst: &mut [u8],
        origin: usize,
    ) -> Result<()> {
        dtype.require_committed()?;
        let bytes = dt::pack_size(dtype, count)? as u64;
        dt::unpack_with_position(inbuf, position, dtype, count, dst, origin)?;
        let access = Access::classify(dtype);
        let warm = self.is_warm();
        let t0 = self.wtime();
        let t = self.platform().pack_call_time(bytes, &access, warm);
        self.charge(t);
        self.cache = CacheState::Warm;
        self.trace(crate::trace::EventKind::Unpack, t0, None, bytes as usize, None);
        Ok(())
    }
}
