//! Per-rank event tracing.
//!
//! When enabled on a [`crate::Comm`], every communication and memory operation
//! records a [`TraceEvent`] with its virtual start/end times — enough to
//! reconstruct a timeline of a run, attribute time to protocol phases,
//! and debug cost-model questions ("where did those 40 µs go?").
//!
//! Tracing is off by default and costs one branch per operation when off.
//! Recording is bounded: events land in a ring buffer whose capacity (and
//! an optional keep-1-in-N sampling stride) come from a [`TraceConfig`],
//! so a multi-gigabyte sweep cannot exhaust memory by leaving tracing on.

use std::fmt;

/// What kind of operation an event describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// Blocking standard send (full duration including rendezvous wait).
    Send,
    /// Buffered send (local completion).
    Bsend,
    /// Nonblocking send initiation (local staging only).
    Isend,
    /// Receive (from posting to delivery).
    Recv,
    /// One-sided put (origin-side work).
    Put,
    /// One-sided get (origin-side work).
    Get,
    /// Window fence.
    Fence,
    /// Barrier.
    Barrier,
    /// `pack` / `pack_elementwise` call.
    Pack,
    /// `unpack` call.
    Unpack,
    /// User-space copy charged via `charge_copy`/`charge_scatter`.
    Copy,
    /// Cache flush between measurements.
    Flush,
    /// Internal-buffer staging gather inside a derived-type or buffered
    /// send (the no-overlap memory phase of the paper's §4.1); nests
    /// inside the enclosing `Send`/`Bsend`/`Put` event.
    Stage,
    /// Receive-side scatter of a non-contiguous delivery into the user
    /// datatype; nests inside the enclosing `Recv` event.
    Unstage,
    /// One chunk of a pipelined rendezvous payload crossing the ring
    /// (sender: packed-and-posted; receiver: drained-and-delivered).
    /// Zero-width in virtual time — the enclosing `Send`/`Recv` carries
    /// the cost — so it never perturbs phase attribution.
    Chunk,
    /// A graceful degradation: the runtime swapped a faster datapath for
    /// a slower-but-correct one (pipelined→whole rendezvous, pooled→owned
    /// staging, compiled→interpreted pack, parallel→serial pack).
    /// Zero-width in virtual time, like `Chunk`.
    Demote,
    /// The adaptive datapath selector chose an engine (pack / iovec /
    /// element) for one non-contiguous send. Zero-width in virtual time;
    /// `bytes` carries the message size the decision was made for.
    Select,
}

impl EventKind {
    /// Every kind, in discriminant order (`ALL[k as usize] == k`).
    pub const ALL: [EventKind; 17] = [
        EventKind::Send,
        EventKind::Bsend,
        EventKind::Isend,
        EventKind::Recv,
        EventKind::Put,
        EventKind::Get,
        EventKind::Fence,
        EventKind::Barrier,
        EventKind::Pack,
        EventKind::Unpack,
        EventKind::Copy,
        EventKind::Flush,
        EventKind::Stage,
        EventKind::Unstage,
        EventKind::Chunk,
        EventKind::Demote,
        EventKind::Select,
    ];

    /// Number of kinds — the length of per-kind accumulator arrays.
    pub const COUNT: usize = Self::ALL.len();

    /// Short fixed-width label for timeline rendering.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Send => "send",
            EventKind::Bsend => "bsend",
            EventKind::Isend => "isend",
            EventKind::Recv => "recv",
            EventKind::Put => "put",
            EventKind::Get => "get",
            EventKind::Fence => "fence",
            EventKind::Barrier => "barrier",
            EventKind::Pack => "pack",
            EventKind::Unpack => "unpack",
            EventKind::Copy => "copy",
            EventKind::Flush => "flush",
            EventKind::Stage => "stage",
            EventKind::Unstage => "unstage",
            EventKind::Chunk => "chunk",
            EventKind::Demote => "demote",
            EventKind::Select => "select",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One traced operation on one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Operation kind.
    pub kind: EventKind,
    /// Virtual time the operation began.
    pub t_start: f64,
    /// Virtual time the operation completed on this rank.
    pub t_end: f64,
    /// Peer rank, when the operation has one.
    pub peer: Option<usize>,
    /// Payload bytes moved (0 for pure synchronization).
    pub bytes: usize,
    /// Message tag, when applicable.
    pub tag: Option<i32>,
    /// Position in an ordered stream: for [`EventKind::Chunk`] the chunk's
    /// sequence number within its pipelined transfer (0-based, counted
    /// independently on the sender and the receiver).
    pub seq: Option<u32>,
    /// Chunk-ring occupancy when the event was recorded, **including** the
    /// chunk the event describes: on the sender, how many chunks sat in
    /// the ring right after this one was posted; on the receiver, how many
    /// were available right when this one was drained. A drain depth of 1
    /// means the receiver caught the sender (no chunk was waiting behind
    /// this one); a depth at ring capacity means the pipeline was full.
    pub depth: Option<u32>,
}

impl TraceEvent {
    /// Duration in virtual seconds.
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }
}

/// Bounds on what a [`Tracer`] retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum events retained per rank; once full, the oldest event is
    /// overwritten (ring buffer). Clamped to at least 1.
    pub capacity: usize,
    /// Keep one event in `sample` (1 = keep everything). Sampling is by
    /// record order, deterministic, and applied before the ring.
    pub sample: u64,
}

impl TraceConfig {
    /// Default ring capacity (events), ~48 MB of `TraceEvent`s.
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Read `NONCTG_TRACE_CAP` and `NONCTG_TRACE_SAMPLE` from the
    /// environment, falling back to the defaults on absence or parse
    /// failure.
    pub fn from_env() -> TraceConfig {
        fn env_u64(name: &str, default: u64) -> u64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&v| v > 0)
                .unwrap_or(default)
        }
        TraceConfig {
            capacity: env_u64("NONCTG_TRACE_CAP", Self::DEFAULT_CAPACITY as u64) as usize,
            sample: env_u64("NONCTG_TRACE_SAMPLE", 1),
        }
    }
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig { capacity: Self::DEFAULT_CAPACITY, sample: 1 }
    }
}

/// Recording counters of a [`Tracer`] (all zero when tracing is off).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Events offered to the tracer while enabled.
    pub seen: u64,
    /// Events discarded by the sampling stride.
    pub sampled_out: u64,
    /// Events overwritten after the ring filled.
    pub dropped: u64,
}

/// The (optional) per-rank event recorder.
#[derive(Debug, Default)]
pub(crate) struct Tracer {
    buf: Option<TraceBuf>,
}

#[derive(Debug)]
struct TraceBuf {
    events: Vec<TraceEvent>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    cfg: TraceConfig,
    stats: TraceStats,
}

impl Tracer {
    #[inline]
    pub fn enabled(&self) -> bool {
        self.buf.is_some()
    }

    pub fn enable(&mut self) {
        self.enable_with(TraceConfig::from_env());
    }

    pub fn enable_with(&mut self, mut cfg: TraceConfig) {
        if self.buf.is_none() {
            cfg.capacity = cfg.capacity.max(1);
            cfg.sample = cfg.sample.max(1);
            self.buf = Some(TraceBuf {
                events: Vec::new(),
                head: 0,
                cfg,
                stats: TraceStats::default(),
            });
        }
    }

    /// Recording counters; zeros when tracing was never enabled.
    pub fn stats(&self) -> TraceStats {
        self.buf.as_ref().map(|b| b.stats).unwrap_or_default()
    }

    /// Disable and return the retained events in chronological order.
    pub fn take(&mut self) -> Vec<TraceEvent> {
        match self.buf.take() {
            Some(mut b) => {
                b.events.rotate_left(b.head);
                b.events
            }
            None => Vec::new(),
        }
    }

    #[inline]
    pub fn record(&mut self, ev: TraceEvent) {
        let Some(b) = &mut self.buf else { return };
        b.stats.seen += 1;
        if b.cfg.sample > 1 && (b.stats.seen - 1) % b.cfg.sample != 0 {
            b.stats.sampled_out += 1;
            return;
        }
        if b.events.len() < b.cfg.capacity {
            b.events.push(ev);
        } else {
            b.events[b.head] = ev;
            b.head = (b.head + 1) % b.cfg.capacity;
            b.stats.dropped += 1;
        }
    }
}

/// Summarize a trace: total and per-kind busy time.
pub fn summarize(events: &[TraceEvent]) -> TraceSummary {
    let mut s = TraceSummary::default();
    for e in events {
        s.total += e.duration();
        s.count += 1;
        s.bytes += e.bytes;
        let idx = e.kind as usize;
        if idx < s.per_kind.len() {
            s.per_kind[idx].0 += e.duration();
            s.per_kind[idx].1 += 1;
        }
    }
    s
}

/// Aggregate of a rank's trace.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Sum of event durations (operations may not tile the timeline).
    pub total: f64,
    /// Number of events.
    pub count: usize,
    /// Total payload bytes across events.
    pub bytes: usize,
    /// `(busy seconds, count)` per [`EventKind`] discriminant.
    pub per_kind: [(f64, usize); EventKind::COUNT],
}

impl TraceSummary {
    /// Busy time of one kind.
    pub fn time_of(&self, kind: EventKind) -> f64 {
        self.per_kind[kind as usize].0
    }

    /// Event count of one kind.
    pub fn count_of(&self, kind: EventKind) -> usize {
        self.per_kind[kind as usize].1
    }
}

/// Render traces (one per rank) as an ASCII timeline: `width` columns
/// spanning `[0, t_max]`, one row per rank, the densest kind per column.
pub fn ascii_timeline(traces: &[Vec<TraceEvent>], width: usize) -> String {
    let width = width.max(10);
    let t_max = traces
        .iter()
        .flatten()
        .map(|e| e.t_end)
        .fold(0.0f64, f64::max);
    if t_max <= 0.0 {
        return "empty trace\n".into();
    }
    let glyph = |k: EventKind| match k {
        EventKind::Send | EventKind::Isend => 'S',
        EventKind::Bsend => 'B',
        EventKind::Recv => 'R',
        EventKind::Put => 'P',
        EventKind::Get => 'G',
        EventKind::Fence => 'F',
        EventKind::Barrier => '|',
        EventKind::Pack | EventKind::Copy => 'c',
        EventKind::Unpack => 'u',
        EventKind::Flush => '.',
        EventKind::Stage => 'g',
        EventKind::Unstage => 'y',
        EventKind::Chunk => 'k',
        EventKind::Demote => 'd',
        EventKind::Select => 'x',
    };
    let mut out = String::new();
    for (rank, events) in traces.iter().enumerate() {
        let mut row = vec![' '; width];
        for e in events {
            let a = ((e.t_start / t_max) * (width - 1) as f64).floor() as usize;
            let b = ((e.t_end / t_max) * (width - 1) as f64).ceil() as usize;
            for cell in row.iter_mut().take(b.min(width - 1) + 1).skip(a) {
                *cell = glyph(e.kind);
            }
        }
        out.push_str(&format!("rank {rank:>2} |"));
        out.extend(row.iter());
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "         0{:>width$}\n",
        format!("{:.1} us", t_max * 1e6),
        width = width - 1
    ));
    out.push_str("         S=send B=bsend R=recv P=put G=get F=fence |=barrier c=copy/pack u=unpack g=stage y=unstage k=chunk d=demote x=select .=flush\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, a: f64, b: f64) -> TraceEvent {
        TraceEvent {
            kind,
            t_start: a,
            t_end: b,
            peer: None,
            bytes: 100,
            tag: None,
            seq: None,
            depth: None,
        }
    }

    #[test]
    fn tracer_off_by_default() {
        let mut t = Tracer::default();
        assert!(!t.enabled());
        t.record(ev(EventKind::Send, 0.0, 1.0));
        assert!(t.take().is_empty());
    }

    #[test]
    fn tracer_records_when_enabled() {
        let mut t = Tracer::default();
        t.enable();
        t.record(ev(EventKind::Send, 0.0, 1.0));
        t.record(ev(EventKind::Recv, 1.0, 3.0));
        let evs = t.take();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[1].duration(), 2.0);
        // take() disables
        assert!(!t.enabled());
    }

    #[test]
    fn summary_accumulates_per_kind() {
        let evs = vec![
            ev(EventKind::Send, 0.0, 1.0),
            ev(EventKind::Send, 2.0, 2.5),
            ev(EventKind::Recv, 1.0, 2.0),
        ];
        let s = summarize(&evs);
        assert_eq!(s.count, 3);
        assert_eq!(s.bytes, 300);
        assert!((s.time_of(EventKind::Send) - 1.5).abs() < 1e-12);
        assert_eq!(s.count_of(EventKind::Send), 2);
        assert_eq!(s.count_of(EventKind::Fence), 0);
    }

    #[test]
    fn timeline_renders_rows() {
        let traces = vec![
            vec![ev(EventKind::Send, 0.0, 0.5)],
            vec![ev(EventKind::Recv, 0.3, 1.0)],
        ];
        let s = ascii_timeline(&traces, 40);
        assert!(s.contains("rank  0"));
        assert!(s.contains("rank  1"));
        assert!(s.contains('S'));
        assert!(s.contains('R'));
    }

    #[test]
    fn empty_timeline_graceful() {
        assert_eq!(ascii_timeline(&[], 40), "empty trace\n");
    }

    #[test]
    fn ring_keeps_newest_in_order() {
        let mut t = Tracer::default();
        t.enable_with(TraceConfig { capacity: 3, sample: 1 });
        for i in 0..7 {
            t.record(ev(EventKind::Send, i as f64, i as f64 + 0.5));
        }
        let st = t.stats();
        assert_eq!(st.seen, 7);
        assert_eq!(st.dropped, 4);
        let evs = t.take();
        let starts: Vec<f64> = evs.iter().map(|e| e.t_start).collect();
        assert_eq!(starts, vec![4.0, 5.0, 6.0]);
    }

    #[test]
    fn sampling_keeps_one_in_n() {
        let mut t = Tracer::default();
        t.enable_with(TraceConfig { capacity: 100, sample: 3 });
        for i in 0..9 {
            t.record(ev(EventKind::Pack, i as f64, i as f64 + 0.1));
        }
        let st = t.stats();
        assert_eq!(st.sampled_out, 6);
        let evs = t.take();
        let starts: Vec<f64> = evs.iter().map(|e| e.t_start).collect();
        assert_eq!(starts, vec![0.0, 3.0, 6.0]);
    }

    #[test]
    fn all_covers_every_discriminant() {
        for (i, k) in EventKind::ALL.iter().enumerate() {
            assert_eq!(*k as usize, i);
        }
        let s = summarize(&[ev(EventKind::Unstage, 0.0, 1.0)]);
        assert_eq!(s.count_of(EventKind::Unstage), 1);
    }
}
