//! # nonctg-core — an MPI-like runtime for non-contiguous send studies
//!
//! A from-scratch message-passing runtime reproducing the communication
//! machinery Eijkhout's paper measures: two-sided sends with eager and
//! rendezvous protocols, internal-buffer staging of derived datatypes
//! (with the large-message degradation of §4.1), buffered sends through a
//! user-attached buffer, `pack`/`unpack` with position cursors, and
//! one-sided windows with `put`/`get` under `fence` synchronization.
//!
//! Ranks are threads over a shared in-process fabric; payload bytes move
//! for real (receivers can verify them), while *time* comes from the
//! platform cost model in `nonctg-simnet`, accumulated on deterministic
//! per-rank virtual clocks that `Comm::wtime` reads like `MPI_Wtime`.
//!
//! ```
//! use nonctg_core::Universe;
//! use nonctg_simnet::Platform;
//!
//! let (_, echoed) = Universe::run_pair(Platform::skx_impi(), |comm| {
//!     if comm.rank() == 0 {
//!         comm.send_slice(&[1.0f64, 2.0, 3.0], 1, 0).unwrap();
//!         Vec::new()
//!     } else {
//!         let mut buf = vec![0.0f64; 3];
//!         comm.recv_slice(&mut buf, Some(0), Some(0)).unwrap();
//!         buf
//!     }
//! });
//! assert_eq!(echoed, vec![1.0, 2.0, 3.0]);
//! ```

#![warn(missing_docs)]

mod cart;
mod coll;
mod comm;
mod error;
mod fabric;
mod invariants;
pub mod metrics;
mod nonblocking;
mod p2p;
mod persistent;
mod packbuf;
mod rma;
pub mod selector;
pub mod trace;
mod universe;

pub use cart::CartTopology;
pub use coll::{Reducible, ReduceOp};
pub use comm::{CacheState, Comm};
pub use error::{CoreError, Result};
pub use fabric::FaultStats;
pub use invariants::{oracle_checks_enabled, set_oracle_checks};
pub use metrics::{Histogram, MetricsSnapshot};
pub use nonblocking::{RecvRequest, SendRequest};
pub use persistent::{PersistentRecv, PersistentSend};
pub use p2p::{RecvStatus, BSEND_OVERHEAD_BYTES, CHUNK_RING_DEPTH, MAX_SEND_ATTEMPTS};
pub use rma::{Window, WindowState};
pub use selector::{
    iov_max_regions, reset_selector_counters, selector_counters, CrossoverTable, RegionShape,
    SelectorCounters, DEFAULT_IOV_MAX_REGIONS,
};
pub use trace::{EventKind, TraceConfig, TraceEvent, TraceStats};
pub use universe::Universe;

// Re-export the layers users need alongside the runtime.
pub use nonctg_datatype as datatype;
pub use nonctg_simnet as simnet;
