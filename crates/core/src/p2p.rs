//! Two-sided point-to-point communication: `send`, `bsend`, `recv`.
//!
//! Control flow mirrors a real MPI implementation:
//!
//! * messages at or below the eager threshold are deposited without a
//!   handshake (sender-determined availability);
//! * larger messages rendezvous — the sender blocks on a real back-channel
//!   until the receiver matches and reports the transfer completion time;
//! * non-contiguous datatypes are staged through an internal buffer whose
//!   cost degrades beyond a few tens of MB (the paper's §4.1 observation);
//! * `bsend` stages through the user-attached buffer, completes locally,
//!   and the transfer proceeds asynchronously — at a measurable extra cost
//!   (§4.2).
//!
//! Payload bytes genuinely move; receivers can verify every byte.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SendTimeoutError};
use nonctg_datatype::{self as dt, Datatype, PackPlan, Primitive, Scalar};
use nonctg_simnet::{Access, Datapath, Platform};

use crate::comm::{CacheState, Comm};
use crate::error::{CoreError, Result};
use crate::fabric::{poll_slice, reply_channel, Envelope, OpRecord, Payload, PooledBuf, Protocol};
use crate::nonblocking::{SendRequest, SendState};

/// Bytes of bookkeeping the attached buffer pays per buffered message
/// (`MPI_BSEND_OVERHEAD`).
pub const BSEND_OVERHEAD_BYTES: u64 = 64;

/// Maximum attempts of one send under injected transient faults: up to
/// `MAX_SEND_ATTEMPTS - 1` consecutive failures are absorbed by backoff
/// before the send surfaces [`CoreError::SendFailed`].
pub const MAX_SEND_ATTEMPTS: u32 = 5;

/// First retry backoff in virtual seconds; doubles per failed attempt.
const SEND_BACKOFF_BASE_S: f64 = 2e-6;

/// Chunks in flight on a pipelined rendezvous: the sender may run this
/// many chunks ahead of the receiver before its ring push blocks. Depth 2
/// is enough for full pack/unpack overlap; more only adds memory.
pub const CHUNK_RING_DEPTH: usize = 2;

/// Per-chunk faults forecast for one send at or above which the transfer
/// is demoted from the pipelined chunk stream to the monolithic
/// whole-payload rendezvous (the graceful-degradation ladder's first
/// rung). Below the threshold the stream runs and re-packs each faulted
/// chunk individually.
pub const CHUNK_DEMOTE_THRESHOLD: usize = 3;

/// Completion information of a receive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecvStatus {
    /// Rank the message came from.
    pub source: usize,
    /// Its tag.
    pub tag: i32,
    /// Payload size in bytes.
    pub bytes: usize,
}

impl RecvStatus {
    /// Number of whole instances of `dtype` received (`MPI_Get_count`);
    /// `None` if the payload is not a whole multiple (MPI_UNDEFINED).
    pub fn count(&self, dtype: &Datatype) -> Option<usize> {
        let sz = dtype.size() as usize;
        if sz == 0 {
            return Some(0);
        }
        self.bytes.is_multiple_of(sz).then_some(self.bytes / sz)
    }

    /// Number of primitive elements received, counting elements of a
    /// trailing partial instance (`MPI_Get_elements`). `None` only when
    /// the payload does not align with the type's primitive boundaries.
    pub fn element_count(&self, dtype: &Datatype) -> Option<usize> {
        let sz = dtype.size() as usize;
        if sz == 0 {
            return Some(0);
        }
        let whole = self.bytes / sz;
        let mut elements = whole * dtype.signature().total_elements() as usize;
        let mut rem = self.bytes % sz;
        if rem > 0 {
            for e in dtype.type_map_preview(usize::MAX) {
                if rem == 0 {
                    break;
                }
                let psz = e.primitive.size();
                if rem < psz {
                    return None; // mid-primitive cut
                }
                rem -= psz;
                elements += 1;
            }
        }
        Some(elements)
    }
}

/// The user buffer attached with [`Comm::buffer_attach`].
#[derive(Debug)]
pub(crate) struct BsendBuffer {
    pub capacity: u64,
    pub in_use: Arc<AtomicU64>,
}

pub(crate) enum SendMode {
    Standard,
    /// Completes only once the receive is matched (`MPI_Ssend`): the
    /// rendezvous path regardless of message size.
    Synchronous,
    Buffered,
}

/// Releases a buffered-send reservation when dropped. Held by the receive
/// path from the moment the envelope leaves the mailbox, so *every* exit —
/// including the truncation and signature-mismatch error returns — gives
/// the sender its bsend buffer space back.
struct BsendReleaseGuard(Option<(Arc<AtomicU64>, u64)>);

impl Drop for BsendReleaseGuard {
    fn drop(&mut self) {
        if let Some((in_use, amount)) = self.0.take() {
            in_use.fetch_sub(amount, Ordering::AcqRel);
        }
    }
}

impl Comm {
    // ------------------------------------------------------------------
    // sends
    // ------------------------------------------------------------------

    /// Standard send of `count` instances of `dtype` read from `buf`
    /// starting at byte `origin` (`MPI_Send`).
    pub fn send(
        &mut self,
        buf: &[u8],
        origin: usize,
        dtype: &Datatype,
        count: usize,
        dst: usize,
        tag: i32,
    ) -> Result<()> {
        let t0 = self.clock.now();
        let bytes = dt::pack_size(dtype, count)?;
        let req = self.send_impl(buf, origin, dtype, count, dst, tag, SendMode::Standard, true)?;
        req.wait(self)?;
        self.trace(crate::trace::EventKind::Send, t0, Some(dst), bytes, Some(tag));
        Ok(())
    }

    /// Synchronous send (`MPI_Ssend`): local completion implies the
    /// matching receive has started — the handshake happens at every size.
    pub fn ssend(
        &mut self,
        buf: &[u8],
        origin: usize,
        dtype: &Datatype,
        count: usize,
        dst: usize,
        tag: i32,
    ) -> Result<()> {
        let t0 = self.clock.now();
        let bytes = dt::pack_size(dtype, count)?;
        let req = self.send_impl(buf, origin, dtype, count, dst, tag, SendMode::Synchronous, true)?;
        req.wait(self)?;
        self.trace(crate::trace::EventKind::Send, t0, Some(dst), bytes, Some(tag));
        Ok(())
    }

    /// Synchronous send of a contiguous scalar slice.
    pub fn ssend_slice<T: Scalar>(&mut self, data: &[T], dst: usize, tag: i32) -> Result<()> {
        let t = Datatype::of::<T>();
        self.ssend(dt::as_bytes(data), 0, &t, data.len(), dst, tag)
    }

    /// Buffered send through the attached buffer (`MPI_Bsend`).
    pub fn bsend(
        &mut self,
        buf: &[u8],
        origin: usize,
        dtype: &Datatype,
        count: usize,
        dst: usize,
        tag: i32,
    ) -> Result<()> {
        let t0 = self.clock.now();
        let bytes = dt::pack_size(dtype, count)?;
        let req = self.send_impl(buf, origin, dtype, count, dst, tag, SendMode::Buffered, false)?;
        req.wait(self)?;
        self.trace(crate::trace::EventKind::Bsend, t0, Some(dst), bytes, Some(tag));
        Ok(())
    }

    /// Send a contiguous byte buffer (`MPI_Send` of `MPI_BYTE`s).
    pub fn send_bytes(&mut self, data: &[u8], dst: usize, tag: i32) -> Result<()> {
        let t = Datatype::byte();
        self.send(data, 0, &t, data.len(), dst, tag)
    }

    /// Send a contiguous buffer previously filled by [`Comm::pack`]
    /// (`MPI_Send` of `MPI_PACKED` — protocol quirks of packed sends
    /// apply, see the Cray model).
    pub fn send_packed(&mut self, data: &[u8], dst: usize, tag: i32) -> Result<()> {
        let t = Datatype::packed();
        self.send(data, 0, &t, data.len(), dst, tag)
    }

    /// Send a contiguous scalar slice.
    pub fn send_slice<T: Scalar>(&mut self, data: &[T], dst: usize, tag: i32) -> Result<()> {
        let t = Datatype::of::<T>();
        self.send(dt::as_bytes(data), 0, &t, data.len(), dst, tag)
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn send_impl(
        &mut self,
        buf: &[u8],
        origin: usize,
        dtype: &Datatype,
        count: usize,
        dst: usize,
        tag: i32,
        mode: SendMode,
        may_stream: bool,
    ) -> Result<SendRequest> {
        self.check_rank(dst)?;
        dtype.require_committed()?;
        let bytes = dt::pack_size(dtype, count)? as u64;
        let access = Access::classify(dtype);
        let warm = self.is_warm();
        let p = self.platform().clone();

        let me = self.world_rank();
        let sup = Arc::clone(&self.fabric().supervision);
        sup.record_op(
            me,
            OpRecord { kind: "send", peer: Some(self.global_rank(dst)), bytes: bytes as usize },
        );
        let op = sup.next_op(me);

        let is_packed = dtype.signature().count(Primitive::Packed) > 0;
        let eager =
            !matches!(mode, SendMode::Synchronous) && bytes <= p.eager_threshold(is_packed);
        let contiguous = matches!(access, Access::Contiguous);

        // Wall-clock pipelining: a large derived-type rendezvous streams
        // its payload as chunks so the receiver unpacks chunk k while we
        // pack k+1. Decided before staging so the chunked path never
        // builds the monolithic buffer. Only blocking sends may stream —
        // an isend that blocked pumping chunks would deadlock a
        // head-to-head sendrecv.
        let mut stream_plan = if may_stream
            && !eager
            && !contiguous
            && matches!(mode, SendMode::Standard | SendMode::Synchronous)
            && bytes >= p.effective_pipeline().threshold_bytes
        {
            dt::plan_for(dtype, count)
        } else {
            None
        };

        // Fault decisions are taken before any staging so both datapaths
        // share them; all fault charges are exact (no jitter draws), so
        // the virtual clock is identical whichever path runs. The v2
        // degradation ladder is also decided here: every demotion flag is
        // a pure function of (plan, rank, op), so a rerun of the same
        // seed makes identical choices.
        let mut corrupt_idx = None;
        let mut pool_fault = false; // pooled staging -> owned buffers
        let mut serial_pack = false; // parallel pack -> serial kernel
        let mut plan_failed = false; // compiled plan -> uncompiled kernel
        if let Some(plan) = &p.fault {
            if plan.should_crash(me, op) {
                panic!("fault plan: injected crash of rank {me} at op {op}");
            }
            let fault = plan.send_decision(me, op, bytes);
            if !fault.is_clean() {
                if fault.is_persistent() || fault.transient_failures >= MAX_SEND_ATTEMPTS {
                    // Every attempt fails: charge the full backoff schedule
                    // (one wait between consecutive attempts) and give up.
                    let mut backoff = SEND_BACKOFF_BASE_S;
                    for _ in 1..MAX_SEND_ATTEMPTS {
                        self.charge_exact(backoff);
                        backoff *= 2.0;
                    }
                    sup.with_faults(me, |s| s.failed_sends += 1);
                    return Err(CoreError::SendFailed { dst, attempts: MAX_SEND_ATTEMPTS });
                }
                if fault.transient_failures > 0 {
                    // Absorbed by retry: charge one doubling backoff per
                    // failed attempt, then proceed as if clean.
                    let mut backoff = SEND_BACKOFF_BASE_S;
                    for _ in 0..fault.transient_failures {
                        self.charge_exact(backoff);
                        backoff *= 2.0;
                    }
                    sup.with_faults(me, |s| s.transient_retries += fault.transient_failures as u64);
                }
                if fault.delay > 0.0 {
                    self.charge_exact(fault.delay);
                    sup.with_faults(me, |s| s.delays += 1);
                }
                if fault.corrupt && bytes > 0 {
                    corrupt_idx = Some(plan.corrupt_index(me, op, bytes as usize));
                    sup.with_faults(me, |s| s.corruptions += 1);
                }
            }

            // Sustained link degradation: a burst window multiplies the
            // base latency; the surcharge above 1x is an exact charge so
            // both datapaths see the same virtual clock.
            let lf = plan.latency_factor(op);
            if lf > 1.0 {
                self.charge_exact(p.net.latency * (lf - 1.0));
                sup.with_faults(me, |s| s.link_degradations += 1);
            }

            // Plan compilation failure: the compiled pack plan for this
            // derived type "fails to build", so the send falls back to
            // the uncompiled serial interpreter — which also rules out
            // the chunk-streaming path (it requires a compiled plan).
            if !contiguous && plan.plan_compile_fails(me, op) {
                plan_failed = true;
                stream_plan = None;
                sup.with_faults(me, |s| s.plan_fallbacks += 1);
                let t = self.clock.now();
                self.trace(crate::trace::EventKind::Demote, t, Some(dst), bytes as usize, Some(tag));
            }

            // Chunk-fault forecast: with this op's chunk schedule known
            // up front, repeated per-chunk faults demote the transfer
            // from pipelined to the monolithic (whole-payload)
            // rendezvous before any chunk machinery spins up. Below the
            // threshold the stream runs and absorbs each fault by
            // re-packing (see `stream_send`).
            if stream_plan.is_some() {
                let chunk = p.effective_pipeline().chunk_bytes.max(1);
                let n_chunks = bytes.div_ceil(chunk);
                let faulty = (0..n_chunks)
                    .filter(|&c| plan.chunk_decision(me, op, c).is_faulty())
                    .count();
                if faulty >= CHUNK_DEMOTE_THRESHOLD {
                    stream_plan = None;
                    sup.with_faults(me, |s| s.pipeline_demotions += 1);
                    let t = self.clock.now();
                    self.trace(crate::trace::EventKind::Demote, t, Some(dst), bytes as usize, Some(tag));
                }
            }

            // Payload-pool exhaustion: staging falls back from recycled
            // pool buffers to owned allocations for this whole send.
            if plan.pool_exhausted(me, op) {
                pool_fault = true;
                sup.with_faults(me, |s| s.pool_exhaustions += 1);
                let t = self.clock.now();
                self.trace(crate::trace::EventKind::Demote, t, Some(dst), bytes as usize, Some(tag));
            }

            // Parallel-pack worker failure: only meaningful when this
            // send would actually have fanned the pack out; the fallback
            // is the serial kernel (`pack_into_serial` / threads = 1).
            if !plan_failed
                && !contiguous
                && plan.pack_worker_fails(me, op)
                && dt::pack_threads() > 1
                && bytes as usize >= dt::parallel_threshold()
            {
                serial_pack = true;
                sup.with_faults(me, |s| s.serial_fallbacks += 1);
                let t = self.clock.now();
                self.trace(crate::trace::EventKind::Demote, t, Some(dst), bytes as usize, Some(tag));
            }
        }
        // Datapath selection (the adaptive engine): pack plan vs
        // zero-copy iovec vs element copies. Forced modes (platform
        // builder or `NONCTG_DATAPATH`) bypass the selector; auto
        // consults the platform's crossover table. Iovec additionally
        // needs a rendezvous, a compiled plan, and a bounded region
        // list; when those are missing the choice falls back to pack.
        let mut elem_pack = false;
        let mut iov_regions: Option<Vec<(i64, u64)>> = None;
        if !contiguous {
            let iov_eligible = !eager
                && !plan_failed
                && matches!(mode, SendMode::Standard | SendMode::Synchronous);
            // `capped` distinguishes "plan lowers to more regions than
            // the iovec cap" (ddtbench WRF halos routinely do) from "no
            // compiled plan at all": a capped list must *deterministically*
            // demote a forced-iov send to pack, visibly.
            let mut capped = false;
            let regions = if iov_eligible {
                dt::plan_for(dtype, count).and_then(|pl| {
                    let r = pl.regions(crate::selector::iov_max_regions());
                    capped = r.is_none();
                    r
                })
            } else {
                None
            };
            // Region-length shape for the selector and the cost model:
            // sub-cacheline regions pay a full descriptor overhead.
            let shape = regions
                .as_ref()
                .map(|r| crate::selector::RegionShape::of(r, p.mem.cacheline));
            let choice = match p.effective_datapath() {
                Datapath::Auto => {
                    let c = crate::selector::choose_shape(p.id, bytes, shape);
                    crate::selector::record(c);
                    let t = self.clock.now();
                    self.trace(
                        crate::trace::EventKind::Select,
                        t,
                        Some(dst),
                        bytes as usize,
                        Some(tag),
                    );
                    c
                }
                forced => forced,
            };
            match choice {
                Datapath::Iov if regions.is_some() => {
                    if pool_fault || serial_pack {
                        // Fault rung: with its staging pool gone or its
                        // gather workers failing, the zero-copy path
                        // demotes to the pack plan for this send.
                        sup.with_faults(me, |s| s.iovec_demotions += 1);
                        let t = self.clock.now();
                        self.trace(
                            crate::trace::EventKind::Demote,
                            t,
                            Some(dst),
                            bytes as usize,
                            Some(tag),
                        );
                    } else {
                        iov_regions = regions;
                        stream_plan = None;
                    }
                }
                Datapath::Iov => {
                    // Forced iovec without a bounded region list. When
                    // the plan lowered to more than `iov_max_regions()`
                    // descriptors this is the region-cap overflow rung of
                    // the degradation ladder: count it and trace it like
                    // every other iovec demotion instead of silently
                    // packing. (Eager-protocol and plan-failure
                    // fall-throughs stay silent: the former never was
                    // iovec-eligible, the latter already counts
                    // `plan_fallbacks`.)
                    if capped {
                        sup.with_faults(me, |s| s.iovec_demotions += 1);
                        let t = self.clock.now();
                        self.trace(
                            crate::trace::EventKind::Demote,
                            t,
                            Some(dst),
                            bytes as usize,
                            Some(tag),
                        );
                    }
                }
                Datapath::Elem => {
                    // The uncompiled engine: no plan, no streaming.
                    elem_pack = true;
                    stream_plan = None;
                }
                _ => {}
            }
        }
        let sig = dtype.signature().scaled(count as u64)?;

        if let Some(regions) = iov_regions {
            return self.iovec_send(buf, origin, regions, bytes, &p, dst, tag, sig, corrupt_idx);
        }

        if let Some(plan) = stream_plan {
            return self.stream_send(
                buf, origin, &plan, bytes, &access, warm, &p, dst, tag, sig, corrupt_idx, op,
                pool_fault, serial_pack,
            );
        }

        // Real data movement: stage the payload contiguously. The type is
        // committed, so this runs the cached compiled plan; the staging
        // buffer comes from (and returns to) the fabric's payload pool,
        // so steady-state sends allocate nothing. Under pool exhaustion
        // the ladder drops to a plain owned allocation (never pooled).
        let mut packed = if pool_fault {
            PooledBuf::detached(vec![0u8; bytes as usize])
        } else {
            self.fabric().pool.take(bytes as usize)
        };
        if plan_failed || elem_pack {
            dt::pack_into_uncompiled(buf, origin, dtype, count, &mut packed)?;
        } else if serial_pack {
            dt::pack_into_serial(buf, origin, dtype, count, &mut packed)?;
        } else {
            dt::pack_into(buf, origin, dtype, count, &mut packed)?;
        }
        if let Some(idx) = corrupt_idx {
            packed[idx] ^= 0xFF;
            // Corrupted payload bytes must never linger in a recycled
            // staging buffer: quarantine the allocation on drop.
            packed.poison();
        }
        let payload = Payload::Whole(packed);

        let mut bsend_release = None;
        let protocol = match mode {
            SendMode::Standard | SendMode::Synchronous if contiguous => {
                // Reference path: NIC streams the buffer, reads overlap the
                // wire (paper §2.1, proportionality ~1).
                let inject = p.contiguous_injection(bytes) * self.jitter.factor();
                self.charge_exact(p.send_overhead(eager));
                self.cache = CacheState::Warm;
                if eager {
                    self.clock.advance(inject);
                    Protocol::Eager { avail: self.clock.now() + p.net.latency }
                } else {
                    let (tx, rx) = reply_channel();
                    let proto = Protocol::Rendezvous {
                        sender_ready: self.clock.now(),
                        // The pipelined injection *is* the transfer.
                        wire: inject,
                        reply: tx,
                    };
                    self.post(dst, tag, payload, sig, proto, None);
                    return Ok(SendRequest::new(SendState::Pending(rx)));
                }
            }
            SendMode::Standard | SendMode::Synchronous => {
                // Derived-type path: MPI gathers into its internal buffer
                // (no overlap with the wire), then sends contiguously.
                let t_stage = self.clock.now();
                self.charge(p.staging_time(bytes, &access, warm));
                self.trace(crate::trace::EventKind::Stage, t_stage, None, bytes as usize, None);
                self.charge_exact(p.send_overhead(eager));
                self.cache = CacheState::Warm;
                let wire = p.wire_time(bytes, 1.0) * self.jitter.factor();
                if eager {
                    Protocol::Eager { avail: self.clock.now() + p.net.latency + wire }
                } else {
                    let (tx, rx) = reply_channel();
                    let proto = Protocol::Rendezvous {
                        sender_ready: self.clock.now(),
                        wire,
                        reply: tx,
                    };
                    self.post(dst, tag, payload, sig, proto, None);
                    return Ok(SendRequest::new(SendState::Pending(rx)));
                }
            }
            SendMode::Buffered => {
                // Reserve attached-buffer space first (MPI_ERR_BUFFER).
                let needed = bytes + BSEND_OVERHEAD_BYTES;
                let release = self.reserve_bsend(needed)?;
                bsend_release = Some(release);
                // Stage through the attached buffer: same gather arithmetic
                // as the internal path (the user buffer does not avoid the
                // large-message bookkeeping, §4.2)...
                let t_stage = self.clock.now();
                let stage = p.staging_time(bytes, &access, warm);
                self.charge(stage);
                // ...plus Bsend's own accounting and extra internal copy.
                self.charge(p.bsend_extra(bytes));
                self.trace(crate::trace::EventKind::Stage, t_stage, None, bytes as usize, None);
                self.charge_exact(p.send_overhead(true));
                self.cache = CacheState::Warm;
                let wire = p.wire_time(bytes, 1.0) * self.jitter.factor();
                if eager {
                    Protocol::Eager { avail: self.clock.now() + p.net.latency + wire }
                } else {
                    // Local completion now; transfer rendezvouses on its own.
                    Protocol::AsyncRendezvous { sender_ready: self.clock.now(), wire }
                }
            }
        };

        self.post(dst, tag, payload, sig, protocol, bsend_release);
        Ok(SendRequest::new(SendState::Done(self.clock.now())))
    }

    fn post(
        &self,
        dst: usize,
        tag: i32,
        payload: Payload,
        sig: nonctg_datatype::Signature,
        protocol: Protocol,
        bsend_release: Option<(Arc<AtomicU64>, u64)>,
    ) {
        let global_dst = self.global_rank(dst);
        self.fabric().mailboxes[global_dst].push(Envelope {
            context: self.context(),
            src: self.rank(),
            tag,
            payload,
            sig,
            protocol,
            bsend_release,
        });
    }

    /// Pipelined rendezvous: post a chunk-streaming envelope, then pack
    /// and push aligned chunks through a bounded ring while the receiver
    /// unpacks them in place. The virtual-time charges (staging, send
    /// overhead, jittered wire) are issued in exactly the monolithic
    /// derived-path order, so the cost model cannot tell the paths apart.
    #[allow(clippy::too_many_arguments)]
    fn stream_send(
        &mut self,
        buf: &[u8],
        origin: usize,
        plan: &PackPlan,
        bytes: u64,
        access: &Access,
        warm: bool,
        p: &Platform,
        dst: usize,
        tag: i32,
        sig: nonctg_datatype::Signature,
        corrupt_idx: Option<usize>,
        op: u64,
        pool_fault: bool,
        serial_pack: bool,
    ) -> Result<SendRequest> {
        let t_stage = self.clock.now();
        self.charge(p.staging_time(bytes, access, warm));
        self.trace(crate::trace::EventKind::Stage, t_stage, None, bytes as usize, None);
        self.charge_exact(p.send_overhead(false));
        self.cache = CacheState::Warm;
        let wire = p.wire_time(bytes, 1.0) * self.jitter.factor();
        let (reply_tx, reply_rx) = reply_channel();
        let (chunk_tx, chunk_rx) = bounded::<PooledBuf>(CHUNK_RING_DEPTH);
        let proto =
            Protocol::Rendezvous { sender_ready: self.clock.now(), wire, reply: reply_tx };
        let audit = crate::invariants::oracle_checks_enabled()
            .then(|| Arc::new(crate::invariants::StreamAudit::new(bytes as usize)));
        self.post(
            dst,
            tag,
            Payload::Chunked { total: bytes as usize, rx: chunk_rx, audit: audit.clone() },
            sig,
            proto,
            None,
        );

        let chunk = p.effective_pipeline().chunk_bytes.max(1);
        let pool = Arc::clone(&self.fabric().pool);
        let sup = Arc::clone(&self.fabric().supervision);
        let me = self.world_rank();
        let deadline = Instant::now() + sup.timeout();
        sup.set_blocked(me, Some("pipelined chunk delivery"));
        let mut lo: u64 = 0;
        let mut cidx: u64 = 0;
        let res = 'pump: loop {
            if lo >= bytes {
                break Ok(());
            }
            // Step to the next instance-aligned cut; a chunk size below
            // one pack block still makes progress (aligning up to total).
            let mut step = chunk;
            let mut hi = plan.align_chunk(lo + step);
            while hi <= lo {
                step *= 2;
                hi = plan.align_chunk(lo + step);
            }
            let n = (hi - lo) as usize;
            let mut cbuf =
                if pool_fault { PooledBuf::detached(vec![0u8; n]) } else { pool.take(n) };
            let packed = if serial_pack {
                plan.pack_range_into_with(buf, origin, &mut cbuf, lo, hi, 1)
            } else {
                plan.pack_range_into(buf, origin, &mut cbuf, lo, hi)
            };
            if let Err(e) = packed {
                break Err(crate::error::CoreError::from(e));
            }
            // Per-chunk fault mid-pipeline: the faulted staging buffer is
            // poisoned (quarantined on drop, never recycled) and the
            // chunk re-packed into a fresh buffer. Wall-clock machinery
            // only — the virtual clock is untouched, so a retried stream
            // costs the same virtual time as a clean one.
            if let Some(fp) = &p.fault {
                let cf = fp.chunk_decision(me, op, cidx);
                if cf.is_faulty() {
                    if cf.corrupt && n > 0 {
                        let i = fp.chunk_corrupt_byte(me, op, cidx, n);
                        cbuf[i] ^= 0xFF;
                    }
                    cbuf.poison();
                    drop(cbuf);
                    cbuf = if pool_fault {
                        PooledBuf::detached(vec![0u8; n])
                    } else {
                        pool.take(n)
                    };
                    let repacked = if serial_pack {
                        plan.pack_range_into_with(buf, origin, &mut cbuf, lo, hi, 1)
                    } else {
                        plan.pack_range_into(buf, origin, &mut cbuf, lo, hi)
                    };
                    if let Err(e) = repacked {
                        break Err(crate::error::CoreError::from(e));
                    }
                    sup.with_faults(me, |s| s.chunk_retries += 1);
                }
            }
            if let Some(idx) = corrupt_idx {
                if (lo as usize..hi as usize).contains(&idx) {
                    cbuf[idx - lo as usize] ^= 0xFF;
                    cbuf.poison();
                }
            }
            if let Some(a) = &audit {
                a.emit(n);
            }
            let mut item = cbuf;
            loop {
                if let Some(rank) = sup.failed_rank() {
                    break 'pump Err(CoreError::PeerFailed { rank });
                }
                let now = Instant::now();
                if now >= deadline {
                    break 'pump Err(CoreError::deadlock("pipelined chunk delivery"));
                }
                let slice = (deadline - now).min(poll_slice());
                match chunk_tx.send_timeout(item, slice) {
                    Ok(()) => break,
                    Err(SendTimeoutError::Timeout(back)) => item = back,
                    Err(SendTimeoutError::Disconnected(_)) => {
                        // The receiver abandoned the envelope (it errored
                        // before draining); the rendezvous reply channel
                        // carries the outcome to `wait`.
                        break 'pump Ok(());
                    }
                }
            }
            // Traced once the chunk is actually in the ring; the depth
            // samples the occupancy including this chunk (the receiver may
            // have drained it already, hence the floor at 1).
            let t_now = self.clock.now();
            self.trace_stream(
                crate::trace::EventKind::Chunk,
                t_now,
                Some(dst),
                n,
                Some(tag),
                Some(cidx as u32),
                Some(chunk_tx.len().max(1) as u32),
            );
            lo = hi;
            cidx += 1;
        };
        sup.set_blocked(me, None);
        res.map_err(|e| self.fabric().enrich(e))?;
        Ok(SendRequest::new(SendState::Pending(reply_rx)))
    }

    /// Zero-copy iovec rendezvous: no staging gather is charged — the
    /// sender pays a per-region descriptor cost and the NIC DMA-gathers
    /// the user regions on the wire (`iov_wire_time`). The payload bytes
    /// still move for real (in region order, exactly what a pack would
    /// produce) so the receiver can verify every byte; only the
    /// virtual-time charges differ from the pack path. Per-region
    /// charges are exact (no jitter draws) so the iovec clock is a pure
    /// function of the region list.
    #[allow(clippy::too_many_arguments)]
    fn iovec_send(
        &mut self,
        buf: &[u8],
        origin: usize,
        regions: Vec<(i64, u64)>,
        bytes: u64,
        p: &Platform,
        dst: usize,
        tag: i32,
        sig: nonctg_datatype::Signature,
        corrupt_idx: Option<usize>,
    ) -> Result<SendRequest> {
        let n = regions.len() as u64;
        let shape = crate::selector::RegionShape::of(&regions, p.mem.cacheline);
        self.charge_exact(p.send_overhead(false));
        self.charge_exact(p.iov_overhead_shaped(n, shape.subline));
        self.cache = CacheState::Warm;
        let wire = p.iov_wire_time(bytes, n) * self.jitter.factor();

        // The simulated NIC's DMA gather: region bytes move in region
        // order, which is byte-for-byte the pack order of the plan the
        // regions came from.
        let mut data = self.fabric().pool.take(bytes as usize);
        let mut pos = 0usize;
        for &(off, len) in &regions {
            let lo = (origin as i64 + off) as usize;
            let len = len as usize;
            data[pos..pos + len].copy_from_slice(&buf[lo..lo + len]);
            pos += len;
        }
        debug_assert_eq!(pos, bytes as usize);
        if let Some(idx) = corrupt_idx {
            data[idx] ^= 0xFF;
            data.poison();
        }

        let (tx, rx) = reply_channel();
        let proto = Protocol::Rendezvous { sender_ready: self.clock.now(), wire, reply: tx };
        self.post(dst, tag, Payload::Iovec { data, regions: regions.into() }, sig, proto, None);
        Ok(SendRequest::new(SendState::Pending(rx)))
    }

    fn reserve_bsend(&mut self, needed: u64) -> Result<(Arc<AtomicU64>, u64)> {
        let b = self
            .bsend
            .as_ref()
            .ok_or(CoreError::BufferAttachState("bsend without an attached buffer"))?;
        let in_use = b.in_use.load(Ordering::Acquire);
        let available = b.capacity.saturating_sub(in_use);
        if needed > available {
            return Err(CoreError::BsendBufferOverflow {
                needed: needed as usize,
                available: available as usize,
            });
        }
        b.in_use.fetch_add(needed, Ordering::AcqRel);
        Ok((Arc::clone(&b.in_use), needed))
    }

    // ------------------------------------------------------------------
    // buffer attach / detach
    // ------------------------------------------------------------------

    /// Attach `capacity` bytes of buffer space for buffered sends
    /// (`MPI_Buffer_attach`).
    pub fn buffer_attach(&mut self, capacity: usize) -> Result<()> {
        if self.bsend.is_some() {
            return Err(CoreError::BufferAttachState("a buffer is already attached"));
        }
        self.bsend = Some(BsendBuffer {
            capacity: capacity as u64,
            in_use: Arc::new(AtomicU64::new(0)),
        });
        Ok(())
    }

    /// Detach the buffered-send buffer (`MPI_Buffer_detach`). Returns its
    /// capacity.
    pub fn buffer_detach(&mut self) -> Result<usize> {
        match self.bsend.take() {
            Some(b) => Ok(b.capacity as usize),
            None => Err(CoreError::BufferAttachState("no buffer attached")),
        }
    }

    /// Space needed in the attached buffer for one buffered send.
    pub fn bsend_size(dtype: &Datatype, count: usize) -> Result<usize> {
        Ok(dt::pack_size(dtype, count)? + BSEND_OVERHEAD_BYTES as usize)
    }

    // ------------------------------------------------------------------
    // receives
    // ------------------------------------------------------------------

    /// Receive `count` instances of `dtype` into `buf` at byte `origin`
    /// (`MPI_Recv`). `src`/`tag` of `None` are the wildcards.
    pub fn recv(
        &mut self,
        buf: &mut [u8],
        origin: usize,
        dtype: &Datatype,
        count: usize,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> Result<RecvStatus> {
        let t_post = self.clock.now();
        self.recv_with_post_time(buf, origin, dtype, count, src, tag, t_post)
    }

    /// Receive whose matching receive was *posted* at virtual time
    /// `t_post` (used by `irecv`/`wait` to model communication overlap:
    /// the transfer may complete between posting and waiting).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn recv_with_post_time(
        &mut self,
        buf: &mut [u8],
        origin: usize,
        dtype: &Datatype,
        count: usize,
        src: Option<usize>,
        tag: Option<i32>,
        t_post: f64,
    ) -> Result<RecvStatus> {
        dtype.require_committed()?;
        if let Some(s) = src {
            self.check_rank(s)?;
        }
        let capacity = dt::pack_size(dtype, count)?;
        let p = self.platform().clone();

        let me = self.global_rank(self.rank());
        let sup = Arc::clone(&self.fabric().supervision);
        sup.record_op(
            me,
            OpRecord { kind: "recv", peer: src.map(|s| self.global_rank(s)), bytes: capacity },
        );
        let op = sup.next_op(me);
        if let Some(plan) = &p.fault {
            if plan.should_crash(me, op) {
                panic!("fault plan: injected crash of rank {me} at op {op}");
            }
            if plan.should_crash_recv(me, op) {
                // Receiver-side crash mid-stream: surfaces as a typed
                // error rather than a panic. Poisoning the fabric first
                // means a sender pumping chunks at this rank observes
                // `PeerFailed` instead of hanging on the ring.
                sup.with_faults(me, |s| s.recv_crashes += 1);
                sup.poison(me);
                return Err(self.fabric().enrich(CoreError::RankPanicked {
                    rank: me,
                    message: format!("fault plan: injected receiver crash at op {op}"),
                }));
            }
        }

        sup.set_blocked(me, Some("a matching message"));
        let res = self.fabric().mailboxes[me].match_recv(self.context(), src, tag);
        sup.set_blocked(me, None);
        let mut env = res.map_err(|e| self.fabric().enrich(e))?;
        let _bsend_release = BsendReleaseGuard(env.bsend_release.take());

        if env.payload.len() > capacity {
            return Err(CoreError::Truncate { incoming: env.payload.len(), capacity });
        }
        // Signature check: MPI_PACKED/MPI_BYTE match anything of the right
        // size; otherwise the primitive multisets must agree.
        let recv_sig = dtype.signature().scaled(count as u64)?;
        let relaxed = env.sig.is_bytes_only() || recv_sig.is_bytes_only();
        if relaxed {
            if env.sig.total_bytes() > recv_sig.total_bytes() {
                return Err(CoreError::Truncate {
                    incoming: env.payload.len(),
                    capacity,
                });
            }
        } else {
            // Allow a shorter matching prefix: count how many whole send
            // elements arrived; exact multiset match required at equal size.
            if env.payload.len() == capacity && !env.sig.matches(1, &recv_sig, 1) {
                return Err(CoreError::SignatureMismatch);
            }
            if env.payload.len() < capacity {
                // Partial receive: only the byte check applies (MPI permits
                // receiving fewer elements than posted).
                let ok = env.sig.total_bytes() <= recv_sig.total_bytes();
                if !ok {
                    return Err(CoreError::SignatureMismatch);
                }
            }
        }

        // Timing.
        match &env.protocol {
            Protocol::Eager { avail } => {
                self.clock.sync_to(*avail);
            }
            Protocol::Rendezvous { sender_ready, wire, reply } => {
                let start = t_post.max(*sender_ready) + p.proto.rndv_extra;
                let done = start + p.net.latency + *wire;
                // Sender unblocks when the transfer completes.
                let _ = reply.send(done);
                self.clock.sync_to(done);
            }
            Protocol::AsyncRendezvous { sender_ready, wire } => {
                let start = t_post.max(*sender_ready) + p.proto.rndv_extra;
                self.clock.sync_to(start + p.net.latency + *wire);
            }
        }
        self.charge_exact(p.proto.eager_overhead);

        // Real delivery: unpack the payload into the user layout. Derived
        // receive types pay the scatter; contiguous receives are the NIC's
        // direct deposit and cost nothing extra.
        let total = env.payload.len();
        let env_src = env.src;
        let env_tag = env.tag;
        let incoming_count = if dtype.size() == 0 {
            0
        } else {
            total / dtype.size() as usize
        };
        // `Some(shape)` once the payload was delivered by a direct iovec
        // scatter into the receiver's regions; governs the scatter charge
        // below (sub-cacheline regions pay the full descriptor cost).
        let mut iov_scattered: Option<crate::selector::RegionShape> = None;
        match env.payload {
            Payload::Whole(data) => {
                let consumed = dt::unpack_from(&data, dtype, incoming_count, buf, origin)?;
                crate::invariants::check_recv_conservation(
                    total,
                    consumed,
                    dtype.size() as usize,
                );
            }
            Payload::Chunked { rx, audit, .. } => {
                self.drain_chunks(
                    rx, audit, total, dtype, incoming_count, buf, origin, env_src, env_tag,
                )?;
            }
            Payload::Iovec { data, regions } => {
                if crate::invariants::oracle_checks_enabled() {
                    let sum: u64 = regions.iter().map(|&(_, l)| l).sum();
                    if sum as usize != data.len() {
                        crate::invariants::violation(&format!(
                            "iovec region lengths sum to {sum} but payload is {} bytes",
                            data.len()
                        ));
                    }
                }
                // Scatter straight into the *receiver's* regions (its own
                // plan over its own type — the sender's list only
                // describes the sender's layout). When the receive layout
                // has no bounded region list, fall back to the unpack
                // engine; the payload bytes are pack-ordered either way.
                let rregions = dt::plan_for(dtype, incoming_count)
                    .and_then(|pl| pl.regions(crate::selector::iov_max_regions()));
                match rregions {
                    Some(rr) => {
                        let buf_len = buf.len();
                        let mut pos = 0usize;
                        for &(off, len) in &rr {
                            if pos >= data.len() {
                                break;
                            }
                            let len = (len as usize).min(data.len() - pos);
                            let lo = (origin as i64 + off) as usize;
                            buf.get_mut(lo..lo + len)
                                .ok_or(nonctg_datatype::DatatypeError::BufferTooSmall {
                                    needed: lo + len,
                                    available: buf_len,
                                })?
                                .copy_from_slice(&data[pos..pos + len]);
                            pos += len;
                        }
                        crate::invariants::check_recv_conservation(
                            total,
                            pos,
                            dtype.size() as usize,
                        );
                        iov_scattered =
                            Some(crate::selector::RegionShape::of(&rr, p.mem.cacheline));
                    }
                    None => {
                        let consumed =
                            dt::unpack_from(&data, dtype, incoming_count, buf, origin)?;
                        crate::invariants::check_recv_conservation(
                            total,
                            consumed,
                            dtype.size() as usize,
                        );
                    }
                }
            }
        }
        if !dtype.is_contiguous_run(incoming_count as u64) {
            let t_scatter = self.clock.now();
            match iov_scattered {
                Some(shape) => {
                    // Direct placement: exact per-region charges, no
                    // jitter — the iovec clock is a pure function of the
                    // region list.
                    self.charge_exact(p.iov_scatter_time_shaped(
                        total as u64,
                        shape.n,
                        shape.subline,
                        self.is_warm(),
                    ));
                }
                None => {
                    let access = Access::classify(dtype);
                    self.charge(p.scatter_time(total as u64, &access, self.is_warm()));
                }
            }
            self.trace(
                crate::trace::EventKind::Unstage,
                t_scatter,
                Some(env_src),
                total,
                Some(env_tag),
            );
        }
        self.cache = CacheState::Warm;

        self.trace(
            crate::trace::EventKind::Recv,
            t_post,
            Some(env_src),
            total,
            Some(env_tag),
        );
        Ok(RecvStatus { source: env_src, tag: env_tag, bytes: total })
    }

    /// Drain a pipelined payload, unpacking each chunk in place via the
    /// receive type's compiled plan. Sender chunks are aligned to the
    /// *send* plan, so a carry buffer bridges cuts that fall mid-instance
    /// for the receive plan; bytes past the whole instances the posted
    /// receive consumes are drained and dropped, exactly like the
    /// monolithic unpack. Purely wall-clock: no virtual charges here.
    #[allow(clippy::too_many_arguments)]
    fn drain_chunks(
        &mut self,
        rx: Receiver<PooledBuf>,
        audit: Option<Arc<crate::invariants::StreamAudit>>,
        total: usize,
        dtype: &Datatype,
        incoming_count: usize,
        buf: &mut [u8],
        origin: usize,
        src: usize,
        tag: i32,
    ) -> Result<()> {
        let plan = dt::plan_for(dtype, incoming_count);
        // Bytes the posted receive actually delivers into `buf`.
        let fit = plan.as_ref().map(|pl| pl.packed_len()).unwrap_or(0);
        let me = self.global_rank(self.rank());
        let sup = Arc::clone(&self.fabric().supervision);
        let deadline = Instant::now() + sup.timeout();
        sup.set_blocked(me, Some("pipelined chunk arrival"));
        let mut pos = 0usize;
        let mut carry: Vec<u8> = Vec::new();
        let mut received = 0usize;
        let mut cseq: u32 = 0;
        let mut out: Result<()> = Ok(());
        'drain: while received < total {
            let cbuf = loop {
                if let Some(rank) = sup.failed_rank() {
                    if let Ok(c) = rx.try_recv() {
                        break c;
                    }
                    out = Err(CoreError::PeerFailed { rank });
                    break 'drain;
                }
                let now = Instant::now();
                if now >= deadline {
                    out = Err(CoreError::deadlock("pipelined chunk arrival"));
                    break 'drain;
                }
                let slice = (deadline - now).min(poll_slice());
                match rx.recv_timeout(slice) {
                    Ok(c) => break c,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => {
                        out = Err(match sup.failed_rank() {
                            Some(rank) => CoreError::PeerFailed { rank },
                            None => CoreError::deadlock("pipelined chunk arrival"),
                        });
                        break 'drain;
                    }
                }
            };
            let n = cbuf.len();
            received += n;
            if let Some(a) = &audit {
                a.drain(n);
            }
            // Depth samples the ring occupancy at drain time including
            // this chunk: 1 = the receiver caught the sender.
            let ring_depth = rx.len() as u32 + 1;
            let t_now = self.clock.now();
            self.trace_stream(
                crate::trace::EventKind::Chunk,
                t_now,
                Some(src),
                n,
                Some(tag),
                Some(cseq),
                Some(ring_depth),
            );
            let seq = cseq;
            cseq += 1;
            // Bytes that detour through the carry buffer (chunk cuts that
            // fall mid-instance for the receive plan) are traced as a
            // zero-width Copy so the analyzer can price the extra memcpy;
            // no virtual time is charged, exactly like the Chunk marker.
            let trace_carry = |me: &mut Self, carried: usize| {
                if carried > 0 {
                    let t = me.clock.now();
                    me.trace_stream(
                        crate::trace::EventKind::Copy,
                        t,
                        Some(src),
                        carried,
                        Some(tag),
                        Some(seq),
                        None,
                    );
                }
            };
            let Some(pl) = &plan else { // no plan: assemble, unpack at the end
                trace_carry(self, cbuf.len());
                carry.extend_from_slice(&cbuf);
                continue;
            };
            if pos + carry.len() >= fit {
                continue; // trailing partial instance: drained, dropped
            }
            // Bytes still wanted at the fit boundary, net of what the
            // carry buffer already holds — taking `fit - pos` here would
            // strand the trailing partial instance in the carry buffer.
            let take = (fit - pos - carry.len()).min(n);
            let aligned_end = pl.align_chunk((pos + take) as u64) as usize;
            if carry.is_empty() && aligned_end == pos + take {
                // Fast path: the chunk ends on a cut of the receive plan
                // too — unpack straight from the ring buffer, in place.
                if aligned_end > pos {
                    if let Err(e) = pl.unpack_range_from(&cbuf[..take], buf, origin, pos as u64, aligned_end as u64) {
                        out = Err(e.into());
                        break 'drain;
                    }
                    pos = aligned_end;
                }
            } else {
                trace_carry(self, take);
                carry.extend_from_slice(&cbuf[..take]);
                let hi = pl.align_chunk((pos + carry.len()) as u64) as usize;
                if hi > pos {
                    let used = hi - pos;
                    if let Err(e) = pl.unpack_range_from(&carry[..used], buf, origin, pos as u64, hi as u64) {
                        out = Err(e.into());
                        break 'drain;
                    }
                    carry.drain(..used);
                    pos = hi;
                }
            }
        }
        sup.set_blocked(me, None);
        out.map_err(|e| self.fabric().enrich(e))?;
        if plan.is_none() {
            let consumed = dt::unpack_from(&carry, dtype, incoming_count, buf, origin)?;
            crate::invariants::check_recv_conservation(total, consumed, dtype.size() as usize);
        } else {
            debug_assert!(carry.is_empty() && pos == fit.min(total));
            if crate::invariants::oracle_checks_enabled() {
                if !carry.is_empty() || pos != fit.min(total) {
                    crate::invariants::violation(
                        "chunk drain left a partial instance stranded in the carry buffer",
                    );
                }
                crate::invariants::check_recv_conservation(total, pos, dtype.size() as usize);
            }
        }
        if let Some(a) = &audit {
            a.finish();
        }
        Ok(())
    }

    /// Receive into a contiguous byte buffer.
    pub fn recv_bytes(
        &mut self,
        buf: &mut [u8],
        src: Option<usize>,
        tag: Option<i32>,
    ) -> Result<RecvStatus> {
        let t = Datatype::byte();
        let n = buf.len();
        self.recv(buf, 0, &t, n, src, tag)
    }

    /// Receive into a contiguous scalar slice.
    pub fn recv_slice<T: Scalar>(
        &mut self,
        buf: &mut [T],
        src: Option<usize>,
        tag: Option<i32>,
    ) -> Result<RecvStatus> {
        let t = Datatype::of::<T>();
        let n = buf.len();
        self.recv(dt::as_bytes_mut(buf), 0, &t, n, src, tag)
    }

    /// Non-blocking probe for a matching message.
    pub fn probe(&self, src: Option<usize>, tag: Option<i32>) -> bool {
        let me = self.global_rank(self.rank());
        self.fabric().mailboxes[me].probe(self.context(), src, tag)
    }
}
