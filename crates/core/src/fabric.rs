//! The shared fabric: mailboxes, message envelopes, protocol metadata, and
//! the clock-combining barrier.
//!
//! Payload bytes always move for real (senders pack, receivers unpack and
//! can verify byte-for-byte); *time* is carried alongside as virtual-clock
//! stamps computed from the platform cost model. Rendezvous sends block the
//! sender on a real back-channel until the receiver matches, which keeps
//! virtual time causal without a global event queue.

use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use nonctg_datatype::Signature;
use nonctg_simnet::Platform;
use parking_lot::{Condvar, Mutex};

use crate::error::{CoreError, Result};
use crate::rma::WindowState;

/// How long a blocking operation may wait on real time before the runtime
/// declares a deadlock. Generous: virtual time is unrelated to wall time.
pub(crate) const DEADLOCK_TIMEOUT: Duration = Duration::from_secs(60);

/// Timing metadata of a message, interpreted by the receiver.
#[derive(Debug)]
pub(crate) enum Protocol {
    /// Eager: the sender fully determined availability.
    Eager {
        /// Virtual time the payload is available at the receiver.
        avail: f64,
    },
    /// Rendezvous: transfer starts once both sides are ready; the sender
    /// blocks until the receiver reports the completion time back.
    Rendezvous {
        /// Virtual time the sender had the data staged and the RTS posted.
        sender_ready: f64,
        /// Pure wire time of the payload, precomputed by the sender.
        wire: f64,
        /// Back-channel for the sender's completion time.
        reply: Sender<f64>,
    },
    /// Asynchronous rendezvous (buffered sends): same timing rule as
    /// rendezvous but the sender has already returned.
    AsyncRendezvous {
        /// Virtual time the buffered data was ready to transfer.
        sender_ready: f64,
        /// Pure wire time of the payload.
        wire: f64,
    },
}

/// A message in flight or queued at the receiver.
#[derive(Debug)]
pub(crate) struct Envelope {
    /// Communicator context the message belongs to.
    pub context: u64,
    /// Sender's rank *within that context*.
    pub src: usize,
    pub tag: i32,
    /// Packed (contiguous) payload bytes.
    pub payload: Bytes,
    /// Total signature (already scaled by the send count).
    pub sig: Signature,
    pub protocol: Protocol,
    /// Released back to an attached bsend buffer when matched.
    pub bsend_release: Option<(Arc<AtomicU64>, u64)>,
}

#[derive(Default)]
struct MailboxInner {
    queue: Vec<Envelope>,
}

/// Per-rank incoming message queue.
pub(crate) struct Mailbox {
    inner: Mutex<MailboxInner>,
    cond: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox { inner: Mutex::new(MailboxInner::default()), cond: Condvar::new() }
    }

    /// Deposit an envelope and wake any waiting receiver.
    pub fn push(&self, env: Envelope) {
        let mut inner = self.inner.lock();
        inner.queue.push(env);
        self.cond.notify_all();
    }

    /// Blocking match: remove and return the first envelope in `context`
    /// matching `src`/`tag` (None = wildcard), preserving per-source order.
    pub fn match_recv(
        &self,
        context: u64,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> Result<Envelope> {
        let mut inner = self.inner.lock();
        loop {
            let pos = inner.queue.iter().position(|e| {
                e.context == context
                    && src.is_none_or(|s| s == e.src)
                    && tag.is_none_or(|t| t == e.tag)
            });
            if let Some(i) = pos {
                return Ok(inner.queue.remove(i));
            }
            if self.cond.wait_for(&mut inner, DEADLOCK_TIMEOUT).timed_out() {
                return Err(CoreError::Deadlock("a matching message"));
            }
        }
    }

    /// Non-blocking probe: does a matching envelope exist in `context`?
    pub fn probe(&self, context: u64, src: Option<usize>, tag: Option<i32>) -> bool {
        let inner = self.inner.lock();
        inner.queue.iter().any(|e| {
            e.context == context
                && src.is_none_or(|s| s == e.src)
                && tag.is_none_or(|t| t == e.tag)
        })
    }
}

struct BarrierState {
    generation: u64,
    arrived: usize,
    tmax: f64,
    result: f64,
}

/// A barrier that also max-combines the participants' virtual clocks.
pub(crate) struct SimBarrier {
    state: Mutex<BarrierState>,
    cond: Condvar,
    nranks: usize,
}

impl SimBarrier {
    pub(crate) fn new(nranks: usize) -> Self {
        SimBarrier {
            state: Mutex::new(BarrierState { generation: 0, arrived: 0, tmax: 0.0, result: 0.0 }),
            cond: Condvar::new(),
            nranks,
        }
    }

    /// Enter with the local virtual time; returns the maximum across all
    /// participants once everyone has arrived.
    pub fn wait(&self, t_local: f64) -> Result<f64> {
        let mut st = self.state.lock();
        let my_gen = st.generation;
        st.tmax = st.tmax.max(t_local);
        st.arrived += 1;
        if st.arrived == self.nranks {
            st.result = st.tmax;
            st.tmax = 0.0;
            st.arrived = 0;
            st.generation += 1;
            self.cond.notify_all();
            return Ok(st.result);
        }
        while st.generation == my_gen {
            if self.cond.wait_for(&mut st, DEADLOCK_TIMEOUT).timed_out() {
                return Err(CoreError::Deadlock("barrier participants"));
            }
        }
        Ok(st.result)
    }
}

/// The world context id.
pub(crate) const WORLD_CONTEXT: u64 = 0;

/// A pending `split` exchange: each participant's `(color, key)`.
#[derive(Default)]
pub(crate) struct SplitSlot {
    pub entries: Vec<Option<(i64, i64)>>,
    pub filled: usize,
}

/// All state shared between the ranks of one [`crate::Universe`] run.
pub(crate) struct Fabric {
    pub nranks: usize,
    pub platform: Platform,
    pub mailboxes: Vec<Mailbox>,
    /// Per-context barriers; context 0 is the world.
    pub barriers: Mutex<HashMap<u64, Arc<SimBarrier>>>,
    /// Registered one-sided windows, keyed by `(context, sequence)`.
    pub windows: Mutex<HashMap<(u64, usize), Arc<WindowState>>>,
    /// In-progress split exchanges, keyed by `(parent context, sequence)`.
    pub splits: Mutex<HashMap<(u64, u64), SplitSlot>>,
}

impl Fabric {
    pub fn new(platform: Platform, nranks: usize) -> Arc<Fabric> {
        let mut barriers = HashMap::new();
        barriers.insert(WORLD_CONTEXT, Arc::new(SimBarrier::new(nranks)));
        Arc::new(Fabric {
            nranks,
            mailboxes: (0..nranks).map(|_| Mailbox::new()).collect(),
            barriers: Mutex::new(barriers),
            windows: Mutex::new(HashMap::new()),
            splits: Mutex::new(HashMap::new()),
            platform,
        })
    }

    /// The barrier of a context (must exist).
    pub fn barrier_of(&self, context: u64) -> Arc<SimBarrier> {
        Arc::clone(self.barriers.lock().get(&context).expect("context barrier"))
    }
}

/// Create the rendezvous back-channel.
pub(crate) fn reply_channel() -> (Sender<f64>, Receiver<f64>) {
    bounded(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(src: usize, tag: i32) -> Envelope {
        Envelope {
            context: WORLD_CONTEXT,
            src,
            tag,
            payload: Bytes::new(),
            sig: Signature::empty(),
            protocol: Protocol::Eager { avail: 0.0 },
            bsend_release: None,
        }
    }

    #[test]
    fn mailbox_matches_by_source_and_tag() {
        let mb = Mailbox::new();
        mb.push(env(0, 1));
        mb.push(env(1, 2));
        let got = mb.match_recv(WORLD_CONTEXT, Some(1), Some(2)).unwrap();
        assert_eq!((got.src, got.tag), (1, 2));
        let got = mb.match_recv(WORLD_CONTEXT, None, None).unwrap();
        assert_eq!((got.src, got.tag), (0, 1));
    }

    #[test]
    fn mailbox_preserves_order_per_source() {
        let mb = Mailbox::new();
        mb.push(env(0, 7));
        mb.push(env(0, 7));
        // Same source and tag: FIFO
        let _ = mb.match_recv(WORLD_CONTEXT, Some(0), Some(7)).unwrap();
        assert!(mb.probe(WORLD_CONTEXT, Some(0), Some(7)));
    }

    #[test]
    fn mailbox_wakes_blocked_receiver() {
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.match_recv(WORLD_CONTEXT, Some(3), None).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        mb.push(env(3, 0));
        let got = h.join().unwrap();
        assert_eq!(got.src, 3);
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        mb.push(env(2, 9));
        assert!(mb.probe(WORLD_CONTEXT, Some(2), Some(9)));
        assert!(mb.probe(WORLD_CONTEXT, Some(2), Some(9)));
        assert!(!mb.probe(WORLD_CONTEXT, Some(2), Some(8)));
    }

    #[test]
    fn barrier_combines_clocks() {
        let b = Arc::new(SimBarrier::new(3));
        let mut handles = Vec::new();
        for t in [1.0, 5.0, 3.0] {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || b.wait(t).unwrap()));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 5.0);
        }
    }

    #[test]
    fn barrier_reusable_across_generations() {
        let b = Arc::new(SimBarrier::new(2));
        for round in 0..5 {
            let b1 = Arc::clone(&b);
            let b2 = Arc::clone(&b);
            let base = round as f64 * 10.0;
            let h1 = std::thread::spawn(move || b1.wait(base + 1.0).unwrap());
            let h2 = std::thread::spawn(move || b2.wait(base + 2.0).unwrap());
            assert_eq!(h1.join().unwrap(), base + 2.0);
            assert_eq!(h2.join().unwrap(), base + 2.0);
        }
    }
}
