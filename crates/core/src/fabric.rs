//! The shared fabric: mailboxes, message envelopes, protocol metadata, and
//! the clock-combining barrier.
//!
//! Payload bytes always move for real (senders pack, receivers unpack and
//! can verify byte-for-byte); *time* is carried alongside as virtual-clock
//! stamps computed from the platform cost model. Rendezvous sends block the
//! sender on a real back-channel until the receiver matches, which keeps
//! virtual time causal without a global event queue.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use nonctg_datatype::Signature;
use nonctg_simnet::Platform;
use parking_lot::{Condvar, Mutex, MutexGuard};

use crate::error::{CoreError, Result};
use crate::invariants::{AliasRegistry, ClockLedger, StreamAudit};
use crate::rma::WindowState;

/// Longest slice a fabric wait sleeps before re-checking the poison flag.
/// Bounds how long a blocked peer can take to observe a rank failure, so
/// it stays well under a second; condvar notifications still end waits
/// immediately on the happy path. Configurable via `NONCTG_POLL_SLICE_MS`
/// (milliseconds, clamped to >= 1), resolved once per process.
pub(crate) fn poll_slice() -> Duration {
    static V: OnceLock<Duration> = OnceLock::new();
    *V.get_or_init(|| {
        let ms = std::env::var("NONCTG_POLL_SLICE_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(20)
            .max(1);
        Duration::from_millis(ms)
    })
}

/// Bounded spin budget a fabric wait burns before its first park. Matches
/// arrive within microseconds on the hot path, so a short spin avoids
/// most condvar sleeps; the budget is small enough that a genuinely idle
/// wait parks almost immediately.
pub(crate) const SPIN_ROUNDS: u32 = 64;

/// One spin round between lock re-acquisitions.
#[inline]
pub(crate) fn spin_round() {
    for _ in 0..32 {
        std::hint::spin_loop();
    }
}

/// Bounded pool of reusable payload buffers, shared by every rank of one
/// fabric. Message staging (sends, bsend, streamed chunks) draws from it,
/// and buffers flow back automatically when the receiver drops the
/// envelope — including on error paths.
pub(crate) struct PayloadPool {
    bufs: Mutex<Vec<Vec<u8>>>,
    /// Fault-poisoned allocations, held alive (bounded by
    /// [`PayloadPool::QUARANTINE_CAP`]) so their addresses can never be
    /// recycled into a later transfer — and so the oracle recycling check
    /// in [`PayloadPool::take`] is precise, not racing the allocator.
    quarantine: Mutex<Vec<Vec<u8>>>,
    /// Oracle-mode ledger of lent-out buffer addresses (aliasing check).
    aliases: AliasRegistry,
}

impl PayloadPool {
    /// Buffers retained for reuse; beyond this, returned allocations are
    /// simply freed (bounds worst-case memory at a few in-flight payloads).
    const MAX_RETAINED: usize = 8;

    /// Poisoned allocations held in quarantine; beyond this the oldest is
    /// freed (its address may then lawfully re-enter circulation via the
    /// allocator, which is fine — only pool recycling is forbidden).
    const QUARANTINE_CAP: usize = 16;

    pub(crate) fn new() -> Arc<PayloadPool> {
        Arc::new(PayloadPool {
            bufs: Mutex::new(Vec::new()),
            quarantine: Mutex::new(Vec::new()),
            aliases: AliasRegistry::default(),
        })
    }

    /// Whether `ptr` is the address of a quarantined (poisoned) buffer.
    fn is_quarantined(&self, ptr: usize) -> bool {
        self.quarantine.lock().iter().any(|q| q.as_ptr() as usize == ptr)
    }

    /// A buffer of exactly `len` bytes (contents unspecified beyond being
    /// initialized), reusing a pooled allocation when one is available.
    pub fn take(self: &Arc<Self>, len: usize) -> PooledBuf {
        let mut buf = self.bufs.lock().pop().unwrap_or_default();
        if buf.len() < len {
            buf.resize(len, 0);
        } else {
            buf.truncate(len);
        }
        // Empty buffers share the dangling sentinel pointer and can never
        // alias real payload bytes, so only allocations enter the ledger.
        if buf.capacity() > 0 {
            let ptr = buf.as_ptr() as usize;
            if crate::invariants::oracle_checks_enabled() && self.is_quarantined(ptr) {
                crate::invariants::violation(&format!(
                    "payload pool recycled fault-poisoned buffer {ptr:#x}"
                ));
            }
            self.aliases.lend(ptr);
        }
        PooledBuf { buf, pool: Some(Arc::clone(self)), poisoned: false }
    }

    fn put(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let ptr = buf.as_ptr() as usize;
        if crate::invariants::oracle_checks_enabled() && self.is_quarantined(ptr) {
            crate::invariants::violation(&format!(
                "fault-poisoned buffer {ptr:#x} returned to the payload pool"
            ));
        }
        // Length is kept: `take` truncates or extends, so reusing a buffer
        // for an equal-or-smaller payload never pays a memset.
        let mut bufs = self.bufs.lock();
        if bufs.len() < Self::MAX_RETAINED {
            bufs.push(buf);
        }
    }

    /// Impound a fault-poisoned allocation so [`PayloadPool::take`] can
    /// never hand its bytes to a later transfer.
    fn impound(&self, buf: Vec<u8>) {
        if buf.capacity() == 0 {
            return;
        }
        let mut q = self.quarantine.lock();
        q.push(buf);
        if q.len() > Self::QUARANTINE_CAP {
            q.remove(0);
        }
    }
}

/// A payload buffer that returns its allocation to its [`PayloadPool`]
/// on drop — unless poisoned, in which case it is quarantined instead.
/// Derefs to `[u8]`.
pub(crate) struct PooledBuf {
    buf: Vec<u8>,
    pool: Option<Arc<PayloadPool>>,
    poisoned: bool,
}

impl PooledBuf {
    /// Wrap a plain vector without pool backing (the owned-buffer
    /// fallback when the pool is exhausted, and test scaffolding).
    pub fn detached(buf: Vec<u8>) -> PooledBuf {
        PooledBuf { buf, pool: None, poisoned: false }
    }

    /// Mark the buffer fault-poisoned: on drop its allocation goes to the
    /// pool's quarantine instead of back into circulation, so a corrupted
    /// or dropped chunk's bytes can never be recycled into a later
    /// transfer.
    pub fn poison(&mut self) {
        self.poisoned = true;
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            if self.buf.capacity() > 0 {
                pool.aliases.give_back(self.buf.as_ptr() as usize);
            }
            let buf = std::mem::take(&mut self.buf);
            if self.poisoned {
                pool.impound(buf);
            } else {
                pool.put(buf);
            }
        }
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PooledBuf({} B)", self.buf.len())
    }
}

/// Packed payload of a message: fully materialized, or streamed as a
/// sequence of chunk buffers the sender is still producing.
#[derive(Debug)]
pub(crate) enum Payload {
    /// The whole packed message.
    Whole(PooledBuf),
    /// Chunked stream (pipelined rendezvous): the receiver drains `rx`
    /// until it has `total` bytes. Chunk boundaries are pack-plan block
    /// aligned on the sender, but receivers must not rely on that.
    Chunked {
        /// Total packed bytes across all chunks.
        total: usize,
        /// Chunk buffers, in message order; the channel's bound is the
        /// ring depth that throttles the sender.
        rx: Receiver<PooledBuf>,
        /// Oracle-mode audit shared with the sender's pump (chunk order
        /// and byte-conservation checks); `None` when checks are off.
        audit: Option<Arc<StreamAudit>>,
    },
    /// Zero-copy iovec rendezvous: the payload bytes travel in region
    /// order (exactly what a pack would produce) together with the
    /// sender-side `(offset, len)` region list, and the receiver scatters
    /// them straight into its own regions without an unpack pass. The
    /// virtual-time charges differ (per-region DMA costs instead of a
    /// staging gather); the bytes delivered are identical to a pack.
    Iovec {
        /// Region-ordered payload bytes (same bytes a pack would stage).
        data: PooledBuf,
        /// Sender-side region list, for audits and diagnostics.
        regions: Arc<[(i64, u64)]>,
    },
}

impl Payload {
    /// Total packed bytes of the message (known up front either way).
    pub fn len(&self) -> usize {
        match self {
            Payload::Whole(b) => b.len(),
            Payload::Chunked { total, .. } => *total,
            Payload::Iovec { data, .. } => data.len(),
        }
    }
}

/// The last tracked operation a rank started, kept for watchdog reports.
#[derive(Debug, Clone, Copy)]
pub(crate) struct OpRecord {
    /// Operation kind ("send", "recv", ...).
    pub kind: &'static str,
    /// Peer rank, if the operation has one.
    pub peer: Option<usize>,
    /// Payload size in bytes.
    pub bytes: usize,
}

/// Per-rank counters of injected faults the runtime absorbed or surfaced.
///
/// Read through [`crate::Comm::fault_stats`]; all zeros unless the
/// platform carries a [`nonctg_simnet::FaultPlan`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient send failures absorbed by retry-with-backoff.
    pub transient_retries: u64,
    /// Injected delivery delays charged to the virtual clock.
    pub delays: u64,
    /// Payloads corrupted in flight.
    pub corruptions: u64,
    /// Sends abandoned after the bounded retry budget.
    pub failed_sends: u64,
    /// Transfers demoted from the pipelined chunk stream to a whole
    /// (monolithic) rendezvous after repeated forecast chunk faults.
    pub pipeline_demotions: u64,
    /// Chunks re-packed and re-sent after an in-stream corruption/drop.
    pub chunk_retries: u64,
    /// Sends that fell back from pooled (zero-copy-style) staging to an
    /// owned buffer because the payload pool was exhausted.
    pub pool_exhaustions: u64,
    /// Sends that fell back to the uncompiled pack path after a pack-plan
    /// compile/allocation failure.
    pub plan_fallbacks: u64,
    /// Packs that fell back from the parallel kernel to the serial one
    /// after a worker failure.
    pub serial_fallbacks: u64,
    /// Sends demoted from the zero-copy iovec datapath to the pack-plan
    /// path after an injected fault (pool exhaustion or worker failure
    /// while the region list was being gathered).
    pub iovec_demotions: u64,
    /// Sends charged a sustained link-degradation latency surcharge.
    pub link_degradations: u64,
    /// Injected receiver-side crashes surfaced as typed errors.
    pub recv_crashes: u64,
    /// Request waits that gave up at a caller-supplied timeout.
    pub timeouts: u64,
    /// Requests cancelled before completion.
    pub cancels: u64,
}

impl FaultStats {
    /// Add another rank's counters into this one.
    pub fn absorb(&mut self, other: FaultStats) {
        self.transient_retries += other.transient_retries;
        self.delays += other.delays;
        self.corruptions += other.corruptions;
        self.failed_sends += other.failed_sends;
        self.pipeline_demotions += other.pipeline_demotions;
        self.chunk_retries += other.chunk_retries;
        self.pool_exhaustions += other.pool_exhaustions;
        self.plan_fallbacks += other.plan_fallbacks;
        self.serial_fallbacks += other.serial_fallbacks;
        self.iovec_demotions += other.iovec_demotions;
        self.link_degradations += other.link_degradations;
        self.recv_crashes += other.recv_crashes;
        self.timeouts += other.timeouts;
        self.cancels += other.cancels;
    }

    /// Total graceful demotions: every time the runtime swapped a faster
    /// datapath for a slower-but-correct one instead of failing.
    pub fn demotions(&self) -> u64 {
        self.pipeline_demotions + self.pool_exhaustions + self.plan_fallbacks
            + self.serial_fallbacks
            + self.iovec_demotions
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == FaultStats::default()
    }
}

/// Shared health state of one universe: the poison flag set when a rank
/// fails, the configured deadlock timeout, and per-rank bookkeeping the
/// watchdog dumps into [`CoreError::Deadlock`] reports.
pub(crate) struct Supervision {
    /// World rank + 1 of the first failed rank; 0 = all healthy.
    failed: AtomicUsize,
    /// Per-wait timeout before a blocked rank declares a deadlock.
    timeout: Duration,
    /// What each rank is currently blocked on (`None` = running).
    blocked: Vec<Mutex<Option<&'static str>>>,
    /// Last tracked operation each rank started.
    last_op: Vec<Mutex<Option<OpRecord>>>,
    /// Per-rank tracked-operation counters, keying fault-plan decisions.
    ops: Vec<AtomicU64>,
    /// Per-rank injected-fault counters.
    faults: Vec<Mutex<FaultStats>>,
}

impl Supervision {
    pub(crate) fn new(nranks: usize, timeout: Duration) -> Arc<Supervision> {
        Arc::new(Supervision {
            failed: AtomicUsize::new(0),
            timeout,
            blocked: (0..nranks).map(|_| Mutex::new(None)).collect(),
            last_op: (0..nranks).map(|_| Mutex::new(None)).collect(),
            ops: (0..nranks).map(|_| AtomicU64::new(0)).collect(),
            faults: (0..nranks).map(|_| Mutex::new(FaultStats::default())).collect(),
        })
    }

    /// Next operation index of `rank` (each rank's ops are numbered in
    /// program order, which is deterministic: one thread per rank).
    pub fn next_op(&self, rank: usize) -> u64 {
        self.ops[rank].fetch_add(1, Ordering::Relaxed)
    }

    /// Mutate `rank`'s fault counters.
    pub fn with_faults(&self, rank: usize, f: impl FnOnce(&mut FaultStats)) {
        if let Some(slot) = self.faults.get(rank) {
            f(&mut slot.lock());
        }
    }

    /// Snapshot `rank`'s fault counters.
    pub fn fault_stats(&self, rank: usize) -> FaultStats {
        self.faults.get(rank).map(|s| *s.lock()).unwrap_or_default()
    }

    /// The per-wait deadlock timeout in force.
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    /// World rank of the first failed rank, if any.
    pub fn failed_rank(&self) -> Option<usize> {
        let v = self.failed.load(Ordering::Acquire);
        (v > 0).then(|| v - 1)
    }

    /// Mark `rank` failed. Only the first failure sticks; later ones keep
    /// the original culprit so every peer reports the same rank.
    pub fn poison(&self, rank: usize) {
        let _ = self.failed.compare_exchange(0, rank + 1, Ordering::AcqRel, Ordering::Acquire);
    }

    /// Record what `rank` is blocked on (or `None` when it resumes).
    pub fn set_blocked(&self, rank: usize, what: Option<&'static str>) {
        if let Some(slot) = self.blocked.get(rank) {
            *slot.lock() = what;
        }
    }

    /// Record the operation `rank` just started.
    pub fn record_op(&self, rank: usize, op: OpRecord) {
        if let Some(slot) = self.last_op.get(rank) {
            *slot.lock() = Some(op);
        }
    }

    fn blocked_on(&self, rank: usize) -> Option<&'static str> {
        self.blocked.get(rank).and_then(|s| *s.lock())
    }

    fn last_op_of(&self, rank: usize) -> Option<OpRecord> {
        self.last_op.get(rank).and_then(|s| *s.lock())
    }
}

/// Timing metadata of a message, interpreted by the receiver.
#[derive(Debug)]
pub(crate) enum Protocol {
    /// Eager: the sender fully determined availability.
    Eager {
        /// Virtual time the payload is available at the receiver.
        avail: f64,
    },
    /// Rendezvous: transfer starts once both sides are ready; the sender
    /// blocks until the receiver reports the completion time back.
    Rendezvous {
        /// Virtual time the sender had the data staged and the RTS posted.
        sender_ready: f64,
        /// Pure wire time of the payload, precomputed by the sender.
        wire: f64,
        /// Back-channel for the sender's completion time.
        reply: Sender<f64>,
    },
    /// Asynchronous rendezvous (buffered sends): same timing rule as
    /// rendezvous but the sender has already returned.
    AsyncRendezvous {
        /// Virtual time the buffered data was ready to transfer.
        sender_ready: f64,
        /// Pure wire time of the payload.
        wire: f64,
    },
}

/// A message in flight or queued at the receiver.
#[derive(Debug)]
pub(crate) struct Envelope {
    /// Communicator context the message belongs to.
    pub context: u64,
    /// Sender's rank *within that context*.
    pub src: usize,
    pub tag: i32,
    /// Packed (contiguous) payload bytes, whole or streamed.
    pub payload: Payload,
    /// Total signature (already scaled by the send count).
    pub sig: Signature,
    pub protocol: Protocol,
    /// Released back to an attached bsend buffer when matched.
    pub bsend_release: Option<(Arc<AtomicU64>, u64)>,
}

#[derive(Default)]
struct MailboxInner {
    queue: Vec<Envelope>,
}

/// Per-rank incoming message queue.
pub(crate) struct Mailbox {
    inner: Mutex<MailboxInner>,
    cond: Condvar,
    sup: Arc<Supervision>,
}

impl Mailbox {
    fn new(sup: Arc<Supervision>) -> Self {
        Mailbox { inner: Mutex::new(MailboxInner::default()), cond: Condvar::new(), sup }
    }

    /// Deposit an envelope and wake any waiting receiver.
    pub fn push(&self, env: Envelope) {
        let mut inner = self.inner.lock();
        inner.queue.push(env);
        self.cond.notify_all();
    }

    /// Blocking match: remove and return the first envelope in `context`
    /// matching `src`/`tag` (None = wildcard), preserving per-source order.
    ///
    /// Returns [`CoreError::PeerFailed`] as soon as the fabric is
    /// poisoned (a queued match still wins over poison, since the data is
    /// already here), or [`CoreError::Deadlock`] after the supervision
    /// timeout.
    pub fn match_recv(
        &self,
        context: u64,
        src: Option<usize>,
        tag: Option<i32>,
    ) -> Result<Envelope> {
        let deadline = Instant::now() + self.sup.timeout();
        let mut spins = SPIN_ROUNDS;
        let mut inner = self.inner.lock();
        loop {
            let pos = inner.queue.iter().position(|e| {
                e.context == context
                    && src.is_none_or(|s| s == e.src)
                    && tag.is_none_or(|t| t == e.tag)
            });
            if let Some(i) = pos {
                return Ok(inner.queue.remove(i));
            }
            if let Some(rank) = self.sup.failed_rank() {
                return Err(CoreError::PeerFailed { rank });
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CoreError::deadlock("a matching message"));
            }
            // Spin-then-park: burn the bounded spin budget (lock released)
            // before the first condvar sleep.
            if spins > 0 {
                spins -= 1;
                MutexGuard::unlocked(&mut inner, spin_round);
                continue;
            }
            let slice = (deadline - now).min(poll_slice());
            let _ = self.cond.wait_for(&mut inner, slice);
        }
    }

    /// Non-blocking probe: does a matching envelope exist in `context`?
    pub fn probe(&self, context: u64, src: Option<usize>, tag: Option<i32>) -> bool {
        let inner = self.inner.lock();
        inner.queue.iter().any(|e| {
            e.context == context
                && src.is_none_or(|s| s == e.src)
                && tag.is_none_or(|t| t == e.tag)
        })
    }

    /// Snapshot of queued envelopes as `(context, src, tag, len)`, for
    /// watchdog reports.
    pub fn snapshot(&self) -> Vec<(u64, usize, i32, usize)> {
        let inner = self.inner.lock();
        inner
            .queue
            .iter()
            .map(|e| (e.context, e.src, e.tag, e.payload.len()))
            .collect()
    }
}

struct BarrierState {
    generation: u64,
    arrived: usize,
    tmax: f64,
    result: f64,
}

/// A barrier that also max-combines the participants' virtual clocks.
pub(crate) struct SimBarrier {
    state: Mutex<BarrierState>,
    cond: Condvar,
    nranks: usize,
    sup: Arc<Supervision>,
}

impl SimBarrier {
    pub(crate) fn new(nranks: usize, sup: Arc<Supervision>) -> Self {
        SimBarrier {
            state: Mutex::new(BarrierState { generation: 0, arrived: 0, tmax: 0.0, result: 0.0 }),
            cond: Condvar::new(),
            nranks,
            sup,
        }
    }

    /// Enter with the local virtual time; returns the maximum across all
    /// participants once everyone has arrived.
    ///
    /// A poisoned fabric fails the wait with [`CoreError::PeerFailed`]
    /// (the failed rank can never arrive); the supervision timeout fails
    /// it with [`CoreError::Deadlock`].
    pub fn wait(&self, t_local: f64) -> Result<f64> {
        let deadline = Instant::now() + self.sup.timeout();
        let mut st = self.state.lock();
        let my_gen = st.generation;
        st.tmax = st.tmax.max(t_local);
        st.arrived += 1;
        if st.arrived == self.nranks {
            st.result = st.tmax;
            st.tmax = 0.0;
            st.arrived = 0;
            st.generation += 1;
            self.cond.notify_all();
            return Ok(st.result);
        }
        let mut spins = SPIN_ROUNDS;
        while st.generation == my_gen {
            if let Some(rank) = self.sup.failed_rank() {
                return Err(CoreError::PeerFailed { rank });
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CoreError::deadlock("barrier participants"));
            }
            // Spin-then-park, as in `Mailbox::match_recv`.
            if spins > 0 {
                spins -= 1;
                MutexGuard::unlocked(&mut st, spin_round);
                continue;
            }
            let slice = (deadline - now).min(poll_slice());
            let _ = self.cond.wait_for(&mut st, slice);
        }
        Ok(st.result)
    }
}

/// The world context id.
pub(crate) const WORLD_CONTEXT: u64 = 0;

/// A pending `split` exchange: each participant's `(color, key)`.
#[derive(Default)]
pub(crate) struct SplitSlot {
    pub entries: Vec<Option<(i64, i64)>>,
    pub filled: usize,
}

/// All state shared between the ranks of one [`crate::Universe`] run.
pub(crate) struct Fabric {
    pub nranks: usize,
    pub platform: Platform,
    pub mailboxes: Vec<Mailbox>,
    /// Per-context barriers; context 0 is the world.
    pub barriers: Mutex<HashMap<u64, Arc<SimBarrier>>>,
    /// Registered one-sided windows, keyed by `(context, sequence)`.
    pub windows: Mutex<HashMap<(u64, usize), Arc<WindowState>>>,
    /// In-progress split exchanges, keyed by `(parent context, sequence)`.
    pub splits: Mutex<HashMap<(u64, u64), SplitSlot>>,
    /// Health state: poison flag, deadlock timeout, watchdog bookkeeping.
    pub supervision: Arc<Supervision>,
    /// Reusable payload staging buffers shared by all ranks.
    pub pool: Arc<PayloadPool>,
    /// Oracle-mode per-rank virtual-clock monotonicity ledger.
    pub clock_ledger: ClockLedger,
}

impl Fabric {
    pub fn new(platform: Platform, nranks: usize) -> Arc<Fabric> {
        let supervision = Supervision::new(nranks, platform.effective_deadlock_timeout());
        let mut barriers = HashMap::new();
        barriers.insert(
            WORLD_CONTEXT,
            Arc::new(SimBarrier::new(nranks, Arc::clone(&supervision))),
        );
        Arc::new(Fabric {
            nranks,
            mailboxes: (0..nranks).map(|_| Mailbox::new(Arc::clone(&supervision))).collect(),
            barriers: Mutex::new(barriers),
            windows: Mutex::new(HashMap::new()),
            splits: Mutex::new(HashMap::new()),
            supervision,
            platform,
            pool: PayloadPool::new(),
            clock_ledger: ClockLedger::new(nranks),
        })
    }

    /// The barrier of a context (must exist).
    pub fn barrier_of(&self, context: u64) -> Arc<SimBarrier> {
        Arc::clone(self.barriers.lock().get(&context).expect("context barrier"))
    }

    /// Per-rank diagnostics for watchdog reports: what each rank is
    /// blocked on, the last operation it started, and its queued mailbox
    /// envelopes.
    pub fn diagnostics(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("fabric state at timeout:");
        for rank in 0..self.nranks {
            let _ = write!(out, "\n  rank {rank}: ");
            match self.supervision.blocked_on(rank) {
                Some(what) => {
                    let _ = write!(out, "blocked on {what}");
                }
                None => out.push_str("running"),
            }
            if let Some(op) = self.supervision.last_op_of(rank) {
                let _ = write!(out, "; last op {}", op.kind);
                if let Some(peer) = op.peer {
                    let _ = write!(out, " peer {peer}");
                }
                let _ = write!(out, " ({} B)", op.bytes);
            }
            let queued = self.mailboxes[rank].snapshot();
            if queued.is_empty() {
                out.push_str("; mailbox empty");
            } else {
                let _ = write!(out, "; mailbox [");
                for (i, (ctx, src, tag, len)) in queued.iter().take(8).enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "ctx {ctx} src {src} tag {tag} len {len}");
                }
                if queued.len() > 8 {
                    let _ = write!(out, ", +{} more", queued.len() - 8);
                }
                out.push(']');
            }
        }
        out
    }

    /// Attach diagnostics to a bare [`CoreError::Deadlock`]; other errors
    /// pass through untouched.
    pub fn enrich(&self, e: CoreError) -> CoreError {
        match e {
            CoreError::Deadlock { waiting_for, report } if report.is_empty() => {
                CoreError::Deadlock { waiting_for, report: self.diagnostics() }
            }
            other => other,
        }
    }
}

/// Create the rendezvous back-channel.
pub(crate) fn reply_channel() -> (Sender<f64>, Receiver<f64>) {
    bounded(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sup() -> Arc<Supervision> {
        Supervision::new(4, Duration::from_secs(5))
    }

    fn env(src: usize, tag: i32) -> Envelope {
        Envelope {
            context: WORLD_CONTEXT,
            src,
            tag,
            payload: Payload::Whole(PooledBuf::detached(Vec::new())),
            sig: Signature::empty(),
            protocol: Protocol::Eager { avail: 0.0 },
            bsend_release: None,
        }
    }

    #[test]
    fn payload_pool_reuses_allocations() {
        let pool = PayloadPool::new();
        let mut a = pool.take(1024);
        a[5] = 7;
        let ptr = a.as_ptr();
        let cap_ok = a.len() == 1024;
        assert!(cap_ok);
        drop(a);
        // Next take of equal-or-smaller size reuses the same allocation.
        let b = pool.take(512);
        assert_eq!(b.as_ptr(), ptr);
        assert_eq!(b.len(), 512);
        drop(b);
        // Detached buffers never enter the pool.
        drop(PooledBuf::detached(vec![1, 2, 3]));
        let c = pool.take(8);
        assert_eq!(c.as_ptr(), ptr);
    }

    #[test]
    fn poisoned_buffer_is_never_recycled() {
        let pool = PayloadPool::new();
        let mut a = pool.take(256);
        let poisoned_ptr = a.as_ptr() as usize;
        a.poison();
        drop(a);
        // The quarantined allocation must never come back out of the pool.
        assert!(pool.is_quarantined(poisoned_ptr));
        for _ in 0..32 {
            let b = pool.take(256);
            assert_ne!(b.as_ptr() as usize, poisoned_ptr);
        }
        // Healthy buffers still recycle as before.
        let c = pool.take(64);
        let healthy_ptr = c.as_ptr();
        drop(c);
        assert_eq!(pool.take(64).as_ptr(), healthy_ptr);
    }

    #[test]
    fn quarantine_is_bounded() {
        let pool = PayloadPool::new();
        for _ in 0..(PayloadPool::QUARANTINE_CAP + 10) {
            let mut b = PooledBuf {
                buf: vec![0u8; 32],
                pool: Some(Arc::clone(&pool)),
                poisoned: false,
            };
            b.poison();
            drop(b);
        }
        assert_eq!(pool.quarantine.lock().len(), PayloadPool::QUARANTINE_CAP);
    }

    #[test]
    fn fault_stats_absorb_and_demotions() {
        let mut a = FaultStats { pipeline_demotions: 2, pool_exhaustions: 1, ..Default::default() };
        let b = FaultStats {
            plan_fallbacks: 3,
            serial_fallbacks: 4,
            iovec_demotions: 6,
            chunk_retries: 5,
            timeouts: 1,
            cancels: 2,
            recv_crashes: 1,
            link_degradations: 7,
            ..Default::default()
        };
        a.absorb(b);
        assert_eq!(a.demotions(), 2 + 1 + 3 + 4 + 6);
        assert_eq!(a.chunk_retries, 5);
        assert_eq!(a.timeouts, 1);
        assert_eq!(a.cancels, 2);
        assert_eq!(a.recv_crashes, 1);
        assert_eq!(a.link_degradations, 7);
        assert!(!a.is_zero());
        assert!(FaultStats::default().is_zero());
    }

    #[test]
    fn mailbox_matches_by_source_and_tag() {
        let mb = Mailbox::new(sup());
        mb.push(env(0, 1));
        mb.push(env(1, 2));
        let got = mb.match_recv(WORLD_CONTEXT, Some(1), Some(2)).unwrap();
        assert_eq!((got.src, got.tag), (1, 2));
        let got = mb.match_recv(WORLD_CONTEXT, None, None).unwrap();
        assert_eq!((got.src, got.tag), (0, 1));
    }

    #[test]
    fn mailbox_preserves_order_per_source() {
        let mb = Mailbox::new(sup());
        mb.push(env(0, 7));
        mb.push(env(0, 7));
        // Same source and tag: FIFO
        let _ = mb.match_recv(WORLD_CONTEXT, Some(0), Some(7)).unwrap();
        assert!(mb.probe(WORLD_CONTEXT, Some(0), Some(7)));
    }

    #[test]
    fn mailbox_wakes_blocked_receiver() {
        let mb = Arc::new(Mailbox::new(sup()));
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.match_recv(WORLD_CONTEXT, Some(3), None).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        mb.push(env(3, 0));
        let got = h.join().unwrap();
        assert_eq!(got.src, 3);
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new(sup());
        mb.push(env(2, 9));
        assert!(mb.probe(WORLD_CONTEXT, Some(2), Some(9)));
        assert!(mb.probe(WORLD_CONTEXT, Some(2), Some(9)));
        assert!(!mb.probe(WORLD_CONTEXT, Some(2), Some(8)));
    }

    #[test]
    fn barrier_combines_clocks() {
        let b = Arc::new(SimBarrier::new(3, sup()));
        let mut handles = Vec::new();
        for t in [1.0, 5.0, 3.0] {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || b.wait(t).unwrap()));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 5.0);
        }
    }

    #[test]
    fn barrier_reusable_across_generations() {
        let b = Arc::new(SimBarrier::new(2, sup()));
        for round in 0..5 {
            let b1 = Arc::clone(&b);
            let b2 = Arc::clone(&b);
            let base = round as f64 * 10.0;
            let h1 = std::thread::spawn(move || b1.wait(base + 1.0).unwrap());
            let h2 = std::thread::spawn(move || b2.wait(base + 2.0).unwrap());
            assert_eq!(h1.join().unwrap(), base + 2.0);
            assert_eq!(h2.join().unwrap(), base + 2.0);
        }
    }
}
