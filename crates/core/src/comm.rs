//! The per-rank communicator handle.
//!
//! A [`Comm`] is owned by exactly one rank thread. It bundles the rank id,
//! the shared fabric, the rank's virtual clock, its deterministic jitter
//! stream, and the cache-warmth state that models the paper's §4.6
//! flush/no-flush ablation.

use std::sync::Arc;

use nonctg_simnet::{Access, Jitter, Platform, VirtualClock};

use crate::error::{CoreError, Result};
use crate::fabric::{Fabric, FaultStats, SimBarrier, SplitSlot, WORLD_CONTEXT};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::trace::{EventKind, TraceConfig, TraceEvent, TraceStats, Tracer};

/// Tracks whether recently-touched user data is still cache-resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheState {
    /// The caches were just flushed (or never touched).
    Cold,
    /// The working set of the previous operation may still be resident.
    Warm,
}

/// One rank's communicator.
///
/// The world communicator is handed to each rank by
/// [`crate::Universe::run`]; sub-communicators come from [`Comm::split`].
/// A `Comm` created by `split` shares the rank's virtual clock state by
/// *moving* the clock through operations on whichever handle is used —
/// handles of the same rank must not be used concurrently (the borrow
/// checker enforces this: `split` borrows, operations take `&mut self`).
pub struct Comm {
    /// Rank within this communicator.
    rank: usize,
    /// Communicator context id (0 = world).
    context: u64,
    /// Local rank -> global rank map; `None` means identity (the world).
    group: Option<Arc<Vec<usize>>>,
    /// This context's barrier.
    barrier: Arc<SimBarrier>,
    /// Per-context split sequence number (collective call counter).
    split_seq: u64,
    fabric: Arc<Fabric>,
    pub(crate) clock: VirtualClock,
    pub(crate) jitter: Jitter,
    pub(crate) cache: CacheState,
    pub(crate) bsend: Option<crate::p2p::BsendBuffer>,
    pub(crate) next_win_id: usize,
    pub(crate) tracer: Tracer,
    /// Aggregate counters/histograms; boxed so the disabled (`None`) case
    /// costs one pointer in the struct and one branch per operation.
    pub(crate) metrics: Option<Box<MetricsRegistry>>,
    /// Rank-local growable staging buffer, reused across collective calls
    /// (gather/gatherv receive staging) instead of allocating per receive.
    pub(crate) scratch: Vec<u8>,
}

impl Comm {
    pub(crate) fn new(fabric: Arc<Fabric>, rank: usize) -> Comm {
        let seed = fabric.platform.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9);
        let sigma = fabric.platform.jitter_sigma;
        let barrier = fabric.barrier_of(WORLD_CONTEXT);
        Comm {
            rank,
            context: WORLD_CONTEXT,
            group: None,
            barrier,
            split_seq: 0,
            fabric,
            clock: VirtualClock::new(),
            jitter: Jitter::new(seed, sigma),
            cache: CacheState::Cold,
            bsend: None,
            next_win_id: 0,
            tracer: Tracer::default(),
            metrics: None,
            scratch: Vec::new(),
        }
    }

    /// Take the rank-local scratch buffer, grown (never shrunk) to at
    /// least `len` bytes. Return it with [`Comm::put_scratch`] so the
    /// allocation is reused by the next caller. Taking instead of
    /// borrowing keeps `&mut self` free for the operation that fills it.
    pub fn take_scratch(&mut self, len: usize) -> Vec<u8> {
        let mut s = std::mem::take(&mut self.scratch);
        if s.len() < len {
            s.resize(len, 0);
        }
        s
    }

    /// Return a buffer taken with [`Comm::take_scratch`].
    pub fn put_scratch(&mut self, s: Vec<u8>) {
        if s.capacity() > self.scratch.capacity() {
            self.scratch = s;
        }
    }

    /// This rank's id, `0..size()`, within this communicator.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in this communicator.
    #[inline]
    pub fn size(&self) -> usize {
        match &self.group {
            Some(g) => g.len(),
            None => self.fabric.nranks,
        }
    }

    /// The communicator's context id (0 for the world).
    #[inline]
    pub fn context(&self) -> u64 {
        self.context
    }

    /// Global (world) rank of a local rank in this communicator.
    #[inline]
    pub(crate) fn global_rank(&self, local: usize) -> usize {
        match &self.group {
            Some(g) => g[local],
            None => local,
        }
    }

    /// This rank's world rank.
    #[inline]
    pub fn world_rank(&self) -> usize {
        self.global_rank(self.rank)
    }

    /// The platform model this universe runs on.
    #[inline]
    pub fn platform(&self) -> &Platform {
        &self.fabric.platform
    }

    pub(crate) fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// Current virtual time in seconds — the `MPI_Wtime` equivalent the
    /// ping-pong harness reads.
    #[inline]
    pub fn wtime(&self) -> f64 {
        self.clock.now()
    }

    /// Resolution of [`Comm::wtime`] as `MPI_Wtick` reports it.
    ///
    /// The paper's platforms resolve 1 microsecond; our virtual clock is
    /// exact, so this is metadata for harnesses that want to emulate the
    /// quantization rather than a property of `wtime` itself (see
    /// docs/MODEL.md §3).
    pub fn wtick(&self) -> f64 {
        1e-6
    }

    /// Whether the cache is modeled as warm for the next gather.
    #[inline]
    pub fn cache_state(&self) -> CacheState {
        self.cache
    }

    pub(crate) fn is_warm(&self) -> bool {
        self.cache == CacheState::Warm
    }

    /// Advance the local clock by a jittered model duration.
    pub(crate) fn charge(&mut self, seconds: f64) -> f64 {
        let dt = seconds * self.jitter.factor();
        self.clock.advance(dt);
        dt
    }

    /// Advance the local clock by an exact (unjittered) duration.
    pub(crate) fn charge_exact(&mut self, seconds: f64) {
        self.clock.advance(seconds);
    }

    /// Charge the cost of a *user-space* gather/copy loop of `payload`
    /// bytes with the given access pattern — the paper's "manual copying"
    /// scheme calls this around its real copy loop.
    pub fn charge_copy(&mut self, payload: u64, access: &Access) {
        let t0 = self.clock.now();
        let t = self.platform().gather_time(payload, access, self.is_warm());
        self.charge(t);
        self.cache = CacheState::Warm;
        self.trace(EventKind::Copy, t0, None, payload as usize, None);
    }

    /// Charge the cost of a user-space scatter (the receive-side analogue
    /// of [`Self::charge_copy`]).
    pub fn charge_scatter(&mut self, payload: u64, access: &Access) {
        let t0 = self.clock.now();
        let t = self.platform().scatter_time(payload, access, self.is_warm());
        self.charge(t);
        self.cache = CacheState::Warm;
        self.trace(EventKind::Copy, t0, None, payload as usize, None);
    }

    /// Rewrite a `bytes`-sized array to flush the caches, as the paper does
    /// between ping-pongs (§3.2). Advances the clock (outside any timed
    /// region) and marks the cache cold.
    ///
    /// Charged exactly (no jitter): the flush happens on every rank between
    /// iterations, and jittering it independently per rank would let the
    /// virtual clocks drift apart by far more than a small message takes —
    /// polluting the timings with artificial skew instead of message costs.
    pub fn flush_cache(&mut self, bytes: u64) {
        let t0 = self.clock.now();
        let t = self.platform().flush_time(bytes);
        self.charge_exact(t);
        self.cache = CacheState::Cold;
        self.trace(EventKind::Flush, t0, None, bytes as usize, None);
    }

    /// Synchronize all ranks; clocks advance to the barrier's completion
    /// (the max of all participants plus a small software cost).
    pub fn barrier(&mut self) -> Result<()> {
        let t0 = self.clock.now();
        let barrier = Arc::clone(&self.barrier);
        let me = self.world_rank();
        self.fabric.supervision.set_blocked(me, Some("barrier participants"));
        let res = barrier.wait(t0);
        self.fabric.supervision.set_blocked(me, None);
        let t = res.map_err(|e| self.fabric.enrich(e))?;
        self.clock.sync_to(t);
        self.charge_exact(self.platform().proto.eager_overhead);
        self.trace(EventKind::Barrier, t0, None, 0, None);
        Ok(())
    }

    /// Counters of injected faults this rank has absorbed or surfaced
    /// (all zeros when the platform carries no fault plan).
    pub fn fault_stats(&self) -> FaultStats {
        self.fabric.supervision.fault_stats(self.world_rank())
    }

    /// Start recording a [`TraceEvent`] per operation on this rank, with
    /// ring capacity and sampling read from the environment
    /// (`NONCTG_TRACE_CAP`, `NONCTG_TRACE_SAMPLE`).
    pub fn enable_trace(&mut self) {
        self.tracer.enable();
    }

    /// Start tracing with an explicit [`TraceConfig`].
    pub fn enable_trace_with(&mut self, cfg: TraceConfig) {
        self.tracer.enable_with(cfg);
    }

    /// Stop tracing and return the recorded events.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.tracer.take()
    }

    /// Recording counters of the tracer (zeros when tracing is off).
    pub fn trace_stats(&self) -> TraceStats {
        self.tracer.stats()
    }

    /// Start collecting aggregate metrics on this rank (no-op if already
    /// enabled). Costs one branch per operation while enabled or not.
    pub fn enable_metrics(&mut self) {
        if self.metrics.is_none() {
            self.metrics = Some(Box::new(MetricsRegistry::new()));
        }
    }

    /// Whether metrics collection is enabled.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// Stop collecting and return this rank's [`MetricsSnapshot`]
    /// (including its fault counters and the plan-cache delta since
    /// [`Comm::enable_metrics`]), or `None` if collection was off.
    pub fn take_metrics(&mut self) -> Option<MetricsSnapshot> {
        let faults = self.fault_stats();
        self.metrics.take().map(|r| r.snapshot(faults))
    }

    /// Record an event ending now (no-op when tracing is off).
    #[inline]
    pub(crate) fn trace(
        &mut self,
        kind: EventKind,
        t_start: f64,
        peer: Option<usize>,
        bytes: usize,
        tag: Option<i32>,
    ) {
        self.trace_stream(kind, t_start, peer, bytes, tag, None, None);
    }

    /// [`Comm::trace`] with stream position metadata: the chunk sequence
    /// number and ring occupancy of a pipelined transfer (see
    /// [`TraceEvent::seq`] / [`TraceEvent::depth`]).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn trace_stream(
        &mut self,
        kind: EventKind,
        t_start: f64,
        peer: Option<usize>,
        bytes: usize,
        tag: Option<i32>,
        seq: Option<u32>,
        depth: Option<u32>,
    ) {
        if self.tracer.enabled() {
            let t_end = self.clock.now();
            self.tracer.record(TraceEvent { kind, t_start, t_end, peer, bytes, tag, seq, depth });
        }
        if let Some(m) = &mut self.metrics {
            m.record(kind, self.clock.now() - t_start, bytes);
        }
        // Oracle mode: every traced operation is a monotonicity checkpoint
        // of this rank's virtual clock (shared across split handles).
        self.fabric.clock_ledger.tick(self.world_rank(), self.clock.now());
    }

    /// Validate a peer rank.
    pub(crate) fn check_rank(&self, rank: usize) -> Result<()> {
        if rank >= self.size() {
            Err(CoreError::InvalidRank { rank, size: self.size() })
        } else {
            Ok(())
        }
    }

    /// Duplicate this communicator (`MPI_Comm_dup`): same group and rank
    /// order, fresh context — messages on the duplicate never match the
    /// original. Collective.
    pub fn dup(&mut self) -> Result<Comm> {
        Ok(self
            .split(0, self.rank() as i64)?
            .expect("dup: every rank participates"))
    }

    /// Partition this communicator (`MPI_Comm_split`): ranks passing the
    /// same `color` form a new communicator, ordered by `(key, old rank)`.
    /// A negative `color` (MPI_UNDEFINED) yields `None`. Collective.
    ///
    /// The returned handle continues this rank's timeline: its clock
    /// starts at the parent's current virtual time and then advances
    /// independently (the borrow checker prevents interleaving two handles
    /// of the same rank within one expression; use one communicator at a
    /// time per timing region).
    pub fn split(&mut self, color: i64, key: i64) -> Result<Option<Comm>> {
        let seq = self.split_seq;
        self.split_seq += 1;
        let parent_size = self.size();
        let my_entry = if color < 0 { None } else { Some((color, key)) };

        // Publish (color, key) in the shared slot for this collective.
        {
            let mut splits = self.fabric.splits.lock();
            let slot = splits.entry((self.context, seq)).or_insert_with(|| SplitSlot {
                entries: vec![None; parent_size],
                filled: 0,
            });
            slot.entries[self.rank] = my_entry;
            slot.filled += 1;
        }
        self.barrier()?; // all entries published

        // Deterministically derive the groups (every rank computes the
        // same thing from the same table).
        let entries = {
            let splits = self.fabric.splits.lock();
            splits[&(self.context, seq)].entries.clone()
        };
        self.barrier()?; // everyone has read
        // Last reader cleans up.
        {
            let mut splits = self.fabric.splits.lock();
            if let Some(slot) = splits.get_mut(&(self.context, seq)) {
                slot.filled -= 1;
                if slot.filled == 0 {
                    splits.remove(&(self.context, seq));
                }
            }
        }

        let Some((my_color, my_key)) = my_entry else {
            return Ok(None);
        };

        // Colors in first-appearance order -> deterministic context ids.
        let mut colors: Vec<i64> = Vec::new();
        for e in entries.iter().flatten() {
            if !colors.contains(&e.0) {
                colors.push(e.0);
            }
        }
        let color_index = colors.iter().position(|&c| c == my_color).expect("own color");

        // Members of my color, ordered by (key, parent rank).
        let mut members: Vec<(i64, usize)> = entries
            .iter()
            .enumerate()
            .filter_map(|(r, e)| match e {
                Some((c, k)) if *c == my_color => Some((*k, r)),
                _ => None,
            })
            .collect();
        members.sort_unstable();
        let new_rank = members
            .iter()
            .position(|&(k, r)| (k, r) == (my_key, self.rank))
            .expect("own membership");
        let group: Vec<usize> = members
            .iter()
            .map(|&(_, parent_local)| self.global_rank(parent_local))
            .collect();

        // Deterministic context id per (parent, collective seq, color):
        // every member computes the same id with no extra coordination.
        let base = self.allocate_context(seq, color_index, group.len());
        let barrier = self.fabric.barrier_of(base);
        Ok(Some(Comm {
            rank: new_rank,
            context: base,
            group: Some(Arc::new(group)),
            barrier,
            split_seq: 0,
            fabric: Arc::clone(&self.fabric),
            clock: VirtualClock::starting_at(self.clock.now()),
            jitter: Jitter::new(
                self.fabric.platform.seed
                    ^ (self.world_rank() as u64).wrapping_mul(0x9E37_79B9)
                    ^ (base << 8),
                self.fabric.platform.jitter_sigma,
            ),
            cache: self.cache,
            bsend: None,
            next_win_id: 0,
            tracer: Tracer::default(),
            metrics: None,
            scratch: Vec::new(),
        }))
    }

    /// Deterministic context id for `(parent ctx, seq, color_index)`,
    /// registering its barrier on first use.
    fn allocate_context(&self, seq: u64, color_index: usize, nmembers: usize) -> u64 {
        // A collision-free deterministic id: hash of the triple into the
        // upper id space, far away from the sequential world contexts.
        let mut id = 0xcbf2_9ce4_8422_2325u64;
        for v in [self.context, seq, color_index as u64] {
            id ^= v;
            id = id.wrapping_mul(0x1000_0000_01b3);
        }
        id |= 1 << 63; // never collides with WORLD_CONTEXT
        let mut barriers = self.fabric.barriers.lock();
        barriers.entry(id).or_insert_with(|| {
            Arc::new(SimBarrier::new(nmembers, Arc::clone(&self.fabric.supervision)))
        });
        id
    }
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size())
            .field("wtime", &self.wtime())
            .field("platform", &self.platform().id)
            .finish()
    }
}
