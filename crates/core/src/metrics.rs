//! Per-rank operation metrics: counters and duration histograms.
//!
//! Where tracing ([`crate::trace`]) keeps individual events, metrics keep
//! *aggregates*: monotonic per-[`EventKind`] operation/byte counters, busy
//! time, and fixed-bucket log2 duration histograms — bounded memory no
//! matter how long a run is. Collection is off by default; when enabled,
//! every operation is fed from the same chokepoint as tracing
//! ([`crate::Comm::trace`]), so the hot path pays exactly one branch per
//! operation when metrics are off.
//!
//! A rank's registry is drained into a [`MetricsSnapshot`] with
//! [`crate::Comm::take_metrics`]; snapshots from different ranks merge
//! into one run-wide view. The snapshot also carries this rank's
//! [`FaultStats`] and the process-global datatype plan-cache delta
//! (hits/misses/evictions/compile time) accumulated while the registry
//! was live.

use std::fmt::Write as _;

use nonctg_datatype::plan::{self, PlanCacheStats};

use crate::fabric::FaultStats;
use crate::selector::{self, SelectorCounters};
use crate::trace::EventKind;

/// Number of per-kind slots in a registry (one per [`EventKind`]).
pub const N_KINDS: usize = EventKind::COUNT;

/// Version stamp of the metrics JSON document layout. Bumped whenever a
/// field is renamed, retyped, or removed (additions are compatible);
/// external consumers should reject documents from a different major
/// version rather than guessing.
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Fixed-bucket histogram of durations on a log2-nanosecond scale.
///
/// Bucket `i` counts observations in `[2^i, 2^(i+1))` nanoseconds
/// (bucket 0 also absorbs sub-nanosecond values); the last bucket is
/// open-ended. 40 buckets span ~1 ns to ~18 minutes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; Histogram::NBUCKETS],
}

impl Histogram {
    /// Number of buckets.
    pub const NBUCKETS: usize = 40;

    /// An empty histogram.
    pub const fn new() -> Histogram {
        Histogram { buckets: [0; Histogram::NBUCKETS] }
    }

    /// Record one duration (in seconds).
    #[inline]
    pub fn observe(&mut self, seconds: f64) {
        let ns = seconds * 1e9;
        let idx = if ns < 2.0 {
            0
        } else {
            (ns.log2() as usize).min(Self::NBUCKETS - 1)
        };
        self.buckets[idx] += 1;
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Count in bucket `i`.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// `[lower, upper)` bounds of bucket `i`, in seconds.
    pub fn bounds(i: usize) -> (f64, f64) {
        let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 * 1e-9 };
        (lo, (1u64 << (i + 1)) as f64 * 1e-9)
    }

    /// Upper bound (seconds) of the bucket where the cumulative count
    /// first reaches `q` (0..=1) of the total; 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bounds(i).1;
            }
        }
        Self::bounds(Self::NBUCKETS - 1).1
    }

    /// Add another histogram's counts into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The live per-rank collector. Created by [`crate::Comm::enable_metrics`],
/// drained by [`crate::Comm::take_metrics`].
#[derive(Debug)]
pub(crate) struct MetricsRegistry {
    ops: [u64; N_KINDS],
    bytes: [u64; N_KINDS],
    busy: [f64; N_KINDS],
    hist: [Histogram; N_KINDS],
    /// Plan-cache counters at enable time; the snapshot reports the delta.
    plan_base: PlanCacheStats,
    /// Selector counters at enable time; the snapshot reports the delta.
    selector_base: SelectorCounters,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            ops: [0; N_KINDS],
            bytes: [0; N_KINDS],
            busy: [0.0; N_KINDS],
            hist: [Histogram::new(); N_KINDS],
            plan_base: plan::cache_stats(),
            selector_base: selector::selector_counters(),
        }
    }

    #[inline]
    pub fn record(&mut self, kind: EventKind, seconds: f64, bytes: usize) {
        let i = kind as usize;
        self.ops[i] += 1;
        self.bytes[i] += bytes as u64;
        self.busy[i] += seconds;
        self.hist[i].observe(seconds);
    }

    pub fn snapshot(&self, faults: FaultStats) -> MetricsSnapshot {
        MetricsSnapshot {
            ranks: 1,
            ops: self.ops,
            bytes: self.bytes,
            busy: self.busy,
            hist: self.hist,
            faults,
            plan_cache: plan::cache_stats().delta_since(self.plan_base),
            selector: selector::selector_counters().delta_since(&self.selector_base),
        }
    }
}

/// A mergeable point-in-time view of one or more ranks' metrics.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// How many rank snapshots were merged into this one.
    pub ranks: usize,
    /// Operation count per [`EventKind`] discriminant.
    pub ops: [u64; N_KINDS],
    /// Payload bytes per kind.
    pub bytes: [u64; N_KINDS],
    /// Busy virtual seconds per kind.
    pub busy: [f64; N_KINDS],
    /// Duration histogram per kind.
    pub hist: [Histogram; N_KINDS],
    /// Injected-fault counters (summed across merged ranks).
    pub faults: FaultStats,
    /// Datatype plan-cache activity while metrics were enabled. The cache
    /// is process-global, so merging takes the element-wise maximum
    /// rather than summing the same events once per rank.
    pub plan_cache: PlanCacheStats,
    /// Adaptive-datapath selector decisions (auto mode only) while
    /// metrics were enabled. Like the plan cache, the counters are
    /// process-global, so merging takes the element-wise maximum.
    pub selector: SelectorCounters,
}

impl Default for MetricsSnapshot {
    fn default() -> MetricsSnapshot {
        MetricsSnapshot {
            ranks: 0,
            ops: [0; N_KINDS],
            bytes: [0; N_KINDS],
            busy: [0.0; N_KINDS],
            hist: [Histogram::new(); N_KINDS],
            faults: FaultStats::default(),
            plan_cache: PlanCacheStats::default(),
            selector: SelectorCounters::default(),
        }
    }
}

impl MetricsSnapshot {
    /// Operation count of one kind.
    pub fn ops_of(&self, kind: EventKind) -> u64 {
        self.ops[kind as usize]
    }

    /// Payload bytes of one kind.
    pub fn bytes_of(&self, kind: EventKind) -> u64 {
        self.bytes[kind as usize]
    }

    /// Busy seconds of one kind.
    pub fn busy_of(&self, kind: EventKind) -> f64 {
        self.busy[kind as usize]
    }

    /// Total operations across all kinds.
    pub fn total_ops(&self) -> u64 {
        self.ops.iter().sum()
    }

    /// Fold another snapshot (typically another rank's) into this one.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        self.ranks += other.ranks;
        for i in 0..N_KINDS {
            self.ops[i] += other.ops[i];
            self.bytes[i] += other.bytes[i];
            self.busy[i] += other.busy[i];
            self.hist[i].merge(&other.hist[i]);
        }
        self.faults.absorb(other.faults);
        let p = &mut self.plan_cache;
        p.size = p.size.max(other.plan_cache.size);
        p.hits = p.hits.max(other.plan_cache.hits);
        p.misses = p.misses.max(other.plan_cache.misses);
        p.evictions = p.evictions.max(other.plan_cache.evictions);
        p.compile_nanos = p.compile_nanos.max(other.plan_cache.compile_nanos);
        p.norm_hits = p.norm_hits.max(other.plan_cache.norm_hits);
        p.norm_misses = p.norm_misses.max(other.plan_cache.norm_misses);
        let sel = &mut self.selector;
        sel.pack = sel.pack.max(other.selector.pack);
        sel.iov = sel.iov.max(other.selector.iov);
        sel.elem = sel.elem.max(other.selector.elem);
    }

    /// Serialize as a self-contained JSON document (hand-rolled — the
    /// workspace deliberately carries no serialization dependency).
    ///
    /// Kinds with zero operations are omitted; nonzero histogram buckets
    /// are emitted as `[lower_ns, upper_ns, count]` triples.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {METRICS_SCHEMA_VERSION},");
        let _ = writeln!(s, "  \"ranks\": {},", self.ranks);
        s.push_str("  \"kinds\": {\n");
        let mut first = true;
        for kind in EventKind::ALL {
            let i = kind as usize;
            if self.ops[i] == 0 {
                continue;
            }
            if !first {
                s.push_str(",\n");
            }
            first = false;
            let _ = write!(
                s,
                "    \"{}\": {{\"count\": {}, \"bytes\": {}, \"busy_s\": {:e}, \"p50_s\": {:e}, \"p99_s\": {:e}, \"hist_ns\": [",
                kind.label(),
                self.ops[i],
                self.bytes[i],
                self.busy[i],
                self.hist[i].quantile(0.5),
                self.hist[i].quantile(0.99),
            );
            let mut first_b = true;
            for b in 0..Histogram::NBUCKETS {
                let c = self.hist[i].bucket(b);
                if c == 0 {
                    continue;
                }
                if !first_b {
                    s.push_str(", ");
                }
                first_b = false;
                let (lo, hi) = Histogram::bounds(b);
                let _ = write!(s, "[{}, {}, {}]", (lo * 1e9) as u64, (hi * 1e9) as u64, c);
            }
            s.push_str("]}");
        }
        s.push_str("\n  },\n");
        let f = &self.faults;
        let _ = writeln!(
            s,
            "  \"faults\": {{\"transient_retries\": {}, \"delays\": {}, \"corruptions\": {}, \"failed_sends\": {}, \"pipeline_demotions\": {}, \"chunk_retries\": {}, \"pool_exhaustions\": {}, \"plan_fallbacks\": {}, \"serial_fallbacks\": {}, \"iovec_demotions\": {}, \"link_degradations\": {}, \"recv_crashes\": {}, \"timeouts\": {}, \"cancels\": {}, \"demotions\": {}}},",
            f.transient_retries,
            f.delays,
            f.corruptions,
            f.failed_sends,
            f.pipeline_demotions,
            f.chunk_retries,
            f.pool_exhaustions,
            f.plan_fallbacks,
            f.serial_fallbacks,
            f.iovec_demotions,
            f.link_degradations,
            f.recv_crashes,
            f.timeouts,
            f.cancels,
            f.demotions()
        );
        let p = &self.plan_cache;
        let _ = writeln!(
            s,
            "  \"plan_cache\": {{\"size\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"compile_s\": {:e}, \"norm_hits\": {}, \"norm_misses\": {}}},",
            p.size,
            p.hits,
            p.misses,
            p.evictions,
            p.compile_nanos as f64 * 1e-9,
            p.norm_hits,
            p.norm_misses
        );
        let sel = &self.selector;
        let _ = writeln!(
            s,
            "  \"selector\": {{\"pack\": {}, \"iov\": {}, \"elem\": {}, \"total\": {}}}",
            sel.pack,
            sel.iov,
            sel.elem,
            sel.total()
        );
        s.push('}');
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new();
        h.observe(1e-9); // bucket 0
        h.observe(1e-6); // ~2^10 ns
        h.observe(1e-3); // ~2^20 ns
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket(0), 1);
        assert!(h.quantile(0.5) >= 1e-6);
        assert!(h.quantile(1.0) >= 1e-3);
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.observe(1e-6);
        b.observe(1e-6);
        b.observe(1e-3);
        a.merge(&b);
        assert_eq!(a.count(), 3);
    }

    #[test]
    fn registry_records_and_snapshots() {
        let mut r = MetricsRegistry::new();
        r.record(EventKind::Send, 1e-6, 4096);
        r.record(EventKind::Send, 2e-6, 4096);
        r.record(EventKind::Pack, 5e-7, 1024);
        let s = r.snapshot(FaultStats::default());
        assert_eq!(s.ranks, 1);
        assert_eq!(s.ops_of(EventKind::Send), 2);
        assert_eq!(s.bytes_of(EventKind::Send), 8192);
        assert!((s.busy_of(EventKind::Send) - 3e-6).abs() < 1e-15);
        assert_eq!(s.total_ops(), 3);
    }

    #[test]
    fn snapshots_merge_across_ranks() {
        let mut r0 = MetricsRegistry::new();
        let mut r1 = MetricsRegistry::new();
        r0.record(EventKind::Send, 1e-6, 100);
        r1.record(EventKind::Recv, 2e-6, 100);
        let mut s = r0.snapshot(FaultStats { transient_retries: 2, ..Default::default() });
        s.merge(&r1.snapshot(FaultStats { transient_retries: 1, ..Default::default() }));
        assert_eq!(s.ranks, 2);
        assert_eq!(s.ops_of(EventKind::Send), 1);
        assert_eq!(s.ops_of(EventKind::Recv), 1);
        assert_eq!(s.faults.transient_retries, 3);
    }

    #[test]
    fn json_surfaces_demotion_counters() {
        let r = MetricsRegistry::new();
        let s = r.snapshot(FaultStats {
            pipeline_demotions: 2,
            pool_exhaustions: 1,
            plan_fallbacks: 1,
            timeouts: 4,
            ..Default::default()
        });
        let j = s.to_json();
        assert!(j.contains("\"pipeline_demotions\": 2"), "{j}");
        assert!(j.contains("\"timeouts\": 4"), "{j}");
        assert!(j.contains("\"demotions\": 4"), "{j}");
    }

    #[test]
    fn json_includes_only_active_kinds() {
        let mut r = MetricsRegistry::new();
        r.record(EventKind::Unpack, 1e-6, 64);
        let j = r.snapshot(FaultStats::default()).to_json();
        assert!(j.contains(&format!("\"schema_version\": {METRICS_SCHEMA_VERSION}")), "{j}");
        assert!(j.contains("\"unpack\""));
        assert!(!j.contains("\"bsend\""));
        assert!(j.contains("\"plan_cache\""));
        assert!(j.contains("\"faults\""));
        assert!(j.contains("\"selector\""));
        assert!(j.contains("\"norm_hits\""));
    }

    #[test]
    fn json_surfaces_iovec_demotions_and_selector_counts() {
        let r = MetricsRegistry::new();
        let mut s = r.snapshot(FaultStats { iovec_demotions: 3, ..Default::default() });
        s.selector = SelectorCounters { pack: 5, iov: 2, elem: 1 };
        let j = s.to_json();
        assert!(j.contains("\"iovec_demotions\": 3"), "{j}");
        assert!(j.contains("\"demotions\": 3"), "{j}");
        assert!(j.contains("\"selector\": {\"pack\": 5, \"iov\": 2, \"elem\": 1, \"total\": 8}"), "{j}");
    }

    #[test]
    fn merged_selector_counters_take_elementwise_max() {
        // Selector counters are process-global: two ranks' snapshots see
        // the same counters, so merging must not double-count.
        let mut a = MetricsSnapshot {
            ranks: 1,
            selector: SelectorCounters { pack: 4, iov: 1, elem: 0 },
            ..Default::default()
        };
        let b = MetricsSnapshot {
            ranks: 1,
            selector: SelectorCounters { pack: 3, iov: 2, elem: 1 },
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.selector, SelectorCounters { pack: 4, iov: 2, elem: 1 });
    }
}
