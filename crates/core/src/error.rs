//! Runtime error types.

use std::fmt;

use nonctg_datatype::DatatypeError;

/// Errors raised by the message-passing runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields; the variants themselves are documented
pub enum CoreError {
    /// A datatype-level error (construction, packing, bounds).
    Datatype(DatatypeError),
    /// Destination or source rank outside the communicator.
    InvalidRank { rank: usize, size: usize },
    /// The incoming message is larger than the posted receive buffer
    /// (MPI_ERR_TRUNCATE).
    Truncate { incoming: usize, capacity: usize },
    /// Sender and receiver type signatures do not match.
    SignatureMismatch,
    /// `bsend` was called without enough attached buffer space.
    BsendBufferOverflow { needed: usize, available: usize },
    /// `buffer_detach` without an attached buffer, or double attach.
    BufferAttachState(&'static str),
    /// One-sided operation outside a fence epoch, or on a bad window.
    Rma(&'static str),
    /// RMA access outside the bounds of the target window.
    RmaOutOfRange { offset: usize, len: usize, window: usize },
    /// A blocking operation waited past the deadlock-detection timeout.
    /// `report` carries the watchdog's per-rank diagnostics (what each
    /// rank is blocked on, queued mailbox envelopes, last operation).
    Deadlock {
        /// What this rank was waiting for when the timeout expired.
        waiting_for: &'static str,
        /// Per-rank fabric diagnostics; empty until the fabric enriches
        /// the error on its way out.
        report: String,
    },
    /// A peer rank panicked or was crashed by the fault plan; the fabric
    /// is poisoned and no further progress with that peer is possible.
    PeerFailed {
        /// World rank of the first rank that failed.
        rank: usize,
    },
    /// This rank's closure panicked under [`crate::Universe::run_supervised`].
    RankPanicked {
        /// World rank that panicked.
        rank: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// An injected send fault persisted past the bounded retry budget.
    SendFailed {
        /// Destination rank of the failed send.
        dst: usize,
        /// Number of attempts made before giving up.
        attempts: u32,
    },
    /// A request wait reached its caller-supplied timeout before the
    /// operation completed. The request is consumed; the caller decides
    /// whether that is fatal. Distinct from [`CoreError::Deadlock`],
    /// which is the fabric-wide watchdog firing.
    WaitTimeout {
        /// What the wait was for ("send completion", ...).
        waiting_for: &'static str,
        /// The timeout that expired, milliseconds of wall-clock time
        /// (integer so the error stays `Eq`).
        timeout_ms: u64,
    },
    /// The request was cancelled by the caller before completion.
    Cancelled {
        /// The operation that was cancelled.
        what: &'static str,
    },
}

impl CoreError {
    /// A deadlock error with no diagnostics yet (the fabric fills the
    /// report via `Fabric::enrich` as the error propagates out).
    pub(crate) fn deadlock(waiting_for: &'static str) -> CoreError {
        CoreError::Deadlock { waiting_for, report: String::new() }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Datatype(e) => write!(f, "datatype error: {e}"),
            CoreError::InvalidRank { rank, size } => {
                write!(f, "rank {rank} out of range for communicator of size {size}")
            }
            CoreError::Truncate { incoming, capacity } => {
                write!(f, "message truncated: {incoming} bytes incoming, buffer holds {capacity}")
            }
            CoreError::SignatureMismatch => write!(f, "send/recv type signatures do not match"),
            CoreError::BsendBufferOverflow { needed, available } => {
                write!(f, "bsend needs {needed} buffer bytes but only {available} are attached")
            }
            CoreError::BufferAttachState(msg) => write!(f, "buffer attach state: {msg}"),
            CoreError::Rma(msg) => write!(f, "one-sided error: {msg}"),
            CoreError::RmaOutOfRange { offset, len, window } => {
                write!(f, "RMA access {offset}..{} outside window of {window} bytes", offset + len)
            }
            CoreError::Deadlock { waiting_for, report } => {
                write!(f, "likely deadlock while waiting for {waiting_for}")?;
                if !report.is_empty() {
                    write!(f, "\n{report}")?;
                }
                Ok(())
            }
            CoreError::PeerFailed { rank } => {
                write!(f, "peer rank {rank} failed (panicked or crashed); fabric poisoned")
            }
            CoreError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            CoreError::SendFailed { dst, attempts } => {
                write!(f, "send to rank {dst} failed after {attempts} attempts")
            }
            CoreError::WaitTimeout { waiting_for, timeout_ms } => {
                write!(f, "wait for {waiting_for} timed out after {timeout_ms} ms")
            }
            CoreError::Cancelled { what } => write!(f, "{what} cancelled by caller"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Datatype(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DatatypeError> for CoreError {
    fn from(e: DatatypeError) -> Self {
        CoreError::Datatype(e)
    }
}

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, CoreError>;
