//! Tests of communicator contexts and `Comm::split`.

use nonctg_core::{ReduceOp, Universe};
use nonctg_simnet::Platform;

fn quiet() -> Platform {
    let mut p = Platform::skx_impi();
    p.jitter_sigma = 0.0;
    p
}

#[test]
fn split_into_halves() {
    Universe::run(quiet(), 6, |comm| {
        let color = (comm.rank() / 3) as i64;
        let mut sub = comm.split(color, comm.rank() as i64).unwrap().expect("member");
        assert_eq!(sub.size(), 3);
        assert_eq!(sub.rank(), comm.rank() % 3);
        assert_eq!(sub.world_rank(), comm.rank());
        // Communication stays inside the half.
        let mut v = [1u64];
        sub.allreduce(&mut v, ReduceOp::Sum).unwrap();
        assert_eq!(v[0], 3);
    });
}

#[test]
fn key_reorders_ranks() {
    Universe::run(quiet(), 4, |comm| {
        // Reverse order via descending keys.
        let key = -(comm.rank() as i64);
        let sub = comm.split(0, key).unwrap().expect("member");
        assert_eq!(sub.rank(), 3 - comm.rank());
    });
}

#[test]
fn undefined_color_excluded() {
    Universe::run(quiet(), 4, |comm| {
        let color = if comm.rank() == 3 { -1 } else { 0 };
        let sub = comm.split(color, 0).unwrap();
        if comm.rank() == 3 {
            assert!(sub.is_none());
        } else {
            let mut sub = sub.expect("member");
            assert_eq!(sub.size(), 3);
            let mut v = [sub.rank() as u64];
            sub.allreduce(&mut v, ReduceOp::Sum).unwrap();
            assert_eq!(v[0], 3);
        }
    });
}

#[test]
fn messages_do_not_cross_contexts() {
    Universe::run(quiet(), 4, |comm| {
        // Two disjoint pair-communicators with identical local ranks/tags.
        let color = (comm.rank() / 2) as i64;
        let mut sub = comm.split(color, comm.rank() as i64).unwrap().expect("member");
        let partner = 1 - sub.rank();
        // Everyone sends its color; a cross-context leak would deliver the
        // other pair's (different) value.
        let payload = [color as f64];
        let mut got = [f64::NAN];
        sub.sendrecv_slices(&payload, &mut got, partner, 7).unwrap();
        assert_eq!(got[0], color as f64, "world rank {}", comm.rank());
    });
}

#[test]
fn nested_splits() {
    Universe::run(quiet(), 8, |comm| {
        let mut half = comm.split((comm.rank() / 4) as i64, 0).unwrap().expect("half");
        assert_eq!(half.size(), 4);
        let mut quarter = half.split((half.rank() / 2) as i64, 0).unwrap().expect("quarter");
        assert_eq!(quarter.size(), 2);
        let mut v = [quarter.world_rank() as u64];
        quarter.allreduce(&mut v, ReduceOp::Sum).unwrap();
        // Each quarter holds consecutive world ranks {2k, 2k+1}.
        let base = (comm.rank() / 2) * 2;
        assert_eq!(v[0], (base + base + 1) as u64);
    });
}

#[test]
fn windows_are_per_communicator() {
    Universe::run(quiet(), 4, |comm| {
        let color = (comm.rank() / 2) as i64;
        let mut sub = comm.split(color, comm.rank() as i64).unwrap().expect("member");
        let mut win = sub.win_create(8).unwrap();
        win.fence(&mut sub).unwrap();
        if sub.rank() == 0 {
            let t = nonctg_datatype::Datatype::f64();
            let v = [color as f64 + 10.0];
            win.put(&mut sub, nonctg_datatype::as_bytes(&v), 0, &t, 1, 1, 0).unwrap();
        }
        win.fence(&mut sub).unwrap();
        if sub.rank() == 1 {
            let raw = win.read_local(0..8).unwrap();
            let got = f64::from_le_bytes(raw.try_into().unwrap());
            assert_eq!(got, color as f64 + 10.0, "window leaked across contexts");
        }
    });
}

#[test]
fn repeated_splits_get_distinct_contexts() {
    Universe::run(quiet(), 2, |comm| {
        let a = comm.split(0, 0).unwrap().expect("a");
        let b = comm.split(0, 0).unwrap().expect("b");
        assert_ne!(a.context(), b.context());
        assert_ne!(a.context(), comm.context());
    });
}

#[test]
fn collectives_work_inside_split() {
    Universe::run(quiet(), 6, |comm| {
        let mut sub = comm.split((comm.rank() % 2) as i64, 0).unwrap().expect("member");
        // bcast within the subgroup from its rank 0.
        let mut v = if sub.rank() == 0 { [sub.world_rank() as f64] } else { [0.0] };
        sub.bcast(&mut v, 0).unwrap();
        // Subgroup 0 = world ranks {0,2,4} rooted at 0; subgroup 1 = {1,3,5} at 1.
        assert_eq!(v[0], (comm.rank() % 2) as f64);
        // gather inside the subgroup.
        let send = [sub.rank() as f64];
        let mut recv = vec![0.0f64; sub.size()];
        sub.gather(&send, &mut recv, 0).unwrap();
        if sub.rank() == 0 {
            assert_eq!(recv, vec![0.0, 1.0, 2.0]);
        }
    });
}

#[test]
fn gatherv_variable_counts() {
    Universe::run(quiet(), 4, |comm| {
        // rank r contributes r+1 elements
        let counts = [1usize, 2, 3, 4];
        let displs = [0usize, 1, 3, 6];
        let send: Vec<f64> = (0..counts[comm.rank()])
            .map(|i| (comm.rank() * 10 + i) as f64)
            .collect();
        let mut recv = vec![-1.0f64; 10];
        comm.gatherv(&send, &mut recv, &counts, &displs, 1).unwrap();
        if comm.rank() == 1 {
            assert_eq!(
                recv,
                vec![0.0, 10.0, 11.0, 20.0, 21.0, 22.0, 30.0, 31.0, 32.0, 33.0]
            );
        }
    });
}

#[test]
fn scatterv_variable_counts() {
    Universe::run(quiet(), 3, |comm| {
        let counts = [2usize, 1, 3];
        let displs = [0usize, 2, 3];
        let send: Vec<f64> = if comm.rank() == 0 {
            (0..6).map(|i| i as f64).collect()
        } else {
            Vec::new()
        };
        let mut recv = vec![0.0f64; counts[comm.rank()]];
        comm.scatterv(&send, &counts, &displs, &mut recv, 0).unwrap();
        match comm.rank() {
            0 => assert_eq!(recv, vec![0.0, 1.0]),
            1 => assert_eq!(recv, vec![2.0]),
            _ => assert_eq!(recv, vec![3.0, 4.0, 5.0]),
        }
    });
}

#[test]
fn gatherv_inside_split_subgroup() {
    Universe::run(quiet(), 4, |comm| {
        let mut sub = comm.split((comm.rank() % 2) as i64, 0).unwrap().expect("member");
        let counts = [1usize, 2];
        let displs = [0usize, 1];
        let send = vec![comm.rank() as f64; counts[sub.rank()]];
        let mut recv = vec![-1.0f64; 3];
        sub.gatherv(&send, &mut recv, &counts, &displs, 0).unwrap();
        if sub.rank() == 0 {
            let other = comm.rank() + 2; // world rank of sub rank 1
            assert_eq!(recv, vec![comm.rank() as f64, other as f64, other as f64]);
        }
    });
}

#[test]
fn dup_is_independent_context() {
    Universe::run(quiet(), 2, |comm| {
        let mut dup = comm.dup().unwrap();
        assert_eq!(dup.rank(), comm.rank());
        assert_eq!(dup.size(), comm.size());
        assert_ne!(dup.context(), comm.context());
        // Same-tag messages on the two communicators do not cross.
        if comm.rank() == 0 {
            comm.send_slice(&[1.0f64], 1, 5).unwrap();
            dup.send_slice(&[2.0f64], 1, 5).unwrap();
        } else {
            let mut b = [0.0f64; 1];
            // Receive on the duplicate FIRST: it must get the dup message.
            dup.recv_slice(&mut b, Some(0), Some(5)).unwrap();
            assert_eq!(b[0], 2.0);
            comm.recv_slice(&mut b, Some(0), Some(5)).unwrap();
            assert_eq!(b[0], 1.0);
        }
    });
}

#[test]
fn status_count_and_elements() {
    use nonctg_datatype::Datatype;
    Universe::run(quiet(), 2, |comm| {
        if comm.rank() == 0 {
            comm.send_slice(&[1.0f64, 2.0, 3.0], 1, 0).unwrap();
        } else {
            // Post a larger receive; 3 of 8 elements arrive.
            let mut buf = vec![0.0f64; 8];
            let st = comm.recv_slice(&mut buf, Some(0), Some(0)).unwrap();
            let f64_t = Datatype::f64();
            assert_eq!(st.count(&f64_t), Some(3));
            assert_eq!(st.element_count(&f64_t), Some(3));
            // As pairs: one whole pair plus a partial with 1 element.
            let pair = Datatype::contiguous(2, &f64_t).unwrap();
            assert_eq!(st.count(&pair), None, "3 doubles are not whole pairs");
            assert_eq!(st.element_count(&pair), Some(3));
        }
    });
}

#[test]
fn split_clock_continues_rank_timeline() {
    Universe::run(quiet(), 2, |comm| {
        comm.flush_cache(8 << 20); // advance the parent clock
        let t_parent = comm.wtime();
        assert!(t_parent > 0.0);
        let sub = comm.split(0, comm.rank() as i64).unwrap().expect("member");
        assert!(
            sub.wtime() >= t_parent,
            "sub-communicator clock regressed: {} < {t_parent}",
            sub.wtime()
        );
    });
}
