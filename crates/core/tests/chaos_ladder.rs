//! Tests of the v2 fault model's graceful-degradation ladder: every
//! injected fault either degrades to a slower-but-correct datapath
//! (counted in [`FaultStats`]) or surfaces as a typed error — never a
//! hang, never silent corruption.

use std::time::{Duration, Instant};

use nonctg_core::datatype::Datatype;
use nonctg_core::{set_oracle_checks, CoreError, FaultStats, Universe};
use nonctg_simnet::{FaultPlan, Platform};

/// A quiet platform with a short deadlock timeout so any regression
/// towards "stall until the watchdog" fails fast and visibly.
fn short_timeout(seconds: f64) -> Platform {
    let mut p = Platform::skx_impi();
    p.jitter_sigma = 0.0;
    p.with_deadlock_timeout(seconds)
}

/// Send `payload` from rank 0 to rank 1 under `plan` on `platform`;
/// return (sender stats, receiver stats, received bytes).
fn send_once(
    platform: Platform,
    plan: FaultPlan,
    payload: Vec<u8>,
) -> (FaultStats, FaultStats, Vec<u8>) {
    let n = payload.len();
    let p = platform.with_fault_plan(plan);
    let mut results = Universe::run_supervised(p, 2, move |comm| {
        if comm.rank() == 0 {
            comm.send_bytes(&payload, 1, 0)?;
            Ok((comm.fault_stats(), Vec::new()))
        } else {
            let mut buf = vec![0u8; n];
            comm.recv_bytes(&mut buf, Some(0), Some(0))?;
            Ok((comm.fault_stats(), buf))
        }
    });
    let (rstats, buf) = results.pop().unwrap().unwrap();
    let (sstats, _) = results.pop().unwrap().unwrap();
    (sstats, rstats, buf)
}

fn pattern(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 131 + 7) as u8).collect()
}

/// Send one strided-vector message (packed size `count * 16` bytes) from
/// rank 0 to rank 1; return (sender stats, source, received buffer).
/// Only non-contiguous types take the pipelined (chunked) datapath, so
/// the chunk-fault rungs must ride a derived type.
fn send_vector_once(
    platform: Platform,
    plan: FaultPlan,
    count: usize,
) -> (FaultStats, Vec<u8>, Vec<u8>) {
    let (blocklen, stride) = (16usize, 32i64);
    let src_len = (count - 1) * stride as usize + blocklen;
    let src = pattern(src_len);
    let vtype = Datatype::vector(count, blocklen, stride, &Datatype::byte()).unwrap().commit();
    let p = platform.with_fault_plan(plan);
    let src_for_run = src.clone();
    let mut results = Universe::run_supervised(p, 2, move |comm| {
        if comm.rank() == 0 {
            comm.send(&src_for_run, 0, &vtype, 1, 1, 0)?;
            Ok((comm.fault_stats(), Vec::new()))
        } else {
            let mut buf = vec![0u8; src_len];
            comm.recv(&mut buf, 0, &vtype, 1, Some(0), Some(0))?;
            Ok((comm.fault_stats(), buf))
        }
    });
    let (_, got) = results.pop().unwrap().unwrap();
    let (sstats, _) = results.pop().unwrap().unwrap();
    (sstats, src, got)
}

/// Assert every strided block of `got` matches `src`.
fn assert_blocks_equal(src: &[u8], got: &[u8], count: usize) {
    let (blocklen, stride) = (16usize, 32usize);
    for b in 0..count {
        let at = b * stride;
        assert_eq!(&got[at..at + blocklen], &src[at..at + blocklen], "block {b} corrupted");
    }
}

/// Rung 1: payload-pool exhaustion falls back to owned (detached)
/// staging buffers — the send still succeeds bit-exactly and the
/// fallback is counted.
#[test]
fn pool_exhaustion_falls_back_to_owned_buffers() {
    set_oracle_checks(true);
    let payload = pattern(1 << 20);
    let plan = FaultPlan::quiet(5).with_pool_exhaustion(1.0);
    let (sstats, _, got) = send_once(short_timeout(5.0), plan, payload.clone());
    assert_eq!(got, payload, "payload corrupted by pool fallback");
    assert!(sstats.pool_exhaustions >= 1, "fallback not counted: {sstats:?}");
    assert!(sstats.demotions() >= 1, "demotions() must roll up pool faults");
}

/// Rung 2: a pack-plan compile failure on a derived type falls back to
/// the uncompiled interpreter — payload bit-exact, fallback counted.
#[test]
fn plan_compile_failure_falls_back_to_uncompiled_pack() {
    let (count, blocklen, stride) = (4096usize, 16usize, 32i64);
    let src_len = (count - 1) * stride as usize + blocklen;
    let src = pattern(src_len);
    let vtype = Datatype::vector(count, blocklen, stride, &Datatype::byte()).unwrap().commit();
    let plan = FaultPlan::quiet(6).with_plan_failures(1.0);
    let p = short_timeout(5.0).with_fault_plan(plan);
    let src_for_run = src.clone();
    let vt = vtype.clone();
    let results = Universe::run_supervised(p, 2, move |comm| {
        if comm.rank() == 0 {
            comm.send(&src_for_run, 0, &vt, 1, 1, 0)?;
            Ok((comm.fault_stats(), Vec::new()))
        } else {
            let mut buf = vec![0u8; src_len];
            comm.recv(&mut buf, 0, &vt, 1, Some(0), Some(0))?;
            Ok((comm.fault_stats(), buf))
        }
    });
    let (sstats, _) = results[0].as_ref().unwrap();
    let (_, got) = results[1].as_ref().unwrap();
    assert!(sstats.plan_fallbacks >= 1, "plan fallback not counted: {sstats:?}");
    for b in 0..count {
        let at = b * stride as usize;
        assert_eq!(
            &got[at..at + blocklen],
            &src[at..at + blocklen],
            "block {b} corrupted by uncompiled fallback"
        );
    }
}

/// Rung 3: a corrupted chunk mid-pipeline is detected, its buffer
/// poisoned (quarantined, never recycled — oracle-checked), and the
/// chunk re-packed: the receiver still sees bit-exact data.
#[test]
fn chunk_faults_retry_and_quarantine() {
    set_oracle_checks(true);
    // A 128 KiB packed vector over 16 KiB chunks = 8 chunk ordinals; a
    // low corruption probability keeps the faulty forecast below the
    // demote threshold so the stream proceeds and retries per chunk.
    let platform = short_timeout(5.0).with_pipeline(64 << 10, 16 << 10);
    let count = (128 << 10) / 16;
    let plan = FaultPlan::quiet(9).with_chunk_faults(0.25, 0.0);
    let (sstats, src, got) = send_vector_once(platform, plan, count);
    assert_blocks_equal(&src, &got, count);
    assert!(sstats.chunk_retries >= 1, "no chunk retried at p=0.25: {sstats:?}");
    assert_eq!(sstats.pipeline_demotions, 0, "stream should not demote: {sstats:?}");
}

/// Rung 4: a storm of chunk faults demotes the pipelined stream to one
/// monolithic whole-rendezvous transfer — still bit-exact, demotion
/// counted.
#[test]
fn chunk_fault_storm_demotes_to_monolithic() {
    set_oracle_checks(true);
    let platform = short_timeout(5.0).with_pipeline(64 << 10, 16 << 10);
    let count = (128 << 10) / 16;
    let plan = FaultPlan::quiet(4).with_chunk_faults(0.9, 0.9);
    let (sstats, src, got) = send_vector_once(platform, plan, count);
    assert_blocks_equal(&src, &got, count);
    assert!(sstats.pipeline_demotions >= 1, "storm did not demote: {sstats:?}");
    assert_eq!(sstats.chunk_retries, 0, "demoted send must not stream chunks");
}

/// Rung 5: a parallel-pack worker failure pins the pack to the serial
/// kernel. Only observable when the pack would have gone parallel.
#[test]
fn pack_worker_failure_pins_serial_kernel() {
    let (count, blocklen, stride) = (1 << 20, 16usize, 32i64);
    let src_len = (count - 1) * stride as usize + blocklen;
    let src = pattern(src_len);
    let vtype = Datatype::vector(count, blocklen, stride, &Datatype::byte()).unwrap().commit();
    let plan = FaultPlan::quiet(8).with_pack_worker_failures(1.0);
    // Disable streaming so the 16 MiB payload stays on the monolithic
    // path whose pack the fault pins serial.
    let p = short_timeout(5.0).without_pipeline().with_fault_plan(plan);
    let src_for_run = src.clone();
    let vt = vtype.clone();
    let results = Universe::run_supervised(p, 2, move |comm| {
        if comm.rank() == 0 {
            comm.send(&src_for_run, 0, &vt, 1, 1, 0)?;
            Ok((comm.fault_stats(), 0u8))
        } else {
            let mut buf = vec![0u8; src_len];
            comm.recv(&mut buf, 0, &vt, 1, Some(0), Some(0))?;
            Ok((comm.fault_stats(), buf[7]))
        }
    });
    let (sstats, _) = results[0].as_ref().unwrap();
    let would_parallelize = nonctg_core::datatype::pack_threads() > 1
        && count * blocklen >= nonctg_core::datatype::parallel_threshold();
    if would_parallelize {
        assert!(sstats.serial_fallbacks >= 1, "serial fallback not counted: {sstats:?}");
    }
    assert_eq!(results[1].as_ref().unwrap().1, src[7], "payload corrupted");
}

/// An explicit `MPI_Pack` call rides the same ladder as the internal
/// staging pack: a plan-compile failure falls back to the uncompiled
/// interpreter with identical output, counted as a demotion.
#[test]
fn explicit_pack_rides_the_ladder() {
    let (count, blocklen, stride) = (512usize, 16usize, 32i64);
    let src_len = (count - 1) * stride as usize + blocklen;
    let src = pattern(src_len);
    let vtype = Datatype::vector(count, blocklen, stride, &Datatype::byte()).unwrap().commit();
    let packed_len = count * blocklen;
    let expected = {
        let mut buf = vec![0u8; packed_len];
        nonctg_core::datatype::pack_into(&src, 0, &vtype, 1, &mut buf).unwrap();
        buf
    };
    let plan = FaultPlan::quiet(14).with_plan_failures(1.0);
    let p = short_timeout(5.0).with_fault_plan(plan);
    let src_for_run = src.clone();
    let results = Universe::run_supervised(p, 2, move |comm| {
        if comm.rank() == 0 {
            let mut out = vec![0u8; packed_len];
            let mut pos = 0usize;
            comm.pack(&src_for_run, 0, &vtype, 1, &mut out, &mut pos)?;
            assert_eq!(pos, packed_len);
            Ok((comm.fault_stats(), out))
        } else {
            Ok((comm.fault_stats(), Vec::new()))
        }
    });
    let (stats, out) = results[0].as_ref().unwrap();
    assert_eq!(out, &expected, "uncompiled pack fallback produced different bytes");
    assert!(stats.plan_fallbacks >= 1, "explicit pack did not demote: {stats:?}");
}

/// `wait_timeout` bounds a rendezvous wait that can never complete with
/// a typed error and a counter — no hang, no watchdog wait.
#[test]
fn wait_timeout_bounds_unmatched_rendezvous() {
    let start = Instant::now();
    let results = Universe::run_supervised(short_timeout(5.0), 2, |comm| {
        if comm.rank() == 0 {
            let big = vec![3u8; 4 << 20];
            let req = comm.isend_slice(&big, 1, 0)?;
            // Rank 1 never posts the matching receive: bounded wait.
            let err = req.wait_timeout(comm, 0.05).unwrap_err();
            assert!(
                matches!(err, CoreError::WaitTimeout { waiting_for: "send completion", .. }),
                "unexpected error: {err:?}"
            );
            // The comm stays usable: release the peer.
            comm.send_bytes(&[1u8; 8], 1, 1)?;
            Ok(comm.fault_stats().timeouts)
        } else {
            let mut buf = [0u8; 8];
            comm.recv_bytes(&mut buf, Some(0), Some(1))?;
            Ok(0)
        }
    });
    assert!(start.elapsed() < Duration::from_secs(2), "wait_timeout hung");
    assert_eq!(results[0].as_ref().unwrap(), &1, "timeout not counted");
    assert!(results[1].is_ok(), "peer outcome: {:?}", results[1]);
}

/// `cancel` tears down an unmatched rendezvous send: typed error,
/// counted, and the comm stays usable afterwards.
#[test]
fn cancel_releases_unmatched_send() {
    let start = Instant::now();
    let results = Universe::run_supervised(short_timeout(5.0), 2, |comm| {
        if comm.rank() == 0 {
            let big = vec![5u8; 4 << 20];
            let req = comm.isend_slice(&big, 1, 0)?;
            let err = req.cancel(comm).unwrap_err();
            assert!(
                matches!(err, CoreError::Cancelled { what: "send request" }),
                "unexpected error: {err:?}"
            );
            comm.send_bytes(&[2u8; 8], 1, 1)?;
            Ok(comm.fault_stats().cancels)
        } else {
            let mut buf = [0u8; 8];
            comm.recv_bytes(&mut buf, Some(0), Some(1))?;
            Ok(0)
        }
    });
    assert!(start.elapsed() < Duration::from_secs(2), "cancel hung");
    assert_eq!(results[0].as_ref().unwrap(), &1, "cancel not counted");
    assert!(results[1].is_ok(), "peer outcome: {:?}", results[1]);
}

/// An injected receiver-side crash mid-stream surfaces as a typed
/// `RankPanicked` on the victim; senders observe `PeerFailed` (or have
/// already completed eagerly) — never a hang.
#[test]
fn recv_crash_is_typed_and_never_hangs() {
    let plan = FaultPlan::quiet(12).with_recv_crash(1, 2);
    let p = short_timeout(5.0).with_fault_plan(plan);
    let start = Instant::now();
    let results = Universe::run_supervised(p, 2, |comm| {
        if comm.rank() == 0 {
            for step in 0..4 {
                comm.send_bytes(&vec![step as u8; 1 << 20], 1, step)?;
            }
        } else {
            for step in 0..4 {
                let mut buf = vec![0u8; 1 << 20];
                comm.recv_bytes(&mut buf, Some(0), Some(step))?;
            }
        }
        Ok(comm.fault_stats().recv_crashes)
    });
    assert!(start.elapsed() < Duration::from_secs(1), "recv crash hung the pair");
    match &results[1] {
        Err(CoreError::RankPanicked { rank: 1, message }) => {
            assert!(message.contains("injected receiver crash"), "message: {message}");
        }
        other => panic!("victim outcome: {other:?}"),
    }
    assert!(
        matches!(results[0], Ok(_) | Err(CoreError::PeerFailed { rank: 1 })),
        "sender outcome: {:?}",
        results[0]
    );
}

/// A link-degradation burst inflates virtual latency for the window's
/// ops (deterministically, via exact charges) and is counted.
#[test]
fn link_degradation_charges_and_counts() {
    let run = |plan: Option<FaultPlan>| {
        let mut p = short_timeout(5.0);
        if let Some(plan) = plan {
            p = p.with_fault_plan(plan);
        }
        Universe::run_supervised(p, 2, |comm| {
            for step in 0..16 {
                if comm.rank() == 0 {
                    comm.send_bytes(&[7u8; 256], 1, step)?;
                    let mut buf = [0u8; 256];
                    comm.recv_bytes(&mut buf, Some(1), Some(step))?;
                } else {
                    let mut buf = [0u8; 256];
                    comm.recv_bytes(&mut buf, Some(0), Some(step))?;
                    comm.send_bytes(&[9u8; 256], 0, step)?;
                }
            }
            Ok((comm.fault_stats(), comm.wtime()))
        })
        .into_iter()
        .map(|r| r.unwrap())
        .collect::<Vec<_>>()
    };
    let clean = run(None);
    let degraded = run(Some(FaultPlan::quiet(2).with_link_degradation(0, 7, 8.0)));
    let hits: u64 = degraded.iter().map(|(s, _)| s.link_degradations).sum();
    assert!(hits >= 1, "no op landed in the degradation window");
    assert!(
        degraded[0].1 > clean[0].1,
        "degradation did not inflate virtual time: {} vs {}",
        degraded[0].1,
        clean[0].1
    );
}

/// The whole ladder is deterministic: identical chaos seeds produce
/// identical fault counters and identical virtual clocks.
#[test]
fn ladder_is_deterministic_under_chaos() {
    let run = || {
        let platform = short_timeout(5.0)
            .with_pipeline(64 << 10, 16 << 10)
            .with_fault_plan(FaultPlan::chaos(77));
        Universe::run_supervised(platform, 2, |comm| {
            for step in 0..12 {
                let payload = pattern(96 << 10);
                if comm.rank() == 0 {
                    comm.send_bytes(&payload, 1, step)?;
                } else {
                    let mut buf = vec![0u8; payload.len()];
                    comm.recv_bytes(&mut buf, Some(0), Some(step))?;
                    assert_eq!(buf, payload, "silent corruption at step {step}");
                }
            }
            Ok((comm.fault_stats(), comm.wtime()))
        })
        .into_iter()
        .map(|r| r.unwrap())
        .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "chaos ladder not reproducible");
}
