//! Property tests of the runtime: random message schedules must deliver
//! every byte correctly, keep virtual time causal, and stay deterministic.

use nonctg_core::Universe;
use nonctg_datatype::{as_bytes, Datatype};
use nonctg_simnet::Platform;
use proptest::prelude::*;

fn quiet() -> Platform {
    let mut p = Platform::skx_impi();
    p.jitter_sigma = 0.0;
    p
}

/// A random two-rank schedule: a list of (elems, tag, strided) messages
/// sent 0 -> 1 in order, with tags drawn from a small set so some collide.
#[derive(Debug, Clone)]
struct Msg {
    elems: usize,
    tag: i32,
    strided: bool,
}

fn arb_schedule() -> impl Strategy<Value = Vec<Msg>> {
    proptest::collection::vec(
        (1usize..5000, 0i32..3, proptest::bool::ANY)
            .prop_map(|(elems, tag, strided)| Msg { elems, tag, strided }),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every message of a random schedule arrives intact and in per-tag
    /// order, whatever mixture of eager/rendezvous/strided paths it takes.
    #[test]
    fn random_schedules_deliver_everything(schedule in arb_schedule()) {
        let sched = schedule.clone();
        let oks = Universe::run(quiet(), 2, move |comm| {
            if comm.rank() == 0 {
                for (i, m) in sched.iter().enumerate() {
                    let marker = i as f64 * 1000.0;
                    if m.strided {
                        let src: Vec<f64> =
                            (0..2 * m.elems).map(|e| marker + e as f64).collect();
                        let t = Datatype::vector(m.elems, 1, 2, &Datatype::f64())
                            .unwrap()
                            .commit();
                        comm.send(as_bytes(&src), 0, &t, 1, 1, m.tag).unwrap();
                    } else {
                        let src: Vec<f64> =
                            (0..m.elems).map(|e| marker + (2 * e) as f64).collect();
                        comm.send_slice(&src, 1, m.tag).unwrap();
                    }
                }
                true
            } else {
                // Receive in per-tag order: for each tag, messages must
                // arrive in send order. Receive round-robin by original
                // schedule order using explicit tags.
                let mut last_time = 0.0f64;
                for (i, m) in sched.iter().enumerate() {
                    let marker = i as f64 * 1000.0;
                    let mut buf = vec![0.0f64; m.elems];
                    let st = comm.recv_slice(&mut buf, Some(0), Some(m.tag)).unwrap();
                    assert_eq!(st.bytes, m.elems * 8);
                    // Contents: element e == marker + 2e (strided picks the
                    // even elements; contiguous was built that way).
                    for (e, &v) in buf.iter().enumerate() {
                        assert_eq!(v, marker + (2 * e) as f64, "msg {i} elem {e}");
                    }
                    let now = comm.wtime();
                    assert!(now >= last_time, "virtual time went backwards");
                    last_time = now;
                }
                true
            }
        });
        prop_assert!(oks.iter().all(|&b| b));
    }

    /// The same schedule runs to identical virtual times every time, with
    /// jitter enabled (seeded) or disabled.
    #[test]
    fn schedules_are_deterministic(schedule in arb_schedule(), jitter in proptest::bool::ANY) {
        let platform = if jitter { Platform::skx_impi() } else { quiet() };
        let run = |sched: Vec<Msg>, p: Platform| {
            Universe::run(p, 2, move |comm| {
                if comm.rank() == 0 {
                    for m in &sched {
                        let src = vec![1.0f64; m.elems];
                        comm.send_slice(&src, 1, m.tag).unwrap();
                    }
                } else {
                    for m in &sched {
                        let mut buf = vec![0.0f64; m.elems];
                        comm.recv_slice(&mut buf, Some(0), Some(m.tag)).unwrap();
                    }
                }
                comm.wtime()
            })
        };
        let a = run(schedule.clone(), platform.clone());
        let b = run(schedule, platform);
        prop_assert_eq!(a, b);
    }

    /// Bigger messages never complete faster (monotone cost model), for
    /// both the eager and rendezvous regimes of every scheme path.
    #[test]
    fn cost_is_monotone_in_size(base in 64usize..32768) {
        let time_of = |elems: usize| {
            let (t, _) = Universe::run_pair(quiet(), move |comm| {
                if comm.rank() == 0 {
                    let src = vec![0.5f64; elems];
                    let t0 = comm.wtime();
                    comm.send_slice(&src, 1, 0).unwrap();
                    let mut z = [0u8; 0];
                    comm.recv_bytes(&mut z, Some(1), Some(1)).unwrap();
                    comm.wtime() - t0
                } else {
                    let mut buf = vec![0.0f64; elems];
                    comm.recv_slice(&mut buf, Some(0), Some(0)).unwrap();
                    comm.send_bytes(&[], 0, 1).unwrap();
                    0.0
                }
            });
            t
        };
        let small = time_of(base);
        let large = time_of(base * 4);
        prop_assert!(large >= small, "4x payload was faster: {small} vs {large}");
    }

    /// Sending through a split sub-communicator delivers exactly what the
    /// world communicator would.
    #[test]
    fn split_transport_equivalent(elems in 1usize..4000, seed in 0u64..32) {
        let vals: Vec<f64> = (0..elems).map(|i| (i as f64) + seed as f64).collect();
        let expect = vals.clone();
        let got = Universe::run(quiet(), 2, move |comm| {
            let mut sub = comm.split(0, comm.rank() as i64).unwrap().expect("member");
            if sub.rank() == 0 {
                sub.send_slice(&vals, 1, 3).unwrap();
                Vec::new()
            } else {
                let mut buf = vec![0.0f64; vals.len()];
                sub.recv_slice(&mut buf, Some(0), Some(3)).unwrap();
                buf
            }
        });
        prop_assert_eq!(&got[1], &expect);
    }
}
