//! Boundary and error-path tests of the attached-buffer (`MPI_Bsend`)
//! accounting: a buffer sized exactly to `bsend_size` must survive a long
//! attach cycle, and a receive that errors *after* matching a buffered
//! message (truncation, signature mismatch) must still release the
//! sender's reservation — otherwise a later bsend that should exactly fit
//! fails with a spurious buffer overflow.

use nonctg_core::{Comm, CoreError, Universe};
use nonctg_datatype::{as_bytes, Datatype};
use nonctg_simnet::Platform;

fn quiet() -> Platform {
    let mut p = Platform::skx_impi();
    p.jitter_sigma = 0.0;
    p.with_deadlock_timeout(5.0)
}

fn f64_seq(n: usize) -> Vec<f64> {
    (0..n).map(|i| i as f64).collect()
}

/// A buffer sized exactly to one message cycles through many
/// bsend/receive rounds without ever overflowing: each reservation
/// (payload + per-message overhead) is released when the matching receive
/// completes, including the last message of the cycle.
#[test]
fn exact_size_buffer_survives_attach_cycle() {
    const ROUNDS: usize = 16;
    let n = 64usize;
    Universe::run_pair(quiet(), move |comm| {
        let t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        if comm.rank() == 0 {
            let need = Comm::bsend_size(&t, 1).unwrap();
            comm.buffer_attach(need).unwrap();
            let src = f64_seq(2 * n);
            for round in 0..ROUNDS {
                comm.bsend(as_bytes(&src), 0, &t, 1, 1, round as i32).unwrap();
                // Wait until the receiver confirms the match, so the next
                // reservation finds the buffer fully released.
                let mut z = [0u8; 0];
                comm.recv_bytes(&mut z, Some(1), Some(100 + round as i32)).unwrap();
            }
            assert_eq!(comm.buffer_detach().unwrap(), need);
        } else {
            for round in 0..ROUNDS {
                let mut buf = vec![0.0f64; n];
                comm.recv_slice(&mut buf, Some(0), Some(round as i32)).unwrap();
                assert_eq!(buf[1], 2.0);
                comm.send_bytes(&[], 0, 100 + round as i32).unwrap();
            }
        }
    });
}

/// A receive that matches a buffered message but then fails (here: the
/// posted buffer is too small, `MPI_ERR_TRUNCATE`) must still release the
/// sender's buffer reservation. Before the fix the error path returned
/// after consuming the envelope but before the release, so the next
/// exactly-fitting bsend reported a buffer overflow.
#[test]
fn truncated_receive_releases_bsend_reservation() {
    let n = 32usize;
    Universe::run_pair(quiet(), move |comm| {
        let t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        if comm.rank() == 0 {
            let need = Comm::bsend_size(&t, 1).unwrap();
            comm.buffer_attach(need).unwrap();
            let src = f64_seq(2 * n);
            comm.bsend(as_bytes(&src), 0, &t, 1, 1, 0).unwrap();
            let mut z = [0u8; 0];
            comm.recv_bytes(&mut z, Some(1), Some(9)).unwrap();
            // The receiver truncated message 0 — its reservation must be
            // back, so an exactly-fitting second bsend succeeds.
            comm.bsend(as_bytes(&src), 0, &t, 1, 1, 1).unwrap();
            assert_eq!(comm.buffer_detach().unwrap(), need);
        } else {
            // Post a receive with too little capacity: matches, then errors.
            let mut small = vec![0.0f64; n / 2];
            let err = comm
                .recv(
                    nonctg_datatype::as_bytes_mut(&mut small),
                    0,
                    &Datatype::f64(),
                    n / 2,
                    Some(0),
                    Some(0),
                )
                .unwrap_err();
            assert!(matches!(err, CoreError::Truncate { .. }), "{err:?}");
            comm.send_bytes(&[], 0, 9).unwrap();
            let mut buf = vec![0.0f64; n];
            comm.recv_slice(&mut buf, Some(0), Some(1)).unwrap();
            assert_eq!(buf[2], 4.0);
        }
    });
}

/// The signature-mismatch error path (matched receive of a type with the
/// wrong primitive multiset) releases the reservation too.
#[test]
fn signature_mismatch_releases_bsend_reservation() {
    let n = 16usize;
    Universe::run_pair(quiet(), move |comm| {
        let t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        if comm.rank() == 0 {
            let need = Comm::bsend_size(&t, 1).unwrap();
            comm.buffer_attach(need).unwrap();
            let src = f64_seq(2 * n);
            comm.bsend(as_bytes(&src), 0, &t, 1, 1, 0).unwrap();
            let mut z = [0u8; 0];
            comm.recv_bytes(&mut z, Some(1), Some(9)).unwrap();
            comm.bsend(as_bytes(&src), 0, &t, 1, 1, 1).unwrap();
            assert_eq!(comm.buffer_detach().unwrap(), need);
        } else {
            // Same byte count, wrong primitives: i32 vs f64.
            let mut wrong = vec![0i32; 2 * n];
            let err = comm
                .recv(
                    nonctg_datatype::as_bytes_mut(&mut wrong),
                    0,
                    &Datatype::i32(),
                    2 * n,
                    Some(0),
                    Some(0),
                )
                .unwrap_err();
            assert!(matches!(err, CoreError::SignatureMismatch), "{err:?}");
            comm.send_bytes(&[], 0, 9).unwrap();
            let mut buf = vec![0.0f64; n];
            comm.recv_slice(&mut buf, Some(0), Some(1)).unwrap();
            assert_eq!(buf[3], 6.0);
        }
    });
}
