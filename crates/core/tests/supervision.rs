//! Chaos tests of rank supervision: a failing rank must never hang its
//! peers — they observe [`CoreError::PeerFailed`] well before the
//! configured deadlock timeout, and the watchdog report names what each
//! rank was doing when a genuine deadlock expires.

use std::time::{Duration, Instant};

use nonctg_core::{CoreError, FaultStats, Universe, MAX_SEND_ATTEMPTS};
use nonctg_simnet::{FaultPlan, Platform};

/// A quiet platform with a deliberately short deadlock timeout, so any
/// regression towards "stall until the watchdog" fails fast and visibly.
fn short_timeout(seconds: f64) -> Platform {
    let mut p = Platform::skx_impi();
    p.jitter_sigma = 0.0;
    p.with_deadlock_timeout(seconds)
}

/// Each rank ping-pongs around a ring for `steps` rounds.
fn ring_step(comm: &mut nonctg_core::Comm, step: usize) -> nonctg_core::Result<()> {
    let n = comm.size();
    let next = (comm.rank() + 1) % n;
    let prev = (comm.rank() + n - 1) % n;
    let payload = vec![step as u8; 64];
    let mut buf = vec![0u8; 64];
    if comm.rank().is_multiple_of(2) {
        comm.send_bytes(&payload, next, step as i32)?;
        comm.recv_bytes(&mut buf, Some(prev), Some(step as i32))?;
    } else {
        comm.recv_bytes(&mut buf, Some(prev), Some(step as i32))?;
        comm.send_bytes(&payload, next, step as i32)?;
    }
    Ok(())
}

/// A rank that panics at an arbitrary step must never hang the others:
/// every peer returns (PeerFailed or Ok) long before the 5 s timeout.
#[test]
fn panicking_rank_never_hangs_peers() {
    for panic_step in 0..6usize {
        let victim = panic_step % 4;
        let start = Instant::now();
        let results = Universe::run_supervised(short_timeout(5.0), 4, move |comm| {
            for step in 0..8usize {
                if comm.rank() == victim && step == panic_step {
                    panic!("chaos: rank {victim} dies at step {step}");
                }
                ring_step(comm, step)?;
            }
            Ok(())
        });
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(1),
            "peers took {elapsed:?} to observe the failure (panic_step={panic_step})"
        );
        match &results[victim] {
            Err(CoreError::RankPanicked { rank, message }) => {
                assert_eq!(*rank, victim);
                assert!(message.contains("chaos"), "unexpected message: {message}");
            }
            other => panic!("victim outcome: {other:?}"),
        }
        for (rank, res) in results.iter().enumerate() {
            if rank == victim {
                continue;
            }
            match res {
                Ok(()) => {}
                Err(CoreError::PeerFailed { rank: failed }) => assert_eq!(*failed, victim),
                other => panic!("rank {rank} outcome: {other:?}"),
            }
        }
    }
}

/// An injected crash (fault plan, not an explicit panic in user code)
/// takes the same supervised path.
#[test]
fn injected_crash_poisons_fabric() {
    let mut p = short_timeout(5.0);
    p = p.with_fault_plan(FaultPlan::quiet(42).with_crash(1, 3));
    let start = Instant::now();
    let results = Universe::run_supervised(p, 3, |comm| {
        for step in 0..10usize {
            ring_step(comm, step)?;
        }
        Ok(())
    });
    assert!(start.elapsed() < Duration::from_secs(1));
    assert!(
        matches!(&results[1], Err(CoreError::RankPanicked { rank: 1, message })
            if message.contains("injected crash")),
        "rank 1 outcome: {:?}",
        results[1]
    );
    let peer_failed = results
        .iter()
        .filter(|r| matches!(r, Err(CoreError::PeerFailed { rank: 1 })))
        .count();
    assert!(peer_failed >= 1, "no peer observed the crash: {results:?}");
}

/// A rank blocked in a rendezvous send observes the poison too (the
/// sender waits on the reply channel, not in a mailbox).
#[test]
fn rendezvous_sender_unblocked_by_peer_failure() {
    let start = Instant::now();
    let results = Universe::run_supervised(short_timeout(5.0), 2, |comm| {
        if comm.rank() == 0 {
            // Large message: rendezvous, so this blocks until rank 1
            // matches — which it never does.
            let data = vec![7u8; 4 << 20];
            comm.send_bytes(&data, 1, 0)?;
        } else {
            panic!("chaos: receiver dies before matching");
        }
        Ok(())
    });
    assert!(start.elapsed() < Duration::from_secs(1));
    assert!(
        matches!(results[0], Err(CoreError::PeerFailed { rank: 1 })),
        "sender outcome: {:?}",
        results[0]
    );
}

/// A rank blocked in a barrier observes the poison.
#[test]
fn barrier_unblocked_by_peer_failure() {
    let start = Instant::now();
    let results = Universe::run_supervised(short_timeout(5.0), 3, |comm| {
        if comm.rank() == 2 {
            panic!("chaos: rank 2 never reaches the barrier");
        }
        comm.barrier()?;
        Ok(())
    });
    assert!(start.elapsed() < Duration::from_secs(1));
    for (rank, result) in results.iter().enumerate().take(2) {
        assert!(
            matches!(result, Err(CoreError::PeerFailed { rank: 2 })),
            "rank {rank} outcome: {result:?}"
        );
    }
}

/// A genuine deadlock (receive that can never match) expires after the
/// configured timeout and the error carries per-rank diagnostics.
#[test]
fn watchdog_reports_blocked_ranks() {
    let start = Instant::now();
    let results = Universe::run_supervised(short_timeout(0.3), 2, |comm| {
        if comm.rank() == 0 {
            let mut buf = [0u8; 8];
            // Tag 99 is never sent: this rank deadlocks.
            comm.recv_bytes(&mut buf, Some(1), Some(99))?;
        } else {
            let mut buf = [0u8; 8];
            let _ = comm.recv_bytes(&mut buf, Some(0), Some(99));
        }
        Ok(())
    });
    let elapsed = start.elapsed();
    assert!(elapsed >= Duration::from_millis(250), "watchdog fired early: {elapsed:?}");
    assert!(elapsed < Duration::from_secs(3), "watchdog fired late: {elapsed:?}");
    match &results[0] {
        Err(CoreError::Deadlock { waiting_for, report }) => {
            assert_eq!(*waiting_for, "a matching message");
            assert!(report.contains("fabric state at timeout"), "report: {report}");
            assert!(report.contains("rank 0"), "report: {report}");
        }
        other => panic!("rank 0 outcome: {other:?}"),
    }
}

/// Transient send failures are absorbed by retry: the run still succeeds
/// and the retries are visible in the fault counters.
#[test]
fn transient_send_faults_absorbed_and_counted() {
    let mut p = short_timeout(5.0);
    p = p.with_fault_plan(FaultPlan::quiet(7).with_send_failures(0.2).with_delays(0.1, 20e-6));
    let results = Universe::run_supervised(p, 2, |comm| {
        for step in 0..200usize {
            ring_step(comm, step)?;
        }
        Ok(comm.fault_stats())
    });
    let stats: Vec<FaultStats> = results.into_iter().map(|r| r.unwrap()).collect();
    let retries: u64 = stats.iter().map(|s| s.transient_retries).sum();
    let delays: u64 = stats.iter().map(|s| s.delays).sum();
    assert!(retries > 0, "no retries with 20% failure probability: {stats:?}");
    assert!(delays > 0, "no delays with 10% delay probability: {stats:?}");
    assert_eq!(stats.iter().map(|s| s.failed_sends).sum::<u64>(), 0);
}

/// A persistent fault exhausts the retry budget and surfaces SendFailed
/// on the faulty rank; the peer sees PeerFailed.
#[test]
fn persistent_fault_surfaces_send_failed() {
    let mut p = short_timeout(5.0);
    p = p.with_fault_plan(FaultPlan::quiet(3).with_persistent_failure(0, 64, 64));
    let results = Universe::run_supervised(p, 2, |comm| {
        for step in 0..4usize {
            ring_step(comm, step)?;
        }
        Ok(())
    });
    assert!(
        matches!(
            results[0],
            Err(CoreError::SendFailed { dst: 1, attempts }) if attempts == MAX_SEND_ATTEMPTS
        ),
        "rank 0 outcome: {:?}",
        results[0]
    );
    assert!(
        matches!(results[1], Err(CoreError::PeerFailed { rank: 0 }) | Ok(())),
        "rank 1 outcome: {:?}",
        results[1]
    );
}

/// Injected corruption really flips payload bytes in flight (the model
/// moves data for real, so the receiver can observe it).
#[test]
fn corruption_flips_payload_bytes() {
    let mut p = short_timeout(5.0);
    p = p.with_fault_plan(FaultPlan::quiet(11).with_corruption(1.0));
    let results = Universe::run_supervised(p, 2, |comm| {
        if comm.rank() == 0 {
            comm.send_bytes(&[0xAAu8; 32], 1, 0)?;
            Ok(comm.fault_stats().corruptions)
        } else {
            let mut buf = [0u8; 32];
            comm.recv_bytes(&mut buf, Some(0), Some(0))?;
            let flipped = buf.iter().filter(|&&b| b != 0xAA).count();
            Ok(flipped as u64)
        }
    });
    assert_eq!(results[0].as_ref().unwrap(), &1, "sender corruption count");
    assert_eq!(results[1].as_ref().unwrap(), &1, "exactly one byte flipped");
}

/// The same fault seed yields a bit-identical fault schedule: fault
/// counters and final virtual clocks agree across runs.
#[test]
fn fault_schedule_is_deterministic() {
    let run = || {
        let mut p = short_timeout(5.0);
        p.jitter_sigma = 0.0;
        p = p.with_fault_plan(
            FaultPlan::quiet(123)
                .with_send_failures(0.15)
                .with_delays(0.1, 10e-6)
                .with_corruption(0.05),
        );
        Universe::run_supervised(p, 2, |comm| {
            for step in 0..100usize {
                ring_step(comm, step)?;
            }
            Ok((comm.fault_stats(), comm.wtime()))
        })
        .into_iter()
        .map(|r| r.unwrap())
        .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "fault schedule not reproducible");
}

/// NONCTG_DEADLOCK_TIMEOUT env override is honored by the fabric (checked
/// via the platform accessor to avoid polluting process env in tests).
#[test]
fn deadlock_timeout_configurable() {
    let p = short_timeout(1.5);
    assert_eq!(p.effective_deadlock_timeout(), Duration::from_secs_f64(1.5));
    let q = Platform::skx_impi();
    assert_eq!(
        q.effective_deadlock_timeout(),
        Duration::from_secs_f64(nonctg_simnet::DEFAULT_DEADLOCK_TIMEOUT_S)
    );
}
