//! Integration tests of the MPI-like runtime: correctness of data
//! movement, protocol semantics, and virtual-time invariants.

use nonctg_core::{CoreError, Universe};
use nonctg_datatype::{as_bytes, as_bytes_mut, ArrayOrder, Datatype};
use nonctg_simnet::Platform;

/// A platform with jitter disabled, for exact-time assertions.
fn quiet() -> Platform {
    let mut p = Platform::skx_impi();
    p.jitter_sigma = 0.0;
    p
}

fn f64_seq(n: usize) -> Vec<f64> {
    (0..n).map(|i| i as f64).collect()
}

#[test]
fn pingpong_roundtrip_bytes() {
    let (a, _b) = Universe::run_pair(quiet(), |comm| {
        if comm.rank() == 0 {
            let data: Vec<u8> = (0..255u8).collect();
            comm.send_bytes(&data, 1, 7).unwrap();
            let mut pong = [0u8; 0];
            comm.recv_bytes(&mut pong, Some(1), Some(8)).unwrap();
            comm.wtime()
        } else {
            let mut buf = vec![0u8; 255];
            let st = comm.recv_bytes(&mut buf, Some(0), Some(7)).unwrap();
            assert_eq!(st.bytes, 255);
            assert_eq!(buf, (0..255u8).collect::<Vec<_>>());
            comm.send_bytes(&[], 0, 8).unwrap();
            comm.wtime()
        }
    });
    assert!(a > 0.0);
}

#[test]
fn derived_vector_send_recv_contiguous() {
    // Paper's core pattern: rank 0 sends every other f64 with a vector
    // type; rank 1 receives into a contiguous buffer and verifies.
    let n = 1000usize;
    Universe::run_pair(quiet(), move |comm| {
        let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        if comm.rank() == 0 {
            let src = f64_seq(2 * n);
            comm.send(as_bytes(&src), 0, &vec_t, 1, 1, 0).unwrap();
        } else {
            let mut buf = vec![0.0f64; n];
            let st = comm.recv_slice(&mut buf, Some(0), Some(0)).unwrap();
            assert_eq!(st.bytes, n * 8);
            for (i, &v) in buf.iter().enumerate() {
                assert_eq!(v, (2 * i) as f64, "element {i}");
            }
        }
    });
}

#[test]
fn subarray_send_matches_vector_send() {
    let n = 64usize;
    Universe::run_pair(quiet(), move |comm| {
        // N x 2 array, select column 0 == every other element.
        let sub_t = Datatype::subarray(&[n, 2], &[n, 1], &[0, 0], ArrayOrder::C, &Datatype::f64())
            .unwrap()
            .commit();
        if comm.rank() == 0 {
            let src = f64_seq(2 * n);
            comm.send(as_bytes(&src), 0, &sub_t, 1, 1, 3).unwrap();
        } else {
            let mut buf = vec![0.0f64; n];
            comm.recv_slice(&mut buf, Some(0), Some(3)).unwrap();
            for (i, &v) in buf.iter().enumerate() {
                assert_eq!(v, (2 * i) as f64);
            }
        }
    });
}

#[test]
fn derived_recv_scatters_into_layout() {
    let n = 32usize;
    Universe::run_pair(quiet(), move |comm| {
        let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        if comm.rank() == 0 {
            let src = f64_seq(n);
            comm.send_slice(&src, 1, 0).unwrap();
        } else {
            let mut buf = vec![0.0f64; 2 * n];
            comm.recv(as_bytes_mut(&mut buf), 0, &vec_t, 1, Some(0), Some(0)).unwrap();
            for i in 0..n {
                assert_eq!(buf[2 * i], i as f64);
                assert_eq!(buf[2 * i + 1], 0.0);
            }
        }
    });
}

#[test]
fn large_messages_use_rendezvous_and_still_arrive() {
    // Past the eager limit (64 KiB on skx-impi).
    let n = 1 << 17; // 1 MiB of f64
    Universe::run_pair(quiet(), move |comm| {
        if comm.rank() == 0 {
            let src = f64_seq(n);
            comm.send_slice(&src, 1, 1).unwrap();
        } else {
            let mut buf = vec![0.0f64; n];
            comm.recv_slice(&mut buf, Some(0), Some(1)).unwrap();
            assert_eq!(buf[n - 1], (n - 1) as f64);
            assert_eq!(buf[12345], 12345.0);
        }
    });
}

#[test]
fn tag_matching_selects_correct_message() {
    Universe::run_pair(quiet(), |comm| {
        if comm.rank() == 0 {
            comm.send_slice(&[1.0f64], 1, 10).unwrap();
            comm.send_slice(&[2.0f64], 1, 20).unwrap();
        } else {
            let mut b = [0.0f64; 1];
            comm.recv_slice(&mut b, Some(0), Some(20)).unwrap();
            assert_eq!(b[0], 2.0);
            comm.recv_slice(&mut b, Some(0), Some(10)).unwrap();
            assert_eq!(b[0], 1.0);
        }
    });
}

#[test]
fn wildcard_source_and_tag() {
    Universe::run(quiet(), 3, |comm| {
        if comm.rank() == 2 {
            let mut seen = [false; 2];
            for _ in 0..2 {
                let mut b = [0.0f64; 1];
                let st = comm.recv_slice(&mut b, None, None).unwrap();
                assert_eq!(b[0], st.source as f64);
                seen[st.source] = true;
            }
            assert!(seen[0] && seen[1]);
        } else {
            let r = comm.rank() as f64;
            comm.send_slice(&[r], 2, comm.rank() as i32).unwrap();
        }
    });
}

#[test]
fn messages_nonovertaking_per_source_and_tag() {
    Universe::run_pair(quiet(), |comm| {
        if comm.rank() == 0 {
            for i in 0..10 {
                comm.send_slice(&[i as f64], 1, 5).unwrap();
            }
        } else {
            for i in 0..10 {
                let mut b = [0.0f64; 1];
                comm.recv_slice(&mut b, Some(0), Some(5)).unwrap();
                assert_eq!(b[0], i as f64, "FIFO violated");
            }
        }
    });
}

#[test]
fn truncate_detected() {
    let (_, err) = Universe::run_pair(quiet(), |comm| {
        if comm.rank() == 0 {
            comm.send_slice(&f64_seq(16), 1, 0).unwrap();
            None
        } else {
            let mut b = vec![0.0f64; 8];
            Some(comm.recv_slice(&mut b, Some(0), Some(0)).unwrap_err())
        }
    });
    assert!(matches!(err, Some(CoreError::Truncate { .. })));
}

#[test]
fn signature_mismatch_detected() {
    let (_, err) = Universe::run_pair(quiet(), |comm| {
        if comm.rank() == 0 {
            comm.send_slice(&[1.0f64, 2.0], 1, 0).unwrap();
            None
        } else {
            let mut b = vec![0i32; 4]; // same byte count, wrong primitives
            Some(comm.recv_slice(&mut b, Some(0), Some(0)).unwrap_err())
        }
    });
    assert!(matches!(err, Some(CoreError::SignatureMismatch)));
}

#[test]
fn packed_send_matches_typed_recv() {
    // MPI_PACKED output may be received as the original type.
    let n = 64;
    Universe::run_pair(quiet(), move |comm| {
        let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        if comm.rank() == 0 {
            let src = f64_seq(2 * n);
            let size = comm.pack_size(&vec_t, 1).unwrap();
            let mut packed = vec![0u8; size];
            let mut pos = 0;
            comm.pack(as_bytes(&src), 0, &vec_t, 1, &mut packed, &mut pos).unwrap();
            assert_eq!(pos, size);
            comm.send_packed(&packed, 1, 0).unwrap();
        } else {
            let mut buf = vec![0.0f64; n];
            comm.recv_slice(&mut buf, Some(0), Some(0)).unwrap();
            assert_eq!(buf[5], 10.0);
        }
    });
}

#[test]
fn unpack_restores_layout() {
    let n = 16;
    Universe::run_pair(quiet(), move |comm| {
        let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        if comm.rank() == 0 {
            let src = f64_seq(2 * n);
            comm.send(as_bytes(&src), 0, &vec_t, 1, 1, 0).unwrap();
        } else {
            let mut raw = vec![0u8; n * 8];
            comm.recv_bytes(&mut raw, Some(0), Some(0)).unwrap();
            let mut out = vec![0.0f64; 2 * n];
            let mut pos = 0;
            comm.unpack(&raw, &mut pos, &vec_t, 1, as_bytes_mut(&mut out), 0).unwrap();
            assert_eq!(pos, n * 8);
            assert_eq!(out[6], 6.0);
            assert_eq!(out[7], 0.0);
        }
    });
}

#[test]
fn bsend_requires_attached_buffer() {
    let (err, _) = Universe::run_pair(quiet(), |comm| {
        if comm.rank() == 0 {
            let t = Datatype::f64();
            Some(comm.bsend(as_bytes(&[1.0f64]), 0, &t, 1, 1, 0).unwrap_err())
        } else {
            None
        }
    });
    assert!(matches!(err, Some(CoreError::BufferAttachState(_))));
}

#[test]
fn bsend_roundtrip_and_buffer_accounting() {
    let n = 128usize;
    Universe::run_pair(quiet(), move |comm| {
        let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        if comm.rank() == 0 {
            let need = nonctg_core::Comm::bsend_size(&vec_t, 1).unwrap();
            comm.buffer_attach(need).unwrap();
            let src = f64_seq(2 * n);
            comm.bsend(as_bytes(&src), 0, &vec_t, 1, 1, 0).unwrap();
            // Immediately bsending again must fail: buffer still reserved
            // (rank 1 only receives after our tag-8 go-ahead, so the
            // reservation cannot have been released yet).
            let err = comm.bsend(as_bytes(&src), 0, &vec_t, 1, 1, 1).unwrap_err();
            assert!(matches!(err, CoreError::BsendBufferOverflow { .. }));
            comm.send_bytes(&[], 1, 8).unwrap();
            // Wait for the pong: by then the first message was matched and
            // its reservation released.
            let mut z = [0u8; 0];
            comm.recv_bytes(&mut z, Some(1), Some(9)).unwrap();
            comm.bsend(as_bytes(&src), 0, &vec_t, 1, 1, 1).unwrap();
            assert_eq!(comm.buffer_detach().unwrap(), need);
        } else {
            let mut z = [0u8; 0];
            comm.recv_bytes(&mut z, Some(0), Some(8)).unwrap();
            let mut buf = vec![0.0f64; n];
            comm.recv_slice(&mut buf, Some(0), Some(0)).unwrap();
            assert_eq!(buf[3], 6.0);
            comm.send_bytes(&[], 0, 9).unwrap();
            comm.recv_slice(&mut buf, Some(0), Some(1)).unwrap();
            assert_eq!(buf[4], 8.0);
        }
    });
}

#[test]
fn double_attach_rejected() {
    Universe::run(quiet(), 1, |comm| {
        comm.buffer_attach(1024).unwrap();
        assert!(matches!(
            comm.buffer_attach(1024),
            Err(CoreError::BufferAttachState(_))
        ));
        comm.buffer_detach().unwrap();
        assert!(comm.buffer_detach().is_err());
    });
}

#[test]
fn uncommitted_type_rejected_by_send() {
    Universe::run(quiet(), 1, |comm| {
        let t = Datatype::vector(4, 1, 2, &Datatype::f64()).unwrap(); // not committed
        let buf = f64_seq(8);
        let err = comm.send(as_bytes(&buf), 0, &t, 1, 0, 0).unwrap_err();
        assert!(matches!(err, CoreError::Datatype(_)));
    });
}

#[test]
fn invalid_rank_rejected() {
    Universe::run(quiet(), 2, |comm| {
        if comm.rank() == 0 {
            let err = comm.send_bytes(&[1], 5, 0).unwrap_err();
            assert!(matches!(err, CoreError::InvalidRank { rank: 5, size: 2 }));
        }
    });
}

// ---------------------------------------------------------------------
// virtual-time semantics
// ---------------------------------------------------------------------

#[test]
fn clocks_start_at_zero_and_advance() {
    let times = Universe::run(quiet(), 2, |comm| {
        let t0 = comm.wtime();
        comm.barrier().unwrap();
        (t0, comm.wtime())
    });
    for (t0, t1) in times {
        assert_eq!(t0, 0.0);
        assert!(t1 > 0.0);
    }
}

#[test]
fn recv_completes_no_earlier_than_send_availability() {
    let (t_send, t_recv) = Universe::run_pair(quiet(), |comm| {
        if comm.rank() == 0 {
            comm.send_slice(&f64_seq(512), 1, 0).unwrap();
            comm.wtime()
        } else {
            let mut b = vec![0.0f64; 512];
            comm.recv_slice(&mut b, Some(0), Some(0)).unwrap();
            comm.wtime()
        }
    });
    assert!(
        t_recv > t_send,
        "receive ({t_recv}) must finish after the send side was busy ({t_send})"
    );
}

#[test]
fn deterministic_virtual_times() {
    let run = || {
        Universe::run_pair(Platform::skx_impi(), |comm| {
            if comm.rank() == 0 {
                for _ in 0..5 {
                    comm.send_slice(&f64_seq(4096), 1, 0).unwrap();
                    let mut z = [0u8; 0];
                    comm.recv_bytes(&mut z, Some(1), Some(1)).unwrap();
                }
            } else {
                let mut b = vec![0.0f64; 4096];
                for _ in 0..5 {
                    comm.recv_slice(&mut b, Some(0), Some(0)).unwrap();
                    comm.send_bytes(&[], 0, 1).unwrap();
                }
            }
            comm.wtime()
        })
    };
    let (a0, a1) = run();
    let (b0, b1) = run();
    assert_eq!(a0, b0, "virtual time must be reproducible");
    assert_eq!(a1, b1);
}

#[test]
fn rendezvous_costs_more_per_byte_than_eager_at_the_limit() {
    // One-way time per byte just under vs just over the eager limit: the
    // paper's §4.5 blip.
    let p = quiet();
    let eager_limit = p.proto.eager_limit as usize;
    let time_for = |bytes: usize| {
        let p = quiet();
        let (_, t) = Universe::run_pair(p, move |comm| {
            if comm.rank() == 0 {
                comm.send_bytes(&vec![0u8; bytes], 1, 0).unwrap();
                0.0
            } else {
                let t0 = comm.wtime();
                let mut b = vec![0u8; bytes];
                comm.recv_bytes(&mut b, Some(0), Some(0)).unwrap();
                comm.wtime() - t0
            }
        });
        t
    };
    let under = time_for(eager_limit);
    let over = time_for(eager_limit + 1);
    let per_under = under / eager_limit as f64;
    let per_over = over / (eager_limit + 1) as f64;
    assert!(
        per_over > per_under * 1.05,
        "eager-limit blip missing: {per_under} vs {per_over}"
    );
}

#[test]
fn derived_send_slower_than_contiguous_send() {
    let n = 1 << 16; // 512 KiB payload
    let times = Universe::run_pair(quiet(), move |comm| {
        let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        if comm.rank() == 0 {
            let contig = f64_seq(n);
            let strided = f64_seq(2 * n);
            let t0 = comm.wtime();
            comm.send_slice(&contig, 1, 0).unwrap();
            let t1 = comm.wtime();
            comm.send(as_bytes(&strided), 0, &vec_t, 1, 1, 1).unwrap();
            let t2 = comm.wtime();
            (t1 - t0, t2 - t1)
        } else {
            let mut b = vec![0.0f64; n];
            comm.recv_slice(&mut b, Some(0), Some(0)).unwrap();
            comm.recv_slice(&mut b, Some(0), Some(1)).unwrap();
            (0.0, 0.0)
        }
    });
    let (t_contig, t_derived) = times.0;
    assert!(
        t_derived > 1.5 * t_contig,
        "derived-type send ({t_derived}) should be well above contiguous ({t_contig})"
    );
}

#[test]
fn flush_cache_makes_next_gather_cold() {
    let n = 1u64 << 18; // 256 KiB — fits in cache
    Universe::run(quiet(), 1, move |comm| {
        let access = nonctg_simnet::Access::Strided { blocklen: 8, stride: 16 };
        // Warm it first.
        comm.charge_copy(n, &access);
        let t0 = comm.wtime();
        comm.charge_copy(n, &access);
        let warm_cost = comm.wtime() - t0;

        comm.flush_cache(50 << 20);
        let t1 = comm.wtime();
        comm.charge_copy(n, &access);
        let cold_cost = comm.wtime() - t1;
        assert!(
            cold_cost > warm_cost * 1.3,
            "flush must slow the next gather: warm {warm_cost} vs cold {cold_cost}"
        );
    });
}

// ---------------------------------------------------------------------
// one-sided
// ---------------------------------------------------------------------

#[test]
fn put_transfers_data_through_window() {
    let n = 256usize;
    Universe::run_pair(quiet(), move |comm| {
        let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        let mut win = comm.win_create(n * 8).unwrap();
        win.fence(comm).unwrap();
        if comm.rank() == 0 {
            let src = f64_seq(2 * n);
            win.put(comm, as_bytes(&src), 0, &vec_t, 1, 1, 0).unwrap();
        }
        win.fence(comm).unwrap();
        if comm.rank() == 1 {
            let data = win.read_local(0..n * 8).unwrap();
            let v = f64::from_le_bytes(data[8..16].try_into().unwrap());
            assert_eq!(v, 2.0);
            let last = f64::from_le_bytes(data[n * 8 - 8..].try_into().unwrap());
            assert_eq!(last, (2 * (n - 1)) as f64);
        }
    });
}

#[test]
fn get_reads_remote_window() {
    let n = 64usize;
    Universe::run_pair(quiet(), move |comm| {
        let mut win = comm.win_create(n * 8).unwrap();
        if comm.rank() == 1 {
            let data = f64_seq(n);
            win.write_local(0, as_bytes(&data)).unwrap();
        }
        win.fence(comm).unwrap();
        let mut out = vec![0.0f64; n];
        if comm.rank() == 0 {
            let t = Datatype::f64();
            win.get(comm, as_bytes_mut(&mut out), 0, &t, n, 1, 0).unwrap();
        }
        win.fence(comm).unwrap();
        if comm.rank() == 0 {
            assert_eq!(out[17], 17.0);
        }
    });
}

#[test]
fn put_outside_epoch_rejected() {
    Universe::run_pair(quiet(), |comm| {
        let win = comm.win_create(64).unwrap();
        if comm.rank() == 0 {
            let t = Datatype::f64();
            let err = win.put(comm, as_bytes(&[1.0f64]), 0, &t, 1, 1, 0).unwrap_err();
            assert!(matches!(err, CoreError::Rma(_)));
        }
    });
}

#[test]
fn put_out_of_range_rejected() {
    Universe::run_pair(quiet(), |comm| {
        let mut win = comm.win_create(16).unwrap();
        win.fence(comm).unwrap();
        if comm.rank() == 0 {
            let t = Datatype::f64();
            let err = win
                .put(comm, as_bytes(&[1.0f64, 2.0]), 0, &t, 2, 1, 8)
                .unwrap_err();
            assert!(matches!(err, CoreError::RmaOutOfRange { .. }));
        }
        win.fence(comm).unwrap();
    });
}

#[test]
fn fence_charges_time_and_synchronizes() {
    let times = Universe::run_pair(quiet(), |comm| {
        let mut win = comm.win_create(64).unwrap();
        if comm.rank() == 0 {
            // Desynchronize the clocks.
            comm.flush_cache(10 << 20);
        }
        win.fence(comm).unwrap();
        comm.wtime()
    });
    // After a fence both clocks agree (same max + same fence cost).
    assert!((times.0 - times.1).abs() < 1e-12, "{} vs {}", times.0, times.1);
    assert!(times.0 > 0.0);
}

#[test]
fn small_onesided_dominated_by_fence() {
    // Paper §4.4(1): for small messages the fence overhead dominates.
    let p = quiet();
    let (t_onesided, _) = Universe::run_pair(p, |comm| {
        let mut win = comm.win_create(1024).unwrap();
        let t0 = comm.wtime();
        win.fence(comm).unwrap();
        if comm.rank() == 0 {
            let t = Datatype::f64();
            win.put(comm, as_bytes(&[1.0f64]), 0, &t, 1, 1, 0).unwrap();
        }
        win.fence(comm).unwrap();
        comm.wtime() - t0
    });
    let (t_twosided, _) = Universe::run_pair(quiet(), |comm| {
        if comm.rank() == 0 {
            let t0 = comm.wtime();
            comm.send_slice(&[1.0f64], 1, 0).unwrap();
            let mut z = [0u8; 0];
            comm.recv_bytes(&mut z, Some(1), Some(1)).unwrap();
            comm.wtime() - t0
        } else {
            let mut b = [0.0f64; 1];
            comm.recv_slice(&mut b, Some(0), Some(0)).unwrap();
            comm.send_bytes(&[], 0, 1).unwrap();
            0.0
        }
    });
    assert!(
        t_onesided > 2.0 * t_twosided,
        "small one-sided ({t_onesided}) should be dominated by fences vs two-sided ({t_twosided})"
    );
}

#[test]
fn multiple_windows_independent() {
    Universe::run_pair(quiet(), |comm| {
        let mut w1 = comm.win_create(8).unwrap();
        let mut w2 = comm.win_create(8).unwrap();
        w1.fence(comm).unwrap();
        w2.fence(comm).unwrap();
        if comm.rank() == 0 {
            let t = Datatype::f64();
            w1.put(comm, as_bytes(&[1.0f64]), 0, &t, 1, 1, 0).unwrap();
            w2.put(comm, as_bytes(&[2.0f64]), 0, &t, 1, 1, 0).unwrap();
        }
        w1.fence(comm).unwrap();
        w2.fence(comm).unwrap();
        if comm.rank() == 1 {
            let a = f64::from_le_bytes(w1.read_local(0..8).unwrap().try_into().unwrap());
            let b = f64::from_le_bytes(w2.read_local(0..8).unwrap().try_into().unwrap());
            assert_eq!((a, b), (1.0, 2.0));
        }
    });
}

#[test]
fn many_ranks_all_to_one() {
    let n = 8;
    Universe::run(quiet(), n, move |comm| {
        if comm.rank() == 0 {
            let mut sum = 0.0;
            for _ in 1..n {
                let mut b = [0.0f64; 1];
                comm.recv_slice(&mut b, None, Some(4)).unwrap();
                sum += b[0];
            }
            assert_eq!(sum, (1..n).map(|r| r as f64).sum::<f64>());
        } else {
            comm.send_slice(&[comm.rank() as f64], 0, 4).unwrap();
        }
    });
}

#[test]
fn barrier_aligns_all_ranks() {
    let times = Universe::run(quiet(), 4, |comm| {
        // Stagger the clocks by rank.
        for _ in 0..comm.rank() {
            comm.flush_cache(1 << 20);
        }
        comm.barrier().unwrap();
        comm.wtime()
    });
    for w in times.windows(2) {
        assert!((w[0] - w[1]).abs() < 1e-12);
    }
}

#[test]
fn ssend_synchronizes_with_receiver() {
    // A small ssend must not complete before the receiver matches: the
    // sender's completion time reflects the receiver's late arrival.
    let (t_eager, t_sync) = Universe::run_pair(quiet(), |comm| {
        if comm.rank() == 0 {
            comm.send_slice(&[1.0f64], 1, 0).unwrap(); // eager: returns fast
            let t_eager = comm.wtime();
            comm.ssend_slice(&[2.0f64], 1, 1).unwrap(); // waits for the recv
            (t_eager, comm.wtime())
        } else {
            // Idle a long while before receiving, then drain both.
            comm.flush_cache(200 << 20);
            let mut b = [0.0f64; 1];
            comm.recv_slice(&mut b, Some(0), Some(0)).unwrap();
            comm.recv_slice(&mut b, Some(0), Some(1)).unwrap();
            assert_eq!(b[0], 2.0);
            (0.0, 0.0)
        }
    })
    .0;
    assert!(
        t_sync > t_eager + 0.01,
        "ssend should have blocked until the late receiver matched: {t_eager} vs {t_sync}"
    );
}

#[test]
fn ssend_moves_derived_data() {
    let n = 256;
    Universe::run_pair(quiet(), move |comm| {
        let vec_t = Datatype::vector(n, 1, 2, &Datatype::f64()).unwrap().commit();
        if comm.rank() == 0 {
            let src = f64_seq(2 * n);
            comm.ssend(as_bytes(&src), 0, &vec_t, 1, 1, 0).unwrap();
        } else {
            let mut buf = vec![0.0f64; n];
            comm.recv_slice(&mut buf, Some(0), Some(0)).unwrap();
            assert_eq!(buf[10], 20.0);
        }
    });
}

#[test]
fn trace_captures_pingpong_structure() {
    let traces = Universe::run(quiet(), 2, |comm| {
        comm.enable_trace();
        if comm.rank() == 0 {
            comm.send_slice(&f64_seq(64), 1, 0).unwrap();
            let mut z = [0u8; 0];
            comm.recv_bytes(&mut z, Some(1), Some(1)).unwrap();
        } else {
            let mut b = vec![0.0f64; 64];
            comm.recv_slice(&mut b, Some(0), Some(0)).unwrap();
            comm.send_bytes(&[], 0, 1).unwrap();
        }
        comm.take_trace()
    });
    use nonctg_core::EventKind;
    let s0 = nonctg_core::trace::summarize(&traces[0]);
    assert_eq!(s0.count_of(EventKind::Send), 1);
    assert_eq!(s0.count_of(EventKind::Recv), 1);
    let send = traces[0].iter().find(|e| e.kind == EventKind::Send).unwrap();
    assert_eq!(send.peer, Some(1));
    assert_eq!(send.bytes, 512);
    assert!(send.t_end >= send.t_start);
    // Events are in issue order and timestamps never regress.
    for w in traces[0].windows(2) {
        assert!(w[1].t_start >= w[0].t_start);
    }
}
