//! Deterministic schedule-permutation fuzzer: the same program run under
//! deliberately skewed thread interleavings must produce bit-identical
//! virtual results, with every fabric invariant check enabled.
//!
//! Wall-clock staggering perturbs *only* the OS schedule — which rank's
//! thread gets to post, match, pack, and pump first — so any divergence
//! in payload bytes or virtual clocks is a real ordering bug in the
//! fabric (lost chunk, misattributed charge, aliased pool buffer), not
//! jitter. Each permutation also re-runs the chunk-ring and payload-pool
//! paths under the `NONCTG_ORACLE` assertions, so an interleaving that
//! corrupts state panics instead of silently producing a lucky result.

use std::time::Duration;

use nonctg_core::datatype::{as_bytes, as_bytes_mut, Datatype};
use nonctg_core::simnet::Platform;
use nonctg_core::{set_oracle_checks, Comm, Universe};

/// Serializes the tests in this file: `set_oracle_checks` is a process
/// global, so a test flipping it must not overlap another run.
static TOGGLE: std::sync::Mutex<()> = std::sync::Mutex::new(());

const NRANKS: usize = 4;
/// Small pipeline threshold so the streamed (chunked) datapath runs even
/// for test-sized payloads, with several chunks per message.
const PIPE_THRESHOLD: u64 = 4096;
const PIPE_CHUNK: u64 = 1024;

fn platform() -> Platform {
    let mut p = Platform::skx_impi().with_pipeline(PIPE_THRESHOLD, PIPE_CHUNK);
    p.jitter_sigma = 0.0;
    p.with_deadlock_timeout(10.0)
}

/// FNV-1a over a byte slice: cheap, deterministic payload fingerprint.
fn fnv(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Deterministic per-permutation stagger: how long each rank sleeps
/// before its first operation, in milliseconds. SplitMix64 keyed by the
/// permutation index, so every run of the test sees the same schedules.
fn stagger_ms(perm: u64, rank: usize) -> u64 {
    let mut x = perm
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(rank as u64 + 1);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    (x ^ (x >> 31)) % 40
}

/// The program under test: a ring of streamed derived-type rendezvous
/// sends (several chunks each), then a burst of eager traffic, then an
/// all-to-one collect. Returns this rank's virtual fingerprint: the
/// FNV hash of everything it received and the exact bits of its final
/// virtual clock.
fn workload(comm: &mut Comm, perm: u64) -> (u64, u64) {
    let rank = comm.rank();
    let size = comm.size();
    std::thread::sleep(Duration::from_millis(stagger_ms(perm, rank)));

    // Strided type: 96 blocks of 2 f64s every 3 → 1536 payload bytes per
    // instance; 6 instances = 9216 packed bytes > threshold, 9 chunks.
    let t = Datatype::vector(96, 2, 3, &Datatype::f64()).unwrap().commit();
    let count = 6;
    let elems = (t.extent() as usize / 8) * count + 8;
    let src: Vec<f64> = (0..elems).map(|i| (rank * 10_000 + i) as f64 * 0.5).collect();
    let mut ring_buf = vec![0.0f64; elems];

    let right = (rank + 1) % size;
    let left = (rank + size - 1) % size;
    // Split by parity so the blocking ssends can't deadlock the ring.
    if rank.is_multiple_of(2) {
        comm.ssend(as_bytes(&src), 0, &t, count, right, 7).unwrap();
        comm.recv(as_bytes_mut(&mut ring_buf), 0, &t, count, Some(left), Some(7)).unwrap();
    } else {
        comm.recv(as_bytes_mut(&mut ring_buf), 0, &t, count, Some(left), Some(7)).unwrap();
        comm.ssend(as_bytes(&src), 0, &t, count, right, 7).unwrap();
    }
    let mut hash = fnv(as_bytes(&ring_buf));

    // Eager burst: each rank sends a small distinct message to every
    // other rank, then receives in rank order (no wildcards, so matching
    // is fully determined however the envelopes race in).
    for peer in 0..size {
        if peer != rank {
            let msg: Vec<i32> = (0..16).map(|i| (rank * 100 + peer * 10 + i) as i32).collect();
            comm.send_slice(&msg, peer, 20 + rank as i32).unwrap();
        }
    }
    for peer in 0..size {
        if peer != rank {
            let mut got = vec![0i32; 16];
            comm.recv_slice(&mut got, Some(peer), Some(20 + peer as i32)).unwrap();
            hash = hash.wrapping_mul(31).wrapping_add(fnv(as_bytes(&got)));
        }
    }

    comm.barrier().unwrap();
    (hash, comm.wtime().to_bits())
}

/// Across permuted schedules, every rank's received bytes and final
/// virtual clock are bit-identical — and no interleaving trips the
/// chunk-ring, pool-aliasing, conservation, or clock invariants.
#[test]
fn permuted_schedules_are_virtually_identical() {
    let _serial = TOGGLE.lock().unwrap();
    set_oracle_checks(true);
    let baseline = Universe::run(platform(), NRANKS, |comm| workload(comm, 0));
    assert_eq!(baseline.len(), NRANKS);
    for perm in 1..5u64 {
        let run = Universe::run(platform(), NRANKS, move |comm| workload(comm, perm));
        assert_eq!(
            run, baseline,
            "schedule permutation {perm} diverged from the baseline virtual outcome"
        );
    }
}

/// The invariant layer itself: a violation must abort the run rather
/// than let a corrupted stream complete. Exercised by the public knob
/// only (checks off → the same workload is identical too, as a control).
#[test]
fn checks_off_matches_checks_on() {
    let _serial = TOGGLE.lock().unwrap();
    set_oracle_checks(true);
    let audited = Universe::run(platform(), NRANKS, |comm| workload(comm, 3));
    set_oracle_checks(false);
    let bare = Universe::run(platform(), NRANKS, |comm| workload(comm, 3));
    set_oracle_checks(true);
    assert_eq!(audited, bare, "enabling the oracle checks changed virtual results");
}
