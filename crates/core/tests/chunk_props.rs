//! Differential property tests of the pipelined chunked datapath: for any
//! strided message, chunk size, receive-side datatype and fault seed, the
//! chunked rendezvous path must deliver byte-identical payloads and
//! bit-equal virtual times compared to the monolithic path.
//!
//! The chunked path is forced with `Platform::with_pipeline(1, chunk)`
//! (threshold of one byte streams every eligible rendezvous send) and the
//! baseline with `Platform::without_pipeline()`. Jitter stays ON: bit-equal
//! times prove both paths consume the same jitter draws in the same order.
//! CI additionally runs this suite under `NONCTG_PACK_THREADS=4` so the
//! threaded sub-range pack/unpack kernels get the same differential check.

use nonctg_core::Universe;
use nonctg_datatype::{as_bytes, as_bytes_mut, Datatype};
use nonctg_simnet::{FaultPlan, Platform};
use proptest::prelude::*;

/// How rank 1 receives the strided payload.
#[derive(Debug, Clone, Copy)]
enum RecvMode {
    /// Contiguous `recv_slice` — the receive plan is dense.
    Contiguous,
    /// The sender's vector type — chunk cuts land on receive-plan
    /// boundaries (in-place fast path).
    SameVector,
    /// A coarser vector type with twice the blocklength — the sender's
    /// chunk alignment is finer than the receiver's, so cuts straddle
    /// receive blocks and exercise the carry buffer.
    CoarseVector,
    /// A coarser vector type whose instance size does not divide the sent
    /// byte count: the posted receive consumes only the whole instances
    /// (`fit < total`) and the trailing partial instance is drained and
    /// dropped. Combined with misaligned chunk cuts this drives the carry
    /// buffer across the `fit` boundary.
    PartialTrailing,
}

#[derive(Debug, Clone)]
struct Case {
    /// Number of vector blocks on the sender (always even, for CoarseVector).
    blocks: usize,
    /// Sender blocklength in f64 elements.
    blocklen: usize,
    /// Extra stride beyond the blocklength (>= 1 keeps the type non-contiguous).
    gap: usize,
    /// Pipeline chunk size in bytes; deliberately includes values that are
    /// not multiples of the block size.
    chunk: u64,
    recv_mode: RecvMode,
    /// Fault seed; `None` runs fault-free.
    fault_seed: Option<u64>,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (
        2usize..240,
        1usize..5,
        1usize..4,
        prop_oneof![Just(64u64), 65u64..4096, Just(1u64 << 16)],
        prop_oneof![
            Just(RecvMode::Contiguous),
            Just(RecvMode::SameVector),
            Just(RecvMode::CoarseVector),
            Just(RecvMode::PartialTrailing),
        ],
        prop_oneof![Just(None), (0u64..1_000).prop_map(Some)],
    )
        .prop_map(|(half, blocklen, gap, chunk, recv_mode, fault_seed)| Case {
            // PartialTrailing sends one extra block so the sent byte count
            // is not a multiple of the receive instance size.
            blocks: match recv_mode {
                RecvMode::PartialTrailing => 2 * half + 1,
                _ => 2 * half,
            },
            blocklen,
            gap,
            chunk,
            recv_mode,
            fault_seed,
        })
}

fn platform_for(case: &Case, chunked: bool) -> Platform {
    // Jitter stays at the platform default: identical draw sequences are
    // part of what the differential test proves.
    let mut p = Platform::skx_impi();
    p = if chunked {
        p.with_pipeline(1, case.chunk)
    } else {
        p.without_pipeline()
    };
    if let Some(seed) = case.fault_seed {
        // Delays and corruption stress the retry/backoff charges and the
        // corrupt-byte placement mid-stream; a low transient-failure rate
        // exercises the pre-send retry loop without ever escalating to a
        // persistent failure (which would wedge the receiver).
        p = p.with_fault_plan(
            FaultPlan::quiet(seed)
                .with_send_failures(0.05)
                .with_delays(0.15, 2e-6)
                .with_corruption(0.15),
        );
    }
    p.with_deadlock_timeout(5.0)
}

/// Runs one ssend/recv exchange and returns (receiver buffer bytes,
/// sender wtime bits, receiver wtime bits).
fn run_case(p: Platform, case: Case) -> (Vec<u8>, u64, u64) {
    let results = Universe::run(p, 2, move |comm| {
        let stride = (case.blocklen + case.gap) as i64;
        let n_elems = case.blocks * case.blocklen;
        if comm.rank() == 0 {
            let extent = (case.blocks - 1) * stride as usize + case.blocklen;
            let src: Vec<f64> = (0..extent).map(|e| e as f64 + 0.25).collect();
            let t = Datatype::vector(case.blocks, case.blocklen, stride, &Datatype::f64())
                .unwrap()
                .commit();
            // Synchronous mode rendezvouses at every size, so even small
            // payloads take the streaming path once the threshold is 1.
            comm.ssend(as_bytes(&src), 0, &t, 1, 1, 7).unwrap();
            (Vec::new(), comm.wtime().to_bits())
        } else {
            let buf_bytes = match case.recv_mode {
                RecvMode::Contiguous => {
                    let mut buf = vec![0.0f64; n_elems];
                    comm.recv_slice(&mut buf, Some(0), Some(7)).unwrap();
                    as_bytes(&buf).to_vec()
                }
                RecvMode::SameVector => {
                    let extent = (case.blocks - 1) * stride as usize + case.blocklen;
                    let mut buf = vec![0.0f64; extent];
                    let t = Datatype::vector(case.blocks, case.blocklen, stride, &Datatype::f64())
                        .unwrap()
                        .commit();
                    comm.recv(as_bytes_mut(&mut buf), 0, &t, 1, Some(0), Some(7))
                        .unwrap();
                    as_bytes(&buf).to_vec()
                }
                RecvMode::CoarseVector => {
                    let rb = 2 * case.blocklen;
                    let rcount = case.blocks / 2;
                    let rstride = (rb + 1) as i64;
                    let extent = (rcount - 1) * rstride as usize + rb;
                    let mut buf = vec![0.0f64; extent];
                    let t = Datatype::vector(rcount, rb, rstride, &Datatype::f64())
                        .unwrap()
                        .commit();
                    comm.recv(as_bytes_mut(&mut buf), 0, &t, 1, Some(0), Some(7))
                        .unwrap();
                    as_bytes(&buf).to_vec()
                }
                RecvMode::PartialTrailing => {
                    // One instance covers blocks-1 sender blocks; posting
                    // count=2 leaves capacity for the incoming bytes while
                    // only one whole instance fits them (fit < total).
                    let rb = 2 * case.blocklen;
                    let rcount = (case.blocks - 1) / 2;
                    let rstride = (rb + 1) as i64;
                    let ext = (rcount - 1) * rstride as usize + rb;
                    let mut buf = vec![0.0f64; 2 * ext];
                    let t = Datatype::vector(rcount, rb, rstride, &Datatype::f64())
                        .unwrap()
                        .commit();
                    comm.recv(as_bytes_mut(&mut buf), 0, &t, 2, Some(0), Some(7))
                        .unwrap();
                    as_bytes(&buf).to_vec()
                }
            };
            (buf_bytes, comm.wtime().to_bits())
        }
    });
    let mut it = results.into_iter();
    let (_, t0) = it.next().unwrap();
    let (buf, t1) = it.next().unwrap();
    (buf, t0, t1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Chunked vs. monolithic: identical received bytes (including any
    /// injected corruption, which must land on the same byte) and
    /// bit-equal virtual clocks on both ranks.
    #[test]
    fn chunked_matches_monolithic(case in arb_case()) {
        let (buf_c, s_c, r_c) = run_case(platform_for(&case, true), case.clone());
        let (buf_m, s_m, r_m) = run_case(platform_for(&case, false), case.clone());
        prop_assert_eq!(buf_c, buf_m, "payload bytes diverged: {:?}", case);
        prop_assert_eq!(s_c, s_m, "sender wtime diverged: {:?}", case);
        prop_assert_eq!(r_c, r_m, "receiver wtime diverged: {:?}", case);
    }
}

/// Pinned regression (oracle-discovered class): a chunk cut straddling the
/// `fit` boundary while the carry buffer is non-empty. Sender streams 7
/// blocks of one f64 (56 bytes, cuts on the 8-byte send grid); receiver
/// posts two instances of vector(2, 3, 4, f64) — 48-byte instances, so
/// fit = 48 < total = 56 and the receive grid cuts at 24/48. With a
/// 40-byte pipeline chunk the second chunk [40, 56) arrives with 16 carry
/// bytes pending; the drain loop used to take `fit - pos` fresh bytes
/// without discounting the carry, leaving the trailing partial instance
/// stuck in the carry buffer (debug assertion failure / invariant
/// violation at end of drain).
#[test]
fn carry_across_fit_boundary_matches_monolithic() {
    let case = Case {
        blocks: 7,
        blocklen: 1,
        gap: 1,
        chunk: 40,
        recv_mode: RecvMode::PartialTrailing,
        fault_seed: None,
    };
    let (buf_c, s_c, r_c) = run_case(platform_for(&case, true), case.clone());
    let (buf_m, s_m, r_m) = run_case(platform_for(&case, false), case.clone());
    assert_eq!(buf_c, buf_m, "payload bytes diverged");
    assert_eq!((s_c, r_c), (s_m, r_m), "virtual clocks diverged");
}

/// The default configuration: a standard `send` above the 4 MiB threshold
/// streams, and its virtual time is bit-equal to the monolithic path.
#[test]
fn default_threshold_send_is_bit_equal() {
    let elems = 1 << 20; // 8 MiB packed — above NONCTG_PIPELINE_THRESHOLD.
    let run = |p: Platform| {
        Universe::run(p, 2, move |comm| {
            if comm.rank() == 0 {
                let src: Vec<f64> = (0..2 * elems).map(|e| e as f64).collect();
                let t = Datatype::vector(elems, 1, 2, &Datatype::f64())
                    .unwrap()
                    .commit();
                comm.send(as_bytes(&src), 0, &t, 1, 1, 3).unwrap();
                (0u64, comm.wtime().to_bits())
            } else {
                let mut buf = vec![0.0f64; elems];
                comm.recv_slice(&mut buf, Some(0), Some(3)).unwrap();
                let sum = buf.iter().sum::<f64>();
                (sum.to_bits(), comm.wtime().to_bits())
            }
        })
    };
    // Default platform (env-driven threshold, 4 MiB unless overridden) vs.
    // explicitly disabled pipeline.
    let chunked = run(Platform::skx_impi());
    let mono = run(Platform::skx_impi().without_pipeline());
    assert_eq!(chunked, mono);
}
