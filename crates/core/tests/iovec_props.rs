//! Property tests of the zero-copy iovec datapath: whatever engine moves
//! the bytes — staged pack, direct region scatter, or a fault-demoted
//! mixture — the receiver's buffer must be bit-identical, including under
//! chaos fault plans.

use nonctg_core::datatype::Datatype;
use nonctg_core::{FaultStats, Universe};
use nonctg_simnet::{Datapath, FaultPlan, Platform};
use proptest::prelude::*;

fn quiet() -> Platform {
    let mut p = Platform::skx_impi();
    p.jitter_sigma = 0.0;
    p
}

/// Build a strided byte vector type and a patterned source buffer big
/// enough for `count` regions of `blocklen` bytes at `stride`.
fn vector_case(count: usize, blocklen: usize, stride: usize) -> (Datatype, Vec<u8>) {
    let src_len = (count - 1) * stride + blocklen;
    let src: Vec<u8> = (0..src_len).map(|i| (i.wrapping_mul(131) + 7) as u8).collect();
    let t = Datatype::vector(count, blocklen, stride as i64, &Datatype::byte())
        .unwrap()
        .commit();
    (t, src)
}

/// Pingpong one strided message 0 -> 1 -> 0 on `platform`; return
/// (rank-0 round-trip receive buffer, rank-1 receive buffer, rank-0
/// fault stats). The receive buffers start from distinct sentinels so
/// untouched gap bytes are distinguishable per rank.
fn pingpong(
    platform: Platform,
    dtype: Datatype,
    src: Vec<u8>,
) -> (Vec<u8>, Vec<u8>, FaultStats) {
    let n = src.len();
    let mut results = Universe::run_supervised(platform, 2, move |comm| {
        if comm.rank() == 0 {
            comm.send(&src, 0, &dtype, 1, 1, 0)?;
            let mut back = vec![0xAAu8; n];
            comm.recv(&mut back, 0, &dtype, 1, Some(1), Some(1))?;
            Ok((back, comm.fault_stats()))
        } else {
            let mut buf = vec![0xBBu8; n];
            comm.recv(&mut buf, 0, &dtype, 1, Some(0), Some(0))?;
            comm.send(&buf, 0, &dtype, 1, 0, 1)?;
            Ok((buf, comm.fault_stats()))
        }
    });
    let (r1, _) = results.pop().unwrap().unwrap();
    let (r0, stats0) = results.pop().unwrap().unwrap();
    (r0, r1, stats0)
}

/// Strided blocks of `got` must match `src`; gap bytes must keep `fill`.
fn assert_layout(src: &[u8], got: &[u8], count: usize, blocklen: usize, stride: usize, fill: u8) {
    for r in 0..count {
        let lo = r * stride;
        assert_eq!(&got[lo..lo + blocklen], &src[lo..lo + blocklen], "region {r}");
        let gap_hi = if r + 1 < count { lo + stride } else { got.len() };
        for (i, &b) in got[lo + blocklen..gap_hi].iter().enumerate() {
            assert_eq!(b, fill, "gap byte {i} after region {r} was touched");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Forced-iovec and forced-pack pingpongs deliver bit-identical
    /// buffers on both ranks, across region shapes that straddle the
    /// eager limit, the selector crossover, and the region cap.
    #[test]
    fn forced_iov_matches_forced_pack(
        count in 1usize..600,
        blocklen in 1usize..2048,
        gap in 0usize..512,
    ) {
        let stride = blocklen + gap;
        let (t, src) = vector_case(count, blocklen, stride);
        let (p0, p1, _) =
            pingpong(quiet().with_datapath(Datapath::Pack), t.clone(), src.clone());
        let (i0, i1, _) =
            pingpong(quiet().with_datapath(Datapath::Iov), t, src.clone());
        prop_assert_eq!(&p1, &i1, "rank-1 buffers diverge");
        prop_assert_eq!(&p0, &i0, "round-trip buffers diverge");
        assert_layout(&src, &i1, count, blocklen, stride, 0xBB);
        assert_layout(&src, &i0, count, blocklen, stride, 0xAA);
    }

    /// Under a chaos fault plan the iovec path still delivers every
    /// payload byte (demoting to pack where the ladder says so), and the
    /// pack reference sees the same bytes.
    #[test]
    fn chaos_seeds_preserve_iovec_payloads(seed in 0u64..24) {
        let (count, blocklen, stride) = (256usize, 512usize, 768usize);
        let (t, src) = vector_case(count, blocklen, stride);
        let chaos = FaultPlan::chaos(seed);
        let iov = quiet().with_datapath(Datapath::Iov).with_fault_plan(chaos.clone());
        let pack = quiet().with_datapath(Datapath::Pack).with_fault_plan(chaos);
        let (i0, i1, _) = pingpong(iov, t.clone(), src.clone());
        let (p0, p1, _) = pingpong(pack, t, src.clone());
        assert_layout(&src, &i1, count, blocklen, stride, 0xBB);
        assert_layout(&src, &i0, count, blocklen, stride, 0xAA);
        prop_assert_eq!(&i1, &p1);
        prop_assert_eq!(&i0, &p0);
    }
}

/// With the pool exhausted the fault ladder demotes iovec sends to the
/// staged pack path, counts the demotion, and still delivers intact.
#[test]
fn pool_exhaustion_demotes_iovec_to_pack() {
    let (count, blocklen, stride) = (256usize, 512usize, 768usize);
    let (t, src) = vector_case(count, blocklen, stride);
    let p = quiet()
        .with_datapath(Datapath::Iov)
        .with_fault_plan(FaultPlan::quiet(3).with_pool_exhaustion(1.0));
    let (r0, r1, stats0) = pingpong(p, t, src.clone());
    assert!(stats0.iovec_demotions >= 1, "no demotion recorded: {stats0:?}");
    assert_layout(&src, &r1, count, blocklen, stride, 0xBB);
    assert_layout(&src, &r0, count, blocklen, stride, 0xAA);
}

/// In auto mode a long-region rendezvous workload actually routes
/// through the selector to iovec, and matches the forced-pack result.
#[test]
fn auto_mode_selects_iovec_for_long_regions() {
    let (count, blocklen, stride) = (256usize, 512usize, 768usize);
    let (t, src) = vector_case(count, blocklen, stride);
    let base = nonctg_core::selector_counters();
    let (a0, a1, _) = pingpong(quiet(), t.clone(), src.clone());
    let delta = nonctg_core::selector_counters().delta_since(&base);
    assert!(delta.iov >= 2, "selector never chose iovec: {delta:?}");
    let (p0, p1, _) = pingpong(quiet().with_datapath(Datapath::Pack), t, src);
    assert_eq!(a1, p1);
    assert_eq!(a0, p0);
}

/// The paper's every-other-f64 workloads (8-byte regions) must keep
/// selecting pack: the zero-copy path never silently changes the
/// figures the repo reproduces.
#[test]
fn auto_mode_keeps_pack_for_paper_workloads() {
    let (count, blocklen, stride) = (32 * 1024usize, 8usize, 16usize);
    let (t, src) = vector_case(count, blocklen, stride);
    let base = nonctg_core::selector_counters();
    let (_, r1, _) = pingpong(quiet(), t, src.clone());
    let delta = nonctg_core::selector_counters().delta_since(&base);
    assert_eq!(delta.iov, 0, "8-byte regions must not take iovec: {delta:?}");
    assert_layout(&src, &r1, count, blocklen, stride, 0xBB);
}

/// For long regions the zero-copy path must be faster in virtual time
/// than the staged pack path — the perf claim the selector encodes.
#[test]
fn iovec_is_faster_for_long_regions() {
    let (count, blocklen, stride) = (256usize, 4096usize, 4608usize);
    let (t, src) = vector_case(count, blocklen, stride);
    let time_with = |p: Platform| {
        let dtype = t.clone();
        let payload = src.clone();
        let n = payload.len();
        let times = Universe::run(p, 2, move |comm| {
            if comm.rank() == 0 {
                comm.send(&payload, 0, &dtype, 1, 1, 0).unwrap();
            } else {
                let mut buf = vec![0u8; n];
                comm.recv(&mut buf, 0, &dtype, 1, Some(0), Some(0)).unwrap();
            }
            comm.wtime()
        });
        times.into_iter().fold(0.0f64, f64::max)
    };
    let pack = time_with(quiet().with_datapath(Datapath::Pack));
    let iov = time_with(quiet().with_datapath(Datapath::Iov));
    assert!(iov < pack, "iovec not faster: iov={iov:e} pack={pack:e}");
}
