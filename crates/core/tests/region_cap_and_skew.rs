//! Regression tests for two latent bugs flushed out by the ddtbench
//! application kernels:
//!
//! 1. Region-cap overflow: a plan that lowers to more than
//!    `iov_max_regions()` descriptors must deterministically demote a
//!    forced-iovec send to the staged pack path (counted in the existing
//!    demotion counter) and must never be chosen by the selector.
//! 2. Skew blindness: the selector used to price descriptors by mean
//!    region length, over-favouring iovec on layouts that mix a few huge
//!    regions with hundreds of sub-cacheline ones (LAMMPS atom
//!    exchange). Sub-line regions now pay the full per-descriptor cost,
//!    so forced-iovec is never faster than auto on such layouts.

use nonctg_core::datatype::Datatype;
use nonctg_core::{FaultStats, Universe};
use nonctg_simnet::{Datapath, Platform};

fn quiet() -> Platform {
    let mut p = Platform::skx_impi();
    p.jitter_sigma = 0.0;
    p
}

/// `nblocks` non-mergeable byte blocks of `blocklen` separated by
/// one-byte gaps, plus a patterned source buffer covering the extent.
fn gapped_blocks(nblocks: usize, blocklen: usize) -> (Datatype, Vec<u8>) {
    let blocks: Vec<(usize, i64)> = (0..nblocks)
        .map(|i| (blocklen, (i * (blocklen + 1)) as i64))
        .collect();
    let t = Datatype::indexed(&blocks, &Datatype::byte()).unwrap().commit();
    let extent = t.extent() as usize;
    let src: Vec<u8> = (0..extent).map(|i| (i.wrapping_mul(181) + 3) as u8).collect();
    (t, src)
}

/// The skewed LAMMPS-like shape: a few multi-KiB blocks among hundreds
/// of sub-cacheline ones, totalling past the eager limit so the
/// rendezvous datapath choice is exercised.
fn skewed_blocks() -> (Datatype, Vec<u8>) {
    let mut blocks: Vec<(usize, i64)> = Vec::new();
    let mut disp = 0i64;
    for i in 0..706usize {
        let len = if i % 120 == 0 { 2048 } else { 3 }; // 6 big + 700 tiny f64 runs
        blocks.push((len, disp));
        disp += len as i64 + 1; // gap prevents coalescing
    }
    let t = Datatype::indexed(&blocks, &Datatype::f64()).unwrap().commit();
    let extent = t.extent() as usize;
    let src: Vec<u8> = (0..extent).map(|i| (i.wrapping_mul(97) + 11) as u8).collect();
    (t, src)
}

/// One-way send 0 -> 1; returns (rank-1 buffer, rank-0 fault stats,
/// max virtual time across ranks).
fn one_way(platform: Platform, dtype: Datatype, src: Vec<u8>) -> (Vec<u8>, FaultStats, f64) {
    let n = src.len();
    let mut results = Universe::run_supervised(platform, 2, move |comm| {
        if comm.rank() == 0 {
            comm.send(&src, 0, &dtype, 1, 1, 0)?;
            Ok((Vec::new(), comm.fault_stats(), comm.wtime()))
        } else {
            let mut buf = vec![0u8; n];
            comm.recv(&mut buf, 0, &dtype, 1, Some(0), Some(0))?;
            Ok((buf, comm.fault_stats(), comm.wtime()))
        }
    });
    let (r1, _, t1) = results.pop().unwrap().unwrap();
    let (_, stats0, t0) = results.pop().unwrap().unwrap();
    (r1, stats0, t0.max(t1))
}

/// Gather the payload bytes a receiver buffer should hold for a
/// gapped-blocks layout, for comparison against a pack reference.
fn assert_blocks(src: &[u8], got: &[u8], blocks: &[(usize, i64)]) {
    for &(len, disp) in blocks {
        let lo = disp as usize;
        assert_eq!(&got[lo..lo + len], &src[lo..lo + len], "block at {disp}");
    }
}

/// At exactly the region cap, forced-iovec goes through the zero-copy
/// path without demotion; one region past the cap it deterministically
/// demotes to pack, increments the demotion counter, and still delivers
/// bit-identical bytes.
#[test]
fn forced_iov_demotes_past_region_cap() {
    let cap = nonctg_core::iov_max_regions();
    let blocklen = 128usize; // cap * 128 B comfortably exceeds the eager limit

    let (t_at, src_at) = gapped_blocks(cap, blocklen);
    let (r_at, stats_at, _) = one_way(quiet().with_datapath(Datapath::Iov), t_at, src_at.clone());
    assert_eq!(
        stats_at.iovec_demotions, 0,
        "a plan at the cap must not demote: {stats_at:?}"
    );
    let blocks_at: Vec<(usize, i64)> =
        (0..cap).map(|i| (blocklen, (i * (blocklen + 1)) as i64)).collect();
    assert_blocks(&src_at, &r_at, &blocks_at);

    let (t_over, src_over) = gapped_blocks(cap + 1, blocklen);
    let (r_iov, stats_over, _) =
        one_way(quiet().with_datapath(Datapath::Iov), t_over.clone(), src_over.clone());
    assert!(
        stats_over.iovec_demotions >= 1,
        "cap+1 regions must demote the forced-iovec send: {stats_over:?}"
    );
    let (r_pack, _, _) = one_way(quiet().with_datapath(Datapath::Pack), t_over, src_over);
    assert_eq!(r_iov, r_pack, "demoted send must match the pack reference");
}

/// The selector never picks iovec for a layout past the region cap: the
/// plan's bounded region list is `None`, so auto mode lands on pack.
#[test]
fn selector_never_chooses_iovec_past_region_cap() {
    let cap = nonctg_core::iov_max_regions();
    let (t, src) = gapped_blocks(cap + 1, 128);
    let base = nonctg_core::selector_counters();
    let (_, stats, _) = one_way(quiet(), t, src);
    let delta = nonctg_core::selector_counters().delta_since(&base);
    assert_eq!(delta.iov, 0, "selector chose iovec past the cap: {delta:?}");
    assert_eq!(
        stats.iovec_demotions, 0,
        "auto mode must route around the cap without a demotion event: {stats:?}"
    );
}

/// On a skewed layout (6 multi-KiB regions among 700 sub-cacheline
/// ones) the shape-aware selector keeps pack, and forcing iovec is no
/// faster than auto — the regression the mean-region-length selector
/// used to exhibit.
#[test]
fn forced_iov_not_faster_than_auto_on_skewed_layout() {
    let (t, src) = skewed_blocks();
    assert!(t.size() > 64 * 1024, "layout must exceed the eager limit");

    let base = nonctg_core::selector_counters();
    let (auto_buf, _, auto_time) = one_way(quiet(), t.clone(), src.clone());
    let delta = nonctg_core::selector_counters().delta_since(&base);
    assert_eq!(delta.iov, 0, "skewed layout must not select iovec: {delta:?}");
    assert!(delta.pack >= 1, "skewed layout should select pack: {delta:?}");

    let (iov_buf, _, iov_time) = one_way(quiet().with_datapath(Datapath::Iov), t, src);
    assert_eq!(auto_buf, iov_buf, "datapaths disagree on payload bytes");
    assert!(
        iov_time >= auto_time,
        "forced iovec beat auto on a skewed layout: iov={iov_time:e} auto={auto_time:e}"
    );
}
