//! Forced-datapath bit-identity on the irregular ddtbench layouts: a
//! send forced down the zero-copy iovec path must deliver exactly the
//! bytes the staged pack path delivers, for the LAMMPS atom-exchange and
//! WRF halo access patterns (both mix region sizes and stay under the
//! iovec region cap at these extents).

use nonctg_core::datatype::layouts::{lammps_exchange, wrf_halo};
use nonctg_core::datatype::Datatype;
use nonctg_core::Universe;
use nonctg_simnet::{Datapath, Platform};

fn quiet(dp: Datapath) -> Platform {
    let mut p = Platform::skx_impi().with_datapath(dp);
    p.jitter_sigma = 0.0;
    p
}

/// One-way send 0 -> 1 under a forced datapath; returns rank 1's buffer.
fn one_way(dp: Datapath, dtype: Datatype, src: Vec<u8>) -> Vec<u8> {
    let n = src.len();
    let mut results = Universe::run_supervised(quiet(dp), 2, move |comm| {
        if comm.rank() == 0 {
            comm.send(&src, 0, &dtype, 1, 1, 0)?;
            Ok(Vec::new())
        } else {
            let mut buf = vec![0u8; n];
            comm.recv(&mut buf, 0, &dtype, 1, Some(0), Some(0))?;
            Ok(buf)
        }
    });
    let r1 = results.pop().unwrap().unwrap();
    results.pop().unwrap().unwrap();
    r1
}

fn patterned(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i.wrapping_mul(131).wrapping_add(i >> 9) ^ 0x5c) as u8).collect()
}

fn assert_identity(name: &str, t: Datatype) {
    let extent = t.extent() as usize;
    let src = patterned(extent);
    let via_iov = one_way(Datapath::Iov, t.clone(), src.clone());
    let via_pack = one_way(Datapath::Pack, t, src);
    assert_eq!(via_iov, via_pack, "{name}: iovec and pack deliveries differ");
}

#[test]
fn lammps_exchange_iov_matches_pack_bit_for_bit() {
    // 192 atoms: 189 small 24 B blocks + 3 big 4 KiB blocks, well under
    // the iovec region cap, heavily skewed region-length mix.
    assert_identity("lammps", lammps_exchange(192).unwrap());
}

#[test]
fn wrf_halo_iov_matches_pack_bit_for_bit() {
    // 512 regions of 8 B each (under the 1024 cap), nested-vector strides.
    assert_identity("wrf", wrf_halo(4, 8, 16, 32, 2).unwrap());
}
