//! Tests of the nonblocking API: correctness, overlap semantics in
//! virtual time, and sendrecv deadlock-freedom.

use nonctg_core::Universe;
use nonctg_simnet::{Access, Platform};

fn quiet() -> Platform {
    let mut p = Platform::skx_impi();
    p.jitter_sigma = 0.0;
    p
}

#[test]
fn isend_irecv_roundtrip() {
    let n = 4096;
    Universe::run_pair(quiet(), move |comm| {
        if comm.rank() == 0 {
            let data: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let req = comm.isend_slice(&data, 1, 0).unwrap();
            req.wait(comm).unwrap();
        } else {
            let mut buf = vec![0.0f64; n];
            let req = comm.irecv_slice(&mut buf, Some(0), Some(0)).unwrap();
            let st = req.wait(comm).unwrap();
            assert_eq!(st.bytes, n * 8);
            assert_eq!(buf[n - 1], (n - 1) as f64);
        }
    });
}

#[test]
fn computation_overlaps_communication() {
    // Large (rendezvous) message; the receiver computes for longer than
    // the transfer takes. With irecv posted before the computation, the
    // wait must be nearly free: total ~= computation, not computation +
    // transfer.
    let n = 1 << 18; // 2 MiB
    let compute = 0.05; // 50 ms of "work" — far more than the transfer
    let (_, overlapped) = Universe::run_pair(quiet(), move |comm| {
        if comm.rank() == 0 {
            let data = vec![1.0f64; n];
            comm.send_slice(&data, 1, 0).unwrap();
            0.0
        } else {
            let mut buf = vec![0.0f64; n];
            let t0 = comm.wtime();
            let req = comm.irecv_slice(&mut buf, Some(0), Some(0)).unwrap();
            // "Computation": charge pure local time.
            comm.charge_copy((compute * comm.platform().mem.copy_bw) as u64, &Access::Contiguous);
            req.wait(comm).unwrap();
            comm.wtime() - t0
        }
    });
    // Blocking variant for comparison.
    let (_, sequential) = Universe::run_pair(quiet(), move |comm| {
        if comm.rank() == 0 {
            let data = vec![1.0f64; n];
            comm.send_slice(&data, 1, 0).unwrap();
            0.0
        } else {
            let mut buf = vec![0.0f64; n];
            let t0 = comm.wtime();
            comm.charge_copy((compute * comm.platform().mem.copy_bw) as u64, &Access::Contiguous);
            comm.recv_slice(&mut buf, Some(0), Some(0)).unwrap();
            comm.wtime() - t0
        }
    });
    assert!(
        overlapped < sequential,
        "overlap should hide the transfer: overlapped {overlapped} vs sequential {sequential}"
    );
    // With compute >> transfer, the overlapped total is ~compute.
    assert!(
        (overlapped - compute).abs() / compute < 0.3,
        "overlapped total {overlapped} should be close to the compute time {compute}"
    );
}

#[test]
fn sendrecv_exchanges_without_deadlock() {
    // Both ranks send a rendezvous-sized message to each other at once —
    // blocking sends would deadlock; sendrecv must not.
    let n = 1 << 17; // 1 MiB, over the eager limit
    Universe::run_pair(quiet(), move |comm| {
        let me = comm.rank() as f64;
        let send: Vec<f64> = vec![me; n];
        let mut recv = vec![-1.0f64; n];
        let partner = 1 - comm.rank();
        comm.sendrecv_slices(&send, &mut recv, partner, 7).unwrap();
        assert!(recv.iter().all(|&v| v == partner as f64));
    });
}

#[test]
fn waitall_completes_a_batch() {
    let n = 512;
    Universe::run_pair(quiet(), move |comm| {
        if comm.rank() == 0 {
            let bufs: Vec<Vec<f64>> = (0..4).map(|t| vec![t as f64; n]).collect();
            let reqs: Vec<_> = bufs
                .iter()
                .enumerate()
                .map(|(t, b)| comm.isend_slice(b, 1, t as i32).unwrap())
                .collect();
            comm.waitall(reqs).unwrap();
        } else {
            for t in (0..4).rev() {
                let mut buf = vec![0.0f64; n];
                comm.recv_slice(&mut buf, Some(0), Some(t)).unwrap();
                assert!(buf.iter().all(|&v| v == t as f64));
            }
        }
    });
}

#[test]
fn test_reports_pending_then_completes() {
    Universe::run_pair(quiet(), |comm| {
        if comm.rank() == 0 {
            // Small (eager) send: test completes immediately.
            let req = comm.isend_slice(&[1.0f64], 1, 0).unwrap();
            assert!(req.test(comm).is_ok());
            // Signal rank 1 that it may receive now.
            comm.send_bytes(&[1], 1, 99).unwrap();
        } else {
            let mut buf = [0.0f64; 1];
            let req = comm.irecv_slice(&mut buf, Some(0), Some(0)).unwrap();
            // The eager message may not have been pushed yet; spin on test.
            let mut req = Some(req);
            let mut sync = [0u8; 1];
            let mut status = None;
            // First drain the synchronization message so the data message
            // is certainly queued.
            comm.recv_bytes(&mut sync, Some(0), Some(99)).unwrap();
            while let Some(r) = req.take() {
                match r.test(comm) {
                    Ok(st) => status = Some(st),
                    Err(r) => req = Some(r),
                }
            }
            assert_eq!(status.unwrap().bytes, 8);
            assert_eq!(buf[0], 1.0);
        }
    });
}

#[test]
fn irecv_posting_time_governs_rendezvous_start() {
    // Receiver posts early, then idles; sender arrives late. The transfer
    // must start from the sender's readiness, not the wait call.
    let n = 1 << 17;
    let (t_send_done, t_recv_done) = Universe::run_pair(quiet(), move |comm| {
        if comm.rank() == 0 {
            // Idle a while before sending.
            comm.flush_cache(100 << 20);
            let data = vec![2.0f64; n];
            comm.send_slice(&data, 1, 0).unwrap();
            comm.wtime()
        } else {
            let mut buf = vec![0.0f64; n];
            let req = comm.irecv_slice(&mut buf, Some(0), Some(0)).unwrap();
            let st = req.wait(comm).unwrap();
            assert_eq!(st.bytes, n * 8);
            comm.wtime()
        }
    });
    assert!(t_recv_done >= t_send_done * 0.9, "{t_recv_done} vs {t_send_done}");
}
