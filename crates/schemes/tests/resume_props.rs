//! Property: a resilient sweep interrupted mid-run (crash after any
//! completed size group) and resumed from its checkpoint merges to a
//! bit-equal result — points *and* cumulative fault counters — as the
//! uninterrupted sweep, even under a chaos fault plan.

use nonctg_schemes::{
    run_sweep_resilient, PingPongConfig, Resilience, Scheme, Sweep, SweepConfig, SweepFaults,
    SweepPoint,
};
use nonctg_simnet::{FaultPlan, Platform};
use proptest::prelude::*;

fn chaos_platform(seed: u64) -> Platform {
    let mut p = Platform::skx_impi();
    p.jitter_sigma = 0.0;
    p.with_deadlock_timeout(10.0).with_fault_plan(FaultPlan::chaos(seed))
}

fn small_cfg(schemes: Vec<Scheme>, groups: usize) -> SweepConfig {
    SweepConfig {
        schemes,
        min_bytes: 1 << 10,
        max_bytes: (1 << 10) << (groups - 1),
        step: 2,
        base: PingPongConfig { reps: 2, flush: false, flush_bytes: 0, verify: true },
    }
}

/// Bit-exact point equality: NaN times (Failed points) compare equal to
/// themselves, so `PartialEq` on the f64s would be too weak *and* too
/// strong at once — compare the raw bits instead.
fn points_bit_equal(a: &SweepPoint, b: &SweepPoint) -> bool {
    a.scheme == b.scheme
        && a.msg_bytes == b.msg_bytes
        && a.time.to_bits() == b.time.to_bits()
        && a.bandwidth.to_bits() == b.bandwidth.to_bits()
        && a.slowdown.to_bits() == b.slowdown.to_bits()
        && a.status == b.status
        && a.faults == b.faults
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn interrupted_sweep_resumes_bit_equal(
        seed in 0u64..1000,
        nschemes in 1usize..4,
        offset in 0usize..8,
        groups in 2usize..4,
        crash_after in 1usize..3,
    ) {
        // A small rotated subset of the scheme matrix (3 and 8 are
        // coprime, so the picks are distinct).
        let schemes: Vec<Scheme> = (0..nschemes)
            .map(|i| Scheme::ALL[(offset + i * 3) % Scheme::ALL.len()])
            .collect();
        let platform = chaos_platform(seed);
        let cfg = small_cfg(schemes, groups);
        let res = Resilience { retries: 1, ..Resilience::default() };

        let full = run_sweep_resilient(&platform, &cfg, &res);

        // Simulate the harness dying after `crash_after` completed size
        // groups: the checkpoint on disk holds exactly those finalized
        // points plus the fault counters attributed to them.
        let crash_after = crash_after.min(groups - 1);
        let cut = crash_after * cfg.schemes.len();
        let prefix: Vec<SweepPoint> = full.points[..cut].to_vec();
        let prefix_faults = prefix.iter().fold(SweepFaults::default(), |mut a, p| {
            a.merge(p.faults);
            a
        });
        let checkpoint =
            Sweep { platform: platform.id, points: prefix, faults: prefix_faults }
                .to_checkpoint_json();

        // Resume through the same serialized form the harness would read.
        let resume = Sweep::from_checkpoint_json(&checkpoint).unwrap();
        let res2 = Resilience { retries: 1, resume: Some(resume), ..Resilience::default() };
        let resumed = run_sweep_resilient(&platform, &cfg, &res2);

        prop_assert_eq!(resumed.points.len(), full.points.len());
        for (i, (a, b)) in resumed.points.iter().zip(&full.points).enumerate() {
            prop_assert!(
                points_bit_equal(a, b),
                "point {i} diverged after resume: {a:?} vs {b:?}"
            );
        }
        prop_assert_eq!(resumed.faults, full.faults, "cumulative fault counters diverged");
    }
}
