//! Allocation regression test for the ping-pong datapath: once a
//! measurement's universe is warm, extra repetitions must not allocate
//! per-rep payload-sized buffers. Scratch staging goes through
//! `Comm::take_scratch`/`put_scratch` and wire payloads through the
//! fabric's buffer pool, so six additional 4 MiB ping-pongs should cost
//! far less than one payload of fresh allocation — a regression (packing
//! into a fresh `Vec` per rep) costs tens of megabytes and fails loudly.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use nonctg_schemes::{run_scheme, PingPongConfig, Scheme, Workload};
use nonctg_simnet::Platform;

/// Counts bytes requested from the allocator (frees are ignored: we
/// measure allocation churn, not live footprint).
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if new_size > layout.size() {
            ALLOCATED.fetch_add((new_size - layout.size()) as u64, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const ELEMS: usize = 512 * 1024; // 4 MiB payload (f64 elements).
const MSG_BYTES: u64 = (ELEMS * 8) as u64;

fn measure(reps: usize) -> u64 {
    let platform = Platform::skx_impi();
    let workload = Workload::every_other(ELEMS);
    let cfg = PingPongConfig { reps, flush: false, ..Default::default() };
    let before = ALLOCATED.load(Ordering::Relaxed);
    run_scheme(&platform, Scheme::Copying, &workload, &cfg);
    ALLOCATED.load(Ordering::Relaxed) - before
}

#[test]
fn extra_pingpong_reps_do_not_allocate_payloads() {
    // Warm up lazies (env caches, thread pools) outside the measurement.
    let _ = measure(2);
    let base = measure(2);
    let more = measure(8);
    // The six extra reps move 6 x 4 MiB of payload each way; without
    // scratch and pool reuse they would allocate at least that much.
    let extra = more.saturating_sub(base);
    assert!(
        extra < MSG_BYTES,
        "6 extra ping-pong reps allocated {extra} bytes (>= one {MSG_BYTES}-byte \
         payload); scratch/pool reuse has regressed (base run: {base} bytes)"
    );
}
