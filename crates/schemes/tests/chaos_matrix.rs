//! The chaos matrix: every send scheme under the full v2 fault mix.
//! Two properties hold for every cell, or the build is wrong:
//!
//! * **Determinism** — the same chaos seed yields bit-equal virtual
//!   times and fault counters, or the same typed error. Never a hang.
//! * **Graceful degradation** — a transfer demoted to the monolithic
//!   whole-rendezvous path is never slower in virtual time than an
//!   equivalent fresh non-pipelined send (the demoted path *is* that
//!   path, charged identically).

use std::time::{Duration, Instant};

use nonctg_core::set_oracle_checks;
use nonctg_schemes::{try_run_scheme, PingPongConfig, Scheme, Workload};
use nonctg_simnet::{FaultPlan, Platform};

fn chaos_platform(seed: u64) -> Platform {
    let mut p = Platform::skx_impi();
    p.jitter_sigma = 0.0;
    // Low pipeline threshold so the 128 KiB workload streams and the
    // chunk-level faults in the chaos mix actually land.
    p.with_deadlock_timeout(10.0)
        .with_pipeline(64 << 10, 16 << 10)
        .with_fault_plan(FaultPlan::chaos(seed))
}

fn small_cfg() -> PingPongConfig {
    PingPongConfig { reps: 3, flush: false, flush_bytes: 0, verify: true }
}

/// All schemes x chaos seeds, each cell run twice: bit-equal times and
/// fault counters, or the identical typed error — and demotions are
/// observed somewhere across the matrix.
#[test]
fn chaos_matrix_is_deterministic_and_degrades_gracefully() {
    set_oracle_checks(true);
    let w = Workload::every_other(16 << 10); // 128 KiB packed payload
    let cfg = small_cfg();
    let mut ladder_hits = 0u64;
    let mut failures = 0usize;
    let start = Instant::now();
    for seed in [11u64, 23, 47] {
        for scheme in Scheme::ALL {
            let run = || try_run_scheme(&chaos_platform(seed), scheme, &w, &cfg);
            let (a, b) = (run(), run());
            match (a, b) {
                (Ok(ra), Ok(rb)) => {
                    assert_eq!(
                        ra.times, rb.times,
                        "virtual times diverged: {scheme:?} seed {seed}"
                    );
                    assert_eq!(
                        ra.faults, rb.faults,
                        "fault counters diverged: {scheme:?} seed {seed}"
                    );
                    ladder_hits += ra.faults.demotions() + ra.faults.chunk_retries;
                }
                (Err(ea), Err(eb)) => {
                    assert_eq!(
                        ea.failures, eb.failures,
                        "typed errors diverged: {scheme:?} seed {seed}"
                    );
                    failures += 1;
                }
                (a, b) => panic!(
                    "outcome diverged for {scheme:?} seed {seed}: {:?} vs {:?}",
                    a.map(|r| r.times),
                    b.map(|r| r.times)
                ),
            }
        }
    }
    // 24 cells x 2 runs of a short ping-pong: seconds, not minutes. A
    // hang anywhere would blow far past this.
    assert!(start.elapsed() < Duration::from_secs(60), "chaos matrix too slow (hang?)");
    assert!(
        ladder_hits >= 1,
        "no ladder activity (demotion or chunk retry) anywhere in the matrix \
         ({failures} cells failed typed)"
    );
}

/// Satellite guideline: a transfer the ladder demotes to the monolithic
/// whole-rendezvous path must never be slower in virtual time than the
/// same transfer on a fresh platform with pipelining disabled — the
/// demoted path is exactly that path, and fault charges are exact.
#[test]
fn demoted_transfer_never_slower_than_fresh_monolithic() {
    let w = Workload::every_other(16 << 10);
    let cfg = small_cfg();

    let mut demoted_p = Platform::skx_impi();
    demoted_p.jitter_sigma = 0.0;
    // Every chunk ordinal faults: the forecast demotes the stream before
    // it starts (no retries, no extra virtual charges).
    let demoted_p = demoted_p
        .with_deadlock_timeout(10.0)
        .with_pipeline(64 << 10, 16 << 10)
        .with_fault_plan(FaultPlan::quiet(31).with_chunk_faults(1.0, 1.0));

    let mut fresh_p = Platform::skx_impi();
    fresh_p.jitter_sigma = 0.0;
    let fresh_p = fresh_p.with_deadlock_timeout(10.0).without_pipeline();

    let demoted = try_run_scheme(&demoted_p, Scheme::VectorType, &w, &cfg).unwrap();
    let fresh = try_run_scheme(&fresh_p, Scheme::VectorType, &w, &cfg).unwrap();

    assert!(demoted.faults.pipeline_demotions >= 1, "ladder never demoted: {:?}", demoted.faults);
    assert_eq!(demoted.times.len(), fresh.times.len());
    for (i, (d, f)) in demoted.times.iter().zip(&fresh.times).enumerate() {
        assert!(
            d <= f,
            "demoted rep {i} slower than fresh non-pipelined send: {d} > {f}"
        );
    }
}
