//! Message-size sweeps over schemes — the data behind the paper's figures.
//!
//! Three runners share one point format:
//! [`run_sweep`] (sequential), [`run_sweep_parallel`] (same results, less
//! wall-clock), and [`run_sweep_resilient`] (fault-tolerant: per-point
//! retries, failed points marked instead of aborting the sweep, optional
//! JSON checkpointing and resume).

use std::path::PathBuf;
use std::str::FromStr;

use nonctg_core::FaultStats;
use nonctg_simnet::{Datapath, Platform, PlatformId};

use crate::checkpoint;
use crate::pingpong::{run_scheme, try_run_scheme, PingPongConfig};
use crate::scheme::Scheme;
use crate::workload::Workload;

/// Configuration of a full sweep (one paper figure).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Schemes to run, in legend order.
    pub schemes: Vec<Scheme>,
    /// Smallest message payload in bytes (rounded to whole elements).
    pub min_bytes: usize,
    /// Largest message payload in bytes.
    pub max_bytes: usize,
    /// Geometric step between message sizes (2 = doubling).
    pub step: usize,
    /// Measurement protocol; repetitions adapt to message size.
    pub base: PingPongConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            schemes: Scheme::ALL.to_vec(),
            min_bytes: 1 << 10,
            max_bytes: 1 << 28,
            step: 2,
            base: PingPongConfig::default(),
        }
    }
}

impl SweepConfig {
    /// The message sizes (bytes) this sweep visits.
    pub fn sizes(&self) -> Vec<usize> {
        assert!(self.step >= 2, "step must be >= 2");
        let mut out = Vec::new();
        let mut b = self.min_bytes.max(Workload::ELEM);
        while b <= self.max_bytes {
            out.push(b);
            match b.checked_mul(self.step) {
                Some(n) => b = n,
                None => break,
            }
        }
        out
    }
}

/// Outcome of one sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointStatus {
    /// Measured successfully.
    Ok,
    /// Every measurement attempt failed; time/bandwidth/slowdown are NaN/0.
    Failed,
    /// Not measured (scheme disabled after repeated failures); values NaN/0.
    Skipped,
}

impl PointStatus {
    /// Stable lowercase key used in checkpoints and reports.
    pub fn key(self) -> &'static str {
        match self {
            PointStatus::Ok => "ok",
            PointStatus::Failed => "failed",
            PointStatus::Skipped => "skipped",
        }
    }
}

impl FromStr for PointStatus {
    type Err = String;
    fn from_str(s: &str) -> Result<PointStatus, String> {
        match s {
            "ok" => Ok(PointStatus::Ok),
            "failed" => Ok(PointStatus::Failed),
            "skipped" => Ok(PointStatus::Skipped),
            other => Err(format!("unknown point status '{other}'")),
        }
    }
}

/// One (scheme, size) point of a sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// The scheme measured.
    pub scheme: Scheme,
    /// Message payload in bytes.
    pub msg_bytes: usize,
    /// Mean ping-pong time (outlier-rejected), seconds. NaN if not Ok.
    pub time: f64,
    /// Effective bandwidth, bytes/second. 0.0 if not Ok.
    pub bandwidth: f64,
    /// Time relative to the reference scheme at the same size
    /// (1.0 for the reference itself; NaN if the reference was not run
    /// or this point was not measured).
    pub slowdown: f64,
    /// Whether this point was actually measured.
    pub status: PointStatus,
    /// The datapath engine in force for this point's non-contiguous
    /// sends: the platform's forced engine when overridden, else what
    /// the adaptive selector picks for this layout at this size. A pure
    /// function of (platform, layout, size) — serial, parallel, sharded,
    /// and resumed sweeps all record the same value.
    pub selected: Datapath,
    /// Fault counters attributed to this point: every attempt of its
    /// measurement, including failed ones. The sweep total is the sum of
    /// these, so a resume that re-measures a point replaces — never
    /// re-adds — its contribution.
    pub faults: SweepFaults,
}

impl SweepPoint {
    fn unmeasured(scheme: Scheme, msg_bytes: usize, status: PointStatus) -> SweepPoint {
        SweepPoint {
            scheme,
            msg_bytes,
            time: f64::NAN,
            bandwidth: 0.0,
            slowdown: f64::NAN,
            status,
            selected: Datapath::Auto,
            faults: SweepFaults::default(),
        }
    }
}

/// The engine the runtime's datapath machinery uses for a point of this
/// workload: the platform's forced engine when overridden, else the
/// adaptive selector's choice, mirroring the runtime's eligibility rules
/// (eager messages and region lists past the iovec cap cannot take the
/// zero-copy path). Pure in (platform, layout, size), so recorded
/// selections are reproducible across runs, shards, and resumes.
fn selected_for(platform: &Platform, w: &Workload) -> Datapath {
    match platform.effective_datapath() {
        Datapath::Auto => {
            let bytes = w.msg_bytes() as u64;
            let eager = bytes <= platform.eager_threshold(false);
            let n = w.elems();
            let regions = (!eager && n <= nonctg_core::iov_max_regions())
                .then_some(n as u64);
            nonctg_core::selector::choose(platform.id, bytes, regions)
        }
        forced => forced,
    }
}

/// Cumulative fault-injection counters over every measurement a sweep
/// performed, including failed attempts. Checkpointed alongside the
/// points, so a resumed run keeps counting from where the interrupted
/// one stopped instead of resetting to zero.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepFaults {
    /// Transient send failures absorbed by retry-with-backoff.
    pub transient_retries: u64,
    /// Injected delivery delays charged to virtual clocks.
    pub delays: u64,
    /// Payloads corrupted in flight.
    pub corruptions: u64,
    /// Sends abandoned after the bounded retry budget.
    pub failed_sends: u64,
    /// Ranks that came back in error from failed measurement attempts
    /// (each poisons its universe's fabric; see `nonctg_core::fabric`).
    pub poisoned_peers: u64,
    /// Graceful demotions down the degradation ladder (pipelined →
    /// monolithic, pooled → owned buffers, compiled → uncompiled plan,
    /// parallel → serial pack), summed over every rank and attempt.
    pub demotions: u64,
    /// Chunks re-packed after a mid-pipeline corruption or drop.
    pub chunk_retries: u64,
    /// Operations charged a link-degradation latency surcharge.
    pub link_degradations: u64,
    /// Injected receiver-side crashes (typed errors, not panics).
    pub recv_crashes: u64,
}

impl SweepFaults {
    /// The counters of a single measurement, as a per-point attribution.
    pub fn from_stats(f: FaultStats) -> SweepFaults {
        let mut s = SweepFaults::default();
        s.absorb(f);
        s
    }

    /// Per-counter saturating difference: the part of `self` not covered
    /// by `other`. Used on resume to keep totals from checkpoints written
    /// before per-point attribution (where points carry zero counters).
    pub fn saturating_sub(&self, other: &SweepFaults) -> SweepFaults {
        SweepFaults {
            transient_retries: self.transient_retries.saturating_sub(other.transient_retries),
            delays: self.delays.saturating_sub(other.delays),
            corruptions: self.corruptions.saturating_sub(other.corruptions),
            failed_sends: self.failed_sends.saturating_sub(other.failed_sends),
            poisoned_peers: self.poisoned_peers.saturating_sub(other.poisoned_peers),
            demotions: self.demotions.saturating_sub(other.demotions),
            chunk_retries: self.chunk_retries.saturating_sub(other.chunk_retries),
            link_degradations: self.link_degradations.saturating_sub(other.link_degradations),
            recv_crashes: self.recv_crashes.saturating_sub(other.recv_crashes),
        }
    }

    /// Fold one measurement's per-rank counters into the sweep totals.
    pub fn absorb(&mut self, f: FaultStats) {
        self.transient_retries += f.transient_retries;
        self.delays += f.delays;
        self.corruptions += f.corruptions;
        self.failed_sends += f.failed_sends;
        self.demotions += f.demotions();
        self.chunk_retries += f.chunk_retries;
        self.link_degradations += f.link_degradations;
        self.recv_crashes += f.recv_crashes;
    }

    /// Add another sweep's totals into this one (checkpoint resume).
    pub fn merge(&mut self, other: SweepFaults) {
        self.transient_retries += other.transient_retries;
        self.delays += other.delays;
        self.corruptions += other.corruptions;
        self.failed_sends += other.failed_sends;
        self.poisoned_peers += other.poisoned_peers;
        self.demotions += other.demotions;
        self.chunk_retries += other.chunk_retries;
        self.link_degradations += other.link_degradations;
        self.recv_crashes += other.recv_crashes;
    }

    /// Whether every counter is zero (a fault-free sweep).
    pub fn is_zero(&self) -> bool {
        *self == SweepFaults::default()
    }
}

/// A complete sweep: every scheme over every size.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// The platform this ran on.
    pub platform: PlatformId,
    /// Points in (size-major, legend-order) sequence.
    pub points: Vec<SweepPoint>,
    /// Fault counters accumulated over every measurement.
    pub faults: SweepFaults,
}

impl Sweep {
    /// Points of one scheme, in increasing size.
    pub fn series(&self, scheme: Scheme) -> Vec<SweepPoint> {
        let mut v: Vec<SweepPoint> =
            self.points.iter().copied().filter(|p| p.scheme == scheme).collect();
        v.sort_by_key(|p| p.msg_bytes);
        v
    }

    /// The distinct message sizes, increasing.
    pub fn sizes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.points.iter().map(|p| p.msg_bytes).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Look up a point.
    pub fn get(&self, scheme: Scheme, msg_bytes: usize) -> Option<&SweepPoint> {
        self.points.iter().find(|p| p.scheme == scheme && p.msg_bytes == msg_bytes)
    }

    /// Serialize to checkpoint JSON (see [`crate::checkpoint`]).
    pub fn to_checkpoint_json(&self) -> String {
        checkpoint::to_json(self)
    }

    /// Parse a checkpoint written by [`Sweep::to_checkpoint_json`]. A
    /// checkpoint stamped with an unsupported schema version is rejected
    /// with [`checkpoint::CheckpointError::VersionMismatch`].
    pub fn from_checkpoint_json(s: &str) -> Result<Sweep, checkpoint::CheckpointError> {
        checkpoint::from_json(s)
    }

    /// Per-sweep health report: point outcomes plus the degradation
    /// ladder's counters, for the chaos-mode summary line.
    pub fn health(&self) -> SweepHealth {
        let mut h = SweepHealth { faults: self.faults, ..SweepHealth::default() };
        for p in &self.points {
            match p.status {
                PointStatus::Ok => h.ok += 1,
                PointStatus::Failed => h.failed += 1,
                PointStatus::Skipped => h.skipped += 1,
            }
            if p.faults.demotions > 0 {
                h.demoted_points += 1;
            }
        }
        h
    }
}

/// Outcome summary of one sweep under fault injection: how many points
/// measured, failed, or were skipped, and how hard the runtime had to
/// lean on the graceful-degradation ladder to get there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepHealth {
    /// Points measured successfully.
    pub ok: usize,
    /// Points whose every attempt failed.
    pub failed: usize,
    /// Points skipped after a scheme exhausted its failure budget.
    pub skipped: usize,
    /// Points whose measurement involved at least one demotion.
    pub demoted_points: usize,
    /// The sweep's cumulative fault counters.
    pub faults: SweepFaults,
}

impl std::fmt::Display for SweepHealth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "sweep health: {} ok, {} failed, {} skipped ({} points demoted)",
            self.ok, self.failed, self.skipped, self.demoted_points
        )?;
        let v = &self.faults;
        writeln!(
            f,
            "  faults: {} transient retries, {} delays, {} corruptions, {} failed sends, \
             {} poisoned peers",
            v.transient_retries, v.delays, v.corruptions, v.failed_sends, v.poisoned_peers
        )?;
        write!(
            f,
            "  ladder: {} demotions, {} chunk retries, {} degraded-link ops, {} receiver crashes",
            v.demotions, v.chunk_retries, v.link_degradations, v.recv_crashes
        )
    }
}

/// Per-size-group slowdown pass: the reference time is taken from the
/// group's own measured Reference point (wherever it sits in legend
/// order), so slowdowns never depend on scheme ordering or on a stale
/// reference from an earlier size.
pub(crate) fn apply_slowdowns(group: &mut [SweepPoint]) {
    let ref_time = group
        .iter()
        .find(|p| p.scheme == Scheme::Reference && p.status == PointStatus::Ok)
        .map(|p| p.time)
        .unwrap_or(f64::NAN);
    for p in group.iter_mut() {
        p.slowdown = if p.status == PointStatus::Ok { p.time / ref_time } else { f64::NAN };
    }
}

/// Run a sweep, invoking `progress` after each measured size group.
pub fn run_sweep_with(
    platform: &Platform,
    cfg: &SweepConfig,
    mut progress: impl FnMut(&SweepPoint),
) -> Sweep {
    let mut points = Vec::new();
    let mut faults = SweepFaults::default();
    for bytes in cfg.sizes() {
        let elems = bytes / Workload::ELEM;
        let w = Workload::every_other(elems);
        let selected = selected_for(platform, &w);
        let pp = cfg.base.clone().adaptive(bytes);
        let mut group: Vec<SweepPoint> = Vec::with_capacity(cfg.schemes.len());
        for &scheme in &cfg.schemes {
            let r = run_scheme(platform, scheme, &w, &pp);
            let pf = SweepFaults::from_stats(r.faults);
            faults.merge(pf);
            group.push(SweepPoint {
                scheme,
                msg_bytes: w.msg_bytes(),
                time: r.time(),
                bandwidth: r.bandwidth(),
                slowdown: f64::NAN,
                status: PointStatus::Ok,
                selected,
                faults: pf,
            });
        }
        apply_slowdowns(&mut group);
        for p in group {
            progress(&p);
            points.push(p);
        }
    }
    Sweep { platform: platform.id, points, faults }
}

/// Run a sweep silently.
pub fn run_sweep(platform: &Platform, cfg: &SweepConfig) -> Sweep {
    run_sweep_with(platform, cfg, |_| {})
}

/// The canonical (msg_bytes, scheme) work list of a sweep, in the exact
/// order the sequential path measures it. Sizes are rounded to whole
/// elements exactly as the sequential path does.
fn work_list(cfg: &SweepConfig) -> Vec<(usize, Scheme)> {
    cfg.sizes()
        .into_iter()
        .map(|bytes| Workload::every_other(bytes / Workload::ELEM).msg_bytes())
        .flat_map(|bytes| cfg.schemes.iter().map(move |&s| (bytes, s)))
        .collect()
}

/// One measured point: (time, bandwidth, absorbed fault counters),
/// parked in a mutex slot until assembly.
type PointSlot = std::sync::Mutex<Option<(f64, f64, FaultStats)>>;

/// Measure one work-list point in its own fabric universe.
fn measure_point(
    platform: &Platform,
    cfg: &SweepConfig,
    bytes: usize,
    scheme: Scheme,
) -> (f64, f64, FaultStats) {
    let w = Workload::every_other(bytes / Workload::ELEM);
    let pp = cfg.base.clone().adaptive(bytes);
    let r = run_scheme(platform, scheme, &w, &pp);
    (r.time(), r.bandwidth(), r.faults)
}

/// Fold measured results back into canonical order, one size group at a
/// time, so every group's slowdowns come from its own reference point.
fn assemble_in_order(
    platform: &Platform,
    work: &[(usize, Scheme)],
    results: &[PointSlot],
) -> Sweep {
    let mut points = Vec::with_capacity(work.len());
    let mut faults = SweepFaults::default();
    let mut i = 0;
    while i < work.len() {
        let bytes = work[i].0;
        let selected = selected_for(platform, &Workload::every_other(bytes / Workload::ELEM));
        let mut group = Vec::new();
        while i < work.len() && work[i].0 == bytes {
            let (time, bandwidth, f) = results[i].lock().unwrap().expect("measured point");
            let pf = SweepFaults::from_stats(f);
            faults.merge(pf);
            group.push(SweepPoint {
                scheme: work[i].1,
                msg_bytes: bytes,
                time,
                bandwidth,
                slowdown: f64::NAN,
                status: PointStatus::Ok,
                selected,
                faults: pf,
            });
            i += 1;
        }
        apply_slowdowns(&mut group);
        points.extend(group);
    }
    Sweep { platform: platform.id, points, faults }
}

/// Run a sweep with up to `jobs` (scheme, size) points measured
/// concurrently. Each point runs in its own universe, so results are
/// identical to the sequential [`run_sweep`] — only wall-clock changes.
pub fn run_sweep_parallel(platform: &Platform, cfg: &SweepConfig, jobs: usize) -> Sweep {
    let jobs = jobs.max(1);
    if jobs == 1 {
        return run_sweep(platform, cfg);
    }
    // Work list in deterministic order; results slot by index.
    let work = work_list(cfg);
    let results: Vec<PointSlot> =
        (0..work.len()).map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= work.len() {
                    break;
                }
                let (bytes, scheme) = work[i];
                *results[i].lock().unwrap() = Some(measure_point(platform, cfg, bytes, scheme));
            });
        }
    });

    assemble_in_order(platform, &work, &results)
}

/// Run a sweep split into `shards` statically-partitioned slices: shard
/// `k` measures every `shards`-th point of the canonical work list on its
/// own rank pair. Unlike [`run_sweep_parallel`]'s dynamic queue, each
/// shard's workload is fixed up front — the set of points a given worker
/// thread measures does not depend on scheduling. Every point still runs
/// in its own deterministically-seeded fabric universe and results merge
/// in canonical order, so the sweep is bit-equal to the serial run; only
/// wall-clock changes.
pub fn run_sweep_sharded(platform: &Platform, cfg: &SweepConfig, shards: usize) -> Sweep {
    let shards = shards.max(1);
    if shards == 1 {
        return run_sweep(platform, cfg);
    }
    let work = work_list(cfg);
    let results: Vec<PointSlot> =
        (0..work.len()).map(|_| std::sync::Mutex::new(None)).collect();

    // Shard *slices* are a partitioning contract, not a thread count:
    // spawning more threads than cores oversubscribes the host (each
    // measured point spins up its own universe with per-rank threads),
    // which is how 4-way sharding measured 0.84x serial on a 1-core CI
    // host. Run the `shards` fixed slices on at most
    // `available_parallelism` threads; on a 1-core host that degenerates
    // to the caller's thread processing every slice in order, i.e.
    // serial execution with zero spawn or contention overhead. Which
    // thread runs a slice never affects its measurements (each point is
    // its own deterministically-seeded universe), so the merge stays
    // bit-identical to the serial sweep.
    let conc = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(shards);
    let run_slice = |shard: usize| {
        // Round-robin slice: spreads every message size across all
        // shards, so no shard ends up with only the largest sizes.
        let mut i = shard;
        while i < work.len() {
            let (bytes, scheme) = work[i];
            *results[i].lock().unwrap() = Some(measure_point(platform, cfg, bytes, scheme));
            i += shards;
        }
    };
    if conc <= 1 {
        for shard in 0..shards {
            run_slice(shard);
        }
    } else {
        std::thread::scope(|scope| {
            for t in 0..conc {
                let run_slice = &run_slice;
                scope.spawn(move || {
                    // Thread t owns slices t, t+conc, t+2*conc, ...
                    let mut shard = t;
                    while shard < shards {
                        run_slice(shard);
                        shard += conc;
                    }
                });
            }
        });
    }

    assemble_in_order(platform, &work, &results)
}

/// Robustness knobs of a [`run_sweep_resilient`] run.
#[derive(Debug, Clone, Default)]
pub struct Resilience {
    /// Extra measurement attempts per point after the first one fails.
    /// Retries re-seed the platform's fault plan deterministically
    /// (`seed + attempt`), so transient chaos does not recur identically
    /// while genuinely persistent faults still do.
    pub retries: usize,
    /// Write the sweep-so-far to this JSON file after every completed
    /// size group (a checkpoint only ever contains finalized points).
    pub checkpoint: Option<PathBuf>,
    /// A prior partial sweep (e.g. parsed from a checkpoint): its Ok
    /// points are reused instead of re-measured; Failed and Skipped
    /// points are re-attempted.
    pub resume: Option<Sweep>,
    /// Stop measuring a scheme after this many of its points have
    /// failed; its remaining points are marked Skipped without running.
    /// `None` keeps trying every point.
    pub skip_scheme_after: Option<usize>,
}

/// The platform for a given measurement attempt: attempt 0 runs the plan
/// as configured, retries shift the fault seed so a transient schedule
/// does not repeat verbatim.
fn reseeded(platform: &Platform, attempt: usize) -> Platform {
    let mut p = platform.clone();
    if attempt > 0 {
        if let Some(plan) = &mut p.fault {
            plan.seed = plan.seed.wrapping_add(attempt as u64);
        }
    }
    p
}

/// Run a fault-tolerant sweep: points that keep failing are recorded as
/// [`PointStatus::Failed`] gaps rather than aborting the whole sweep, and
/// progress survives a crash of the harness itself via the optional
/// checkpoint file. Invokes `progress` after each finalized point.
pub fn run_sweep_resilient_with(
    platform: &Platform,
    cfg: &SweepConfig,
    res: &Resilience,
    mut progress: impl FnMut(&SweepPoint),
) -> Sweep {
    let mut points: Vec<SweepPoint> = Vec::new();
    // The sweep total is the sum of per-point counters of the points
    // actually emitted: reused points contribute their checkpointed
    // counters, re-measured points contribute fresh ones — a point is
    // never counted twice across resumes. Checkpoints written before
    // per-point attribution carry zero per-point counters; their prior
    // total survives as an unattributed remainder (which can still
    // double-count re-measured points of such legacy files — that is
    // exactly the bug per-point attribution fixes going forward).
    let mut faults = res
        .resume
        .as_ref()
        .map(|s| {
            let attributed =
                s.points.iter().fold(SweepFaults::default(), |mut a, p| {
                    a.merge(p.faults);
                    a
                });
            s.faults.saturating_sub(&attributed)
        })
        .unwrap_or_default();
    let mut failures = vec![0usize; cfg.schemes.len()];
    for bytes in cfg.sizes() {
        let elems = bytes / Workload::ELEM;
        let w = Workload::every_other(elems);
        let selected = selected_for(platform, &w);
        let pp = cfg.base.clone().adaptive(bytes);
        let mut group: Vec<SweepPoint> = Vec::with_capacity(cfg.schemes.len());
        for (si, &scheme) in cfg.schemes.iter().enumerate() {
            if let Some(prev) = res
                .resume
                .as_ref()
                .and_then(|s| s.get(scheme, w.msg_bytes()))
                .filter(|p| p.status == PointStatus::Ok)
            {
                faults.merge(prev.faults);
                group.push(*prev);
                continue;
            }
            if res.skip_scheme_after.is_some_and(|limit| failures[si] >= limit) {
                let mut pt = SweepPoint::unmeasured(scheme, w.msg_bytes(), PointStatus::Skipped);
                pt.selected = selected;
                group.push(pt);
                continue;
            }
            let mut measured = None;
            let mut pf = SweepFaults::default();
            for attempt in 0..=res.retries {
                let p = reseeded(platform, attempt);
                match try_run_scheme(&p, scheme, &w, &pp) {
                    Ok(r) => {
                        pf.absorb(r.faults);
                        measured = Some((r.time(), r.bandwidth()));
                        break;
                    }
                    Err(e) => pf.poisoned_peers += e.failures.len() as u64,
                }
            }
            faults.merge(pf);
            group.push(match measured {
                Some((time, bandwidth)) => SweepPoint {
                    scheme,
                    msg_bytes: w.msg_bytes(),
                    time,
                    bandwidth,
                    slowdown: f64::NAN,
                    status: PointStatus::Ok,
                    selected,
                    faults: pf,
                },
                None => {
                    failures[si] += 1;
                    let mut p = SweepPoint::unmeasured(scheme, w.msg_bytes(), PointStatus::Failed);
                    p.selected = selected;
                    p.faults = pf;
                    p
                }
            });
        }
        apply_slowdowns(&mut group);
        for p in group {
            progress(&p);
            points.push(p);
        }
        if let Some(path) = &res.checkpoint {
            let partial = Sweep { platform: platform.id, points: points.clone(), faults };
            if let Err(e) = std::fs::write(path, partial.to_checkpoint_json()) {
                eprintln!("warning: could not write checkpoint {}: {e}", path.display());
            }
        }
    }
    Sweep { platform: platform.id, points, faults }
}

/// [`run_sweep_resilient_with`] without a progress callback.
pub fn run_sweep_resilient(platform: &Platform, cfg: &SweepConfig, res: &Resilience) -> Sweep {
    run_sweep_resilient_with(platform, cfg, res, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonctg_simnet::FaultPlan;

    fn quiet() -> Platform {
        let mut p = Platform::skx_impi();
        p.jitter_sigma = 0.0;
        p
    }

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            schemes: vec![Scheme::Reference, Scheme::Copying, Scheme::VectorType],
            min_bytes: 1 << 10,
            max_bytes: 1 << 14,
            step: 4,
            base: PingPongConfig { reps: 3, flush: false, flush_bytes: 0, verify: true },
        }
    }

    #[test]
    fn sizes_are_geometric() {
        let cfg = tiny_cfg();
        assert_eq!(cfg.sizes(), vec![1024, 4096, 16384]);
    }

    #[test]
    fn sweep_covers_schemes_and_sizes() {
        let sweep = run_sweep(&quiet(), &tiny_cfg());
        assert_eq!(sweep.points.len(), 3 * 3);
        assert_eq!(sweep.sizes(), vec![1024, 4096, 16384]);
        for s in [Scheme::Reference, Scheme::Copying, Scheme::VectorType] {
            assert_eq!(sweep.series(s).len(), 3);
        }
        assert!(sweep.points.iter().all(|p| p.status == PointStatus::Ok));
    }

    #[test]
    fn reference_slowdown_is_one() {
        let sweep = run_sweep(&quiet(), &tiny_cfg());
        for p in sweep.series(Scheme::Reference) {
            assert!((p.slowdown - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn noncontiguous_slowdowns_exceed_one() {
        let sweep = run_sweep(&quiet(), &tiny_cfg());
        for s in [Scheme::Copying, Scheme::VectorType] {
            for p in sweep.series(s) {
                assert!(p.slowdown > 1.0, "{s} at {} bytes: {}", p.msg_bytes, p.slowdown);
            }
        }
    }

    /// Regression: slowdowns must not depend on where Reference sits in
    /// legend order (the old single-pass computation used a stale or
    /// missing reference time when Reference was not first).
    #[test]
    fn slowdowns_independent_of_reference_position() {
        let mut last_cfg = tiny_cfg();
        last_cfg.schemes = vec![Scheme::Copying, Scheme::VectorType, Scheme::Reference];
        let canonical = run_sweep(&quiet(), &tiny_cfg());
        let reordered = run_sweep(&quiet(), &last_cfg);
        for p in &reordered.points {
            let q = canonical.get(p.scheme, p.msg_bytes).unwrap();
            assert!(p.slowdown.is_finite(), "{} @ {}: NaN slowdown", p.scheme, p.msg_bytes);
            assert_eq!(p.slowdown, q.slowdown, "{} @ {}", p.scheme, p.msg_bytes);
        }
        for p in reordered.series(Scheme::Reference) {
            assert!((p.slowdown - 1.0).abs() < 1e-12);
        }
    }

    /// Without Reference in the scheme set, slowdowns are NaN — never a
    /// stale value carried over from another size or scheme.
    #[test]
    fn missing_reference_yields_nan_slowdowns() {
        let mut cfg = tiny_cfg();
        cfg.schemes = vec![Scheme::Copying, Scheme::VectorType];
        for sweep in [run_sweep(&quiet(), &cfg), run_sweep_parallel(&quiet(), &cfg, 4)] {
            assert_eq!(sweep.points.len(), 6);
            for p in &sweep.points {
                assert_eq!(p.status, PointStatus::Ok);
                assert!(p.time.is_finite());
                assert!(p.slowdown.is_nan(), "{} @ {}: {}", p.scheme, p.msg_bytes, p.slowdown);
            }
        }
    }

    #[test]
    fn progress_callback_fires_per_point() {
        let mut n = 0;
        run_sweep_with(&quiet(), &tiny_cfg(), |_| n += 1);
        assert_eq!(n, 9);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        // Reference deliberately NOT first: the parallel assembly must
        // agree with the sequential path anyway.
        let mut cfg = tiny_cfg();
        cfg.schemes = vec![Scheme::Copying, Scheme::Reference, Scheme::VectorType];
        let seq = run_sweep(&quiet(), &cfg);
        let par = run_sweep_parallel(&quiet(), &cfg, 4);
        assert_eq!(seq.points.len(), par.points.len());
        for (a, b) in seq.points.iter().zip(par.points.iter()) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.msg_bytes, b.msg_bytes);
            assert_eq!(a.time, b.time, "{} @ {}", a.scheme, a.msg_bytes);
            assert_eq!(a.slowdown, b.slowdown);
            assert_eq!(a.status, b.status);
        }
    }

    #[test]
    fn sharded_sweep_matches_sequential_bit_for_bit() {
        // Reference deliberately NOT first, and a shard count that does
        // not divide the work list evenly.
        let mut cfg = tiny_cfg();
        cfg.schemes = vec![Scheme::Copying, Scheme::Reference, Scheme::VectorType];
        let seq = run_sweep(&quiet(), &cfg);
        for shards in [2, 4, 7] {
            let sh = run_sweep_sharded(&quiet(), &cfg, shards);
            assert_eq!(seq.points.len(), sh.points.len());
            for (a, b) in seq.points.iter().zip(sh.points.iter()) {
                assert_eq!(a.scheme, b.scheme);
                assert_eq!(a.msg_bytes, b.msg_bytes);
                assert_eq!(
                    a.time.to_bits(),
                    b.time.to_bits(),
                    "{} @ {} ({shards} shards)",
                    a.scheme,
                    a.msg_bytes
                );
                assert_eq!(a.bandwidth.to_bits(), b.bandwidth.to_bits());
                assert_eq!(a.slowdown.to_bits(), b.slowdown.to_bits());
                assert_eq!(a.status, b.status);
            }
        }
    }

    /// The recorded datapath is a pure function of (platform, layout,
    /// size): identical across serial/sharded/resilient runners, Pack for
    /// the paper's 8-byte-region workload, and pinned by a forced engine.
    #[test]
    fn selected_engine_is_pure_and_tracks_forcing() {
        let seq = run_sweep(&quiet(), &tiny_cfg());
        // Every-other f64 regions are 8 bytes: far under every
        // platform's iovec crossover, so the selector keeps pack.
        assert!(seq.points.iter().all(|p| p.selected == Datapath::Pack), "{:?}", seq.points);
        let sh = run_sweep_sharded(&quiet(), &tiny_cfg(), 3);
        let res = run_sweep_resilient(&quiet(), &tiny_cfg(), &Resilience::default());
        for ((a, b), c) in seq.points.iter().zip(sh.points.iter()).zip(res.points.iter()) {
            assert_eq!(a.selected, b.selected);
            assert_eq!(a.selected, c.selected);
        }
        let forced = run_sweep(&quiet().with_datapath(Datapath::Iov), &tiny_cfg());
        assert!(forced.points.iter().all(|p| p.selected == Datapath::Iov));
    }

    #[test]
    fn bandwidth_grows_with_size_for_reference() {
        let sweep = run_sweep(&quiet(), &tiny_cfg());
        let series = sweep.series(Scheme::Reference);
        assert!(series.last().unwrap().bandwidth > series.first().unwrap().bandwidth);
    }

    /// A persistent fault on one (rank, size band) marks exactly the
    /// affected points Failed — the sweep completes, with gaps.
    #[test]
    fn resilient_sweep_marks_persistent_faults_failed() {
        // Pings of 1024 payload bytes from rank 0 always fail; pongs are
        // zero-byte so the other sizes are untouched.
        let p = quiet().with_fault_plan(FaultPlan::quiet(5).with_persistent_failure(0, 1, 2048));
        let mut cfg = tiny_cfg();
        cfg.schemes = vec![Scheme::Reference, Scheme::Copying];
        let res = Resilience { retries: 1, ..Resilience::default() };
        let sweep = run_sweep_resilient(&p, &cfg, &res);
        assert_eq!(sweep.points.len(), 6);
        for point in &sweep.points {
            if point.msg_bytes <= 2048 {
                assert_eq!(point.status, PointStatus::Failed, "{point:?}");
                assert!(point.time.is_nan() && point.slowdown.is_nan());
                assert_eq!(point.bandwidth, 0.0);
            } else {
                assert_eq!(point.status, PointStatus::Ok, "{point:?}");
                assert!(point.time.is_finite());
            }
        }
    }

    /// Resume re-runs only the points missing or failed in the prior
    /// sweep; Ok points are reused verbatim without re-measuring. Reused
    /// points carry a sentinel time, so any re-measured point is
    /// detectable — the test counts exactly which points re-executed.
    #[test]
    fn resume_reruns_only_missing_points() {
        const SENTINEL: f64 = 1e9;
        let platform = quiet();
        let cfg = tiny_cfg();
        let full = run_sweep_resilient(&platform, &cfg, &Resilience::default());

        // Prior run: drop one size group entirely, fail one point, and
        // stamp everything that remains Ok with the sentinel.
        let mut prior = full.clone();
        prior.points.retain(|p| p.msg_bytes != 4096);
        let fail_at = prior
            .points
            .iter()
            .position(|p| p.scheme == Scheme::VectorType && p.msg_bytes == 1024)
            .unwrap();
        prior.points[fail_at] =
            SweepPoint::unmeasured(Scheme::VectorType, 1024, PointStatus::Failed);
        for p in &mut prior.points {
            if p.status == PointStatus::Ok {
                p.time = SENTINEL;
            }
        }

        let res = Resilience { resume: Some(prior), ..Resilience::default() };
        let resumed = run_sweep_resilient(&platform, &cfg, &res);

        assert_eq!(resumed.points.len(), full.points.len());
        let reexecuted: Vec<(Scheme, usize)> = resumed
            .points
            .iter()
            .filter(|p| p.time != SENTINEL)
            .map(|p| (p.scheme, p.msg_bytes))
            .collect();
        let expected: Vec<(Scheme, usize)> = full
            .points
            .iter()
            .filter(|p| p.msg_bytes == 4096 || (p.scheme == Scheme::VectorType && p.msg_bytes == 1024))
            .map(|p| (p.scheme, p.msg_bytes))
            .collect();
        assert_eq!(reexecuted, expected, "wrong set of points re-executed");
        // Re-measured points agree bit-for-bit with the uninterrupted
        // run (the simulator is deterministic); all points come back Ok.
        for (a, b) in resumed.points.iter().zip(full.points.iter()) {
            assert_eq!(a.status, PointStatus::Ok);
            if a.time != SENTINEL {
                assert_eq!(a.time, b.time, "{} @ {}", a.scheme, a.msg_bytes);
            }
        }
    }

    /// The resume path must not re-measure reused points: give the resumed
    /// sweep doctored times and verify they survive verbatim.
    #[test]
    fn resume_does_not_remeasure_ok_points() {
        let platform = quiet();
        let mut cfg = tiny_cfg();
        cfg.schemes = vec![Scheme::Reference, Scheme::Copying];
        let mut prior = run_sweep_resilient(&platform, &cfg, &Resilience::default());
        for p in &mut prior.points {
            p.time = 42.0;
            p.bandwidth = 7.0;
        }
        let res = Resilience { resume: Some(prior), ..Resilience::default() };
        let resumed = run_sweep_resilient(&platform, &cfg, &res);
        for p in &resumed.points {
            assert_eq!(p.time, 42.0, "{} @ {} was re-measured", p.scheme, p.msg_bytes);
            assert_eq!(p.bandwidth, 7.0);
            // Slowdowns are recomputed from the (doctored) group times.
            assert_eq!(p.slowdown, 1.0);
        }
    }

    /// Checkpoints are written after every size group and the final file
    /// round-trips through the resume path.
    #[test]
    fn checkpoint_file_tracks_progress_and_round_trips() {
        let dir = std::env::temp_dir().join(format!("nonctg-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.json");
        let platform = quiet();
        let mut cfg = tiny_cfg();
        cfg.schemes = vec![Scheme::Reference, Scheme::Copying];
        let res = Resilience { checkpoint: Some(path.clone()), ..Resilience::default() };
        let sweep = run_sweep_resilient(&platform, &cfg, &res);

        let text = std::fs::read_to_string(&path).unwrap();
        let back = Sweep::from_checkpoint_json(&text).unwrap();
        assert_eq!(back.points.len(), sweep.points.len());
        for (a, b) in back.points.iter().zip(sweep.points.iter()) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.msg_bytes, b.msg_bytes);
            assert_eq!(a.time, b.time);
            assert_eq!(a.status, b.status);
        }
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    /// skip_scheme_after stops burning retries on a scheme that keeps
    /// failing: later sizes of that scheme come back Skipped.
    #[test]
    fn failing_scheme_is_skipped_after_budget() {
        // Rank 0's sends of any size always fail → every scheme's pings
        // fail, every point of every scheme fails or is skipped.
        let p = quiet()
            .with_fault_plan(FaultPlan::quiet(9).with_persistent_failure(0, 1, u64::MAX));
        let mut cfg = tiny_cfg();
        cfg.schemes = vec![Scheme::Copying];
        let res = Resilience { skip_scheme_after: Some(1), ..Resilience::default() };
        let sweep = run_sweep_resilient(&p, &cfg, &res);
        let series = sweep.series(Scheme::Copying);
        assert_eq!(series[0].status, PointStatus::Failed);
        assert!(series[1..].iter().all(|pt| pt.status == PointStatus::Skipped), "{series:?}");
    }

    /// Resume must not double-count fault counters of re-measured points.
    /// A persistently failing point fails again (deterministically) on
    /// every resume; its poisoned-peer count must replace the prior
    /// attempt's contribution, not add to it — resuming a finished sweep
    /// any number of times reports the totals of the uninterrupted run.
    #[test]
    fn resume_twice_keeps_fault_totals_idempotent() {
        let p = quiet().with_fault_plan(
            FaultPlan::quiet(5).with_persistent_failure(0, 1, 2048).with_delays(0.3, 1e-6),
        );
        let mut cfg = tiny_cfg();
        cfg.schemes = vec![Scheme::Reference, Scheme::Copying];
        let full = run_sweep_resilient(&p, &cfg, &Resilience::default());
        assert!(full.faults.poisoned_peers > 0, "persistent failure must poison: {:?}", full.faults);
        // Totals are exactly the sum of per-point attributions.
        let attributed = full.points.iter().fold(SweepFaults::default(), |mut a, pt| {
            a.merge(pt.faults);
            a
        });
        assert_eq!(full.faults, attributed);

        let res = Resilience { resume: Some(full.clone()), ..Resilience::default() };
        let once = run_sweep_resilient(&p, &cfg, &res);
        assert_eq!(once.faults, full.faults, "first resume inflated fault totals");
        let res = Resilience { resume: Some(once), ..Resilience::default() };
        let twice = run_sweep_resilient(&p, &cfg, &res);
        assert_eq!(twice.faults, full.faults, "second resume inflated fault totals");
    }

    /// A crash mid-sweep leaves a checkpoint holding only the finished
    /// size groups (and exactly their fault counters). Resuming must end
    /// with the same totals as the uninterrupted run.
    #[test]
    fn resume_after_mid_sweep_crash_reports_exact_fault_totals() {
        let p = quiet().with_fault_plan(
            FaultPlan::quiet(77).with_send_failures(0.05).with_delays(0.2, 5e-6),
        );
        let res = Resilience { retries: 2, ..Resilience::default() };
        let full = run_sweep_resilient(&p, &tiny_cfg(), &res);
        assert!(!full.faults.is_zero());

        // Simulate the crash: keep only the first size group, with the
        // fault totals a per-group checkpoint would have recorded there.
        let mut prior = full.clone();
        prior.points.retain(|pt| pt.msg_bytes == 1024);
        prior.faults = prior.points.iter().fold(SweepFaults::default(), |mut a, pt| {
            a.merge(pt.faults);
            a
        });
        let res = Resilience { retries: 2, resume: Some(prior), ..Resilience::default() };
        let resumed = run_sweep_resilient(&p, &tiny_cfg(), &res);
        assert_eq!(resumed.faults, full.faults);
        for (a, b) in resumed.points.iter().zip(full.points.iter()) {
            assert_eq!(a.faults, b.faults, "{} @ {}", a.scheme, a.msg_bytes);
        }
    }

    /// The same fault seed produces bit-identical resilient sweeps.
    #[test]
    fn resilient_sweep_deterministic_for_same_seed() {
        let run = || {
            let p = quiet().with_fault_plan(
                FaultPlan::quiet(77).with_send_failures(0.05).with_delays(0.05, 5e-6),
            );
            let res = Resilience { retries: 2, ..Resilience::default() };
            run_sweep_resilient(&p, &tiny_cfg(), &res)
        };
        let a = run();
        let b = run();
        assert_eq!(a.points.len(), b.points.len());
        for (x, y) in a.points.iter().zip(b.points.iter()) {
            assert_eq!(x.scheme, y.scheme);
            assert_eq!(x.msg_bytes, y.msg_bytes);
            assert_eq!(x.status, y.status);
            assert!(
                x.time == y.time || (x.time.is_nan() && y.time.is_nan()),
                "{} @ {}: {} vs {}",
                x.scheme,
                x.msg_bytes,
                x.time,
                y.time
            );
        }
    }
}
