//! Message-size sweeps over schemes — the data behind the paper's figures.

use nonctg_simnet::{Platform, PlatformId};

use crate::pingpong::{run_scheme, PingPongConfig};
use crate::scheme::Scheme;
use crate::workload::Workload;

/// Configuration of a full sweep (one paper figure).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Schemes to run, in legend order.
    pub schemes: Vec<Scheme>,
    /// Smallest message payload in bytes (rounded to whole elements).
    pub min_bytes: usize,
    /// Largest message payload in bytes.
    pub max_bytes: usize,
    /// Geometric step between message sizes (2 = doubling).
    pub step: usize,
    /// Measurement protocol; repetitions adapt to message size.
    pub base: PingPongConfig,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            schemes: Scheme::ALL.to_vec(),
            min_bytes: 1 << 10,
            max_bytes: 1 << 28,
            step: 2,
            base: PingPongConfig::default(),
        }
    }
}

impl SweepConfig {
    /// The message sizes (bytes) this sweep visits.
    pub fn sizes(&self) -> Vec<usize> {
        assert!(self.step >= 2, "step must be >= 2");
        let mut out = Vec::new();
        let mut b = self.min_bytes.max(Workload::ELEM);
        while b <= self.max_bytes {
            out.push(b);
            match b.checked_mul(self.step) {
                Some(n) => b = n,
                None => break,
            }
        }
        out
    }
}

/// One measured (scheme, size) point.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// The scheme measured.
    pub scheme: Scheme,
    /// Message payload in bytes.
    pub msg_bytes: usize,
    /// Mean ping-pong time (outlier-rejected), seconds.
    pub time: f64,
    /// Effective bandwidth, bytes/second.
    pub bandwidth: f64,
    /// Time relative to the reference scheme at the same size
    /// (1.0 for the reference itself; NaN if the reference was not run).
    pub slowdown: f64,
}

/// A complete sweep: every scheme over every size.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// The platform this ran on.
    pub platform: PlatformId,
    /// Points in (size-major, legend-order) sequence.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Points of one scheme, in increasing size.
    pub fn series(&self, scheme: Scheme) -> Vec<SweepPoint> {
        let mut v: Vec<SweepPoint> =
            self.points.iter().copied().filter(|p| p.scheme == scheme).collect();
        v.sort_by_key(|p| p.msg_bytes);
        v
    }

    /// The distinct message sizes, increasing.
    pub fn sizes(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.points.iter().map(|p| p.msg_bytes).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Look up a point.
    pub fn get(&self, scheme: Scheme, msg_bytes: usize) -> Option<&SweepPoint> {
        self.points.iter().find(|p| p.scheme == scheme && p.msg_bytes == msg_bytes)
    }
}

/// Run a sweep, invoking `progress` after each measured point.
pub fn run_sweep_with(
    platform: &Platform,
    cfg: &SweepConfig,
    mut progress: impl FnMut(&SweepPoint),
) -> Sweep {
    let mut points = Vec::new();
    for bytes in cfg.sizes() {
        let elems = bytes / Workload::ELEM;
        let w = Workload::every_other(elems);
        let pp = cfg.base.clone().adaptive(bytes);
        let mut ref_time = f64::NAN;
        for &scheme in &cfg.schemes {
            let r = run_scheme(platform, scheme, &w, &pp);
            let time = r.time();
            if scheme == Scheme::Reference {
                ref_time = time;
            }
            let p = SweepPoint {
                scheme,
                msg_bytes: w.msg_bytes(),
                time,
                bandwidth: r.bandwidth(),
                slowdown: time / ref_time,
            };
            progress(&p);
            points.push(p);
        }
    }
    Sweep { platform: platform.id, points }
}

/// Run a sweep silently.
pub fn run_sweep(platform: &Platform, cfg: &SweepConfig) -> Sweep {
    run_sweep_with(platform, cfg, |_| {})
}

/// Run a sweep with up to `jobs` (scheme, size) points measured
/// concurrently. Each point runs in its own universe, so results are
/// identical to the sequential [`run_sweep`] — only wall-clock changes.
pub fn run_sweep_parallel(platform: &Platform, cfg: &SweepConfig, jobs: usize) -> Sweep {
    let jobs = jobs.max(1);
    if jobs == 1 {
        return run_sweep(platform, cfg);
    }
    // Work list in deterministic order; results slot by index. Sizes are
    // rounded to whole elements exactly as the sequential path does.
    let work: Vec<(usize, Scheme)> = cfg
        .sizes()
        .into_iter()
        .map(|bytes| Workload::every_other(bytes / Workload::ELEM).msg_bytes())
        .flat_map(|bytes| cfg.schemes.iter().map(move |&s| (bytes, s)))
        .collect();
    let results: Vec<std::sync::Mutex<Option<(f64, f64)>>> =
        (0..work.len()).map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= work.len() {
                    break;
                }
                let (bytes, scheme) = work[i];
                let w = Workload::every_other(bytes / Workload::ELEM);
                let pp = cfg.base.clone().adaptive(bytes);
                let r = run_scheme(platform, scheme, &w, &pp);
                *results[i].lock().unwrap() = Some((r.time(), r.bandwidth()));
            });
        }
    });

    // Assemble points with slowdowns in the canonical order.
    let mut points = Vec::with_capacity(work.len());
    let mut ref_time = f64::NAN;
    for (i, &(bytes, scheme)) in work.iter().enumerate() {
        let (time, bandwidth) = results[i].lock().unwrap().expect("measured point");
        if scheme == Scheme::Reference {
            ref_time = time;
        }
        points.push(SweepPoint {
            scheme,
            msg_bytes: bytes,
            time,
            bandwidth,
            slowdown: time / ref_time,
        });
    }
    Sweep { platform: platform.id, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Platform {
        let mut p = Platform::skx_impi();
        p.jitter_sigma = 0.0;
        p
    }

    fn tiny_cfg() -> SweepConfig {
        SweepConfig {
            schemes: vec![Scheme::Reference, Scheme::Copying, Scheme::VectorType],
            min_bytes: 1 << 10,
            max_bytes: 1 << 14,
            step: 4,
            base: PingPongConfig { reps: 3, flush: false, flush_bytes: 0, verify: true },
        }
    }

    #[test]
    fn sizes_are_geometric() {
        let cfg = tiny_cfg();
        assert_eq!(cfg.sizes(), vec![1024, 4096, 16384]);
    }

    #[test]
    fn sweep_covers_schemes_and_sizes() {
        let sweep = run_sweep(&quiet(), &tiny_cfg());
        assert_eq!(sweep.points.len(), 3 * 3);
        assert_eq!(sweep.sizes(), vec![1024, 4096, 16384]);
        for s in [Scheme::Reference, Scheme::Copying, Scheme::VectorType] {
            assert_eq!(sweep.series(s).len(), 3);
        }
    }

    #[test]
    fn reference_slowdown_is_one() {
        let sweep = run_sweep(&quiet(), &tiny_cfg());
        for p in sweep.series(Scheme::Reference) {
            assert!((p.slowdown - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn noncontiguous_slowdowns_exceed_one() {
        let sweep = run_sweep(&quiet(), &tiny_cfg());
        for s in [Scheme::Copying, Scheme::VectorType] {
            for p in sweep.series(s) {
                assert!(p.slowdown > 1.0, "{s} at {} bytes: {}", p.msg_bytes, p.slowdown);
            }
        }
    }

    #[test]
    fn progress_callback_fires_per_point() {
        let mut n = 0;
        run_sweep_with(&quiet(), &tiny_cfg(), |_| n += 1);
        assert_eq!(n, 9);
    }

    #[test]
    fn parallel_sweep_matches_sequential() {
        let seq = run_sweep(&quiet(), &tiny_cfg());
        let par = run_sweep_parallel(&quiet(), &tiny_cfg(), 4);
        assert_eq!(seq.points.len(), par.points.len());
        for (a, b) in seq.points.iter().zip(par.points.iter()) {
            assert_eq!(a.scheme, b.scheme);
            assert_eq!(a.msg_bytes, b.msg_bytes);
            assert_eq!(a.time, b.time, "{} @ {}", a.scheme, a.msg_bytes);
            assert_eq!(a.slowdown, b.slowdown);
        }
    }

    #[test]
    fn bandwidth_grows_with_size_for_reference() {
        let sweep = run_sweep(&quiet(), &tiny_cfg());
        let series = sweep.series(Scheme::Reference);
        assert!(series.last().unwrap().bandwidth > series.first().unwrap().bandwidth);
    }
}
