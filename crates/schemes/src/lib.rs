//! # nonctg-schemes — the paper's eight send schemes and its harness
//!
//! Implements §2 of *Performance of MPI sends of non-contiguous data*
//! against the `nonctg-core` runtime: the contiguous reference, manual
//! copying, buffered sends, direct vector/subarray datatype sends,
//! one-sided puts under fences, and the two packing schemes — plus the
//! §3.2 ping-pong measurement protocol (20 individually-timed ping-pongs,
//! zero-byte pongs, buffers allocated outside the loop, 50 MB cache flush
//! between iterations, 1-sigma outlier rejection) and size sweeps.

#![warn(missing_docs)]

mod appkernel;
pub mod checkpoint;
mod phases;
mod pingpong;
mod scheme;
pub mod stats;
mod sweep;
mod workload;

pub use appkernel::{
    kernel_selected_for, run_kernel_scheme, run_kernel_sweep, AppKernel, KernelWorkload,
    KERNEL_SCHEMES,
};
pub use phases::{
    attribute, run_phase_sweep, run_phase_sweep_with, run_scheme_phases, Phase, PhasePoint,
    PhaseSweep, PhaseTimes,
};
pub use pingpong::{
    run_datatype_send, run_scheme, run_scheme_pairs, try_run_scheme, try_run_scheme_observed,
    try_run_scheme_pairs, MeasureError, Observe, ObservedRun, PingPongConfig, PingPongResult,
    PING_TAG, PONG_TAG,
};
pub use checkpoint::{CheckpointError, CHECKPOINT_SCHEMA_VERSION};
pub use scheme::Scheme;
pub use stats::Stats;
pub use sweep::{
    run_sweep, run_sweep_parallel, run_sweep_resilient, run_sweep_resilient_with,
    run_sweep_sharded, run_sweep_with,
    PointStatus, Resilience, Sweep, SweepConfig, SweepFaults, SweepHealth, SweepPoint,
};
pub use workload::{IrregularWorkload, Workload};
