//! JSON checkpointing of sweeps, hand-rolled against a fixed schema (the
//! workspace deliberately has no serialization dependency).
//!
//! Format:
//!
//! ```json
//! {
//!   "platform": "skx-impi",
//!   "points": [
//!     {"scheme": "vector", "msg_bytes": 1024, "time": 1.2e-5,
//!      "bandwidth": 8.5e7, "slowdown": 1.3, "status": "ok"}
//!   ]
//! }
//! ```
//!
//! Non-finite values (failed/skipped points) are written as `null` and
//! read back as NaN. Finite values use Rust's shortest round-trip float
//! formatting, so a rewrite of a parsed checkpoint is bit-identical.

use std::str::FromStr;

use nonctg_simnet::{Datapath, PlatformId};

use crate::scheme::Scheme;
use crate::sweep::{PointStatus, Sweep, SweepFaults, SweepPoint};

/// Version stamp of the checkpoint schema. Bumped on any incompatible
/// layout change; a reader confronted with a different version refuses
/// with [`CheckpointError::VersionMismatch`] instead of misparsing.
/// Checkpoints without the stamp (written before versioning) read as
/// version 1.
pub const CHECKPOINT_SCHEMA_VERSION: u64 = 1;

/// Why a checkpoint could not be read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint declares a schema version this build cannot read.
    VersionMismatch {
        /// Version stamped into the file.
        found: u64,
        /// Version this build writes and reads.
        supported: u64,
    },
    /// The document is not a checkpoint this parser understands.
    Parse(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::VersionMismatch { found, supported } => write!(
                f,
                "checkpoint schema version {found} is not supported (this build reads \
                 version {supported}); re-run without --resume to start fresh"
            ),
            CheckpointError::Parse(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<String> for CheckpointError {
    fn from(msg: String) -> CheckpointError {
        CheckpointError::Parse(msg)
    }
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// Serialize a sweep to checkpoint JSON.
pub fn to_json(sweep: &Sweep) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {CHECKPOINT_SCHEMA_VERSION},\n"));
    out.push_str("  \"platform\": \"");
    out.push_str(sweep.platform.name());
    out.push_str("\",\n  \"points\": [");
    for (i, p) in sweep.points.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"scheme\": \"{}\", \"msg_bytes\": {}, \"time\": {}, \
             \"bandwidth\": {}, \"slowdown\": {}, \"status\": \"{}\"{}{}}}",
            p.scheme.key(),
            p.msg_bytes,
            num(p.time),
            num(p.bandwidth),
            num(p.slowdown),
            p.status.key(),
            // Recorded datapath engine; "auto" (unrecorded) is omitted so
            // checkpoints written before the selector keep their shape.
            if p.selected == Datapath::Auto {
                String::new()
            } else {
                format!(", \"selected\": \"{}\"", p.selected.name())
            },
            // Per-point fault attribution (resume bookkeeping); omitted
            // when zero so fault-free checkpoints keep the legacy shape.
            if p.faults.is_zero() {
                String::new()
            } else {
                format!(", \"faults\": {}", faults_json(&p.faults))
            },
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!("  \"fault_stats\": {}\n", faults_json(&sweep.faults)));
    out.push_str("}\n");
    out
}

fn faults_json(f: &SweepFaults) -> String {
    format!(
        "{{\"transient_retries\": {}, \"delays\": {}, \
         \"corruptions\": {}, \"failed_sends\": {}, \"poisoned_peers\": {}, \
         \"demotions\": {}, \"chunk_retries\": {}, \"link_degradations\": {}, \
         \"recv_crashes\": {}}}",
        f.transient_retries,
        f.delays,
        f.corruptions,
        f.failed_sends,
        f.poisoned_peers,
        f.demotions,
        f.chunk_retries,
        f.link_degradations,
        f.recv_crashes,
    )
}

/// A minimal recursive-descent parser for the checkpoint schema.
struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser { s: s.as_bytes(), i: 0 }
    }

    fn err(&self, what: &str) -> String {
        format!("checkpoint parse error at byte {}: {what}", self.i)
    }

    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.s.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.i;
        while let Some(&c) = self.s.get(self.i) {
            if c == b'"' {
                let out = std::str::from_utf8(&self.s[start..self.i])
                    .map_err(|_| self.err("invalid utf-8 in string"))?
                    .to_string();
                self.i += 1;
                return Ok(out);
            }
            if c == b'\\' {
                return Err(self.err("escapes are not used by this schema"));
            }
            self.i += 1;
        }
        Err(self.err("unterminated string"))
    }

    /// A JSON number, or `null` read as NaN.
    fn number_or_null(&mut self) -> Result<f64, String> {
        self.skip_ws();
        if self.s[self.i..].starts_with(b"null") {
            self.i += 4;
            return Ok(f64::NAN);
        }
        let start = self.i;
        while let Some(&c) = self.s.get(self.i) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .ok_or_else(|| self.err("expected a number or null"))
    }

    fn point(&mut self) -> Result<SweepPoint, String> {
        self.expect(b'{')?;
        let mut scheme = None;
        let mut msg_bytes = None;
        let mut time = f64::NAN;
        let mut bandwidth = f64::NAN;
        let mut slowdown = f64::NAN;
        let mut status = None;
        // Absent in checkpoints written before the datapath selector.
        let mut selected = Datapath::Auto;
        // Absent in checkpoints written before per-point attribution.
        let mut faults = SweepFaults::default();
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "scheme" => {
                    let v = self.string()?;
                    scheme = Some(Scheme::from_str(&v)?);
                }
                "msg_bytes" => {
                    let v = self.number_or_null()?;
                    if !(v.is_finite() && v >= 0.0) {
                        return Err(self.err("msg_bytes must be a non-negative integer"));
                    }
                    msg_bytes = Some(v as usize);
                }
                "time" => time = self.number_or_null()?,
                "bandwidth" => bandwidth = self.number_or_null()?,
                "slowdown" => slowdown = self.number_or_null()?,
                "status" => {
                    let v = self.string()?;
                    status = Some(PointStatus::from_str(&v)?);
                }
                "selected" => {
                    let v = self.string()?;
                    selected = Datapath::from_str(&v)?;
                }
                "faults" => faults = self.fault_stats()?,
                other => return Err(self.err(&format!("unknown point key '{other}'"))),
            }
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or '}' in point")),
            }
        }
        Ok(SweepPoint {
            scheme: scheme.ok_or_else(|| self.err("point missing 'scheme'"))?,
            msg_bytes: msg_bytes.ok_or_else(|| self.err("point missing 'msg_bytes'"))?,
            time,
            bandwidth,
            slowdown,
            status: status.ok_or_else(|| self.err("point missing 'status'"))?,
            selected,
            faults,
        })
    }

    /// A non-negative integer counter.
    fn counter(&mut self) -> Result<u64, String> {
        let v = self.number_or_null()?;
        if !(v.is_finite() && v >= 0.0) {
            return Err(self.err("counter must be a non-negative integer"));
        }
        Ok(v as u64)
    }

    fn fault_stats(&mut self) -> Result<SweepFaults, String> {
        self.expect(b'{')?;
        let mut f = SweepFaults::default();
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            match key.as_str() {
                "transient_retries" => f.transient_retries = self.counter()?,
                "delays" => f.delays = self.counter()?,
                "corruptions" => f.corruptions = self.counter()?,
                "failed_sends" => f.failed_sends = self.counter()?,
                "poisoned_peers" => f.poisoned_peers = self.counter()?,
                // v2 ladder counters; absent in older checkpoints (zeros).
                "demotions" => f.demotions = self.counter()?,
                "chunk_retries" => f.chunk_retries = self.counter()?,
                "link_degradations" => f.link_degradations = self.counter()?,
                "recv_crashes" => f.recv_crashes = self.counter()?,
                other => return Err(self.err(&format!("unknown fault_stats key '{other}'"))),
            }
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    break;
                }
                _ => return Err(self.err("expected ',' or '}' in fault_stats")),
            }
        }
        Ok(f)
    }
}

/// Parse checkpoint JSON back into a [`Sweep`].
pub fn from_json(s: &str) -> Result<Sweep, CheckpointError> {
    let mut p = Parser::new(s);
    p.expect(b'{')?;
    let mut platform = None;
    let mut points = Vec::new();
    // Absent in checkpoints written before fault accounting: zeros.
    let mut faults = SweepFaults::default();
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "schema_version" => {
                let found = p.counter()?;
                if found != CHECKPOINT_SCHEMA_VERSION {
                    return Err(CheckpointError::VersionMismatch {
                        found,
                        supported: CHECKPOINT_SCHEMA_VERSION,
                    });
                }
            }
            "platform" => {
                let v = p.string()?;
                platform = Some(PlatformId::from_str(&v)?);
            }
            "points" => {
                p.expect(b'[')?;
                if p.peek() == Some(b']') {
                    p.i += 1;
                } else {
                    loop {
                        points.push(p.point()?);
                        match p.peek() {
                            Some(b',') => p.i += 1,
                            Some(b']') => {
                                p.i += 1;
                                break;
                            }
                            _ => return Err(p.err("expected ',' or ']' in points").into()),
                        }
                    }
                }
            }
            "fault_stats" => faults = p.fault_stats()?,
            other => return Err(p.err(&format!("unknown top-level key '{other}'")).into()),
        }
        match p.peek() {
            Some(b',') => p.i += 1,
            Some(b'}') => break,
            _ => return Err(p.err("expected ',' or '}' at top level").into()),
        }
    }
    Ok(Sweep {
        platform: platform.ok_or_else(|| "checkpoint missing 'platform'".to_string())?,
        points,
        faults,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Sweep {
        Sweep {
            platform: PlatformId::SkxImpi,
            points: vec![
                SweepPoint {
                    scheme: Scheme::Reference,
                    msg_bytes: 1024,
                    time: 1.25e-5,
                    bandwidth: 8.192e7,
                    slowdown: 1.0,
                    status: PointStatus::Ok,
                    selected: Datapath::Pack,
                    faults: SweepFaults { transient_retries: 3, delays: 1, ..Default::default() },
                },
                SweepPoint {
                    scheme: Scheme::VectorType,
                    msg_bytes: 1024,
                    time: f64::NAN,
                    bandwidth: 0.0,
                    slowdown: f64::NAN,
                    status: PointStatus::Failed,
                    selected: Datapath::Auto,
                    faults: SweepFaults {
                        failed_sends: 2,
                        poisoned_peers: 4,
                        demotions: 5,
                        chunk_retries: 2,
                        link_degradations: 7,
                        recv_crashes: 1,
                        ..Default::default()
                    },
                },
            ],
            faults: SweepFaults {
                transient_retries: 3,
                delays: 1,
                corruptions: 0,
                failed_sends: 2,
                poisoned_peers: 4,
                demotions: 5,
                chunk_retries: 2,
                link_degradations: 7,
                recv_crashes: 1,
            },
        }
    }

    #[test]
    fn round_trips_including_nan() {
        let json = to_json(&sample());
        let back = from_json(&json).unwrap();
        assert_eq!(back.platform, PlatformId::SkxImpi);
        assert_eq!(back.points.len(), 2);
        let a = &back.points[0];
        assert_eq!((a.scheme, a.msg_bytes, a.status), (Scheme::Reference, 1024, PointStatus::Ok));
        assert_eq!(a.time, 1.25e-5);
        assert_eq!(a.slowdown, 1.0);
        let b = &back.points[1];
        assert_eq!(b.status, PointStatus::Failed);
        assert!(b.time.is_nan() && b.slowdown.is_nan());
        assert_eq!(back.faults, sample().faults);
        // Per-point fault attribution round-trips too.
        assert_eq!(a.faults, sample().points[0].faults);
        assert_eq!(b.faults, sample().points[1].faults);
        // The recorded datapath round-trips; unrecorded stays "auto" and
        // is omitted from the serialized form.
        assert_eq!(a.selected, Datapath::Pack);
        assert_eq!(b.selected, Datapath::Auto);
        assert_eq!(json.matches("\"selected\"").count(), 1, "{json}");
        // A rewrite of the parsed sweep is bit-identical.
        assert_eq!(to_json(&back), json);
    }

    /// Every datapath value except the "auto" sentinel round-trips
    /// through its checkpoint key.
    #[test]
    fn selected_engines_round_trip() {
        for dp in [Datapath::Pack, Datapath::Iov, Datapath::Elem] {
            let mut sweep = sample();
            sweep.points[0].selected = dp;
            let back = from_json(&to_json(&sweep)).unwrap();
            assert_eq!(back.points[0].selected, dp);
        }
        let bad = "{\"platform\": \"skx-impi\", \"points\": [\
            {\"scheme\": \"reference\", \"msg_bytes\": 8, \"time\": 1.0, \
             \"bandwidth\": 8.0, \"slowdown\": 1.0, \"status\": \"ok\", \
             \"selected\": \"warp\"}]}";
        assert!(from_json(bad).unwrap_err().to_string().contains("warp"));
    }

    /// Points without per-point counters (fault-free, or written by the
    /// pre-attribution schema) serialize without a "faults" key and parse
    /// back with zero counters — legacy checkpoints stay readable.
    #[test]
    fn zero_point_faults_omit_the_key() {
        let mut sweep = sample();
        for p in &mut sweep.points {
            p.faults = SweepFaults::default();
        }
        let json = to_json(&sweep);
        assert!(!json.contains("\"faults\""), "{json}");
        let legacy = "{\"platform\": \"skx-impi\", \"points\": [\
            {\"scheme\": \"reference\", \"msg_bytes\": 1024, \"time\": 1.0, \
             \"bandwidth\": 1024.0, \"slowdown\": 1.0, \"status\": \"ok\"}]}";
        let back = from_json(legacy).unwrap();
        assert!(back.points[0].faults.is_zero());
    }

    #[test]
    fn empty_points_round_trip() {
        let sweep = Sweep {
            platform: PlatformId::KnlImpi,
            points: Vec::new(),
            faults: SweepFaults::default(),
        };
        let back = from_json(&to_json(&sweep)).unwrap();
        assert!(back.points.is_empty());
        assert_eq!(back.platform, PlatformId::KnlImpi);
        assert!(back.faults.is_zero());
    }

    /// Checkpoints written before fault accounting (no "fault_stats"
    /// key) still parse, with zero counters.
    #[test]
    fn missing_fault_stats_defaults_to_zero() {
        let json = "{\"platform\": \"skx-impi\", \"points\": []}";
        let back = from_json(json).unwrap();
        assert!(back.faults.is_zero());
    }

    #[test]
    fn garbage_is_rejected_with_context() {
        assert!(from_json("").is_err());
        assert!(from_json("{}").unwrap_or(sample()).points.is_empty() || from_json("{}").is_err());
        assert!(from_json("{\"platform\": \"mars\", \"points\": []}").is_err());
        let err = from_json("{\"platform\": \"skx-impi\", \"points\": [{\"bogus\": 1}]}")
            .unwrap_err();
        assert!(err.to_string().contains("bogus"), "{err}");
    }

    /// New checkpoints carry the schema version; checkpoints written
    /// before versioning (no stamp) still read, and a stamp from a
    /// different version is a typed rejection, not a parse panic.
    #[test]
    fn schema_version_is_written_checked_and_optional() {
        let json = to_json(&sample());
        assert!(
            json.contains(&format!("\"schema_version\": {CHECKPOINT_SCHEMA_VERSION}")),
            "{json}"
        );
        // Unversioned (legacy) checkpoints parse as version 1.
        let legacy = "{\"platform\": \"skx-impi\", \"points\": []}";
        assert!(from_json(legacy).is_ok());
        // A future version is rejected with the typed variant.
        let future = "{\"schema_version\": 99, \"platform\": \"skx-impi\", \"points\": []}";
        match from_json(future) {
            Err(CheckpointError::VersionMismatch { found: 99, supported }) => {
                assert_eq!(supported, CHECKPOINT_SCHEMA_VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        let msg = from_json(future).unwrap_err().to_string();
        assert!(msg.contains("99") && msg.contains("--resume"), "{msg}");
    }
}
