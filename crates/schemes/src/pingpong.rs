//! The paper's measurement protocol (§3.2), executed per scheme.
//!
//! * 20 ping-pongs (configurable), every one timed individually on rank 0;
//! * the ping is the non-contiguous send, the pong a zero-byte return
//!   message (one-sided transfers are timed fence-to-fence instead);
//! * all buffers allocated and initialized outside the timing loop;
//! * a 50 MB array rewrite between ping-pongs flushes the caches
//!   (disable with [`PingPongConfig::flush`] for the §4.6 ablation);
//! * receivers verify payload bytes (sampled), so every timing result is
//!   also a correctness check.

use nonctg_core::{
    Comm, CoreError, FaultStats, MetricsSnapshot, Result, TraceEvent, Universe,
};
use nonctg_datatype::{as_bytes, Datatype};
use nonctg_simnet::{Access, Platform};

use crate::scheme::Scheme;
use crate::stats::{self, Stats};
use crate::workload::Workload;

/// Tag of ping messages.
pub const PING_TAG: i32 = 1;
/// Tag of pong messages.
pub const PONG_TAG: i32 = 2;

/// Configuration of one measurement (paper defaults).
#[derive(Debug, Clone)]
pub struct PingPongConfig {
    /// Ping-pongs per measurement (the paper uses 20).
    pub reps: usize,
    /// Rewrite a large array between ping-pongs to flush caches (§3.2).
    pub flush: bool,
    /// Size of the flush array (the paper uses 50 M).
    pub flush_bytes: u64,
    /// Verify received payloads (sampled positions).
    pub verify: bool,
}

impl Default for PingPongConfig {
    fn default() -> Self {
        PingPongConfig { reps: 20, flush: true, flush_bytes: 50_000_000, verify: true }
    }
}

impl PingPongConfig {
    /// Reduce repetitions for very large messages so the harness's
    /// wall-clock stays sane; virtual-time results are unaffected.
    pub fn adaptive(mut self, msg_bytes: usize) -> Self {
        self.reps = if msg_bytes <= (4 << 20) {
            self.reps
        } else if msg_bytes <= (64 << 20) {
            self.reps.min(5)
        } else {
            self.reps.min(3)
        };
        self
    }
}

/// Result of measuring one (scheme, workload) point.
#[derive(Debug, Clone)]
pub struct PingPongResult {
    /// Which scheme ran.
    pub scheme: Scheme,
    /// Message payload in bytes.
    pub msg_bytes: usize,
    /// Individually-timed ping-pong durations (virtual seconds).
    pub times: Vec<f64>,
    /// Injected-fault counters summed across every rank of the
    /// measurement universe (all zeros without a fault plan).
    pub faults: FaultStats,
}

impl PingPongResult {
    /// The paper's summary: outlier-rejected mean per ping-pong.
    pub fn stats(&self) -> Stats {
        stats::summarize(&self.times)
    }

    /// Mean time per ping-pong.
    pub fn time(&self) -> f64 {
        self.stats().mean
    }

    /// Effective bandwidth (payload bytes over mean one-way... the paper
    /// divides message size by ping-pong time).
    pub fn bandwidth(&self) -> f64 {
        stats::bandwidth(self.msg_bytes, self.time())
    }
}

/// Strided access pattern of a workload's source array.
fn access_of(w: &Workload) -> Access {
    Access::Strided {
        blocklen: (w.blocklen * Workload::ELEM) as u64,
        stride: (w.stride * Workload::ELEM) as u64,
    }
}

/// Why a measurement failed: the errors of every rank that did not
/// complete (a panicking rank shows up as
/// [`CoreError::RankPanicked`]; its peers typically as
/// [`CoreError::PeerFailed`]).
#[derive(Debug, Clone)]
pub struct MeasureError {
    /// `(rank, error)` of every failed rank, in rank order.
    pub failures: Vec<(usize, CoreError)>,
}

impl MeasureError {
    /// The most informative failure: the first that is not a secondary
    /// [`CoreError::PeerFailed`], falling back to the first overall.
    pub fn root_cause(&self) -> &(usize, CoreError) {
        self.failures
            .iter()
            .find(|(_, e)| !matches!(e, CoreError::PeerFailed { .. }))
            .unwrap_or(&self.failures[0])
    }
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (rank, e) = self.root_cause();
        write!(f, "measurement failed on rank {rank}: {e}")?;
        if self.failures.len() > 1 {
            write!(f, " ({} ranks failed in total)", self.failures.len())?;
        }
        Ok(())
    }
}

impl std::error::Error for MeasureError {}

/// Measure one scheme on one workload. Spawns a fresh two-rank universe.
///
/// # Panics
/// Panics if the measurement fails (injected faults, deadlock); use
/// [`try_run_scheme`] to handle failures.
pub fn run_scheme(
    platform: &Platform,
    scheme: Scheme,
    workload: &Workload,
    cfg: &PingPongConfig,
) -> PingPongResult {
    run_scheme_pairs(platform, scheme, workload, cfg, 1)
}

/// Fallible [`run_scheme`]: a failing rank (injected fault, deadlock,
/// corruption caught by verification) yields an error instead of a panic.
pub fn try_run_scheme(
    platform: &Platform,
    scheme: Scheme,
    workload: &Workload,
    cfg: &PingPongConfig,
) -> std::result::Result<PingPongResult, MeasureError> {
    try_run_scheme_pairs(platform, scheme, workload, cfg, 1)
}

/// Measure one scheme with `npairs` simultaneously-communicating rank
/// pairs on one node (rank 2i pings rank 2i+1) — the paper's §4.7
/// "all processes on a node communicate" check. Returns the times of
/// pair 0; with no modeled NIC contention, all pairs agree.
///
/// # Panics
/// Panics if the measurement fails; use [`try_run_scheme_pairs`] to
/// handle failures.
pub fn run_scheme_pairs(
    platform: &Platform,
    scheme: Scheme,
    workload: &Workload,
    cfg: &PingPongConfig,
    npairs: usize,
) -> PingPongResult {
    try_run_scheme_pairs(platform, scheme, workload, cfg, npairs)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_scheme_pairs`]: runs the universe supervised, so a
/// failing rank poisons the fabric and every rank returns promptly; the
/// collected per-rank errors come back as a [`MeasureError`].
pub fn try_run_scheme_pairs(
    platform: &Platform,
    scheme: Scheme,
    workload: &Workload,
    cfg: &PingPongConfig,
    npairs: usize,
) -> std::result::Result<PingPongResult, MeasureError> {
    try_run_scheme_pairs_observed(platform, scheme, workload, cfg, npairs, Observe::OFF)
        .map(|run| run.result)
}

/// What [`try_run_scheme_observed`] collects alongside the timings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Observe {
    /// Record a [`TraceEvent`] per operation on every rank.
    pub trace: bool,
    /// Collect aggregate metrics (counters/histograms) on every rank.
    pub metrics: bool,
}

impl Observe {
    /// Collect nothing — behaves exactly like [`try_run_scheme`].
    pub const OFF: Observe = Observe { trace: false, metrics: false };
    /// Collect event traces only.
    pub const TRACE: Observe = Observe { trace: true, metrics: false };
    /// Collect traces and metrics.
    pub const ALL: Observe = Observe { trace: true, metrics: true };
}

/// A measurement plus the observability artifacts it produced.
#[derive(Debug, Clone)]
pub struct ObservedRun {
    /// The timings, as [`try_run_scheme`] would return them.
    pub result: PingPongResult,
    /// Per-rank event streams (empty unless [`Observe::trace`]); index =
    /// rank in the measurement universe.
    pub events: Vec<Vec<TraceEvent>>,
    /// Rank 0's timed windows, one per rep: `(t_start, t_end)` in virtual
    /// seconds, exactly the spans whose lengths are
    /// [`PingPongResult::times`].
    pub windows: Vec<(f64, f64)>,
    /// Merged metrics of every rank (`None` unless [`Observe::metrics`]).
    pub metrics: Option<MetricsSnapshot>,
}

impl ObservedRun {
    /// Earliest event start and latest event end across every rank's
    /// trace, or `None` when no events were recorded. This is the
    /// interval a whole-run critical path must tile.
    pub fn trace_span(&self) -> Option<(f64, f64)> {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for e in self.events.iter().flatten() {
            lo = lo.min(e.t_start);
            hi = hi.max(e.t_end);
        }
        (lo < hi).then_some((lo, hi))
    }

    /// Virtual elapsed time of the traced run: the width of
    /// [`ObservedRun::trace_span`] (0.0 without a trace).
    pub fn trace_elapsed(&self) -> f64 {
        self.trace_span().map(|(lo, hi)| hi - lo).unwrap_or(0.0)
    }

    /// `(t_start, t_end)` of one rank's traced activity, or `None` when
    /// that rank recorded nothing — e.g. the receiver's elapsed window
    /// for pipeline bubble accounting.
    pub fn rank_span(&self, rank: usize) -> Option<(f64, f64)> {
        let evs = self.events.get(rank)?;
        let lo = evs.iter().map(|e| e.t_start).fold(f64::INFINITY, f64::min);
        let hi = evs.iter().map(|e| e.t_end).fold(f64::NEG_INFINITY, f64::max);
        (lo < hi).then_some((lo, hi))
    }
}

/// [`try_run_scheme`] with tracing and/or metrics enabled on every rank.
///
/// Virtual-time results are identical to the unobserved run: recording
/// only captures clock movements, it never causes them.
pub fn try_run_scheme_observed(
    platform: &Platform,
    scheme: Scheme,
    workload: &Workload,
    cfg: &PingPongConfig,
    obs: Observe,
) -> std::result::Result<ObservedRun, MeasureError> {
    try_run_scheme_pairs_observed(platform, scheme, workload, cfg, 1, obs)
}

/// What each rank hands back from the measurement closure.
struct RankOut {
    times: Vec<f64>,
    starts: Vec<f64>,
    events: Vec<TraceEvent>,
    metrics: Option<MetricsSnapshot>,
    faults: FaultStats,
}

fn try_run_scheme_pairs_observed(
    platform: &Platform,
    scheme: Scheme,
    workload: &Workload,
    cfg: &PingPongConfig,
    npairs: usize,
    obs: Observe,
) -> std::result::Result<ObservedRun, MeasureError> {
    assert!(npairs >= 1);
    let platform = platform.clone();
    let w = *workload;
    let cfg = cfg.clone();
    let results = Universe::run_supervised(platform, 2 * npairs, move |comm| {
        if obs.trace {
            comm.enable_trace();
        }
        if obs.metrics {
            comm.enable_metrics();
        }
        let rank = comm.rank();
        let (times, starts) = if rank % 2 == 0 {
            sender(comm, scheme, &w, &cfg, rank + 1)?
        } else {
            receiver(comm, scheme, &w, &cfg, rank - 1)?;
            (Vec::new(), Vec::new())
        };
        Ok(RankOut {
            times,
            starts,
            events: comm.take_trace(),
            metrics: comm.take_metrics(),
            faults: comm.fault_stats(),
        })
    });
    let mut failures = Vec::new();
    let mut pair0 = Vec::new();
    let mut starts0 = Vec::new();
    let mut events = Vec::new();
    let mut faults = FaultStats::default();
    let mut metrics: Option<MetricsSnapshot> = None;
    for (rank, r) in results.into_iter().enumerate() {
        match r {
            Ok(out) => {
                if rank == 0 {
                    pair0 = out.times;
                    starts0 = out.starts;
                }
                faults.absorb(out.faults);
                events.push(out.events);
                if let Some(m) = out.metrics {
                    match &mut metrics {
                        Some(acc) => acc.merge(&m),
                        None => metrics = Some(m),
                    }
                }
            }
            Err(e) => failures.push((rank, e)),
        }
    }
    if !failures.is_empty() {
        return Err(MeasureError { failures });
    }
    let windows = starts0.iter().zip(pair0.iter()).map(|(&s, &t)| (s, s + t)).collect();
    Ok(ObservedRun {
        result: PingPongResult { scheme, msg_bytes: workload.msg_bytes(), times: pair0, faults },
        events,
        windows,
        metrics,
    })
}

/// Measure a direct send of an arbitrary committed datatype (one
/// instance) from `src`, received contiguously and verified against
/// `expected`. Used by the §4.7 irregular-spacing experiment.
pub fn run_datatype_send(
    platform: &Platform,
    dtype: &Datatype,
    src: Vec<f64>,
    expected: Vec<f64>,
    cfg: &PingPongConfig,
) -> PingPongResult {
    let platform = platform.clone();
    let cfg = cfg.clone();
    let dtype = dtype.clone();
    let msg_bytes = dtype.size() as usize;
    assert_eq!(msg_bytes, expected.len() * Workload::ELEM, "expected length mismatch");
    let ((times, faults0), (_, faults1)) = Universe::run_pair(platform, move |comm| {
        if comm.rank() == 0 {
            let mut times = Vec::with_capacity(cfg.reps);
            comm.barrier().expect("start barrier");
            for _ in 0..cfg.reps {
                let t0 = comm.wtime();
                comm.send(as_bytes(&src), 0, &dtype, 1, 1, PING_TAG).expect("send");
                let mut pong = [0u8; 0];
                comm.recv_bytes(&mut pong, Some(1), Some(PONG_TAG)).expect("pong");
                times.push(comm.wtime() - t0);
                flush_both(comm, &cfg);
            }
            comm.barrier().expect("end barrier");
            (times, comm.fault_stats())
        } else {
            let mut buf = vec![0.0f64; expected.len()];
            comm.barrier().expect("start barrier");
            for _ in 0..cfg.reps {
                comm.recv_slice(&mut buf, Some(0), Some(PING_TAG)).expect("recv");
                if cfg.verify && !expected.is_empty() {
                    verify_samples(&buf, &expected);
                }
                comm.send_bytes(&[], 0, PONG_TAG).expect("pong");
                flush_both(comm, &cfg);
            }
            comm.barrier().expect("end barrier");
            (Vec::new(), comm.fault_stats())
        }
    });
    let mut faults = faults0;
    faults.absorb(faults1);
    PingPongResult { scheme: Scheme::VectorType, msg_bytes, times, faults }
}

fn flush_both(comm: &mut Comm, cfg: &PingPongConfig) {
    if cfg.flush {
        comm.flush_cache(cfg.flush_bytes);
    }
}

/// Sending rank: prepare buffers, run the timed loop against `peer`.
/// Returns each rep's duration and its start time (the timed windows
/// phase attribution folds events into).
fn sender(
    comm: &mut Comm,
    scheme: Scheme,
    w: &Workload,
    cfg: &PingPongConfig,
    peer: usize,
) -> Result<(Vec<f64>, Vec<f64>)> {
    let n = w.elems();
    let mut times = Vec::with_capacity(cfg.reps);
    let mut starts = Vec::with_capacity(cfg.reps);

    // All allocations outside the timing loop (§3.2).
    let src = w.make_source();
    let contig = w.expected(); // reference sends the same payload contiguously
    let mut sendbuf = vec![0.0f64; if scheme == Scheme::Copying { n } else { 0 }];
    // Packing schemes stage through the rank's scratch pool instead of a
    // fresh allocation, so back-to-back measurements reuse one buffer.
    let packbuf_len = match scheme {
        Scheme::PackingElement | Scheme::PackingVector => w.msg_bytes(),
        _ => 0,
    };
    let mut packbuf = comm.take_scratch(packbuf_len);
    packbuf.truncate(packbuf_len);
    let vec_t = w.vector_type()?;
    let sub_t = w.subarray_type()?;
    let f64_t = Datatype::f64();
    let access = access_of(w);

    if scheme == Scheme::Buffered {
        let need = Comm::bsend_size(&vec_t, 1)?;
        comm.buffer_attach(need)?;
    }
    let mut win = if scheme == Scheme::OneSided {
        // Rank 0 exposes nothing; rank 1 exposes the receive region.
        Some(comm.win_create(0)?)
    } else {
        None
    };

    // Compile pack plans outside the timing loop, like the allocations
    // above: the first timed iteration must not pay plan compilation.
    comm.pack_prepare(&vec_t, 1);
    comm.pack_prepare(&sub_t, 1);

    comm.barrier()?;

    for _ in 0..cfg.reps {
        let t0 = comm.wtime();
        starts.push(t0);
        match scheme {
            Scheme::Reference => {
                comm.send_slice(&contig, peer, PING_TAG)?;
            }
            Scheme::Copying => {
                // The real user-space gather loop...
                for i in 0..n {
                    sendbuf[i] = src[w.source_index(i)];
                }
                // ...and its modeled cost.
                comm.charge_copy(w.msg_bytes() as u64, &access);
                comm.send_slice(&sendbuf, peer, PING_TAG)?;
            }
            Scheme::Buffered => {
                comm.bsend(as_bytes(&src), 0, &vec_t, 1, peer, PING_TAG)?;
            }
            Scheme::VectorType => {
                comm.send(as_bytes(&src), 0, &vec_t, 1, peer, PING_TAG)?;
            }
            Scheme::Subarray => {
                comm.send(as_bytes(&src), 0, &sub_t, 1, peer, PING_TAG)?;
            }
            Scheme::OneSided => {
                let win = win.as_mut().expect("window");
                win.fence(comm)?;
                win.put(comm, as_bytes(&src), 0, &vec_t, 1, peer, 0)?;
                win.fence(comm)?;
            }
            Scheme::PackingElement => {
                let mut pos = 0usize;
                if n <= (1 << 12) {
                    // Literal per-element MPI_Pack calls.
                    for i in 0..n {
                        comm.pack(
                            as_bytes(&src),
                            w.source_index(i) * Workload::ELEM,
                            &f64_t,
                            1,
                            &mut packbuf,
                            &mut pos,
                        )
                        ?;
                    }
                } else {
                    // Batched equivalent (same data, same virtual time).
                    // Regular workloads have a fixed element stride.
                    debug_assert_eq!(w.blocklen, 1, "elementwise packing assumes blocklen 1");
                    comm.pack_elementwise(
                        as_bytes(&src),
                        0,
                        w.stride * Workload::ELEM,
                        &f64_t,
                        n,
                        &mut packbuf,
                        &mut pos,
                    )
                    ?;
                }
                comm.send_packed(&packbuf, peer, PING_TAG)?;
            }
            Scheme::PackingVector => {
                let mut pos = 0usize;
                comm.pack(as_bytes(&src), 0, &vec_t, 1, &mut packbuf, &mut pos)?;
                comm.send_packed(&packbuf, peer, PING_TAG)?;
            }
        }
        if scheme != Scheme::OneSided {
            let mut pong = [0u8; 0];
            comm.recv_bytes(&mut pong, Some(peer), Some(PONG_TAG))?;
        }
        times.push(comm.wtime() - t0);
        flush_both(comm, cfg);
    }

    if scheme == Scheme::Buffered {
        // Drain: make sure the last buffered message was matched before
        // detaching (the receiver's pong ordering guarantees it).
        comm.buffer_detach()?;
    }
    comm.put_scratch(packbuf);
    comm.barrier()?;
    Ok((times, starts))
}

/// Receiving rank: receive contiguously, verify, pong to `peer`.
fn receiver(
    comm: &mut Comm,
    scheme: Scheme,
    w: &Workload,
    cfg: &PingPongConfig,
    peer: usize,
) -> Result<()> {
    let n = w.elems();
    let mut recvbuf = vec![0.0f64; n];
    let expected = w.expected();

    let mut win = if scheme == Scheme::OneSided {
        Some(comm.win_create(w.msg_bytes())?)
    } else {
        None
    };

    comm.barrier()?;

    for _ in 0..cfg.reps {
        match scheme {
            Scheme::OneSided => {
                let win = win.as_mut().expect("window");
                win.fence(comm)?;
                win.fence(comm)?;
                if cfg.verify && n > 0 {
                    verify_window(win, &expected);
                }
            }
            _ => {
                let st = comm.recv_slice(&mut recvbuf, Some(peer), Some(PING_TAG))?;
                assert_eq!(st.bytes, w.msg_bytes(), "payload size");
                if cfg.verify && n > 0 {
                    verify_samples(&recvbuf, &expected);
                }
                comm.send_bytes(&[], peer, PONG_TAG)?;
            }
        }
        flush_both(comm, cfg);
    }
    comm.barrier()?;
    Ok(())
}

/// Check a handful of positions plus the extremes (full check for small n).
fn verify_samples(got: &[f64], expected: &[f64]) {
    assert_eq!(got.len(), expected.len());
    let n = got.len();
    if n <= 4096 {
        assert_eq!(got, expected, "payload corrupted");
        return;
    }
    for &i in &[0, 1, n / 3, n / 2, 2 * n / 3, n - 2, n - 1] {
        assert_eq!(got[i], expected[i], "payload corrupted at {i}");
    }
    let step = (n / 64).max(1);
    let mut i = 0;
    while i < n {
        assert_eq!(got[i], expected[i], "payload corrupted at {i}");
        i += step;
    }
}

fn verify_window(win: &nonctg_core::Window, expected: &[f64]) {
    let n = expected.len();
    let check = |i: usize| {
        let raw = win.read_local(i * 8..i * 8 + 8).expect("window read");
        let v = f64::from_le_bytes(raw.try_into().unwrap());
        assert_eq!(v, expected[i], "window payload corrupted at {i}");
    };
    check(0);
    check(n / 2);
    check(n - 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> Platform {
        let mut p = Platform::skx_impi();
        p.jitter_sigma = 0.0;
        p
    }

    fn small_cfg() -> PingPongConfig {
        PingPongConfig { reps: 4, flush: true, flush_bytes: 1 << 20, verify: true }
    }

    #[test]
    fn all_schemes_run_and_verify() {
        let w = Workload::every_other(512);
        for scheme in Scheme::ALL {
            let r = run_scheme(&quiet(), scheme, &w, &small_cfg());
            assert_eq!(r.times.len(), 4, "{scheme}");
            assert!(r.times.iter().all(|&t| t > 0.0), "{scheme}");
            assert!(r.time() > 0.0);
            assert!(r.bandwidth() > 0.0);
        }
    }

    #[test]
    fn reference_is_fastest() {
        let w = Workload::every_other(1 << 14);
        let reference = run_scheme(&quiet(), Scheme::Reference, &w, &small_cfg()).time();
        for scheme in Scheme::NON_CONTIGUOUS {
            let t = run_scheme(&quiet(), scheme, &w, &small_cfg()).time();
            assert!(
                t > reference,
                "{scheme} ({t}) should be slower than reference ({reference})"
            );
        }
    }

    #[test]
    fn packing_vector_tracks_copying() {
        // Paper §4.3/§5: packing a vector == manual copying at all sizes.
        for elems in [1 << 10, 1 << 14, 1 << 18] {
            let w = Workload::every_other(elems);
            let copying = run_scheme(&quiet(), Scheme::Copying, &w, &small_cfg()).time();
            let packing = run_scheme(&quiet(), Scheme::PackingVector, &w, &small_cfg()).time();
            let ratio = packing / copying;
            assert!(
                (0.9..1.15).contains(&ratio),
                "packing(v)/copying = {ratio} at {elems} elems"
            );
        }
    }

    #[test]
    fn vector_and_subarray_agree() {
        let w = Workload::every_other(1 << 14);
        let v = run_scheme(&quiet(), Scheme::VectorType, &w, &small_cfg()).time();
        let s = run_scheme(&quiet(), Scheme::Subarray, &w, &small_cfg()).time();
        let ratio = v / s;
        assert!((0.9..1.1).contains(&ratio), "vector/subarray = {ratio}");
    }

    #[test]
    fn packing_by_element_is_much_slower() {
        let w = Workload::every_other(1 << 14);
        let pv = run_scheme(&quiet(), Scheme::PackingVector, &w, &small_cfg()).time();
        let pe = run_scheme(&quiet(), Scheme::PackingElement, &w, &small_cfg()).time();
        assert!(pe > 2.0 * pv, "packing(e) {pe} vs packing(v) {pv}");
    }

    #[test]
    fn elementwise_batching_matches_literal_calls() {
        // The batched fast path must charge the same virtual time as the
        // literal per-call loop (jitter off).
        let small = Workload::every_other(1 << 10); // literal path
        let cfg = PingPongConfig { reps: 2, flush: false, flush_bytes: 0, verify: true };
        let lit = run_scheme(&quiet(), Scheme::PackingElement, &small, &cfg).time();

        // Re-run forcing the batch threshold by using a larger workload and
        // scaling: per-element cost must be identical, so time/elem of the
        // two paths should agree closely.
        let big = Workload::every_other(1 << 14); // batched path
        let bat = run_scheme(&quiet(), Scheme::PackingElement, &big, &cfg).time();
        let per_lit = lit / small.elems() as f64;
        let per_bat = bat / big.elems() as f64;
        let ratio = per_bat / per_lit;
        assert!(
            (0.8..1.2).contains(&ratio),
            "batched per-element {per_bat} vs literal {per_lit}"
        );
    }

    #[test]
    fn bsend_worse_than_plain_derived_send() {
        // Paper §4.2: buffered sends perform worse.
        let w = Workload::every_other(1 << 16);
        let plain = run_scheme(&quiet(), Scheme::VectorType, &w, &small_cfg()).time();
        let buffered = run_scheme(&quiet(), Scheme::Buffered, &w, &small_cfg()).time();
        assert!(buffered > plain, "buffered {buffered} vs plain {plain}");
    }

    #[test]
    fn onesided_slow_for_small_messages() {
        // Paper §4.4(1): fence overhead dominates small transfers.
        let w = Workload::every_other(128);
        let two = run_scheme(&quiet(), Scheme::VectorType, &w, &small_cfg()).time();
        let one = run_scheme(&quiet(), Scheme::OneSided, &w, &small_cfg()).time();
        assert!(one > 1.5 * two, "onesided {one} vs two-sided {two}");
    }

    #[test]
    fn no_flush_speeds_up_intermediate_sizes() {
        // Paper §4.6.
        let w = Workload::every_other(1 << 17); // 1 MiB message, fits in LLC
        let flush_cfg = PingPongConfig { reps: 6, flush: true, flush_bytes: 50_000_000, verify: false };
        let warm_cfg = PingPongConfig { flush: false, ..flush_cfg.clone() };
        let cold = run_scheme(&quiet(), Scheme::Copying, &w, &flush_cfg).time();
        let warm = run_scheme(&quiet(), Scheme::Copying, &w, &warm_cfg).time();
        assert!(warm < cold, "warm {warm} should beat cold {cold}");
    }

    #[test]
    fn adaptive_reps_shrink_for_large_messages() {
        let cfg = PingPongConfig::default();
        assert_eq!(cfg.clone().adaptive(1 << 20).reps, 20);
        assert_eq!(cfg.clone().adaptive(16 << 20).reps, 5);
        assert_eq!(cfg.clone().adaptive(256 << 20).reps, 3);
    }
}
