//! Workload definitions: what non-contiguous data gets sent.
//!
//! The paper's main experiment sends every other `f64` of an array (a
//! vector type with blocklength 1, stride 2). §4.7 motivates two
//! generalizations — larger block sizes and irregular spacing — and the
//! introduction names three application patterns (real parts of a complex
//! array, multigrid coarsening, FEM boundary gathers) that the examples
//! exercise.

use nonctg_datatype::{ArrayOrder, Datatype, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A regular strided workload of `f64` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Workload {
    /// Number of blocks sent.
    pub count: usize,
    /// Elements per block.
    pub blocklen: usize,
    /// Distance between block starts, in elements. `stride >= blocklen`.
    pub stride: usize,
}

impl Workload {
    /// Size of one element in bytes (`f64`).
    pub const ELEM: usize = 8;

    /// The paper's standard workload: `elems` doubles at stride 2.
    pub fn every_other(elems: usize) -> Workload {
        Workload { count: elems, blocklen: 1, stride: 2 }
    }

    /// A blocked variant (§4.7(2)): same payload, larger blocks.
    pub fn blocked(elems: usize, blocklen: usize) -> Workload {
        let blocklen = blocklen.max(1);
        let count = elems.div_ceil(blocklen);
        Workload { count, blocklen, stride: 2 * blocklen }
    }

    /// Elements actually sent.
    pub fn elems(&self) -> usize {
        self.count * self.blocklen
    }

    /// Message payload in bytes.
    pub fn msg_bytes(&self) -> usize {
        self.elems() * Self::ELEM
    }

    /// Length of the source array in elements (spans all blocks).
    pub fn array_elems(&self) -> usize {
        if self.count == 0 {
            0
        } else {
            (self.count - 1) * self.stride + self.blocklen
        }
    }

    /// The equivalent `MPI_Type_vector`.
    pub fn vector_type(&self) -> Result<Datatype> {
        Ok(Datatype::vector(self.count, self.blocklen, self.stride as i64, &Datatype::f64())?
            .commit())
    }

    /// The equivalent 2-D subarray: a `count x stride` array from which a
    /// `count x blocklen` column block is selected.
    pub fn subarray_type(&self) -> Result<Datatype> {
        Ok(Datatype::subarray(
            &[self.count, self.stride],
            &[self.count, self.blocklen],
            &[0, 0],
            ArrayOrder::C,
            &Datatype::f64(),
        )?
        .commit())
    }

    /// Fill the source array: element `e` holds `e as f64`, so receivers
    /// can verify selections positionally.
    pub fn make_source(&self) -> Vec<f64> {
        (0..self.array_elems()).map(|i| i as f64).collect()
    }

    /// The expected received payload (selected elements, in order).
    pub fn expected(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.elems());
        for j in 0..self.count {
            for k in 0..self.blocklen {
                out.push((j * self.stride + k) as f64);
            }
        }
        out
    }

    /// Index in the source array of payload element `i`.
    pub fn source_index(&self, i: usize) -> usize {
        let (j, k) = (i / self.blocklen, i % self.blocklen);
        j * self.stride + k
    }
}

/// An irregular (indexed) workload for §4.7(1): `count` blocks of
/// `blocklen` doubles at randomized displacements with a mean spacing.
#[derive(Debug, Clone)]
pub struct IrregularWorkload {
    /// `(blocklen, displacement)` pairs, sorted by displacement.
    pub blocks: Vec<(usize, i64)>,
    /// Elements in the underlying array.
    pub array_elems: usize,
}

impl IrregularWorkload {
    /// Random sorted displacements: `count` blocks of `blocklen` doubles,
    /// average spacing `mean_spacing` elements, deterministic in `seed`.
    pub fn random(count: usize, blocklen: usize, mean_spacing: usize, seed: u64) -> Self {
        assert!(mean_spacing >= blocklen, "blocks must not overlap");
        let mut rng = StdRng::seed_from_u64(seed);
        let slack = mean_spacing - blocklen;
        let mut disp: i64 = 0;
        let mut blocks = Vec::with_capacity(count);
        for _ in 0..count {
            blocks.push((blocklen, disp));
            let gap = if slack == 0 { 0 } else { rng.gen_range(0..=2 * slack) };
            disp += (blocklen + gap) as i64;
        }
        let array_elems = blocks
            .last()
            .map(|&(bl, d)| d as usize + bl)
            .unwrap_or(0);
        IrregularWorkload { blocks, array_elems }
    }

    /// Elements sent.
    pub fn elems(&self) -> usize {
        self.blocks.iter().map(|&(bl, _)| bl).sum()
    }

    /// Message payload bytes.
    pub fn msg_bytes(&self) -> usize {
        self.elems() * Workload::ELEM
    }

    /// The equivalent indexed datatype.
    pub fn indexed_type(&self) -> Result<Datatype> {
        let blocks: Vec<(usize, i64)> = self.blocks.clone();
        Ok(Datatype::indexed(&blocks, &Datatype::f64())?.commit())
    }

    /// Source array (element `e` = `e as f64`).
    pub fn make_source(&self) -> Vec<f64> {
        (0..self.array_elems).map(|i| i as f64).collect()
    }

    /// Expected payload.
    pub fn expected(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.elems());
        for &(bl, d) in &self.blocks {
            for k in 0..bl {
                out.push((d as usize + k) as f64);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_other_matches_paper() {
        let w = Workload::every_other(100);
        assert_eq!(w.elems(), 100);
        assert_eq!(w.msg_bytes(), 800);
        assert_eq!(w.array_elems(), 199);
        assert_eq!(w.source_index(7), 14);
    }

    #[test]
    fn blocked_preserves_payload() {
        for bl in [1, 2, 8, 64] {
            let w = Workload::blocked(1024, bl);
            assert_eq!(w.elems(), 1024, "blocklen {bl}");
            assert_eq!(w.stride, 2 * bl);
        }
    }

    #[test]
    fn expected_matches_vector_selection() {
        let w = Workload { count: 5, blocklen: 3, stride: 7 };
        let exp = w.expected();
        assert_eq!(exp.len(), 15);
        assert_eq!(exp[0], 0.0);
        assert_eq!(exp[3], 7.0);
        assert_eq!(exp[14], (4 * 7 + 2) as f64);
        for (i, &e) in exp.iter().enumerate() {
            assert_eq!(e as usize, w.source_index(i));
        }
    }

    #[test]
    fn vector_and_subarray_types_agree() {
        let w = Workload::every_other(64);
        let v = w.vector_type().unwrap();
        let s = w.subarray_type().unwrap();
        assert_eq!(v.size(), s.size());
        assert_eq!(v.size() as usize, w.msg_bytes());
        // Same packed bytes from the same source.
        let src = w.make_source();
        let bytes = nonctg_datatype::as_bytes(&src);
        let pv = nonctg_datatype::pack(bytes, 0, &v, 1).unwrap();
        let ps = nonctg_datatype::pack(bytes, 0, &s, 1).unwrap();
        assert_eq!(pv, ps);
    }

    #[test]
    fn irregular_is_deterministic_and_sorted() {
        let a = IrregularWorkload::random(100, 2, 8, 42);
        let b = IrregularWorkload::random(100, 2, 8, 42);
        assert_eq!(a.blocks, b.blocks);
        assert!(a.blocks.windows(2).all(|w| w[0].1 + w[0].0 as i64 <= w[1].1));
        assert_eq!(a.elems(), 200);
    }

    #[test]
    fn irregular_expected_matches_type() {
        let w = IrregularWorkload::random(50, 3, 10, 7);
        let t = w.indexed_type().unwrap();
        let src = w.make_source();
        let packed = nonctg_datatype::pack(nonctg_datatype::as_bytes(&src), 0, &t, 1).unwrap();
        let expected = w.expected();
        assert_eq!(packed, nonctg_datatype::as_bytes(&expected));
    }

    #[test]
    fn zero_spacing_slack_gives_contiguous_blocks() {
        let w = IrregularWorkload::random(10, 4, 4, 1);
        assert_eq!(w.array_elems, 40);
        assert_eq!(w.elems(), 40);
    }
}
