//! ddtbench application kernels as first-class schemes.
//!
//! The paper sweeps one synthetic stride pattern; the DDT literature
//! (Schneider/Gerstenberger/Hoefler's ddtbench) benchmarks the access
//! patterns real applications ship. This module ports four of them onto
//! the harness — LAMMPS atom exchange, MILC su3 zdown, NAS MG/LU face
//! exchange, and the WRF x-halo — each runnable under the contiguous
//! reference, explicit user-space pack ([`Scheme::Copying`]), the
//! derived-datatype send ([`Scheme::VectorType`]), and pack-then-send
//! ([`Scheme::PackingVector`]).
//!
//! Every measurement is also a differential test: the receiver checks
//! its buffer against a payload derived by the *uncompiled* pack
//! interpreter, a different engine from whatever compiled plan, SIMD
//! kernel, or iovec gather the send actually used.

use std::fmt;
use std::str::FromStr;

use nonctg_core::selector::RegionShape;
use nonctg_core::Universe;
use nonctg_datatype::{layouts, pack_into_uncompiled, plan_for, Datatype};
use nonctg_simnet::{Access, Datapath, Platform};

use crate::pingpong::{PingPongConfig, PingPongResult, PING_TAG, PONG_TAG};
use crate::scheme::Scheme;
use crate::sweep::{apply_slowdowns, PointStatus, Sweep, SweepConfig, SweepFaults, SweepPoint};

/// One of the four ported ddtbench application kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppKernel {
    /// LAMMPS atom exchange: indexed blocks of mixed-size per-atom
    /// records (24 B position records, occasional 4 KiB payloads).
    Lammps,
    /// MILC su3 zdown: the z-face of a 4-D lattice of 3×3 complex
    /// matrix structs — few large regions.
    Milc,
    /// NAS MG/LU face exchange: a 3-D subarray face at large strides —
    /// many equal mid-size regions.
    Nas,
    /// WRF x-halo: nested vectors over a 4-D `f32` grid — very many
    /// tiny regions, routinely past the iovec descriptor cap.
    Wrf,
}

impl AppKernel {
    /// All kernels, in presentation order.
    pub const ALL: [AppKernel; 4] = [AppKernel::Lammps, AppKernel::Milc, AppKernel::Nas, AppKernel::Wrf];

    /// Machine-friendly key for CSV columns and CLI flags.
    pub fn key(self) -> &'static str {
        match self {
            AppKernel::Lammps => "lammps",
            AppKernel::Milc => "milc",
            AppKernel::Nas => "nas",
            AppKernel::Wrf => "wrf",
        }
    }

    /// Figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            AppKernel::Lammps => "LAMMPS atom exchange",
            AppKernel::Milc => "MILC su3 zdown",
            AppKernel::Nas => "NAS MG/LU face",
            AppKernel::Wrf => "WRF x-halo",
        }
    }
}

impl fmt::Display for AppKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for AppKernel {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "lammps" => Ok(AppKernel::Lammps),
            "milc" => Ok(AppKernel::Milc),
            "nas" => Ok(AppKernel::Nas),
            "wrf" => Ok(AppKernel::Wrf),
            other => Err(format!("unknown app kernel '{other}'")),
        }
    }
}

/// The schemes an application kernel runs under: the contiguous
/// reference, explicit user-space pack, the derived-datatype send, and
/// pack-then-send.
pub const KERNEL_SCHEMES: [Scheme; 4] =
    [Scheme::Reference, Scheme::Copying, Scheme::VectorType, Scheme::PackingVector];

/// A sized instance of an application kernel: the committed datatype
/// plus everything a measurement needs (source bytes, oracle payload,
/// flattened regions).
#[derive(Debug, Clone)]
pub struct KernelWorkload {
    /// Which kernel this is.
    pub kernel: AppKernel,
    /// The committed layout (one instance is sent per ping).
    pub dtype: Datatype,
    /// Payload bytes per message (`dtype.size()`).
    pub msg_bytes: usize,
    /// Source-buffer span in bytes (`dtype.extent()`, lower bound 0).
    pub extent: usize,
}

impl KernelWorkload {
    /// Build the kernel's layout scaled so the payload is close to (and
    /// at least a fixed fraction of) `target_bytes`. Scaling moves only
    /// the replication axis (atoms, t-slices, z-planes), so the region
    /// *shape* — the thing that distinguishes the kernels — is preserved
    /// at every size.
    pub fn sized(kernel: AppKernel, target_bytes: usize) -> KernelWorkload {
        let dtype = match kernel {
            AppKernel::Lammps => {
                // 64 atoms = one big + 63 small records = 5608 payload bytes.
                let per_period = 8 * (layouts::LAMMPS_BIG_ELEMS
                    + (layouts::LAMMPS_BIG_PERIOD - 1) * layouts::LAMMPS_SMALL_ELEMS);
                let natoms =
                    (target_bytes * layouts::LAMMPS_BIG_PERIOD / per_period).max(1);
                layouts::lammps_exchange(natoms)
            }
            AppKernel::Milc => {
                // One t-slice face = ny*nx sites = 2304 B.
                let (nz, ny, nx) = (8, 4, 4);
                let nt = (target_bytes / (ny * nx * 144)).max(1);
                layouts::milc_su3_zdown(nt, nz, ny, nx)
            }
            AppKernel::Nas => {
                // One z-plane face row = nx doubles = 256 B.
                let (ny, nx) = (32, 32);
                let nz = (target_bytes / (nx * 8)).max(1);
                layouts::nas_face(nz, ny, nx)
            }
            AppKernel::Wrf => {
                // One z-plane of halo = nvar*ny runs of halo f32 = 256 B,
                // in 32 eight-byte regions: region counts grow fast and
                // cross the iovec descriptor cap by design.
                let (nvar, ny, nx, halo) = (4, 8, 16, 2);
                let nz = (target_bytes / (nvar * ny * halo * 4)).max(1);
                layouts::wrf_halo(nvar, nz, ny, nx, halo)
            }
        }
        .expect("kernel layout construction");
        let msg_bytes = dtype.size() as usize;
        let extent = dtype.extent() as usize;
        KernelWorkload { kernel, dtype, msg_bytes, extent }
    }

    /// Patterned source bytes covering the type's extent.
    pub fn make_source(&self) -> Vec<u8> {
        (0..self.extent).map(|i| (i.wrapping_mul(131).wrapping_add(i >> 9) ^ 0x5c) as u8).collect()
    }

    /// The oracle payload: what a correct send must deliver, derived by
    /// the uncompiled pack interpreter — independent of the compiled
    /// plans, SIMD kernels, and iovec gathers the datapaths use.
    pub fn expected(&self, src: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; self.msg_bytes];
        let n = pack_into_uncompiled(src, 0, &self.dtype, 1, &mut out)
            .expect("oracle pack");
        assert_eq!(n, self.msg_bytes, "oracle payload size");
        out
    }

    /// The flattened `(offset, len)` regions of one instance, bounded by
    /// `cap`: `None` when the layout lowers to more than `cap` regions.
    pub fn regions(&self, cap: usize) -> Option<Vec<(i64, u64)>> {
        plan_for(&self.dtype, 1).and_then(|pl| pl.regions(cap))
    }
}

/// The datapath engine the runtime uses for this kernel's derived sends
/// at this size: the forced engine when overridden, else the shape-aware
/// selector's choice, mirroring runtime eligibility (eager messages and
/// region lists past the iovec cap cannot take the zero-copy path).
pub fn kernel_selected_for(platform: &Platform, w: &KernelWorkload) -> Datapath {
    match platform.effective_datapath() {
        Datapath::Auto => {
            let bytes = w.msg_bytes as u64;
            let eager = bytes <= platform.eager_threshold(false);
            let shape = (!eager)
                .then(|| w.regions(nonctg_core::iov_max_regions()))
                .flatten()
                .map(|r| RegionShape::of(&r, platform.mem.cacheline));
            nonctg_core::selector::choose_shape(platform.id, bytes, shape)
        }
        forced => forced,
    }
}

/// Sampled byte-payload verification (full compare for small payloads).
fn verify_payload(got: &[u8], expected: &[u8], kernel: AppKernel) {
    assert_eq!(got.len(), expected.len(), "{kernel}: payload size");
    let n = got.len();
    if n <= 1 << 16 {
        assert_eq!(got, expected, "{kernel}: payload differs from oracle");
        return;
    }
    let step = (n / 256).max(1);
    let mut i = 0;
    while i < n {
        assert_eq!(got[i], expected[i], "{kernel}: byte {i} differs from oracle");
        i += step;
    }
    assert_eq!(got[n - 1], expected[n - 1], "{kernel}: last byte differs from oracle");
}

/// Measure one scheme on one kernel workload: the §3.2 ping-pong
/// protocol (allocations and plan compilation outside the timing loop,
/// zero-byte pongs, optional cache flush), with every received payload
/// differenced against the uncompiled-pack oracle.
///
/// # Panics
/// Panics on measurement failure or an oracle mismatch — kernel sweeps
/// run on quiet platforms where both are bugs.
pub fn run_kernel_scheme(
    platform: &Platform,
    scheme: Scheme,
    w: &KernelWorkload,
    cfg: &PingPongConfig,
) -> PingPongResult {
    assert!(
        KERNEL_SCHEMES.contains(&scheme),
        "{scheme} is not an application-kernel scheme"
    );
    let platform = platform.clone();
    let cfg = cfg.clone();
    let w = w.clone();
    let msg_bytes = w.msg_bytes;
    let ((times, faults0), (_, faults1)) = Universe::run_pair(platform, move |comm| {
        let src = w.make_source();
        let expected = w.expected(&src);
        if comm.rank() == 0 {
            // All staging buffers and plans readied outside the loop.
            let regions = w.regions(usize::MAX).expect("kernel regions");
            let mut sendbuf =
                vec![0u8; if scheme == Scheme::Copying { w.msg_bytes } else { 0 }];
            let packbuf_len =
                if scheme == Scheme::PackingVector { w.msg_bytes } else { 0 };
            let mut packbuf = comm.take_scratch(packbuf_len);
            packbuf.truncate(packbuf_len);
            let access = Access::classify(&w.dtype);
            comm.pack_prepare(&w.dtype, 1);

            let mut times = Vec::with_capacity(cfg.reps);
            comm.barrier().expect("start barrier");
            for _ in 0..cfg.reps {
                let t0 = comm.wtime();
                match scheme {
                    Scheme::Reference => {
                        comm.send_bytes(&expected, 1, PING_TAG).expect("send");
                    }
                    Scheme::Copying => {
                        // The application's own gather loop over the
                        // kernel's regions, then a contiguous send.
                        let mut pos = 0usize;
                        for &(off, len) in &regions {
                            let lo = off as usize;
                            let len = len as usize;
                            sendbuf[pos..pos + len].copy_from_slice(&src[lo..lo + len]);
                            pos += len;
                        }
                        comm.charge_copy(w.msg_bytes as u64, &access);
                        comm.send_bytes(&sendbuf, 1, PING_TAG).expect("send");
                    }
                    Scheme::VectorType => {
                        comm.send(&src, 0, &w.dtype, 1, 1, PING_TAG).expect("send");
                    }
                    Scheme::PackingVector => {
                        let mut pos = 0usize;
                        comm.pack(&src, 0, &w.dtype, 1, &mut packbuf, &mut pos)
                            .expect("pack");
                        comm.send_packed(&packbuf, 1, PING_TAG).expect("send");
                    }
                    _ => unreachable!("filtered by KERNEL_SCHEMES"),
                }
                let mut pong = [0u8; 0];
                comm.recv_bytes(&mut pong, Some(1), Some(PONG_TAG)).expect("pong");
                times.push(comm.wtime() - t0);
                if cfg.flush {
                    comm.flush_cache(cfg.flush_bytes);
                }
            }
            comm.barrier().expect("end barrier");
            comm.put_scratch(packbuf);
            (times, comm.fault_stats())
        } else {
            let mut buf = vec![0u8; w.msg_bytes];
            comm.barrier().expect("start barrier");
            for _ in 0..cfg.reps {
                buf.fill(0);
                let st = comm.recv_bytes(&mut buf, Some(0), Some(PING_TAG)).expect("recv");
                assert_eq!(st.bytes, w.msg_bytes, "payload size");
                if cfg.verify {
                    verify_payload(&buf, &expected, w.kernel);
                }
                comm.send_bytes(&[], 0, PONG_TAG).expect("pong");
                if cfg.flush {
                    comm.flush_cache(cfg.flush_bytes);
                }
            }
            comm.barrier().expect("end barrier");
            (Vec::new(), comm.fault_stats())
        }
    });
    let mut faults = faults0;
    faults.absorb(faults1);
    PingPongResult { scheme, msg_bytes, times, faults }
}

/// Sweep one application kernel over message sizes on one platform.
/// Sizes come from `cfg.sizes()` but each is realized by the kernel's
/// own scaling, then deduplicated (coarse-grained kernels can map two
/// requested sizes to the same layout). `cfg.schemes` is ignored —
/// kernels always run [`KERNEL_SCHEMES`].
pub fn run_kernel_sweep(platform: &Platform, kernel: AppKernel, cfg: &SweepConfig) -> Sweep {
    let mut points = Vec::new();
    let mut faults = SweepFaults::default();
    let mut last_bytes = 0usize;
    for target in cfg.sizes() {
        let w = KernelWorkload::sized(kernel, target);
        if w.msg_bytes == last_bytes {
            continue; // two targets collapsed onto the same layout
        }
        last_bytes = w.msg_bytes;
        let selected = kernel_selected_for(platform, &w);
        let pp = cfg.base.clone().adaptive(w.msg_bytes);
        let mut group: Vec<SweepPoint> = Vec::with_capacity(KERNEL_SCHEMES.len());
        for scheme in KERNEL_SCHEMES {
            let r = run_kernel_scheme(platform, scheme, &w, &pp);
            let pf = SweepFaults::from_stats(r.faults);
            faults.merge(pf);
            group.push(SweepPoint {
                scheme,
                msg_bytes: w.msg_bytes,
                time: r.time(),
                bandwidth: r.bandwidth(),
                slowdown: f64::NAN,
                status: PointStatus::Ok,
                selected,
                faults: pf,
            });
        }
        apply_slowdowns(&mut group);
        points.extend(group);
    }
    Sweep { platform: platform.id, points, faults }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonctg_simnet::PlatformId;

    fn quiet() -> Platform {
        let mut p = Platform::skx_impi();
        p.jitter_sigma = 0.0;
        p
    }

    fn small_cfg() -> PingPongConfig {
        PingPongConfig { reps: 3, flush: false, flush_bytes: 0, verify: true }
    }

    #[test]
    fn kernel_keys_round_trip() {
        for k in AppKernel::ALL {
            assert_eq!(k.key().parse::<AppKernel>().unwrap(), k);
        }
    }

    #[test]
    fn sized_workloads_approach_target() {
        for k in AppKernel::ALL {
            for target in [4 << 10, 64 << 10, 1 << 20] {
                let w = KernelWorkload::sized(k, target);
                assert!(w.msg_bytes > 0, "{k} empty at {target}");
                assert!(
                    w.msg_bytes <= 2 * target && 4 * w.msg_bytes >= target,
                    "{k}: {} bytes for target {target}",
                    w.msg_bytes
                );
                assert!(w.extent >= w.msg_bytes);
            }
        }
    }

    #[test]
    fn all_kernel_schemes_run_and_verify() {
        for k in AppKernel::ALL {
            let w = KernelWorkload::sized(k, 32 << 10);
            for scheme in KERNEL_SCHEMES {
                let r = run_kernel_scheme(&quiet(), scheme, &w, &small_cfg());
                assert_eq!(r.times.len(), 3, "{k}/{scheme}");
                assert!(r.time() > 0.0 && r.bandwidth() > 0.0, "{k}/{scheme}");
            }
        }
    }

    #[test]
    fn reference_is_fastest_for_each_kernel() {
        for k in AppKernel::ALL {
            let w = KernelWorkload::sized(k, 256 << 10);
            let r = run_kernel_scheme(&quiet(), Scheme::Reference, &w, &small_cfg()).time();
            for scheme in [Scheme::Copying, Scheme::VectorType, Scheme::PackingVector] {
                let t = run_kernel_scheme(&quiet(), scheme, &w, &small_cfg()).time();
                assert!(t > r, "{k}/{scheme}: {t} vs reference {r}");
            }
        }
    }

    #[test]
    fn kernel_sweeps_cover_all_platforms() {
        let cfg = SweepConfig {
            schemes: Vec::new(),
            min_bytes: 8 << 10,
            max_bytes: 128 << 10,
            step: 4,
            base: small_cfg(),
        };
        for id in PlatformId::ALL {
            let mut p = Platform::get(id);
            p.jitter_sigma = 0.0;
            for k in AppKernel::ALL {
                let sweep = run_kernel_sweep(&p, k, &cfg);
                assert_eq!(sweep.platform, id);
                assert!(!sweep.points.is_empty(), "{id:?}/{k}");
                assert!(sweep.points.iter().all(|pt| pt.status == PointStatus::Ok));
                for pt in sweep.series(Scheme::Reference) {
                    assert!((pt.slowdown - 1.0).abs() < 1e-12, "{id:?}/{k}");
                }
            }
        }
    }

    #[test]
    fn wrf_crosses_the_region_cap_and_selects_pack() {
        let w = KernelWorkload::sized(AppKernel::Wrf, 256 << 10);
        assert!(
            w.regions(nonctg_core::iov_max_regions()).is_none(),
            "large WRF halo should exceed the iovec descriptor cap"
        );
        assert_eq!(kernel_selected_for(&quiet(), &w), Datapath::Pack);
    }

    #[test]
    fn milc_large_faces_select_iovec() {
        // Few 2304-byte regions, well past the eager limit: the
        // shape-aware selector should take the zero-copy path.
        let w = KernelWorkload::sized(AppKernel::Milc, 256 << 10);
        assert_eq!(kernel_selected_for(&quiet(), &w), Datapath::Iov);
    }

    #[test]
    fn lammps_skew_keeps_pack_despite_high_mean() {
        // Mixed 24 B / 4 KiB records: mean region length is high but the
        // sub-cacheline descriptors dominate the weighted cost.
        let w = KernelWorkload::sized(AppKernel::Lammps, 256 << 10);
        assert_eq!(kernel_selected_for(&quiet(), &w), Datapath::Pack);
    }
}
