//! Measurement statistics with the paper's outlier rejection (§3.2):
//! samples more than one standard deviation from the average are
//! dismissed before the reported mean is computed.

/// Summary statistics of a set of timing samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Mean of the samples kept after rejection.
    pub mean: f64,
    /// Standard deviation of all samples (before rejection).
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Number of samples supplied.
    pub n: usize,
    /// Number of samples dismissed as outliers.
    pub rejected: usize,
}

/// Plain mean.
pub fn mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().sum::<f64>() / samples.len() as f64
}

/// Population standard deviation.
pub fn stddev(samples: &[f64]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples);
    (samples.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / samples.len() as f64).sqrt()
}

impl Stats {
    /// The summary of zero samples: NaN moments, `n == 0`. Returned by
    /// [`summarize`] for a measurement that produced no data (e.g. every
    /// repetition failed under fault injection).
    pub fn empty() -> Stats {
        Stats { mean: f64::NAN, stddev: f64::NAN, min: f64::NAN, max: f64::NAN, n: 0, rejected: 0 }
    }

    /// Whether this summary came from zero samples.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// Whether the rejection step is meaningful for this sample set. With two
/// samples each sits exactly one standard deviation from the mean, so the
/// `<= sd` test degenerates to a float-rounding coin flip; with identical
/// samples the rounded mean can likewise sit a few ulps off every sample
/// while `sd` rounds to slightly less. Both cases must keep everything.
fn rejection_applies(samples: &[f64]) -> bool {
    samples.len() > 2 && samples.windows(2).any(|w| w[0] != w[1])
}

/// The paper's procedure: compute mean and standard deviation, dismiss
/// samples more than one standard deviation from the mean, report the
/// mean of what remains (all samples, if rejection would empty the set).
/// Degenerate inputs (n <= 2 or all-identical timings) skip rejection.
///
/// Zero samples yield [`Stats::empty`] rather than a panic, so a fully
/// failed measurement stays representable.
pub fn summarize(samples: &[f64]) -> Stats {
    if samples.is_empty() {
        return Stats::empty();
    }
    let m = mean(samples);
    let sd = stddev(samples);
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);

    if !rejection_applies(samples) {
        return Stats { mean: m, stddev: sd, min, max, n: samples.len(), rejected: 0 };
    }
    let kept: Vec<f64> = samples.iter().copied().filter(|x| (x - m).abs() <= sd).collect();
    let (final_mean, rejected) = if kept.is_empty() {
        (m, 0)
    } else {
        (mean(&kept), samples.len() - kept.len())
    };
    Stats { mean: final_mean, stddev: sd, min, max, n: samples.len(), rejected }
}

/// Which samples the rejection procedure of [`summarize`] keeps, as a
/// mask parallel to `samples`. When rejection would dismiss every sample
/// (possible only with non-finite input, where the deviation test is
/// false for everything), the mask keeps everything — matching the
/// all-samples fallback mean [`summarize`] reports in that case.
///
/// Phase attribution averages per-rep phase breakdowns over exactly this
/// mask so phase sums reproduce the reported mean instead of drifting
/// whenever a rep is dismissed.
pub fn kept_mask(samples: &[f64]) -> Vec<bool> {
    if !rejection_applies(samples) {
        return vec![true; samples.len()];
    }
    let m = mean(samples);
    let sd = stddev(samples);
    let mask: Vec<bool> = samples.iter().map(|x| (x - m).abs() <= sd).collect();
    if mask.iter().any(|&k| k) {
        mask
    } else {
        vec![true; samples.len()]
    }
}

/// Effective bandwidth in bytes/second for a payload moved in `seconds`.
/// Zero for non-positive or non-finite durations (failed measurements).
pub fn bandwidth(bytes: usize, seconds: f64) -> f64 {
    if !seconds.is_finite() || seconds <= 0.0 {
        return 0.0;
    }
    bytes as f64 / seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_pass_through() {
        let s = summarize(&[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.rejected, 0);
        assert_eq!((s.min, s.max), (2.0, 2.0));
    }

    #[test]
    fn outlier_is_dismissed() {
        // 19 samples at ~1.0, one wild outlier.
        let mut v = vec![1.0; 19];
        v.push(100.0);
        let s = summarize(&v);
        assert!(s.rejected >= 1);
        assert!((s.mean - 1.0).abs() < 1e-9, "outlier should not pull the mean: {}", s.mean);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn stddev_basic() {
        assert!((stddev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
        assert_eq!(stddev(&[5.0]), 0.0);
    }

    #[test]
    fn bandwidth_simple() {
        assert_eq!(bandwidth(1_000_000, 0.001), 1e9);
        assert_eq!(bandwidth(100, 0.0), 0.0);
    }

    #[test]
    fn empty_yields_explicit_empty_stats() {
        let s = summarize(&[]);
        assert!(s.is_empty());
        assert_eq!(s.n, 0);
        assert!(s.mean.is_nan() && s.stddev.is_nan() && s.min.is_nan() && s.max.is_nan());
        assert_eq!(bandwidth(1024, s.mean), 0.0);
    }

    #[test]
    fn single_sample_is_its_own_summary() {
        let s = summarize(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!((s.min, s.max), (3.5, 3.5));
        assert_eq!(s.n, 1);
        assert_eq!(s.rejected, 0);
        assert!(!s.is_empty());
    }

    #[test]
    fn all_identical_never_reject() {
        // sd == 0, so the keep test is |x - m| <= 0 — exactly satisfied by
        // every sample; nothing may be dismissed.
        let s = summarize(&[7.0; 16]);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.n, 16);
    }

    #[test]
    fn rejection_removing_every_sample_falls_back_to_plain_mean() {
        // With an infinite sample both mean and stddev are non-finite, so
        // |x - m| <= sd holds for no sample: the kept set is empty and
        // summarize must fall back to the all-samples mean (reporting
        // zero rejections) instead of panicking or returning NaN counts.
        let v = [1.0, f64::INFINITY];
        let s = summarize(&v);
        assert_eq!(s.rejected, 0);
        assert_eq!(s.n, 2);
        assert!(s.mean.is_infinite());
        // the NaN flavor of the same degenerate case
        let s = summarize(&[2.0, f64::NAN]);
        assert_eq!(s.rejected, 0);
        assert!(s.mean.is_nan());
        // and the mask helper mirrors the fallback by keeping everything
        assert_eq!(kept_mask(&v), vec![true, true]);
    }

    #[test]
    fn two_samples_keep_both() {
        // With two distinct samples each sits exactly one standard
        // deviation from the mean; float rounding of `m` can push one of
        // them over the `<= sd` edge (0.1 vs. 0.2 does exactly that) and
        // the "mean" collapses to a single arbitrary sample. n <= 2 must
        // bypass rejection entirely.
        let v = [0.1, 0.2];
        let s = summarize(&v);
        assert_eq!(s.rejected, 0);
        assert!((s.mean - 0.15).abs() < 1e-12, "mean collapsed to one sample: {}", s.mean);
        assert_eq!(kept_mask(&v), vec![true, true]);
        // and the generic two-sample case, both orders
        for v in [[3.0, 9.0], [9.0, 3.0]] {
            let s = summarize(&v);
            assert_eq!((s.rejected, s.mean), (0, 6.0));
            assert_eq!(kept_mask(&v), vec![true, true]);
        }
    }

    #[test]
    fn near_identical_samples_keep_everything() {
        // All-identical timings must never reject, even when the mean
        // itself rounds (0.1 summed and divided is not exactly 0.1).
        let v = [0.1; 3];
        let s = summarize(&v);
        assert_eq!(s.rejected, 0);
        assert_eq!(kept_mask(&v), vec![true; 3]);
    }

    #[test]
    fn kept_mask_matches_summarize_mean() {
        let mut v = vec![1.0; 19];
        v.push(100.0);
        let mask = kept_mask(&v);
        let kept: Vec<f64> =
            v.iter().zip(&mask).filter(|(_, &k)| k).map(|(&x, _)| x).collect();
        let s = summarize(&v);
        assert_eq!(s.n - s.rejected, kept.len());
        assert!((mean(&kept) - s.mean).abs() < 1e-12);
    }
}
