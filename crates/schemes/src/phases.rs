//! Per-scheme phase attribution: where does each scheme's ping-pong
//! time go — packing, transfer, synchronization, or unpacking?
//!
//! The attribution folds the traced event stream of a measured run (see
//! `nonctg_core::trace`) into four phase buckets per repetition, then
//! averages repetitions over exactly the outlier-rejection mask the
//! reported mean uses ([`crate::stats::kept_mask`]), so for every
//! (scheme, size) point the phase sums reproduce the reported time
//! rather than drifting whenever a rep is dismissed.
//!
//! Events nest (a `stage` runs inside its `send`); attribution is
//! *innermost wins*: each elementary slice of the timed window is
//! charged to the most recently started event covering it. Window time
//! covered by no event at all is synchronization by definition — the
//! sender was waiting on its peer.

use std::fmt::Write as _;

use nonctg_core::{EventKind, TraceEvent};
use nonctg_simnet::{Platform, PlatformId};

use crate::pingpong::{try_run_scheme_observed, MeasureError, Observe, PingPongConfig};
use crate::scheme::Scheme;
use crate::stats;
use crate::sweep::SweepConfig;
use crate::workload::Workload;

/// The four cost phases of a non-contiguous send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Marshalling scattered data into wire form (`pack`, `copy`,
    /// `stage`).
    Pack,
    /// Moving bytes between ranks (`send`, `recv`, `put`, ...).
    Transfer,
    /// Waiting on the peer or the fabric (`barrier`, `fence`, `flush`,
    /// and any window time not covered by a traced event).
    Sync,
    /// Scattering received wire bytes back out (`unpack`, `unstage`).
    Unpack,
}

impl Phase {
    /// Every phase, in report-column order.
    pub const ALL: [Phase; 4] = [Phase::Pack, Phase::Transfer, Phase::Sync, Phase::Unpack];

    /// Stable lowercase key used in CSV/JSON columns.
    pub fn key(self) -> &'static str {
        match self {
            Phase::Pack => "pack",
            Phase::Transfer => "transfer",
            Phase::Sync => "sync",
            Phase::Unpack => "unpack",
        }
    }

    /// The phase a traced operation belongs to.
    pub fn of(kind: EventKind) -> Phase {
        match kind {
            EventKind::Pack | EventKind::Copy | EventKind::Stage => Phase::Pack,
            EventKind::Unpack | EventKind::Unstage => Phase::Unpack,
            EventKind::Barrier | EventKind::Fence | EventKind::Flush => Phase::Sync,
            EventKind::Send
            | EventKind::Bsend
            | EventKind::Isend
            | EventKind::Recv
            | EventKind::Put
            | EventKind::Get
            | EventKind::Chunk => Phase::Transfer,
            // Zero-width markers: demotion and selector decisions cost
            // no virtual time, so their phases never accumulate any.
            EventKind::Demote | EventKind::Select => Phase::Sync,
        }
    }
}

/// Seconds spent in each phase over one timed window (or averaged over
/// several).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Gather/marshalling time, seconds.
    pub pack: f64,
    /// Wire-movement time, seconds.
    pub transfer: f64,
    /// Synchronization/wait time, seconds.
    pub sync: f64,
    /// Scatter/demarshalling time, seconds.
    pub unpack: f64,
}

impl PhaseTimes {
    /// Seconds attributed to `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        match phase {
            Phase::Pack => self.pack,
            Phase::Transfer => self.transfer,
            Phase::Sync => self.sync,
            Phase::Unpack => self.unpack,
        }
    }

    /// Add `seconds` to `phase`.
    pub fn add(&mut self, phase: Phase, seconds: f64) {
        match phase {
            Phase::Pack => self.pack += seconds,
            Phase::Transfer => self.transfer += seconds,
            Phase::Sync => self.sync += seconds,
            Phase::Unpack => self.unpack += seconds,
        }
    }

    /// Sum of all four phases — equals the window length it was
    /// attributed over.
    pub fn total(&self) -> f64 {
        self.pack + self.transfer + self.sync + self.unpack
    }

    /// Scale every phase by `f` (used for averaging).
    fn scaled(&self, f: f64) -> PhaseTimes {
        PhaseTimes {
            pack: self.pack * f,
            transfer: self.transfer * f,
            sync: self.sync * f,
            unpack: self.unpack * f,
        }
    }

    fn accumulate(&mut self, other: &PhaseTimes) {
        self.pack += other.pack;
        self.transfer += other.transfer;
        self.sync += other.sync;
        self.unpack += other.unpack;
    }
}

/// Fold one rank's event stream into per-window phase breakdowns.
///
/// Each window `(t0, t1)` — one ping-pong repetition as timed by the
/// sender — is partitioned at every event boundary inside it; each
/// elementary slice is charged to the innermost covering event (latest
/// start wins, then earliest end, then earliest record order), or to
/// [`Phase::Sync`] when nothing covers it. Every returned breakdown
/// therefore sums to exactly its window's length.
pub fn attribute(events: &[TraceEvent], windows: &[(f64, f64)]) -> Vec<PhaseTimes> {
    windows
        .iter()
        .map(|&(w0, w1)| {
            let mut out = PhaseTimes::default();
            if w1 <= w0 || w0.is_nan() || w1.is_nan() {
                return out;
            }
            // Events overlapping this window, clamped to it.
            let clamped: Vec<(f64, f64, EventKind, f64)> = events
                .iter()
                .filter(|e| e.t_end > w0 && e.t_start < w1)
                .map(|e| (e.t_start.max(w0), e.t_end.min(w1), e.kind, e.t_start))
                .collect();
            let mut cuts: Vec<f64> = Vec::with_capacity(2 * clamped.len() + 2);
            cuts.push(w0);
            cuts.push(w1);
            for &(a, b, _, _) in &clamped {
                cuts.push(a);
                cuts.push(b);
            }
            cuts.sort_by(f64::total_cmp);
            cuts.dedup();
            for pair in cuts.windows(2) {
                let (a, b) = (pair[0], pair[1]);
                // Innermost covering event: max true start, then min end,
                // then first recorded (inner events are recorded first —
                // they finish before their enclosing operation).
                let phase = clamped
                    .iter()
                    .enumerate()
                    .filter(|(_, &(ca, cb, _, _))| ca <= a && cb >= b)
                    .max_by(|(i, &(_, ea, _, sa)), (j, &(_, eb, _, sb))| {
                        sa.total_cmp(&sb)
                            .then(eb.total_cmp(&ea))
                            .then(j.cmp(i))
                    })
                    .map(|(_, &(_, _, kind, _))| Phase::of(kind))
                    .unwrap_or(Phase::Sync);
                out.add(phase, b - a);
            }
            out
        })
        .collect()
}

/// One (scheme, size) point of a phase sweep.
#[derive(Debug, Clone, Copy)]
pub struct PhasePoint {
    /// The scheme measured.
    pub scheme: Scheme,
    /// Message payload in bytes.
    pub msg_bytes: usize,
    /// Reported mean ping-pong time (outlier-rejected), seconds.
    pub time: f64,
    /// Phase breakdown averaged over the kept repetitions; sums to
    /// [`PhasePoint::time`] up to float rounding.
    pub phases: PhaseTimes,
    /// Repetitions measured.
    pub reps: usize,
}

/// A phase breakdown for every (scheme, size) point of a sweep.
#[derive(Debug, Clone)]
pub struct PhaseSweep {
    /// The platform this ran on.
    pub platform: PlatformId,
    /// Points in (size-major, legend-order) sequence.
    pub points: Vec<PhasePoint>,
}

impl PhaseSweep {
    /// Render as CSV with one row per (scheme, size) point.
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("platform,scheme,msg_bytes,time_s,pack_s,transfer_s,sync_s,unpack_s,reps\n");
        for p in &self.points {
            let _ = writeln!(
                out,
                "{},{},{},{:.9e},{:.9e},{:.9e},{:.9e},{:.9e},{}",
                self.platform.name(),
                p.scheme.key(),
                p.msg_bytes,
                p.time,
                p.phases.pack,
                p.phases.transfer,
                p.phases.sync,
                p.phases.unpack,
                p.reps,
            );
        }
        out
    }

    /// Render as a self-contained JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"platform\": \"");
        out.push_str(self.platform.name());
        out.push_str("\",\n  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            let _ = writeln!(
                out,
                "    {{\"scheme\": \"{}\", \"msg_bytes\": {}, \"time_s\": {:e}, \
                 \"pack_s\": {:e}, \"transfer_s\": {:e}, \"sync_s\": {:e}, \
                 \"unpack_s\": {:e}, \"reps\": {}}}{}",
                p.scheme.key(),
                p.msg_bytes,
                p.time,
                p.phases.pack,
                p.phases.transfer,
                p.phases.sync,
                p.phases.unpack,
                p.reps,
                if i + 1 < self.points.len() { "," } else { "" },
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Measure one scheme with tracing on and attribute its phases.
///
/// The breakdown averages the sender's per-repetition attributions over
/// exactly the repetitions the §3.2 outlier rejection keeps, so
/// `phases.total()` equals the reported `time` up to float rounding.
pub fn run_scheme_phases(
    platform: &Platform,
    scheme: Scheme,
    workload: &Workload,
    cfg: &PingPongConfig,
) -> std::result::Result<PhasePoint, MeasureError> {
    let run = try_run_scheme_observed(platform, scheme, workload, cfg, Observe::TRACE)?;
    let per_rep = attribute(&run.events[0], &run.windows);
    let mask = stats::kept_mask(&run.result.times);
    let kept = mask.iter().filter(|&&k| k).count().max(1);
    let mut avg = PhaseTimes::default();
    for (p, _) in per_rep.iter().zip(&mask).filter(|(_, &k)| k) {
        avg.accumulate(p);
    }
    let avg = avg.scaled(1.0 / kept as f64);
    Ok(PhasePoint {
        scheme,
        msg_bytes: run.result.msg_bytes,
        time: run.result.time(),
        phases: avg,
        reps: run.result.times.len(),
    })
}

/// Run a phase-attributed sweep, invoking `progress` per finished point.
///
/// Panics if a measurement fails (like [`crate::run_sweep`]); use fault-free
/// platforms for phase attribution.
pub fn run_phase_sweep_with(
    platform: &Platform,
    cfg: &SweepConfig,
    mut progress: impl FnMut(&PhasePoint),
) -> PhaseSweep {
    let mut points = Vec::new();
    for bytes in cfg.sizes() {
        let elems = bytes / Workload::ELEM;
        let w = Workload::every_other(elems);
        let pp = cfg.base.clone().adaptive(bytes);
        for &scheme in &cfg.schemes {
            let p = run_scheme_phases(platform, scheme, &w, &pp)
                .unwrap_or_else(|e| panic!("phase measurement failed: {e}"));
            progress(&p);
            points.push(p);
        }
    }
    PhaseSweep { platform: platform.id, points }
}

/// [`run_phase_sweep_with`] without a progress callback.
pub fn run_phase_sweep(platform: &Platform, cfg: &SweepConfig) -> PhaseSweep {
    run_phase_sweep_with(platform, cfg, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, a: f64, b: f64) -> TraceEvent {
        TraceEvent {
            kind,
            t_start: a,
            t_end: b,
            peer: Some(1),
            bytes: 8,
            tag: None,
            seq: None,
            depth: None,
        }
    }

    #[test]
    fn phase_mapping_is_total() {
        for kind in EventKind::ALL {
            let _ = Phase::of(kind); // every kind maps somewhere
        }
        assert_eq!(Phase::of(EventKind::Stage), Phase::Pack);
        assert_eq!(Phase::of(EventKind::Unstage), Phase::Unpack);
        assert_eq!(Phase::of(EventKind::Fence), Phase::Sync);
        assert_eq!(Phase::of(EventKind::Isend), Phase::Transfer);
    }

    #[test]
    fn nested_stage_charges_pack_not_transfer() {
        // A send spanning the whole window with a staging gather nested
        // inside it: the gather's slice is pack, the rest transfer.
        let events = vec![ev(EventKind::Send, 0.0, 10.0), ev(EventKind::Stage, 2.0, 5.0)];
        let out = attribute(&events, &[(0.0, 10.0)]);
        assert_eq!(out.len(), 1);
        assert!((out[0].pack - 3.0).abs() < 1e-12, "{:?}", out[0]);
        assert!((out[0].transfer - 7.0).abs() < 1e-12, "{:?}", out[0]);
        assert_eq!(out[0].sync, 0.0);
        assert!((out[0].total() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn uncovered_window_time_is_sync() {
        let events = vec![ev(EventKind::Send, 2.0, 8.0)];
        let out = attribute(&events, &[(0.0, 10.0)]);
        assert!((out[0].transfer - 6.0).abs() < 1e-12);
        assert!((out[0].sync - 4.0).abs() < 1e-12);
        assert!((out[0].total() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn events_outside_window_are_clamped_or_ignored() {
        let events = vec![
            ev(EventKind::Pack, -5.0, 1.0),   // clamped to [0, 1]
            ev(EventKind::Copy, 20.0, 30.0),  // outside entirely
            ev(EventKind::Send, 1.0, 12.0),   // clamped to [1, 10]
        ];
        let out = attribute(&events, &[(0.0, 10.0)]);
        assert!((out[0].pack - 1.0).abs() < 1e-12, "{:?}", out[0]);
        assert!((out[0].transfer - 9.0).abs() < 1e-12);
        assert!((out[0].total() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empty_or_degenerate_windows_yield_zeroes() {
        let events = vec![ev(EventKind::Send, 0.0, 1.0)];
        let out = attribute(&events, &[(5.0, 5.0), (7.0, 6.0)]);
        assert_eq!(out, vec![PhaseTimes::default(); 2]);
        assert!(attribute(&[], &[]).is_empty());
    }

    #[test]
    fn breakdown_sums_to_window_lengths() {
        // Three-deep nesting with partial overlap across boundaries.
        let events = vec![
            ev(EventKind::Barrier, 0.0, 1.0),
            ev(EventKind::Send, 1.0, 7.0),
            ev(EventKind::Stage, 1.5, 3.0),
            ev(EventKind::Recv, 7.0, 9.5),
            ev(EventKind::Unstage, 9.0, 9.5),
        ];
        let windows = [(0.0, 10.0), (0.5, 4.0)];
        for (w, p) in windows.iter().zip(attribute(&events, &windows)) {
            assert!((p.total() - (w.1 - w.0)).abs() < 1e-12, "{p:?} vs {w:?}");
        }
    }

    #[test]
    fn csv_and_json_render() {
        let sweep = PhaseSweep {
            platform: PlatformId::SkxImpi,
            points: vec![PhasePoint {
                scheme: Scheme::VectorType,
                msg_bytes: 1024,
                time: 1e-5,
                phases: PhaseTimes { pack: 2e-6, transfer: 6e-6, sync: 1e-6, unpack: 1e-6 },
                reps: 20,
            }],
        };
        let csv = sweep.to_csv();
        assert!(csv.starts_with("platform,scheme,msg_bytes,time_s,pack_s"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("skx-impi,vector,1024,"));
        let json = sweep.to_json();
        assert!(json.contains("\"scheme\": \"vector\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
