//! The eight send schemes of the paper (§2).

use std::fmt;
use std::str::FromStr;

/// One of the paper's schemes for moving non-contiguous data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Contiguous send — the baseline/attainable rate (§2.1).
    Reference,
    /// Manual gather into a reused contiguous buffer, then send (§2.2).
    Copying,
    /// `Buffer_attach` + `Bsend` of the derived type (§2.4).
    Buffered,
    /// Direct send of an `MPI_Type_vector` equivalent (§2.3).
    VectorType,
    /// Direct send of an `MPI_Type_create_subarray` equivalent (§2.3).
    Subarray,
    /// `Put` of the derived type inside `Win_fence` epochs (§2.5).
    OneSided,
    /// One `Pack` call **per element**, then send the packed buffer (§2.6).
    PackingElement,
    /// One `Pack` call on the whole vector datatype, then send (§2.6).
    PackingVector,
}

impl Scheme {
    /// All schemes, in the paper's legend order.
    pub const ALL: [Scheme; 8] = [
        Scheme::Reference,
        Scheme::Copying,
        Scheme::Buffered,
        Scheme::VectorType,
        Scheme::Subarray,
        Scheme::OneSided,
        Scheme::PackingElement,
        Scheme::PackingVector,
    ];

    /// The non-contiguous schemes (everything but the reference).
    pub const NON_CONTIGUOUS: [Scheme; 7] = [
        Scheme::Copying,
        Scheme::Buffered,
        Scheme::VectorType,
        Scheme::Subarray,
        Scheme::OneSided,
        Scheme::PackingElement,
        Scheme::PackingVector,
    ];

    /// The paper's legend label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Reference => "reference",
            Scheme::Copying => "copying",
            Scheme::Buffered => "buffered",
            Scheme::VectorType => "vector type",
            Scheme::Subarray => "subarray",
            Scheme::OneSided => "onesided",
            Scheme::PackingElement => "packing(e)",
            Scheme::PackingVector => "packing(v)",
        }
    }

    /// Machine-friendly key for CSV columns and CLI flags.
    pub fn key(self) -> &'static str {
        match self {
            Scheme::Reference => "reference",
            Scheme::Copying => "copying",
            Scheme::Buffered => "buffered",
            Scheme::VectorType => "vector",
            Scheme::Subarray => "subarray",
            Scheme::OneSided => "onesided",
            Scheme::PackingElement => "packing_e",
            Scheme::PackingVector => "packing_v",
        }
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for Scheme {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reference" | "ref" => Ok(Scheme::Reference),
            "copying" | "copy" => Ok(Scheme::Copying),
            "buffered" | "bsend" => Ok(Scheme::Buffered),
            "vector" | "vector-type" => Ok(Scheme::VectorType),
            "subarray" => Ok(Scheme::Subarray),
            "onesided" | "one-sided" | "put" => Ok(Scheme::OneSided),
            "packing_e" | "packing(e)" => Ok(Scheme::PackingElement),
            "packing_v" | "packing(v)" => Ok(Scheme::PackingVector),
            other => Err(format!("unknown scheme '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip() {
        for s in Scheme::ALL {
            assert_eq!(s.key().parse::<Scheme>().unwrap(), s);
        }
    }

    #[test]
    fn labels_match_paper_legend() {
        let legend: Vec<&str> = Scheme::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(
            legend,
            [
                "reference",
                "copying",
                "buffered",
                "vector type",
                "subarray",
                "onesided",
                "packing(e)",
                "packing(v)"
            ]
        );
    }

    #[test]
    fn non_contiguous_excludes_reference() {
        assert!(!Scheme::NON_CONTIGUOUS.contains(&Scheme::Reference));
        assert_eq!(Scheme::NON_CONTIGUOUS.len(), Scheme::ALL.len() - 1);
    }
}
