//! Cost explanation: decompose a predicted send time into the paper's §2
//! components, for documentation, debugging, and the `cost_table` bench.

use crate::cost::Access;
use crate::platform::Platform;

/// Which transport path a breakdown describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendPath {
    /// Contiguous send: pipelined NIC injection (the reference).
    Contiguous,
    /// Derived-type send: internal staging then wire, no overlap.
    DerivedType,
    /// Buffered send: staging + attach-buffer accounting + wire.
    Buffered,
    /// One-sided put inside a fence epoch.
    OneSidedPut,
}

/// A predicted one-way message time, split into additive components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SendBreakdown {
    /// Which path was modeled.
    pub path: SendPath,
    /// Payload size in bytes.
    pub bytes: u64,
    /// Per-message software overhead (eager or rendezvous).
    pub overhead: f64,
    /// Gather/staging time before any byte hits the wire (0 when the NIC
    /// streams the user buffer directly).
    pub staging: f64,
    /// Extra cost specific to the path (bsend copy, fence share, ...).
    pub extra: f64,
    /// One-way wire latency.
    pub latency: f64,
    /// Serialization time on the wire (or the pipelined injection).
    pub wire: f64,
}

impl SendBreakdown {
    /// Total predicted one-way time.
    pub fn total(&self) -> f64 {
        self.overhead + self.staging + self.extra + self.latency + self.wire
    }

    /// The paper's "proportionality constant": total over the pure wire
    /// time of the same bytes.
    pub fn slowdown_vs_wire(&self) -> f64 {
        if self.wire > 0.0 {
            self.total() / (self.latency + self.wire)
        } else {
            1.0
        }
    }

    /// Multi-line human-readable rendering.
    pub fn render(&self) -> String {
        let pct = |x: f64| 100.0 * x / self.total().max(f64::MIN_POSITIVE);
        format!(
            "{:?} send of {} bytes: {:.2} us total\n  overhead {:>8.2} us ({:>4.1}%)\n  staging  {:>8.2} us ({:>4.1}%)\n  extra    {:>8.2} us ({:>4.1}%)\n  latency  {:>8.2} us ({:>4.1}%)\n  wire     {:>8.2} us ({:>4.1}%)",
            self.path,
            self.bytes,
            self.total() * 1e6,
            self.overhead * 1e6,
            pct(self.overhead),
            self.staging * 1e6,
            pct(self.staging),
            self.extra * 1e6,
            pct(self.extra),
            self.latency * 1e6,
            pct(self.latency),
            self.wire * 1e6,
            pct(self.wire),
        )
    }
}

impl Platform {
    /// Predict and decompose a one-way send of `bytes` laid out per
    /// `access` over `path`, with the cache `warm` or flushed.
    pub fn explain_send(
        &self,
        path: SendPath,
        bytes: u64,
        access: &Access,
        warm: bool,
    ) -> SendBreakdown {
        let eager = bytes <= self.eager_threshold(false);
        match path {
            SendPath::Contiguous => SendBreakdown {
                path,
                bytes,
                overhead: self.send_overhead(eager),
                staging: 0.0,
                extra: 0.0,
                latency: self.net.latency,
                wire: self.contiguous_injection(bytes),
            },
            SendPath::DerivedType => SendBreakdown {
                path,
                bytes,
                overhead: self.send_overhead(eager),
                staging: self.staging_time(bytes, access, warm),
                extra: 0.0,
                latency: self.net.latency,
                wire: self.wire_time(bytes, 1.0),
            },
            SendPath::Buffered => SendBreakdown {
                path,
                bytes,
                overhead: self.send_overhead(true),
                staging: self.staging_time(bytes, access, warm),
                extra: self.bsend_extra(bytes),
                latency: self.net.latency,
                wire: self.wire_time(bytes, 1.0),
            },
            SendPath::OneSidedPut => {
                let gather = match access {
                    Access::Contiguous => 0.0,
                    a => self.gather_time(bytes, a, warm),
                };
                let mut wire = self.wire_time(bytes, self.rma.bw_factor);
                if bytes > self.proto.internal_buffer {
                    wire *= self.rma.large_penalty;
                    wire += bytes.div_ceil(self.proto.chunk_size.max(1)) as f64
                        * self.proto.chunk_overhead;
                }
                SendBreakdown {
                    path,
                    bytes,
                    overhead: self.rma.put_overhead,
                    staging: gather,
                    // Two fences bracket the transfer; attribute both here.
                    extra: 2.0 * self.fence_time(2),
                    latency: self.net.latency,
                    wire,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skx() -> Platform {
        Platform::skx_impi()
    }

    fn stride2() -> Access {
        Access::Strided { blocklen: 8, stride: 16 }
    }

    #[test]
    fn contiguous_has_no_staging() {
        let b = skx().explain_send(SendPath::Contiguous, 1 << 20, &Access::Contiguous, false);
        assert_eq!(b.staging, 0.0);
        assert!(b.total() > 0.0);
        assert!(b.slowdown_vs_wire() < 1.2);
    }

    #[test]
    fn derived_pays_staging_that_dominates_the_gap() {
        let p = skx();
        let c = p.explain_send(SendPath::Contiguous, 1 << 22, &Access::Contiguous, false);
        let d = p.explain_send(SendPath::DerivedType, 1 << 22, &stride2(), false);
        assert!(d.staging > 0.0);
        let gap = d.total() - c.total();
        assert!(
            d.staging / gap > 0.75,
            "staging should explain most of the derived-type gap"
        );
        // The paper's ~3x constant at volume.
        let slowdown = d.total() / c.total();
        assert!((2.0..4.0).contains(&slowdown), "{slowdown}");
    }

    #[test]
    fn buffered_total_exceeds_derived() {
        let p = skx();
        let d = p.explain_send(SendPath::DerivedType, 1 << 20, &stride2(), false);
        let b = p.explain_send(SendPath::Buffered, 1 << 20, &stride2(), false);
        assert!(b.total() > d.total());
        assert!(b.extra > 0.0);
    }

    #[test]
    fn put_small_message_is_fence_bound() {
        let b = skx().explain_send(SendPath::OneSidedPut, 256, &stride2(), false);
        assert!(b.extra > 0.5 * b.total(), "fences should dominate: {}", b.render());
    }

    #[test]
    fn components_sum_to_total() {
        for path in [
            SendPath::Contiguous,
            SendPath::DerivedType,
            SendPath::Buffered,
            SendPath::OneSidedPut,
        ] {
            let b = skx().explain_send(path, 1 << 16, &stride2(), true);
            let sum = b.overhead + b.staging + b.extra + b.latency + b.wire;
            assert!((sum - b.total()).abs() < 1e-15);
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let b = skx().explain_send(SendPath::DerivedType, 4096, &stride2(), false);
        let r = b.render();
        for key in ["overhead", "staging", "latency", "wire", "us total"] {
            assert!(r.contains(key), "missing {key} in {r}");
        }
    }
}
