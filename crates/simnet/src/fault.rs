//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a pure, seeded description of every fault a run will
//! see: transient send failures, delivery delays, payload corruption, a
//! scheduled rank crash, and persistent per-message failures. Decisions are
//! *stateless* — each is a SplitMix64 hash of `(seed, rank, op index)` (the
//! same generator family as [`crate::Jitter`]) — so the schedule is
//! bit-identical across runs and independent of thread interleaving. The
//! plan rides on [`crate::Platform`], which every layer of the stack
//! already carries, so the runtime, the schemes, and the benchmark
//! binaries all see the same schedule.

/// Mix a set of words into a SplitMix64-style hash.
#[inline]
fn mix(words: &[u64]) -> u64 {
    let mut z = 0x9E37_79B9_7F4A_7C15u64;
    for &w in words {
        z = z.wrapping_add(w).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// Uniform in [0, 1) from a hash word.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A scheduled hard crash of one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPoint {
    /// World rank that crashes.
    pub rank: usize,
    /// The crash fires when the rank begins its `after_ops`-th tracked
    /// operation (sends and receives count; 0 = the very first).
    pub after_ops: u64,
}

/// A persistent (non-retryable) send failure on a byte-size band.
///
/// Sends from `rank` whose packed payload size falls in
/// `[min_bytes, max_bytes]` fail on every attempt — the retry policy
/// cannot absorb them. This is how a sweep test kills exactly one
/// (scheme, size) point: pick the band around one message size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersistentFault {
    /// World rank whose sends fail.
    pub rank: usize,
    /// Smallest affected payload, bytes (inclusive).
    pub min_bytes: u64,
    /// Largest affected payload, bytes (inclusive).
    pub max_bytes: u64,
}

/// The faults decided for one send operation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SendFault {
    /// Number of consecutive transient failures before the send goes
    /// through; `u32::MAX` means the failure is persistent.
    pub transient_failures: u32,
    /// Extra virtual delivery delay, seconds (0 = none).
    pub delay: f64,
    /// Corrupt one payload byte (exercises the receiver's verify path).
    pub corrupt: bool,
}

impl SendFault {
    /// Whether this decision injects anything at all.
    pub fn is_clean(&self) -> bool {
        self.transient_failures == 0 && self.delay == 0.0 && !self.corrupt
    }

    /// Whether the failure outlasts any bounded retry policy.
    pub fn is_persistent(&self) -> bool {
        self.transient_failures == u32::MAX
    }
}

/// A deterministic, seeded schedule of injected faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the decision hash; two plans with the same seed and knobs
    /// produce bit-identical schedules.
    pub seed: u64,
    /// Probability that a send suffers at least one transient failure.
    /// Consecutive failures are geometric: `p^k` for `k` in a row.
    pub send_fail_prob: f64,
    /// Probability that a delivery is delayed by `delay_seconds`.
    pub delay_prob: f64,
    /// Virtual delay added to an affected delivery, seconds.
    pub delay_seconds: f64,
    /// Probability that a payload byte is corrupted in flight.
    pub corrupt_prob: f64,
    /// Scheduled hard crash of one rank, if any.
    pub crash: Option<CrashPoint>,
    /// Persistent send failure band, if any.
    pub persistent: Option<PersistentFault>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a builder base).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            send_fail_prob: 0.0,
            delay_prob: 0.0,
            delay_seconds: 0.0,
            corrupt_prob: 0.0,
            crash: None,
            persistent: None,
        }
    }

    /// The standard chaos mix driven by one seed: occasional transient
    /// send failures and delivery delays. Corruption and crashes stay off
    /// by default because they abort the affected universe; enable them
    /// explicitly with [`FaultPlan::with_corruption`] /
    /// [`FaultPlan::with_crash`].
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            send_fail_prob: 0.05,
            delay_prob: 0.05,
            delay_seconds: 20e-6,
            corrupt_prob: 0.0,
            crash: None,
            persistent: None,
        }
    }

    /// Builder: set the transient send-failure probability.
    pub fn with_send_failures(mut self, prob: f64) -> FaultPlan {
        self.send_fail_prob = prob;
        self
    }

    /// Builder: set the delivery-delay probability and magnitude.
    pub fn with_delays(mut self, prob: f64, seconds: f64) -> FaultPlan {
        self.delay_prob = prob;
        self.delay_seconds = seconds;
        self
    }

    /// Builder: set the payload-corruption probability.
    pub fn with_corruption(mut self, prob: f64) -> FaultPlan {
        self.corrupt_prob = prob;
        self
    }

    /// Builder: schedule a hard crash.
    pub fn with_crash(mut self, rank: usize, after_ops: u64) -> FaultPlan {
        self.crash = Some(CrashPoint { rank, after_ops });
        self
    }

    /// Builder: make sends from `rank` of sizes in
    /// `[min_bytes, max_bytes]` fail persistently.
    pub fn with_persistent_failure(
        mut self,
        rank: usize,
        min_bytes: u64,
        max_bytes: u64,
    ) -> FaultPlan {
        self.persistent = Some(PersistentFault { rank, min_bytes, max_bytes });
        self
    }

    /// Decide the faults of send number `op` on world rank `rank` with a
    /// `bytes`-sized packed payload. Pure: the same arguments always
    /// return the same decision.
    pub fn send_decision(&self, rank: usize, op: u64, bytes: u64) -> SendFault {
        if let Some(p) = &self.persistent {
            if p.rank == rank && (p.min_bytes..=p.max_bytes).contains(&bytes) {
                return SendFault { transient_failures: u32::MAX, delay: 0.0, corrupt: false };
            }
        }
        let mut f = SendFault::default();
        if self.send_fail_prob > 0.0 {
            // Geometric run of consecutive transient failures, decided in
            // one draw so the count is deterministic per (rank, op).
            let u = unit(mix(&[self.seed, rank as u64, op, 1]));
            let mut k = 0u32;
            let mut threshold = self.send_fail_prob;
            while u < threshold && k < 16 {
                k += 1;
                threshold *= self.send_fail_prob;
            }
            f.transient_failures = k;
        }
        if self.delay_prob > 0.0 && unit(mix(&[self.seed, rank as u64, op, 2])) < self.delay_prob
        {
            f.delay = self.delay_seconds;
        }
        if self.corrupt_prob > 0.0
            && unit(mix(&[self.seed, rank as u64, op, 3])) < self.corrupt_prob
        {
            f.corrupt = true;
        }
        f
    }

    /// Byte index to flip when a `bytes`-sized payload is corrupted.
    pub fn corrupt_index(&self, rank: usize, op: u64, bytes: usize) -> usize {
        if bytes == 0 {
            return 0;
        }
        (mix(&[self.seed, rank as u64, op, 4]) as usize) % bytes
    }

    /// Whether `rank` should crash when starting tracked operation `op`.
    pub fn should_crash(&self, rank: usize, op: u64) -> bool {
        matches!(self.crash, Some(c) if c.rank == rank && op >= c.after_ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_is_clean() {
        let p = FaultPlan::quiet(7);
        for op in 0..200 {
            assert!(p.send_decision(0, op, 1024).is_clean());
            assert!(!p.should_crash(0, op));
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::chaos(42);
        let b = FaultPlan::chaos(42);
        for rank in 0..4 {
            for op in 0..100 {
                assert_eq!(a.send_decision(rank, op, 4096), b.send_decision(rank, op, 4096));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::chaos(1).with_send_failures(0.5);
        let b = FaultPlan::chaos(2).with_send_failures(0.5);
        let same = (0..64)
            .filter(|&op| a.send_decision(0, op, 64) == b.send_decision(0, op, 64))
            .count();
        assert!(same < 64, "two seeds should not agree everywhere");
    }

    #[test]
    fn failure_rate_tracks_probability() {
        let p = FaultPlan::quiet(9).with_send_failures(0.3);
        let n = 10_000;
        let failures = (0..n)
            .filter(|&op| p.send_decision(1, op, 128).transient_failures > 0)
            .count();
        let rate = failures as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn persistent_band_matches_size_and_rank() {
        let p = FaultPlan::quiet(3).with_persistent_failure(0, 1024, 2047);
        assert!(p.send_decision(0, 5, 1024).is_persistent());
        assert!(p.send_decision(0, 5, 2047).is_persistent());
        assert!(!p.send_decision(0, 5, 2048).is_persistent());
        assert!(!p.send_decision(0, 5, 0).is_persistent());
        assert!(!p.send_decision(1, 5, 1500).is_persistent());
    }

    #[test]
    fn crash_fires_at_and_after_threshold() {
        let p = FaultPlan::quiet(0).with_crash(2, 10);
        assert!(!p.should_crash(2, 9));
        assert!(p.should_crash(2, 10));
        assert!(p.should_crash(2, 11));
        assert!(!p.should_crash(1, 10));
    }

    #[test]
    fn corrupt_index_in_bounds() {
        let p = FaultPlan::chaos(5).with_corruption(1.0);
        for op in 0..100 {
            let i = p.corrupt_index(0, op, 777);
            assert!(i < 777);
        }
        assert_eq!(p.corrupt_index(0, 0, 0), 0);
    }
}
