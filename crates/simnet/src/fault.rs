//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a pure, seeded description of every fault a run will
//! see: transient send failures, delivery delays, payload corruption, a
//! scheduled rank crash, and persistent per-message failures. Decisions are
//! *stateless* — each is a SplitMix64 hash of `(seed, rank, op index)` (the
//! same generator family as [`crate::Jitter`]) — so the schedule is
//! bit-identical across runs and independent of thread interleaving. The
//! plan rides on [`crate::Platform`], which every layer of the stack
//! already carries, so the runtime, the schemes, and the benchmark
//! binaries all see the same schedule.

/// Mix a set of words into a SplitMix64-style hash.
#[inline]
fn mix(words: &[u64]) -> u64 {
    let mut z = 0x9E37_79B9_7F4A_7C15u64;
    for &w in words {
        z = z.wrapping_add(w).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
    }
    z
}

/// Uniform in [0, 1) from a hash word.
#[inline]
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A scheduled hard crash of one rank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPoint {
    /// World rank that crashes.
    pub rank: usize,
    /// The crash fires when the rank begins its `after_ops`-th tracked
    /// operation (sends and receives count; 0 = the very first).
    pub after_ops: u64,
}

/// A persistent (non-retryable) send failure on a byte-size band.
///
/// Sends from `rank` whose packed payload size falls in
/// `[min_bytes, max_bytes]` fail on every attempt — the retry policy
/// cannot absorb them. This is how a sweep test kills exactly one
/// (scheme, size) point: pick the band around one message size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersistentFault {
    /// World rank whose sends fail.
    pub rank: usize,
    /// Smallest affected payload, bytes (inclusive).
    pub min_bytes: u64,
    /// Largest affected payload, bytes (inclusive).
    pub max_bytes: u64,
}

/// A sustained link-degradation burst: every send whose op index falls in
/// `[first_op, last_op]` pays `factor`× the platform's base latency
/// instead of 1× (the surcharge is exact, so virtual time stays
/// deterministic). Models a congested or flapping link rather than the
/// single-delivery hiccups of `delay_prob`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkDegradation {
    /// First affected op index (inclusive).
    pub first_op: u64,
    /// Last affected op index (inclusive).
    pub last_op: u64,
    /// Latency multiplier applied during the burst (must be ≥ 1).
    pub factor: f64,
}

/// The faults decided for one pipeline chunk.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChunkFault {
    /// Corrupt one byte of the chunk in flight.
    pub corrupt: bool,
    /// Drop the chunk entirely (it must be re-packed and re-sent).
    pub drop: bool,
}

impl ChunkFault {
    /// Whether this chunk is faulted at all.
    pub fn is_faulty(&self) -> bool {
        self.corrupt || self.drop
    }
}

/// The faults decided for one send operation.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SendFault {
    /// Number of consecutive transient failures before the send goes
    /// through; `u32::MAX` means the failure is persistent.
    pub transient_failures: u32,
    /// Extra virtual delivery delay, seconds (0 = none).
    pub delay: f64,
    /// Corrupt one payload byte (exercises the receiver's verify path).
    pub corrupt: bool,
}

impl SendFault {
    /// Whether this decision injects anything at all.
    pub fn is_clean(&self) -> bool {
        self.transient_failures == 0 && self.delay == 0.0 && !self.corrupt
    }

    /// Whether the failure outlasts any bounded retry policy.
    pub fn is_persistent(&self) -> bool {
        self.transient_failures == u32::MAX
    }
}

/// A deterministic, seeded schedule of injected faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the decision hash; two plans with the same seed and knobs
    /// produce bit-identical schedules.
    pub seed: u64,
    /// Probability that a send suffers at least one transient failure.
    /// Consecutive failures are geometric: `p^k` for `k` in a row.
    pub send_fail_prob: f64,
    /// Probability that a delivery is delayed by `delay_seconds`.
    pub delay_prob: f64,
    /// Virtual delay added to an affected delivery, seconds.
    pub delay_seconds: f64,
    /// Probability that a payload byte is corrupted in flight.
    pub corrupt_prob: f64,
    /// Scheduled hard crash of one rank, if any.
    pub crash: Option<CrashPoint>,
    /// Persistent send failure band, if any.
    pub persistent: Option<PersistentFault>,
    /// Probability that a pipeline chunk is corrupted in flight (v2).
    pub chunk_corrupt_prob: f64,
    /// Probability that a pipeline chunk is dropped in flight (v2).
    pub chunk_drop_prob: f64,
    /// Probability that the payload pool is exhausted when a send asks
    /// for a pooled buffer, forcing an owned-buffer fallback (v2).
    pub pool_exhaust_prob: f64,
    /// Probability that compiling/allocating a pack plan fails, forcing
    /// the uncompiled (interpreter) path (v2).
    pub plan_fail_prob: f64,
    /// Probability that a parallel-pack worker fails, forcing the serial
    /// pack kernel (v2).
    pub pack_worker_fail_prob: f64,
    /// Sustained link-degradation burst, if any (v2).
    pub degrade: Option<LinkDegradation>,
    /// Scheduled receiver-side crash mid-stream, if any (v2). Unlike
    /// [`FaultPlan::crash`] this fires on the receive path and surfaces
    /// as a typed error on both sides rather than a panic.
    pub recv_crash: Option<CrashPoint>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a builder base).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            send_fail_prob: 0.0,
            delay_prob: 0.0,
            delay_seconds: 0.0,
            corrupt_prob: 0.0,
            crash: None,
            persistent: None,
            chunk_corrupt_prob: 0.0,
            chunk_drop_prob: 0.0,
            pool_exhaust_prob: 0.0,
            plan_fail_prob: 0.0,
            pack_worker_fail_prob: 0.0,
            degrade: None,
            recv_crash: None,
        }
    }

    /// The standard chaos mix driven by one seed: occasional transient
    /// send failures, delivery delays, and the recoverable v2 faults —
    /// chunk corruption/drops mid-pipeline, pool exhaustion, plan-compile
    /// failures, and parallel-pack worker failures (all of which the
    /// runtime absorbs by demoting to a slower-but-correct path).
    /// Payload corruption and crashes stay off by default because they
    /// abort the affected universe; enable them explicitly with
    /// [`FaultPlan::with_corruption`] / [`FaultPlan::with_crash`] /
    /// [`FaultPlan::with_recv_crash`].
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            send_fail_prob: 0.05,
            delay_prob: 0.05,
            delay_seconds: 20e-6,
            corrupt_prob: 0.0,
            crash: None,
            persistent: None,
            chunk_corrupt_prob: 0.02,
            chunk_drop_prob: 0.02,
            pool_exhaust_prob: 0.05,
            plan_fail_prob: 0.02,
            pack_worker_fail_prob: 0.02,
            degrade: None,
            recv_crash: None,
        }
    }

    /// Builder: set the transient send-failure probability.
    pub fn with_send_failures(mut self, prob: f64) -> FaultPlan {
        self.send_fail_prob = prob;
        self
    }

    /// Builder: set the delivery-delay probability and magnitude.
    pub fn with_delays(mut self, prob: f64, seconds: f64) -> FaultPlan {
        self.delay_prob = prob;
        self.delay_seconds = seconds;
        self
    }

    /// Builder: set the payload-corruption probability.
    pub fn with_corruption(mut self, prob: f64) -> FaultPlan {
        self.corrupt_prob = prob;
        self
    }

    /// Builder: schedule a hard crash.
    pub fn with_crash(mut self, rank: usize, after_ops: u64) -> FaultPlan {
        self.crash = Some(CrashPoint { rank, after_ops });
        self
    }

    /// Builder: make sends from `rank` of sizes in
    /// `[min_bytes, max_bytes]` fail persistently.
    pub fn with_persistent_failure(
        mut self,
        rank: usize,
        min_bytes: u64,
        max_bytes: u64,
    ) -> FaultPlan {
        self.persistent = Some(PersistentFault { rank, min_bytes, max_bytes });
        self
    }

    /// Builder: set the per-chunk corruption and drop probabilities.
    pub fn with_chunk_faults(mut self, corrupt_prob: f64, drop_prob: f64) -> FaultPlan {
        self.chunk_corrupt_prob = corrupt_prob;
        self.chunk_drop_prob = drop_prob;
        self
    }

    /// Builder: set the payload-pool exhaustion probability.
    pub fn with_pool_exhaustion(mut self, prob: f64) -> FaultPlan {
        self.pool_exhaust_prob = prob;
        self
    }

    /// Builder: set the pack-plan compile/allocation failure probability.
    pub fn with_plan_failures(mut self, prob: f64) -> FaultPlan {
        self.plan_fail_prob = prob;
        self
    }

    /// Builder: set the parallel-pack worker failure probability.
    pub fn with_pack_worker_failures(mut self, prob: f64) -> FaultPlan {
        self.pack_worker_fail_prob = prob;
        self
    }

    /// Builder: sustain a link-degradation burst of `factor`× latency
    /// over op indices `[first_op, last_op]` (inclusive).
    pub fn with_link_degradation(
        mut self,
        first_op: u64,
        last_op: u64,
        factor: f64,
    ) -> FaultPlan {
        self.degrade = Some(LinkDegradation { first_op, last_op, factor });
        self
    }

    /// Builder: schedule a receiver-side crash mid-stream.
    pub fn with_recv_crash(mut self, rank: usize, after_ops: u64) -> FaultPlan {
        self.recv_crash = Some(CrashPoint { rank, after_ops });
        self
    }

    /// Decide the faults of send number `op` on world rank `rank` with a
    /// `bytes`-sized packed payload. Pure: the same arguments always
    /// return the same decision.
    pub fn send_decision(&self, rank: usize, op: u64, bytes: u64) -> SendFault {
        if let Some(p) = &self.persistent {
            if p.rank == rank && (p.min_bytes..=p.max_bytes).contains(&bytes) {
                return SendFault { transient_failures: u32::MAX, delay: 0.0, corrupt: false };
            }
        }
        let mut f = SendFault::default();
        if self.send_fail_prob > 0.0 {
            // Geometric run of consecutive transient failures, decided in
            // one draw so the count is deterministic per (rank, op).
            let u = unit(mix(&[self.seed, rank as u64, op, 1]));
            let mut k = 0u32;
            let mut threshold = self.send_fail_prob;
            while u < threshold && k < 16 {
                k += 1;
                threshold *= self.send_fail_prob;
            }
            f.transient_failures = k;
        }
        if self.delay_prob > 0.0 && unit(mix(&[self.seed, rank as u64, op, 2])) < self.delay_prob
        {
            f.delay = self.delay_seconds;
        }
        if self.corrupt_prob > 0.0
            && unit(mix(&[self.seed, rank as u64, op, 3])) < self.corrupt_prob
        {
            f.corrupt = true;
        }
        f
    }

    /// Byte index to flip when a `bytes`-sized payload is corrupted.
    pub fn corrupt_index(&self, rank: usize, op: u64, bytes: usize) -> usize {
        if bytes == 0 {
            return 0;
        }
        (mix(&[self.seed, rank as u64, op, 4]) as usize) % bytes
    }

    /// Whether `rank` should crash when starting tracked operation `op`.
    pub fn should_crash(&self, rank: usize, op: u64) -> bool {
        matches!(self.crash, Some(c) if c.rank == rank && op >= c.after_ops)
    }

    /// Decide the faults of pipeline chunk number `chunk` of send `op` on
    /// world rank `rank`. Pure: keyed on `(seed, rank, op, chunk)`, so
    /// the forecast taken at the stream gate and the injection taken in
    /// the pump loop agree byte for byte.
    pub fn chunk_decision(&self, rank: usize, op: u64, chunk: u64) -> ChunkFault {
        let mut f = ChunkFault::default();
        if self.chunk_corrupt_prob > 0.0
            && unit(mix(&[self.seed, rank as u64, op, chunk, 5])) < self.chunk_corrupt_prob
        {
            f.corrupt = true;
        }
        if self.chunk_drop_prob > 0.0
            && unit(mix(&[self.seed, rank as u64, op, chunk, 6])) < self.chunk_drop_prob
        {
            f.drop = true;
        }
        f
    }

    /// Byte index to flip inside a corrupted `len`-byte chunk.
    pub fn chunk_corrupt_byte(&self, rank: usize, op: u64, chunk: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (mix(&[self.seed, rank as u64, op, chunk, 9]) as usize) % len
    }

    /// Whether the payload pool is exhausted when send `op` on `rank`
    /// asks for a pooled staging buffer.
    pub fn pool_exhausted(&self, rank: usize, op: u64) -> bool {
        self.pool_exhaust_prob > 0.0
            && unit(mix(&[self.seed, rank as u64, op, 7])) < self.pool_exhaust_prob
    }

    /// Whether compiling/allocating the pack plan fails for send `op` on
    /// `rank` (forcing the uncompiled monolithic path).
    pub fn plan_compile_fails(&self, rank: usize, op: u64) -> bool {
        self.plan_fail_prob > 0.0
            && unit(mix(&[self.seed, rank as u64, op, 8])) < self.plan_fail_prob
    }

    /// Whether a parallel-pack worker fails for send `op` on `rank`
    /// (forcing the serial pack kernel).
    pub fn pack_worker_fails(&self, rank: usize, op: u64) -> bool {
        self.pack_worker_fail_prob > 0.0
            && unit(mix(&[self.seed, rank as u64, op, 10])) < self.pack_worker_fail_prob
    }

    /// Latency multiplier in force for op index `op` (1.0 when no burst
    /// is active). Always ≥ 1 — sub-unit factors are clamped.
    pub fn latency_factor(&self, op: u64) -> f64 {
        match self.degrade {
            Some(d) if (d.first_op..=d.last_op).contains(&op) => d.factor.max(1.0),
            _ => 1.0,
        }
    }

    /// Whether `rank` should crash when starting *receive* operation
    /// `op` (the receiver-side mid-stream crash).
    pub fn should_crash_recv(&self, rank: usize, op: u64) -> bool {
        matches!(self.recv_crash, Some(c) if c.rank == rank && op >= c.after_ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_is_clean() {
        let p = FaultPlan::quiet(7);
        for op in 0..200 {
            assert!(p.send_decision(0, op, 1024).is_clean());
            assert!(!p.should_crash(0, op));
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::chaos(42);
        let b = FaultPlan::chaos(42);
        for rank in 0..4 {
            for op in 0..100 {
                assert_eq!(a.send_decision(rank, op, 4096), b.send_decision(rank, op, 4096));
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::chaos(1).with_send_failures(0.5);
        let b = FaultPlan::chaos(2).with_send_failures(0.5);
        let same = (0..64)
            .filter(|&op| a.send_decision(0, op, 64) == b.send_decision(0, op, 64))
            .count();
        assert!(same < 64, "two seeds should not agree everywhere");
    }

    #[test]
    fn failure_rate_tracks_probability() {
        let p = FaultPlan::quiet(9).with_send_failures(0.3);
        let n = 10_000;
        let failures = (0..n)
            .filter(|&op| p.send_decision(1, op, 128).transient_failures > 0)
            .count();
        let rate = failures as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn persistent_band_matches_size_and_rank() {
        let p = FaultPlan::quiet(3).with_persistent_failure(0, 1024, 2047);
        assert!(p.send_decision(0, 5, 1024).is_persistent());
        assert!(p.send_decision(0, 5, 2047).is_persistent());
        assert!(!p.send_decision(0, 5, 2048).is_persistent());
        assert!(!p.send_decision(0, 5, 0).is_persistent());
        assert!(!p.send_decision(1, 5, 1500).is_persistent());
    }

    #[test]
    fn crash_fires_at_and_after_threshold() {
        let p = FaultPlan::quiet(0).with_crash(2, 10);
        assert!(!p.should_crash(2, 9));
        assert!(p.should_crash(2, 10));
        assert!(p.should_crash(2, 11));
        assert!(!p.should_crash(1, 10));
    }

    #[test]
    fn corrupt_index_in_bounds() {
        let p = FaultPlan::chaos(5).with_corruption(1.0);
        for op in 0..100 {
            let i = p.corrupt_index(0, op, 777);
            assert!(i < 777);
        }
        assert_eq!(p.corrupt_index(0, 0, 0), 0);
    }

    #[test]
    fn quiet_plan_has_no_v2_faults() {
        let p = FaultPlan::quiet(11);
        for op in 0..200 {
            assert!(!p.chunk_decision(0, op, 0).is_faulty());
            assert!(!p.pool_exhausted(0, op));
            assert!(!p.plan_compile_fails(0, op));
            assert!(!p.pack_worker_fails(0, op));
            assert_eq!(p.latency_factor(op), 1.0);
            assert!(!p.should_crash_recv(0, op));
        }
    }

    #[test]
    fn chunk_decisions_deterministic_and_per_chunk() {
        let a = FaultPlan::quiet(21).with_chunk_faults(0.5, 0.5);
        let b = FaultPlan::quiet(21).with_chunk_faults(0.5, 0.5);
        let mut differing = 0;
        for op in 0..16 {
            for chunk in 0..32 {
                assert_eq!(a.chunk_decision(1, op, chunk), b.chunk_decision(1, op, chunk));
                if a.chunk_decision(1, op, chunk) != a.chunk_decision(1, op, chunk + 1) {
                    differing += 1;
                }
            }
        }
        assert!(differing > 0, "chunk index must enter the hash");
    }

    #[test]
    fn chunk_fault_rates_track_probabilities() {
        let p = FaultPlan::quiet(33).with_chunk_faults(0.25, 0.1);
        let n = 10_000u64;
        let (mut corrupts, mut drops) = (0, 0);
        for chunk in 0..n {
            let f = p.chunk_decision(0, 7, chunk);
            corrupts += f.corrupt as u64;
            drops += f.drop as u64;
        }
        let cr = corrupts as f64 / n as f64;
        let dr = drops as f64 / n as f64;
        assert!((cr - 0.25).abs() < 0.03, "corrupt rate {cr}");
        assert!((dr - 0.1).abs() < 0.03, "drop rate {dr}");
    }

    #[test]
    fn chunk_corrupt_byte_in_bounds() {
        let p = FaultPlan::quiet(4).with_chunk_faults(1.0, 0.0);
        for chunk in 0..100 {
            assert!(p.chunk_corrupt_byte(0, 3, chunk, 555) < 555);
        }
        assert_eq!(p.chunk_corrupt_byte(0, 3, 0, 0), 0);
    }

    #[test]
    fn pool_and_plan_and_worker_rates() {
        let p = FaultPlan::quiet(55)
            .with_pool_exhaustion(0.2)
            .with_plan_failures(0.3)
            .with_pack_worker_failures(0.4);
        let n = 10_000;
        let pool = (0..n).filter(|&op| p.pool_exhausted(2, op)).count() as f64 / n as f64;
        let plan = (0..n).filter(|&op| p.plan_compile_fails(2, op)).count() as f64 / n as f64;
        let work = (0..n).filter(|&op| p.pack_worker_fails(2, op)).count() as f64 / n as f64;
        assert!((pool - 0.2).abs() < 0.03, "pool rate {pool}");
        assert!((plan - 0.3).abs() < 0.03, "plan rate {plan}");
        assert!((work - 0.4).abs() < 0.03, "worker rate {work}");
    }

    #[test]
    fn v2_decisions_are_independent_draws() {
        // Salts must differ: with all probs at 0.5 the four decisions
        // should not be perfectly correlated across ops.
        let p = FaultPlan::quiet(77)
            .with_pool_exhaustion(0.5)
            .with_plan_failures(0.5)
            .with_pack_worker_failures(0.5)
            .with_send_failures(0.5);
        let agree = (0..256)
            .filter(|&op| {
                p.pool_exhausted(0, op) == p.plan_compile_fails(0, op)
                    && p.plan_compile_fails(0, op) == p.pack_worker_fails(0, op)
            })
            .count();
        assert!(agree < 256, "decision salts must decorrelate the draws");
    }

    #[test]
    fn link_degradation_window() {
        let p = FaultPlan::quiet(0).with_link_degradation(10, 19, 4.0);
        assert_eq!(p.latency_factor(9), 1.0);
        assert_eq!(p.latency_factor(10), 4.0);
        assert_eq!(p.latency_factor(19), 4.0);
        assert_eq!(p.latency_factor(20), 1.0);
        // Sub-unit factors never speed the link up.
        let q = FaultPlan::quiet(0).with_link_degradation(0, 5, 0.25);
        assert_eq!(q.latency_factor(3), 1.0);
    }

    #[test]
    fn recv_crash_fires_at_and_after_threshold() {
        let p = FaultPlan::quiet(0).with_recv_crash(1, 4);
        assert!(!p.should_crash_recv(1, 3));
        assert!(p.should_crash_recv(1, 4));
        assert!(p.should_crash_recv(1, 5));
        assert!(!p.should_crash_recv(0, 4));
        // Independent of the sender-side crash schedule.
        assert!(!p.should_crash(1, 4));
    }
}
