//! Deterministic measurement jitter.
//!
//! Real ping-pong measurements show small run-to-run variation (the paper's
//! "occasional blips in the reference curve"). We reproduce that texture
//! with a seeded SplitMix64 stream driving an approximately log-normal
//! multiplier, so runs are bit-for-bit repeatable: same platform seed, same
//! curve.

/// A deterministic multiplicative-noise generator.
#[derive(Debug, Clone)]
pub struct Jitter {
    state: u64,
    sigma: f64,
}

impl Jitter {
    /// New stream with relative standard deviation `sigma` (0 disables).
    pub fn new(seed: u64, sigma: f64) -> Self {
        assert!((0.0..1.0).contains(&sigma), "jitter sigma out of range: {sigma}");
        Jitter { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15), sigma }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // SplitMix64
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in [0, 1).
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Approximately standard-normal (Irwin-Hall with 4 uniforms).
    #[inline]
    fn normal(&mut self) -> f64 {
        let s: f64 = (0..4).map(|_| self.uniform()).sum();
        (s - 2.0) * (3.0f64).sqrt() // variance of sum of 4 U(0,1) is 1/3
    }

    /// A multiplicative factor near 1, log-normal with relative sigma.
    #[inline]
    pub fn factor(&mut self) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        (self.sigma * self.normal()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Jitter::new(42, 0.05);
        let mut b = Jitter::new(42, 0.05);
        for _ in 0..100 {
            assert_eq!(a.factor(), b.factor());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Jitter::new(1, 0.05);
        let mut b = Jitter::new(2, 0.05);
        let same = (0..32).filter(|_| a.factor() == b.factor()).count();
        assert!(same < 4);
    }

    #[test]
    fn zero_sigma_is_exactly_one() {
        let mut j = Jitter::new(7, 0.0);
        for _ in 0..10 {
            assert_eq!(j.factor(), 1.0);
        }
    }

    #[test]
    fn factors_cluster_around_one() {
        let mut j = Jitter::new(9, 0.03);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| j.factor()).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
        let mut j = Jitter::new(9, 0.03);
        assert!((0..n).all(|_| {
            let f = j.factor();
            (0.7..1.4).contains(&f)
        }));
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut j = Jitter::new(5, 0.1);
        for _ in 0..1000 {
            let u = j.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "jitter sigma out of range")]
    fn sigma_validated() {
        Jitter::new(0, 1.5);
    }
}
