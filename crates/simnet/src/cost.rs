//! The cost model: how long each memory and network operation takes.
//!
//! This encodes the paper's §2 cost analysis as executable arithmetic:
//!
//! * a contiguous send streams memory into the NIC with near-full overlap
//!   (proportionality constant ~1);
//! * a gather copy reads more bytes than it writes (stride amplification)
//!   and must *finish* before the send starts (constant ~2-3);
//! * derived-type sends stage through MPI's internal buffer, whose
//!   bookkeeping degrades beyond a few tens of MB (§4.1);
//! * `MPI_Pack` costs the same as a user copy loop (§4.3);
//! * one-sided transfers replace the handshake with heavyweight fence
//!   synchronization (§4.4).

use nonctg_datatype::{strided_form, Datatype};

use crate::platform::Platform;

/// Fraction of a full MPI-call overhead paid per posted iovec region
/// descriptor (building one scatter/gather table entry and ringing the
/// doorbell is much cheaper than a whole library call).
const IOV_REGION_CALL_FRACTION: f64 = 0.25;

/// How a datatype walks user memory, as seen by the memory subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Access {
    /// One dense run.
    Contiguous,
    /// Regular blocks of `blocklen` bytes every `stride` bytes.
    Strided {
        /// Bytes per block.
        blocklen: u64,
        /// Bytes between block starts.
        stride: u64,
    },
    /// Irregular blocks averaging `avg_blocklen` bytes, defeating the
    /// hardware prefetchers.
    Irregular {
        /// Mean block length in bytes.
        avg_blocklen: f64,
    },
}

impl Access {
    /// Classify a datatype by inspecting its structure.
    pub fn classify(dtype: &Datatype) -> Access {
        if dtype.is_dense() {
            return Access::Contiguous;
        }
        if let Some(s) = strided_form(dtype) {
            if s.nblocks <= 1 {
                return Access::Contiguous;
            }
            return Access::Strided { blocklen: s.block_len, stride: s.stride.unsigned_abs() };
        }
        let nseg = dtype.seg_count_hint().max(1);
        Access::Irregular { avg_blocklen: dtype.size() as f64 / nseg as f64 }
    }

    /// Bytes of memory traffic read per payload byte gathered.
    ///
    /// * stride within a cache line: the whole stride region is swept;
    /// * stride beyond a line: whole lines are fetched per block;
    /// * irregular: like strided at line granularity, with a prefetch
    ///   inefficiency applied separately.
    pub fn read_amplification(&self, cacheline: u64) -> f64 {
        match *self {
            Access::Contiguous => 1.0,
            Access::Strided { blocklen, stride } => {
                if blocklen == 0 {
                    return 1.0;
                }
                if stride <= blocklen {
                    1.0
                } else if stride <= cacheline {
                    stride as f64 / blocklen as f64
                } else {
                    // Average lines touched per block, assuming random
                    // alignment: bl/line full lines plus one straddle.
                    let lines = (blocklen as f64 / cacheline as f64).ceil() + 0.5;
                    (lines * cacheline as f64 / blocklen as f64).max(1.0)
                }
            }
            Access::Irregular { avg_blocklen } => {
                let bl = avg_blocklen.max(1.0);
                let lines = (bl / cacheline as f64).ceil() + 0.5;
                (lines * cacheline as f64 / bl).max(1.0)
            }
        }
    }

    /// Extra multiplier (>= 1) on gather time for prefetch-hostile access.
    fn prefetch_penalty(&self, p: &Platform) -> f64 {
        match self {
            Access::Irregular { .. } => 1.0 / p.mem.irregular_prefetch_eff,
            _ => 1.0,
        }
    }
}

/// Sender-side completion and receiver-side availability are both derived
/// from these primitive costs; the runtime composes them per protocol.
impl Platform {
    /// Time for a user-space (or equally, MPI-internal) gather of `payload`
    /// bytes laid out per `access` into a contiguous buffer.
    ///
    /// `warm` selects the cache-resident read path (no flush between
    /// iterations and the working set fits in LLC).
    pub fn gather_time(&self, payload: u64, access: &Access, warm: bool) -> f64 {
        if payload == 0 {
            return 0.0;
        }
        let amp = access.read_amplification(self.mem.cacheline);
        let working_set = payload as f64 * amp;
        let warm_hit = warm && working_set <= self.mem.cache_size as f64;
        let read_cost = if warm_hit { amp / self.mem.warm_speedup } else { amp };
        // copy_bw is payload bandwidth of a 1:1 copy (2 traffic units).
        let traffic_units = read_cost + 1.0;
        payload as f64 * traffic_units / (2.0 * self.mem.copy_bw)
            * access.prefetch_penalty(self)
    }

    /// Scatter (unpack) cost — symmetric to [`Self::gather_time`] with the
    /// amplification on the write side.
    pub fn scatter_time(&self, payload: u64, access: &Access, warm: bool) -> f64 {
        // Write-allocate makes strided writes read the lines too; the same
        // amplification arithmetic applies.
        self.gather_time(payload, access, warm)
    }

    /// Cost of one `MPI_Pack`/`MPI_Unpack` *call* moving `payload` bytes:
    /// fixed call overhead plus a gather exactly as efficient as a user
    /// copy loop (paper §4.3).
    pub fn pack_call_time(&self, payload: u64, access: &Access, warm: bool) -> f64 {
        self.cpu.per_call_overhead + self.gather_time(payload, access, warm)
    }

    /// The eager/rendezvous switch point for a message; `packed` applies
    /// the Cray `MPI_PACKED` quirk (paper §4.5).
    pub fn eager_threshold(&self, packed: bool) -> u64 {
        if packed {
            (self.proto.eager_limit as f64 * self.proto.packed_eager_factor) as u64
        } else {
            self.proto.eager_limit
        }
    }

    /// Per-message sender software overhead for the chosen protocol.
    pub fn send_overhead(&self, eager: bool) -> f64 {
        if eager {
            self.proto.eager_overhead
        } else {
            self.proto.eager_overhead + self.proto.rndv_extra
        }
    }

    /// Pure wire time of `bytes` at the given bandwidth efficiency.
    pub fn wire_time(&self, bytes: u64, bw_factor: f64) -> f64 {
        bytes as f64 / (self.net.bw * bw_factor)
    }

    /// Injection time of a *contiguous* user buffer: the NIC streams reads
    /// and wire writes with `pipeline_eff` overlap, so the memory side
    /// mostly hides behind the wire (proportionality ~1, paper §2.1).
    pub fn contiguous_injection(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        // The DMA engine streams host memory independently of the scalar
        // core (KNL keeps its network peak despite weak cores, §4.8).
        let bottleneck = self.net.bw.min(self.net.dma_read_bw);
        bytes as f64 / bottleneck / self.net.pipeline_eff
    }

    /// Internal staging cost of sending a derived type directly: MPI
    /// gathers into its own buffer; beyond `internal_buffer` the transfer
    /// is chunked and the buffer bookkeeping degrades (paper §4.1).
    pub fn staging_time(&self, bytes: u64, access: &Access, warm: bool) -> f64 {
        let base = self.gather_time(bytes, access, warm);
        if bytes <= self.proto.internal_buffer {
            base
        } else {
            let chunks = bytes.div_ceil(self.proto.chunk_size.max(1));
            base * self.proto.large_degradation + chunks as f64 * self.proto.chunk_overhead
        }
    }

    /// Sender-side software cost of posting an iovec (region-list) send:
    /// building one DMA descriptor per region is a fraction of a full
    /// library call, paid on top of the usual protocol overhead.
    pub fn iov_overhead(&self, nregions: u64) -> f64 {
        self.iov_overhead_shaped(nregions, 0)
    }

    /// [`Self::iov_overhead`] with the region-length shape priced in:
    /// `subline` of the `nregions` descriptors cover less than one cache
    /// line. Sub-line regions fall off the NIC's batched descriptor fast
    /// path (the doorbell coalescer only chains line-aligned gather
    /// entries), so each costs a **full** per-call overhead instead of
    /// the batched [`IOV_REGION_CALL_FRACTION`]. For `subline == 0` this
    /// is exactly the legacy uniform charge.
    pub fn iov_overhead_shaped(&self, nregions: u64, subline: u64) -> f64 {
        let subline = subline.min(nregions);
        let batched = (nregions - subline) as f64 * IOV_REGION_CALL_FRACTION;
        self.cpu.per_call_overhead * (batched + subline as f64)
    }

    /// Wire time of an iovec send: the NIC DMA-gathers the user regions
    /// directly (no staging copy), but every region restarts the DMA read
    /// stream, costing roughly one cache line of dead read time — short
    /// regions therefore erode the zero-copy advantage.
    pub fn iov_wire_time(&self, bytes: u64, nregions: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let bottleneck = self.net.bw.min(self.net.dma_read_bw);
        let restart = nregions as f64 * self.mem.cacheline as f64 / self.net.dma_read_bw;
        bytes as f64 / bottleneck / self.net.pipeline_eff + restart
    }

    /// Receiver-side cost of scattering an iovec payload straight into
    /// the user regions: write-only placement (one traffic unit, not a
    /// copy's two) plus the same per-region descriptor bookkeeping as the
    /// sender.
    pub fn iov_scatter_time(&self, bytes: u64, nregions: u64, warm: bool) -> f64 {
        self.iov_scatter_time_shaped(bytes, nregions, 0, warm)
    }

    /// [`Self::iov_scatter_time`] with the region-length shape priced in:
    /// like [`Self::iov_overhead_shaped`], each of the `subline`
    /// under-one-cacheline regions pays a full per-call overhead for its
    /// scatter descriptor instead of the batched fraction.
    pub fn iov_scatter_time_shaped(
        &self,
        bytes: u64,
        nregions: u64,
        subline: u64,
        warm: bool,
    ) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let bw = if warm && (bytes as f64) <= self.mem.cache_size as f64 {
            self.mem.copy_bw * self.mem.warm_speedup
        } else {
            self.mem.copy_bw
        };
        let subline = subline.min(nregions);
        let batched = (nregions - subline) as f64 * IOV_REGION_CALL_FRACTION;
        bytes as f64 / (2.0 * bw) + self.cpu.per_call_overhead * (batched + subline as f64)
    }

    /// Additional cost `MPI_Bsend` pays on top of a regular send of the
    /// staged data: buffer accounting plus (on the modeled MPIs) one more
    /// internal contiguous copy (paper §4.2: Bsend is *worse*).
    pub fn bsend_extra(&self, bytes: u64) -> f64 {
        let copy = if self.proto.bsend_extra_copy {
            bytes as f64 / self.mem.copy_bw
        } else {
            0.0
        };
        self.proto.bsend_overhead + copy
    }

    /// Cost of one `Win_fence` epoch boundary among `nranks` ranks.
    pub fn fence_time(&self, nranks: usize) -> f64 {
        let rounds = (nranks.max(2) as f64).log2().ceil().max(1.0);
        self.rma.fence_overhead * rounds
    }

    /// Transfer time of a put of `bytes` with user layout `access`:
    /// origin-side gather staging plus wire at RMA efficiency, with the
    /// platform's large-message RMA penalty.
    pub fn put_transfer_time(&self, bytes: u64, access: &Access, warm: bool) -> f64 {
        let gather = match access {
            Access::Contiguous => 0.0, // contiguous puts DMA directly
            other => self.gather_time(bytes, other, warm),
        };
        let mut wire = self.wire_time(bytes, self.rma.bw_factor);
        if bytes > self.proto.internal_buffer {
            wire *= self.rma.large_penalty;
            let chunks = bytes.div_ceil(self.proto.chunk_size.max(1));
            wire += chunks as f64 * self.proto.chunk_overhead;
        }
        self.rma.put_overhead + gather + wire
    }

    /// Time for the cache-flushing rewrite the harness performs between
    /// ping-pongs (outside the timed region, but it advances the clock).
    pub fn flush_time(&self, bytes: u64) -> f64 {
        bytes as f64 / self.mem.copy_bw
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonctg_datatype::ArrayOrder;

    fn skx() -> Platform {
        Platform::skx_impi()
    }

    #[test]
    fn classify_contiguous() {
        let d = Datatype::contiguous(100, &Datatype::f64()).unwrap();
        assert_eq!(Access::classify(&d), Access::Contiguous);
    }

    #[test]
    fn classify_vector() {
        let d = Datatype::vector(100, 1, 2, &Datatype::f64()).unwrap();
        assert_eq!(Access::classify(&d), Access::Strided { blocklen: 8, stride: 16 });
    }

    #[test]
    fn classify_subarray_as_strided() {
        let d = Datatype::subarray(&[64, 64], &[64, 32], &[0, 0], ArrayOrder::C, &Datatype::f64())
            .unwrap();
        assert_eq!(Access::classify(&d), Access::Strided { blocklen: 32 * 8, stride: 64 * 8 });
    }

    #[test]
    fn classify_indexed_as_irregular() {
        let d = Datatype::indexed(&[(1, 0), (1, 7), (1, 23)], &Datatype::f64()).unwrap();
        match Access::classify(&d) {
            Access::Irregular { avg_blocklen } => assert!((avg_blocklen - 8.0).abs() < 1e-9),
            other => panic!("expected irregular, got {other:?}"),
        }
    }

    #[test]
    fn stride_two_amplifies_reads_by_two() {
        let a = Access::Strided { blocklen: 8, stride: 16 };
        assert!((a.read_amplification(64) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn large_stride_costs_whole_lines() {
        let a = Access::Strided { blocklen: 8, stride: 4096 };
        // ceil(8/64)+0.5 = 1.5 lines -> 96/8 = 12x amplification
        assert!((a.read_amplification(64) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn wide_blocks_amortize_amplification() {
        let narrow = Access::Strided { blocklen: 8, stride: 4096 };
        let wide = Access::Strided { blocklen: 2048, stride: 4096 };
        assert!(
            wide.read_amplification(64) < narrow.read_amplification(64) / 5.0,
            "paper §4.7: larger blocks use cache lines better"
        );
    }

    #[test]
    fn gather_slower_than_contiguous_wire() {
        // The heart of the paper: gather+send ~2-3x the contiguous send.
        let p = skx();
        let bytes = 1u64 << 24;
        let access = Access::Strided { blocklen: 8, stride: 16 };
        let copy = p.gather_time(bytes, &access, false);
        let wire = p.contiguous_injection(bytes);
        let slowdown = (copy + wire) / wire;
        assert!(
            (2.0..4.0).contains(&slowdown),
            "slowdown {slowdown} outside the paper's 2-3x band"
        );
    }

    #[test]
    fn warm_cache_helps_intermediate_sizes() {
        let p = skx();
        let access = Access::Strided { blocklen: 8, stride: 16 };
        let mid = 1u64 << 20;
        assert!(p.gather_time(mid, &access, true) < p.gather_time(mid, &access, false));
        // but not huge working sets
        let big = 1u64 << 28;
        assert_eq!(p.gather_time(big, &access, true), p.gather_time(big, &access, false));
    }

    #[test]
    fn staging_degrades_past_internal_buffer() {
        let p = skx();
        let access = Access::Strided { blocklen: 8, stride: 16 };
        let under = p.proto.internal_buffer;
        let over = p.proto.internal_buffer * 4;
        let t_under = p.staging_time(under, &access, false);
        let t_over = p.staging_time(over, &access, false);
        // per-byte time must jump by roughly the degradation factor
        let per_under = t_under / under as f64;
        let per_over = t_over / over as f64;
        assert!(per_over > per_under * 1.5, "no large-message degradation modeled");
    }

    #[test]
    fn staging_equals_gather_below_buffer() {
        let p = skx();
        let access = Access::Strided { blocklen: 8, stride: 16 };
        let bytes = 1u64 << 20;
        assert_eq!(p.staging_time(bytes, &access, false), p.gather_time(bytes, &access, false));
    }

    #[test]
    fn bsend_always_costs_more() {
        let p = skx();
        for bytes in [1u64 << 10, 1 << 20, 1 << 28] {
            assert!(p.bsend_extra(bytes) > 0.0);
        }
    }

    #[test]
    fn fence_dwarfs_small_messages() {
        let p = skx();
        let small_wire = p.wire_time(1024, 1.0) + p.net.latency;
        assert!(
            2.0 * p.fence_time(2) > 4.0 * small_wire,
            "fences must dominate small one-sided transfers (paper §4.4)"
        );
    }

    #[test]
    fn mvapich_puts_much_slower_mid_size() {
        let mv = Platform::skx_mvapich();
        let im = Platform::skx_impi();
        let bytes = 1u64 << 22;
        let a = Access::Strided { blocklen: 8, stride: 16 };
        let t_mv = mv.put_transfer_time(bytes, &a, false);
        let t_im = im.put_transfer_time(bytes, &a, false);
        assert!(t_mv > 1.8 * t_im, "paper: mvapich one-sided several factors slower");
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        let p = skx();
        assert_eq!(p.gather_time(0, &Access::Contiguous, false), 0.0);
        assert_eq!(p.contiguous_injection(0), 0.0);
    }

    #[test]
    fn eager_threshold_packed_quirk() {
        let cray = Platform::ls5_craympich();
        assert_eq!(cray.eager_threshold(true), 2 * cray.eager_threshold(false));
        let skx = skx();
        assert_eq!(skx.eager_threshold(true), skx.eager_threshold(false));
    }

    #[test]
    fn iovec_beats_pack_for_large_regions() {
        // 64 KiB runs: the staging gather the pack path pays dwarfs the
        // per-region descriptor cost, so zero-copy must win clearly.
        let p = skx();
        let bytes = 16u64 << 20;
        let nregions = bytes / (64 << 10);
        let access = Access::Strided { blocklen: 64 << 10, stride: 128 << 10 };
        let pack = p.gather_time(bytes, &access, false) + p.wire_time(bytes, 1.0);
        let iov = p.iov_overhead(nregions) + p.iov_wire_time(bytes, nregions);
        assert!(iov < 0.7 * pack, "iovec {iov} not clearly under pack {pack}");
    }

    #[test]
    fn iovec_loses_for_tiny_regions() {
        // 8-byte runs: one descriptor per element costs far more than the
        // gather it avoids (the classic iovec pathology).
        let p = skx();
        let bytes = 1u64 << 20;
        let nregions = bytes / 8;
        let access = Access::Strided { blocklen: 8, stride: 16 };
        let pack = p.gather_time(bytes, &access, false) + p.wire_time(bytes, 1.0);
        let iov = p.iov_overhead(nregions) + p.iov_wire_time(bytes, nregions);
        assert!(iov > 2.0 * pack, "iovec {iov} should lose to pack {pack} at 8B regions");
    }

    #[test]
    fn iov_scatter_cheaper_than_unpack_for_large_regions() {
        let p = skx();
        let bytes = 16u64 << 20;
        let nregions = bytes / (64 << 10);
        let access = Access::Strided { blocklen: 64 << 10, stride: 128 << 10 };
        let unpack = p.scatter_time(bytes, &access, false);
        let direct = p.iov_scatter_time(bytes, nregions, false);
        assert!(direct < unpack, "direct scatter {direct} >= unpack {unpack}");
    }

    #[test]
    fn iov_zero_bytes_cost_nothing() {
        let p = skx();
        assert_eq!(p.iov_wire_time(0, 0), 0.0);
        assert_eq!(p.iov_scatter_time(0, 0, true), 0.0);
        assert_eq!(p.iov_overhead(0), 0.0);
    }

    #[test]
    fn subline_regions_pay_full_descriptor_cost() {
        let p = skx();
        let n = 1000u64;
        // All regions at or over a line: shaped == legacy, bit for bit.
        assert_eq!(p.iov_overhead_shaped(n, 0), p.iov_overhead(n));
        assert_eq!(
            p.iov_scatter_time_shaped(1 << 20, n, 0, false),
            p.iov_scatter_time(1 << 20, n, false)
        );
        // Every sub-line region costs 4x its batched descriptor price.
        let full = p.iov_overhead_shaped(n, n);
        assert!((full - 4.0 * p.iov_overhead(n)).abs() <= 1e-18, "{full}");
        // Mixed lists sit strictly between.
        let mixed = p.iov_overhead_shaped(n, n / 2);
        assert!(p.iov_overhead(n) < mixed && mixed < full);
        // A subline count above n clamps instead of underflowing.
        assert_eq!(p.iov_overhead_shaped(4, 9), p.iov_overhead_shaped(4, 4));
    }

    #[test]
    fn elementwise_calls_dominate() {
        // packing(e): one call per 8-byte element is far slower than one
        // call on the whole vector (paper §2.6/§4.3).
        let p = skx();
        let n = 1u64 << 16;
        let a = Access::Strided { blocklen: 8, stride: 16 };
        let elementwise: f64 = n as f64 * p.pack_call_time(8, &a, false);
        let single = p.pack_call_time(n * 8, &a, false);
        assert!(elementwise > 5.0 * single);
    }
}
