//! Virtual per-rank clocks.
//!
//! Every simulated rank owns a [`VirtualClock`]; operations advance it by
//! model-computed durations, and matching communication events synchronize
//! clocks conservatively (a receive can never complete before the data was
//! available). This gives deterministic, noise-free timings whose
//! decomposition matches the paper's §2 analysis, while the payload bytes
//! still move for real.

use std::time::Instant;

/// A monotonically advancing virtual time, in seconds.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    now: f64,
}

impl VirtualClock {
    /// A clock starting at t = 0.
    pub fn new() -> Self {
        VirtualClock { now: 0.0 }
    }

    /// A clock starting at an arbitrary time (e.g. continuing a rank's
    /// timeline on a new communicator handle).
    pub fn starting_at(t: f64) -> Self {
        assert!(t.is_finite() && t >= 0.0, "invalid clock start: {t}");
        VirtualClock { now: t }
    }

    /// Current virtual time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advance by a non-negative duration.
    ///
    /// # Panics
    /// Panics on negative or non-finite durations — those are always model
    /// bugs and must not be silently absorbed.
    #[inline]
    pub fn advance(&mut self, dt: f64) -> f64 {
        assert!(dt.is_finite() && dt >= 0.0, "invalid clock advance: {dt}");
        self.now += dt;
        self.now
    }

    /// Move forward to at least `t` (no-op if already past it). Returns the
    /// waiting time incurred.
    #[inline]
    pub fn sync_to(&mut self, t: f64) -> f64 {
        assert!(t.is_finite(), "invalid clock sync target: {t}");
        if t > self.now {
            let wait = t - self.now;
            self.now = t;
            wait
        } else {
            0.0
        }
    }
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

/// A wall-clock stopwatch with the same reading interface, for harness
/// modes that measure real time (e.g. the Criterion pack-engine benches).
#[derive(Debug, Clone)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// Start a stopwatch now.
    pub fn new() -> Self {
        WallClock { start: Instant::now() }
    }

    /// Seconds elapsed since creation.
    pub fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(1.5);
        c.advance(0.25);
        assert_eq!(c.now(), 1.75);
    }

    #[test]
    fn sync_only_moves_forward() {
        let mut c = VirtualClock::new();
        c.advance(2.0);
        assert_eq!(c.sync_to(1.0), 0.0);
        assert_eq!(c.now(), 2.0);
        assert_eq!(c.sync_to(3.5), 1.5);
        assert_eq!(c.now(), 3.5);
    }

    #[test]
    #[should_panic(expected = "invalid clock advance")]
    fn negative_advance_panics() {
        VirtualClock::new().advance(-1.0);
    }

    #[test]
    #[should_panic(expected = "invalid clock advance")]
    fn nan_advance_panics() {
        VirtualClock::new().advance(f64::NAN);
    }

    #[test]
    fn wall_clock_monotone() {
        let w = WallClock::new();
        let a = w.now();
        let b = w.now();
        assert!(b >= a);
    }
}
