//! Platform models for the four installations benchmarked in the paper.
//!
//! Each [`Platform`] bundles the structural parameters a LogGP-style cost
//! model needs: memory copy bandwidth, network bandwidth and latency, the
//! eager/rendezvous switch, MPI internal-buffer behaviour for large derived
//! types, one-sided synchronization costs, and per-call software overheads.
//!
//! The absolute numbers are *calibrated to reproduce the paper's shapes*
//! (who wins, by what factor, where the crossovers fall), not to match the
//! authors' Omni-Path/Aries testbeds byte-for-byte; see DESIGN.md §2 and
//! EXPERIMENTS.md for the per-figure comparison.

use std::fmt;
use std::str::FromStr;
use std::sync::OnceLock;

use crate::fault::FaultPlan;

/// Default per-wait deadlock timeout, seconds.
pub const DEFAULT_DEADLOCK_TIMEOUT_S: f64 = 60.0;

/// Streaming knobs of the pipelined (chunked) rendezvous datapath.
///
/// A pure **wall-clock** optimization: whether a payload streams as
/// chunks or travels as one monolithic buffer, the virtual-time charges
/// (and their jitter draws) are identical, so results never depend on
/// these values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineSpec {
    /// Packed payload size in bytes at or above which a blocking
    /// rendezvous send streams its payload chunk-by-chunk while the
    /// receiver unpacks in place. `u64::MAX` disables streaming.
    pub threshold_bytes: u64,
    /// Target chunk size in bytes (each chunk end is aligned down to a
    /// pack-plan block boundary).
    pub chunk_bytes: u64,
}

impl PipelineSpec {
    /// Default streaming threshold (4 MiB).
    pub const DEFAULT_THRESHOLD: u64 = 4 << 20;
    /// Default chunk size (2 MiB).
    pub const DEFAULT_CHUNK: u64 = 2 << 20;

    /// A spec that never streams.
    pub fn disabled() -> PipelineSpec {
        PipelineSpec { threshold_bytes: u64::MAX, chunk_bytes: Self::DEFAULT_CHUNK }
    }
}

impl Default for PipelineSpec {
    fn default() -> Self {
        PipelineSpec {
            threshold_bytes: Self::DEFAULT_THRESHOLD,
            chunk_bytes: Self::DEFAULT_CHUNK,
        }
    }
}

/// The process-wide pipeline spec from `NONCTG_PIPELINE_THRESHOLD` /
/// `NONCTG_PIPELINE_CHUNK` (bytes), resolved once.
fn env_pipeline() -> PipelineSpec {
    static V: OnceLock<PipelineSpec> = OnceLock::new();
    *V.get_or_init(|| {
        let env_u64 = |name: &str| {
            std::env::var(name).ok().and_then(|v| v.trim().parse::<u64>().ok())
        };
        PipelineSpec {
            threshold_bytes: env_u64("NONCTG_PIPELINE_THRESHOLD")
                .unwrap_or(PipelineSpec::DEFAULT_THRESHOLD),
            chunk_bytes: env_u64("NONCTG_PIPELINE_CHUNK")
                .unwrap_or(PipelineSpec::DEFAULT_CHUNK)
                .max(4096),
        }
    })
}

/// Which engine a non-contiguous send routes through.
///
/// `Auto` defers to the adaptive selector, which predicts pack vs iovec
/// vs element cost from the platform model and picks the cheapest; the
/// other values force one engine unconditionally (used by calibration,
/// differential tests, and the `NONCTG_DATAPATH` environment variable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Datapath {
    /// Gather into a packed staging buffer through the compiled plan.
    Pack,
    /// Zero-copy iovec: ship the region list, scatter at the receiver.
    Iov,
    /// Naive per-segment element copies (no compiled plan).
    Elem,
    /// Pick per message from the measured cost model.
    #[default]
    Auto,
}

impl Datapath {
    /// Canonical lowercase name (the `NONCTG_DATAPATH` vocabulary).
    pub fn name(self) -> &'static str {
        match self {
            Datapath::Pack => "pack",
            Datapath::Iov => "iov",
            Datapath::Elem => "elem",
            Datapath::Auto => "auto",
        }
    }
}

impl fmt::Display for Datapath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Datapath {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "pack" => Ok(Datapath::Pack),
            "iov" | "iovec" => Ok(Datapath::Iov),
            "elem" | "element" => Ok(Datapath::Elem),
            "auto" => Ok(Datapath::Auto),
            other => Err(format!("unknown datapath '{other}' (expected pack|iov|elem|auto)")),
        }
    }
}

/// The process-wide datapath override from `NONCTG_DATAPATH`, resolved
/// once. Unset or unparseable means [`Datapath::Auto`].
fn env_datapath() -> Datapath {
    static V: OnceLock<Datapath> = OnceLock::new();
    *V.get_or_init(|| {
        std::env::var("NONCTG_DATAPATH")
            .ok()
            .and_then(|v| v.parse::<Datapath>().ok())
            .unwrap_or(Datapath::Auto)
    })
}

/// Identifier of a modeled installation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformId {
    /// Stampede2 Skylake + Intel MPI (paper figure 1).
    SkxImpi,
    /// Stampede2 Skylake + MVAPICH2 (paper figure 2).
    SkxMvapich,
    /// Lonestar5 Cray XC40 + Cray MPICH (paper figure 3).
    Ls5CrayMpich,
    /// Stampede2 Knights Landing + Intel MPI (paper figure 4).
    KnlImpi,
}

impl PlatformId {
    /// All modeled installations, in paper-figure order.
    pub const ALL: [PlatformId; 4] = [
        PlatformId::SkxImpi,
        PlatformId::SkxMvapich,
        PlatformId::Ls5CrayMpich,
        PlatformId::KnlImpi,
    ];

    /// Canonical CLI name.
    pub fn name(self) -> &'static str {
        match self {
            PlatformId::SkxImpi => "skx-impi",
            PlatformId::SkxMvapich => "skx-mvapich2",
            PlatformId::Ls5CrayMpich => "ls5-craympich",
            PlatformId::KnlImpi => "knl-impi",
        }
    }

    /// Which paper figure this installation corresponds to.
    pub fn paper_figure(self) -> u32 {
        match self {
            PlatformId::SkxImpi => 1,
            PlatformId::SkxMvapich => 2,
            PlatformId::Ls5CrayMpich => 3,
            PlatformId::KnlImpi => 4,
        }
    }
}

impl fmt::Display for PlatformId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PlatformId {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "skx-impi" | "skx" | "fig1" => Ok(PlatformId::SkxImpi),
            "skx-mvapich2" | "mvapich" | "fig2" => Ok(PlatformId::SkxMvapich),
            "ls5-craympich" | "ls5" | "cray" | "fig3" => Ok(PlatformId::Ls5CrayMpich),
            "knl-impi" | "knl" | "fig4" => Ok(PlatformId::KnlImpi),
            other => Err(format!(
                "unknown platform '{other}' (expected one of: skx-impi, skx-mvapich2, ls5-craympich, knl-impi)"
            )),
        }
    }
}

/// Memory-subsystem parameters of one node.
#[derive(Debug, Clone)]
pub struct MemModel {
    /// Payload bandwidth of a warm contiguous copy loop, bytes/s.
    /// (The copy moves 2x this in raw traffic: one read + one write.)
    pub copy_bw: f64,
    /// Last-level cache size per socket, bytes; data under this stays warm
    /// when the harness does not flush between iterations.
    pub cache_size: u64,
    /// Speedup factor on gather reads whose working set sits in cache.
    pub warm_speedup: f64,
    /// Cache line size, bytes; governs wasted read bandwidth for strided
    /// access with stride beyond a line.
    pub cacheline: u64,
    /// Multiplier (<= 1) on effective gather bandwidth for *irregular*
    /// (non-strided) access, modeling dead prefetch streams.
    pub irregular_prefetch_eff: f64,
}

/// Per-call CPU software overheads.
#[derive(Debug, Clone)]
pub struct CpuModel {
    /// Fixed cost of one MPI library call (e.g. one `MPI_Pack`), seconds.
    /// Dominates the paper's packing(e) scheme.
    pub per_call_overhead: f64,
}

/// Network-interface parameters.
#[derive(Debug, Clone)]
pub struct NetModel {
    /// Peak point-to-point bandwidth, bytes/s.
    pub bw: f64,
    /// One-way small-message latency, seconds.
    pub latency: f64,
    /// Fraction of memory-read/wire overlap achieved for contiguous sends
    /// (DMA pipelining); 1.0 = perfect overlap.
    pub pipeline_eff: f64,
    /// Bandwidth at which the NIC DMA engine streams contiguous host
    /// memory, bytes/s. Independent of the scalar core speed — on KNL the
    /// weak core throttles copy loops but not the DMA path, which is how
    /// the paper sees the same peak network on KNL (§4.8).
    pub dma_read_bw: f64,
}

/// Two-sided protocol and internal-buffer parameters.
#[derive(Debug, Clone)]
pub struct ProtocolModel {
    /// Messages at or below this many bytes go eagerly (no handshake).
    pub eager_limit: u64,
    /// Per-message software overhead on the eager path, seconds.
    pub eager_overhead: f64,
    /// Extra cost of the rendezvous handshake (an RTT plus bookkeeping).
    pub rndv_extra: f64,
    /// Cray quirk (paper §4.5): sends of `MPI_PACKED` data switch protocol
    /// at `eager_limit * packed_eager_factor` instead of `eager_limit`.
    pub packed_eager_factor: f64,
    /// Internal staging-buffer size. Derived-type sends larger than this
    /// are chunked with degraded buffer bookkeeping (paper §4.1).
    pub internal_buffer: u64,
    /// Chunk size used once staging overflows.
    pub chunk_size: u64,
    /// Bookkeeping overhead per staged chunk, seconds.
    pub chunk_overhead: f64,
    /// Multiplier on internal copy cost beyond `internal_buffer`.
    pub large_degradation: f64,
    /// Per-message overhead of `MPI_Bsend` buffer accounting, seconds.
    pub bsend_overhead: f64,
    /// Whether `Bsend` pays an extra internal contiguous copy on top of
    /// staging through the attached buffer (observed on all four MPIs).
    pub bsend_extra_copy: bool,
}

/// One-sided (RMA) parameters.
#[derive(Debug, Clone)]
pub struct RmaModel {
    /// Cost of one `Win_fence` epoch boundary per rank, seconds.
    pub fence_overhead: f64,
    /// Per-put software overhead, seconds.
    pub put_overhead: f64,
    /// Wire-bandwidth efficiency of puts relative to two-sided (1.0 = on
    /// par; MVAPICH2 shows a large deficit in the paper).
    pub bw_factor: f64,
    /// Extra multiplier on put transfer time beyond the internal buffer
    /// (the erratic large-message behaviour of figure 1/2/4); 1.0 on Cray
    /// where large one-sided tracks the derived types.
    pub large_penalty: f64,
}

/// A complete modeled installation.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Which installation this is.
    pub id: PlatformId,
    /// Human-readable description (cluster, fabric, MPI).
    pub description: &'static str,
    /// Memory model.
    pub mem: MemModel,
    /// CPU call-overhead model.
    pub cpu: CpuModel,
    /// NIC model.
    pub net: NetModel,
    /// Two-sided protocol model.
    pub proto: ProtocolModel,
    /// One-sided model.
    pub rma: RmaModel,
    /// Relative sigma of the deterministic log-normal measurement jitter.
    pub jitter_sigma: f64,
    /// Seed for the jitter stream.
    pub seed: u64,
    /// Injected fault schedule, if any. `None` disables fault injection
    /// entirely; the presets all start fault-free.
    pub fault: Option<FaultPlan>,
    /// Chunked-datapath streaming spec. `None` (all presets) defers to
    /// the `NONCTG_PIPELINE_THRESHOLD` / `NONCTG_PIPELINE_CHUNK`
    /// environment variables; `Some` overrides them in-process (see
    /// [`Platform::with_pipeline`]). Wall-clock only — virtual time is
    /// charged identically either way.
    pub pipeline: Option<PipelineSpec>,
    /// Forced non-contiguous datapath engine. [`Datapath::Auto`] (all
    /// presets) defers first to the `NONCTG_DATAPATH` environment
    /// variable and then to the adaptive selector; any other value wins
    /// over both (see [`Platform::with_datapath`] and
    /// [`Platform::effective_datapath`]).
    pub datapath: Datapath,
    /// How long a rank may block on one fabric wait (message match,
    /// barrier, rendezvous completion) before the watchdog declares a
    /// deadlock, seconds. Overridable per run via the
    /// `NONCTG_DEADLOCK_TIMEOUT` environment variable (see
    /// [`Platform::effective_deadlock_timeout`]).
    pub deadlock_timeout_s: f64,
}

impl Platform {
    /// Builder: attach a fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Platform {
        self.fault = Some(plan);
        self
    }

    /// Builder: set the deadlock timeout in seconds.
    pub fn with_deadlock_timeout(mut self, seconds: f64) -> Platform {
        self.deadlock_timeout_s = seconds;
        self
    }

    /// Builder: force the chunked-datapath streaming spec, overriding the
    /// environment variables (tests/benches use this to pin or disable
    /// streaming in-process).
    pub fn with_pipeline(mut self, threshold_bytes: u64, chunk_bytes: u64) -> Platform {
        self.pipeline = Some(PipelineSpec { threshold_bytes, chunk_bytes });
        self
    }

    /// Builder: disable payload streaming entirely (every rendezvous send
    /// ships one monolithic buffer).
    pub fn without_pipeline(mut self) -> Platform {
        self.pipeline = Some(PipelineSpec::disabled());
        self
    }

    /// Builder: force a non-contiguous datapath engine in-process,
    /// overriding both the selector and the `NONCTG_DATAPATH`
    /// environment variable (calibration and differential tests use this
    /// to compare engines without re-spawning the process).
    pub fn with_datapath(mut self, datapath: Datapath) -> Platform {
        self.datapath = datapath;
        self
    }

    /// The datapath policy in force: the explicit [`Platform::datapath`]
    /// override when not `Auto`, else the `NONCTG_DATAPATH` environment
    /// variable (which itself defaults to `Auto`, i.e. the selector).
    pub fn effective_datapath(&self) -> Datapath {
        if self.datapath != Datapath::Auto {
            return self.datapath;
        }
        env_datapath()
    }

    /// The streaming spec in force: the explicit [`Platform::pipeline`]
    /// override when set, else the environment/default spec. Chunk size
    /// is clamped to at least one byte.
    pub fn effective_pipeline(&self) -> PipelineSpec {
        let mut spec = self.pipeline.unwrap_or_else(env_pipeline);
        spec.chunk_bytes = spec.chunk_bytes.max(1);
        spec
    }

    /// The deadlock timeout actually in force: the
    /// `NONCTG_DEADLOCK_TIMEOUT` environment variable (seconds, float)
    /// when set and parseable, else [`Platform::deadlock_timeout_s`].
    /// Values are clamped below to 1 ms so a typo cannot make every wait
    /// fail instantly.
    pub fn effective_deadlock_timeout(&self) -> std::time::Duration {
        let seconds = std::env::var("NONCTG_DEADLOCK_TIMEOUT")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or(self.deadlock_timeout_s);
        std::time::Duration::from_secs_f64(seconds.max(1e-3))
    }
    /// Look up a platform preset by id.
    pub fn get(id: PlatformId) -> Platform {
        match id {
            PlatformId::SkxImpi => Self::skx_impi(),
            PlatformId::SkxMvapich => Self::skx_mvapich(),
            PlatformId::Ls5CrayMpich => Self::ls5_craympich(),
            PlatformId::KnlImpi => Self::knl_impi(),
        }
    }

    /// All four presets in paper-figure order.
    pub fn all() -> Vec<Platform> {
        PlatformId::ALL.iter().map(|&id| Self::get(id)).collect()
    }

    /// Stampede2 Skylake, Omni-Path, Intel MPI (paper figure 1).
    pub fn skx_impi() -> Platform {
        Platform {
            id: PlatformId::SkxImpi,
            description: "Stampede2 dual-Skylake nodes, Omni-Path fabric, Intel MPI",
            mem: MemModel {
                copy_bw: 8.0e9,
                cache_size: 33 << 20,
                warm_speedup: 2.2,
                cacheline: 64,
                irregular_prefetch_eff: 0.55,
            },
            cpu: CpuModel { per_call_overhead: 55e-9 },
            net: NetModel { bw: 12.5e9, latency: 1.5e-6, pipeline_eff: 0.95, dma_read_bw: 19.0e9 },
            proto: ProtocolModel {
                eager_limit: 64 << 10,
                eager_overhead: 1.0e-6,
                rndv_extra: 3.5e-6,
                packed_eager_factor: 1.0,
                internal_buffer: 32 << 20,
                chunk_size: 4 << 20,
                chunk_overhead: 60e-6,
                large_degradation: 2.1,
                bsend_overhead: 2.0e-6,
                bsend_extra_copy: true,
            },
            rma: RmaModel {
                fence_overhead: 22e-6,
                put_overhead: 2.0e-6,
                bw_factor: 0.85,
                large_penalty: 1.7,
            },
            jitter_sigma: 0.03,
            seed: 0x5b_1001,
            fault: None,
            datapath: Datapath::Auto,
            pipeline: None,
            deadlock_timeout_s: DEFAULT_DEADLOCK_TIMEOUT_S,
        }
    }

    /// Stampede2 Skylake, Omni-Path, MVAPICH2 (paper figure 2).
    pub fn skx_mvapich() -> Platform {
        Platform {
            id: PlatformId::SkxMvapich,
            description: "Stampede2 dual-Skylake nodes, Omni-Path fabric, MVAPICH2",
            mem: MemModel {
                copy_bw: 8.0e9,
                cache_size: 33 << 20,
                warm_speedup: 2.2,
                cacheline: 64,
                irregular_prefetch_eff: 0.55,
            },
            cpu: CpuModel { per_call_overhead: 60e-9 },
            net: NetModel { bw: 12.5e9, latency: 1.6e-6, pipeline_eff: 0.94, dma_read_bw: 19.0e9 },
            proto: ProtocolModel {
                eager_limit: 16 << 10,
                eager_overhead: 1.1e-6,
                rndv_extra: 4.0e-6,
                packed_eager_factor: 1.0,
                internal_buffer: 32 << 20,
                chunk_size: 4 << 20,
                chunk_overhead: 70e-6,
                large_degradation: 2.0,
                bsend_overhead: 2.5e-6,
                bsend_extra_copy: true,
            },
            // The paper: MVAPICH2 one-sided is several factors slower even
            // at intermediate sizes.
            rma: RmaModel {
                fence_overhead: 26e-6,
                put_overhead: 3.0e-6,
                bw_factor: 0.15,
                large_penalty: 1.9,
            },
            jitter_sigma: 0.03,
            seed: 0x5b_1002,
            fault: None,
            datapath: Datapath::Auto,
            pipeline: None,
            deadlock_timeout_s: DEFAULT_DEADLOCK_TIMEOUT_S,
        }
    }

    /// Lonestar5 Cray XC40, Aries, Cray MPICH (paper figure 3).
    pub fn ls5_craympich() -> Platform {
        Platform {
            id: PlatformId::Ls5CrayMpich,
            description: "Lonestar5 Cray XC40, Aries interconnect, Cray MPICH 7.3",
            mem: MemModel {
                copy_bw: 7.0e9,
                cache_size: 30 << 20,
                warm_speedup: 2.0,
                cacheline: 64,
                irregular_prefetch_eff: 0.55,
            },
            cpu: CpuModel { per_call_overhead: 65e-9 },
            net: NetModel { bw: 8.5e9, latency: 1.3e-6, pipeline_eff: 0.96, dma_read_bw: 16.0e9 },
            proto: ProtocolModel {
                eager_limit: 8 << 10,
                eager_overhead: 0.9e-6,
                rndv_extra: 2.5e-6,
                // Paper §4.5: on Cray the packing scheme's protocol drop
                // appears at double the data size.
                packed_eager_factor: 2.0,
                internal_buffer: 48 << 20,
                chunk_size: 8 << 20,
                chunk_overhead: 80e-6,
                large_degradation: 1.9,
                bsend_overhead: 2.2e-6,
                bsend_extra_copy: true,
            },
            // Paper §4.8: on Cray, large one-sided is on par with the
            // derived types.
            rma: RmaModel {
                fence_overhead: 15e-6,
                put_overhead: 1.8e-6,
                bw_factor: 0.9,
                large_penalty: 1.0,
            },
            jitter_sigma: 0.035,
            seed: 0x5b_1003,
            fault: None,
            datapath: Datapath::Auto,
            pipeline: None,
            deadlock_timeout_s: DEFAULT_DEADLOCK_TIMEOUT_S,
        }
    }

    /// Stampede2 Knights Landing, Omni-Path, Intel MPI (paper figure 4).
    ///
    /// Same peak network as the Skylake nodes, but the weak scalar core
    /// throttles every copy-bound scheme (paper §4.8).
    pub fn knl_impi() -> Platform {
        Platform {
            id: PlatformId::KnlImpi,
            description: "Stampede2 Knights Landing nodes, Omni-Path fabric, Intel MPI",
            mem: MemModel {
                copy_bw: 2.8e9,
                cache_size: 16 << 20,
                warm_speedup: 1.8,
                cacheline: 64,
                irregular_prefetch_eff: 0.5,
            },
            cpu: CpuModel { per_call_overhead: 180e-9 },
            net: NetModel { bw: 12.5e9, latency: 2.6e-6, pipeline_eff: 0.93, dma_read_bw: 16.0e9 },
            proto: ProtocolModel {
                eager_limit: 64 << 10,
                eager_overhead: 2.2e-6,
                rndv_extra: 6.0e-6,
                packed_eager_factor: 1.0,
                internal_buffer: 32 << 20,
                chunk_size: 4 << 20,
                chunk_overhead: 140e-6,
                large_degradation: 2.0,
                bsend_overhead: 4.0e-6,
                bsend_extra_copy: true,
            },
            rma: RmaModel {
                fence_overhead: 48e-6,
                put_overhead: 4.5e-6,
                bw_factor: 0.8,
                large_penalty: 1.6,
            },
            jitter_sigma: 0.04,
            seed: 0x5b_1004,
            fault: None,
            datapath: Datapath::Auto,
            pipeline: None,
            deadlock_timeout_s: DEFAULT_DEADLOCK_TIMEOUT_S,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_resolve_by_name() {
        for id in PlatformId::ALL {
            let p: PlatformId = id.name().parse().unwrap();
            assert_eq!(p, id);
            assert_eq!(Platform::get(id).id, id);
        }
        assert!("omnipath9000".parse::<PlatformId>().is_err());
    }

    #[test]
    fn figure_numbers_match_order() {
        for (i, id) in PlatformId::ALL.iter().enumerate() {
            assert_eq!(id.paper_figure(), i as u32 + 1);
        }
    }

    #[test]
    fn knl_is_copy_bound_relative_to_skx() {
        let skx = Platform::skx_impi();
        let knl = Platform::knl_impi();
        assert_eq!(skx.net.bw, knl.net.bw, "same peak network (paper §4.8)");
        assert!(knl.mem.copy_bw < skx.mem.copy_bw / 2.0, "weak KNL cores");
    }

    #[test]
    fn all_platforms_have_sane_parameters() {
        for p in Platform::all() {
            assert!(p.mem.copy_bw > 0.0 && p.net.bw > 0.0);
            assert!(p.net.latency > 0.0 && p.net.latency < 1e-3);
            assert!(p.proto.eager_limit > 0);
            assert!(p.proto.internal_buffer > p.proto.eager_limit);
            assert!(p.proto.chunk_size <= p.proto.internal_buffer);
            assert!(p.proto.large_degradation >= 1.0);
            assert!(p.rma.bw_factor > 0.0 && p.rma.bw_factor <= 1.0);
            assert!(p.rma.large_penalty >= 1.0);
            assert!((0.0..0.5).contains(&p.jitter_sigma));
        }
    }

    #[test]
    fn datapath_names_round_trip() {
        for d in [Datapath::Pack, Datapath::Iov, Datapath::Elem, Datapath::Auto] {
            assert_eq!(d.name().parse::<Datapath>().unwrap(), d);
        }
        assert_eq!("iovec".parse::<Datapath>().unwrap(), Datapath::Iov);
        assert_eq!("element".parse::<Datapath>().unwrap(), Datapath::Elem);
        assert!("zerocopy".parse::<Datapath>().is_err());
    }

    #[test]
    fn presets_default_to_auto_datapath() {
        for p in Platform::all() {
            assert_eq!(p.datapath, Datapath::Auto);
        }
    }

    #[test]
    fn with_datapath_wins_over_environment() {
        let p = Platform::skx_impi().with_datapath(Datapath::Iov);
        assert_eq!(p.effective_datapath(), Datapath::Iov);
        let q = Platform::skx_impi().with_datapath(Datapath::Pack);
        assert_eq!(q.effective_datapath(), Datapath::Pack);
    }

    #[test]
    fn cray_packed_eager_quirk_present_only_on_cray() {
        for p in Platform::all() {
            if p.id == PlatformId::Ls5CrayMpich {
                assert!(p.proto.packed_eager_factor > 1.0);
            } else {
                assert_eq!(p.proto.packed_eager_factor, 1.0);
            }
        }
    }
}
