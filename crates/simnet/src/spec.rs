//! Textual platform specifications: derive a custom [`Platform`] from a
//! preset plus `key=value` overrides.
//!
//! This is how a user models *their* cluster without recompiling:
//!
//! ```
//! use nonctg_simnet::Platform;
//!
//! // A Skylake-like machine on a 200 Gb/s fabric with a 1 MiB eager limit.
//! let p = Platform::from_spec("skx-impi:net.bw=25e9,proto.eager_limit=1048576").unwrap();
//! assert_eq!(p.net.bw, 25e9);
//! assert_eq!(p.proto.eager_limit, 1 << 20);
//! ```
//!
//! Recognized keys mirror the model fields: `mem.copy_bw`,
//! `mem.cache_size`, `mem.warm_speedup`, `mem.cacheline`,
//! `mem.irregular_prefetch_eff`, `cpu.per_call_overhead`, `net.bw`,
//! `net.latency`, `net.pipeline_eff`, `net.dma_read_bw`,
//! `proto.eager_limit`, `proto.eager_overhead`, `proto.rndv_extra`,
//! `proto.packed_eager_factor`, `proto.internal_buffer`,
//! `proto.chunk_size`, `proto.chunk_overhead`, `proto.large_degradation`,
//! `proto.bsend_overhead`, `rma.fence_overhead`, `rma.put_overhead`,
//! `rma.bw_factor`, `rma.large_penalty`, `jitter`, `seed`.

use crate::platform::Platform;

/// Error from [`Platform::from_spec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid platform spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

impl Platform {
    /// Parse `"<preset>[:key=value,key=value,...]"`.
    pub fn from_spec(spec: &str) -> Result<Platform, SpecError> {
        let (preset, overrides) = match spec.split_once(':') {
            Some((p, o)) => (p, Some(o)),
            None => (spec, None),
        };
        let id = preset
            .parse()
            .map_err(|e: String| SpecError(e))?;
        let mut p = Platform::get(id);
        if let Some(overrides) = overrides {
            for kv in overrides.split(',').filter(|s| !s.is_empty()) {
                let (key, value) = kv
                    .split_once('=')
                    .ok_or_else(|| SpecError(format!("expected key=value, got '{kv}'")))?;
                p.apply_override(key.trim(), value.trim())?;
            }
        }
        p.validate().map_err(SpecError)?;
        Ok(p)
    }

    fn apply_override(&mut self, key: &str, value: &str) -> Result<(), SpecError> {
        let f = || -> Result<f64, SpecError> {
            value
                .parse::<f64>()
                .map_err(|e| SpecError(format!("{key}: bad number '{value}': {e}")))
        };
        let u = || -> Result<u64, SpecError> {
            let (num, mult) = match value.chars().last() {
                Some('k') | Some('K') => (&value[..value.len() - 1], 1u64 << 10),
                Some('m') | Some('M') => (&value[..value.len() - 1], 1 << 20),
                Some('g') | Some('G') => (&value[..value.len() - 1], 1 << 30),
                _ => (value, 1),
            };
            num.parse::<f64>()
                .map(|v| v as u64 * mult)
                .map_err(|e| SpecError(format!("{key}: bad integer '{value}': {e}")))
        };
        match key {
            "mem.copy_bw" => self.mem.copy_bw = f()?,
            "mem.cache_size" => self.mem.cache_size = u()?,
            "mem.warm_speedup" => self.mem.warm_speedup = f()?,
            "mem.cacheline" => self.mem.cacheline = u()?,
            "mem.irregular_prefetch_eff" => self.mem.irregular_prefetch_eff = f()?,
            "cpu.per_call_overhead" => self.cpu.per_call_overhead = f()?,
            "net.bw" => self.net.bw = f()?,
            "net.latency" => self.net.latency = f()?,
            "net.pipeline_eff" => self.net.pipeline_eff = f()?,
            "net.dma_read_bw" => self.net.dma_read_bw = f()?,
            "proto.eager_limit" => self.proto.eager_limit = u()?,
            "proto.eager_overhead" => self.proto.eager_overhead = f()?,
            "proto.rndv_extra" => self.proto.rndv_extra = f()?,
            "proto.packed_eager_factor" => self.proto.packed_eager_factor = f()?,
            "proto.internal_buffer" => self.proto.internal_buffer = u()?,
            "proto.chunk_size" => self.proto.chunk_size = u()?,
            "proto.chunk_overhead" => self.proto.chunk_overhead = f()?,
            "proto.large_degradation" => self.proto.large_degradation = f()?,
            "proto.bsend_overhead" => self.proto.bsend_overhead = f()?,
            "rma.fence_overhead" => self.rma.fence_overhead = f()?,
            "rma.put_overhead" => self.rma.put_overhead = f()?,
            "rma.bw_factor" => self.rma.bw_factor = f()?,
            "rma.large_penalty" => self.rma.large_penalty = f()?,
            "jitter" => self.jitter_sigma = f()?,
            "seed" => self.seed = u()?,
            other => return Err(SpecError(format!("unknown key '{other}'"))),
        }
        Ok(())
    }

    /// Sanity-check the parameter ranges the cost model assumes.
    pub fn validate(&self) -> Result<(), String> {
        fn pos(name: &str, v: f64) -> Result<(), String> {
            if v > 0.0 && v.is_finite() {
                Ok(())
            } else {
                Err(format!("{name} must be positive and finite, got {v}"))
            }
        }
        pos("mem.copy_bw", self.mem.copy_bw)?;
        pos("net.bw", self.net.bw)?;
        pos("net.latency", self.net.latency)?;
        pos("net.dma_read_bw", self.net.dma_read_bw)?;
        if !(0.0..=1.0).contains(&self.net.pipeline_eff) || self.net.pipeline_eff == 0.0 {
            return Err(format!(
                "net.pipeline_eff must be in (0, 1], got {}",
                self.net.pipeline_eff
            ));
        }
        if !(0.0..=1.0).contains(&self.mem.irregular_prefetch_eff)
            || self.mem.irregular_prefetch_eff == 0.0
        {
            return Err("mem.irregular_prefetch_eff must be in (0, 1]".into());
        }
        if self.mem.warm_speedup < 1.0 {
            return Err("mem.warm_speedup must be >= 1".into());
        }
        if self.proto.eager_limit == 0 {
            return Err("proto.eager_limit must be nonzero".into());
        }
        if self.proto.chunk_size == 0 || self.proto.chunk_size > self.proto.internal_buffer {
            return Err("proto.chunk_size must be in 1..=proto.internal_buffer".into());
        }
        if self.proto.large_degradation < 1.0 || self.rma.large_penalty < 1.0 {
            return Err("degradation multipliers must be >= 1".into());
        }
        if !(0.0..=1.0).contains(&self.rma.bw_factor) || self.rma.bw_factor == 0.0 {
            return Err("rma.bw_factor must be in (0, 1]".into());
        }
        if !(0.0..1.0).contains(&self.jitter_sigma) {
            return Err("jitter must be in [0, 1)".into());
        }
        if self.proto.packed_eager_factor < 1.0 {
            return Err("proto.packed_eager_factor must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformId;

    #[test]
    fn bare_preset_parses() {
        let p = Platform::from_spec("knl-impi").unwrap();
        assert_eq!(p.id, PlatformId::KnlImpi);
    }

    #[test]
    fn overrides_apply() {
        let p = Platform::from_spec(
            "skx-impi:net.bw=25e9,proto.eager_limit=131072,jitter=0,mem.copy_bw=1.2e10",
        )
        .unwrap();
        assert_eq!(p.net.bw, 25e9);
        assert_eq!(p.proto.eager_limit, 131072);
        assert_eq!(p.jitter_sigma, 0.0);
        assert_eq!(p.mem.copy_bw, 1.2e10);
    }

    #[test]
    fn unknown_preset_rejected() {
        assert!(Platform::from_spec("bluegene").is_err());
    }

    #[test]
    fn unknown_key_rejected() {
        let e = Platform::from_spec("skx-impi:net.color=blue").unwrap_err();
        assert!(e.0.contains("unknown key") || e.0.contains("bad number"), "{e}");
    }

    #[test]
    fn malformed_pair_rejected() {
        assert!(Platform::from_spec("skx-impi:net.bw").is_err());
    }

    #[test]
    fn validation_catches_nonsense() {
        assert!(Platform::from_spec("skx-impi:net.bw=0").is_err());
        assert!(Platform::from_spec("skx-impi:net.pipeline_eff=1.5").is_err());
        assert!(Platform::from_spec("skx-impi:proto.chunk_size=0").is_err());
        assert!(Platform::from_spec("skx-impi:jitter=2").is_err());
        assert!(Platform::from_spec("skx-impi:rma.bw_factor=0").is_err());
    }

    #[test]
    fn presets_all_validate() {
        for p in Platform::all() {
            p.validate().unwrap();
        }
    }

    #[test]
    fn size_suffixes_on_integer_keys() {
        let p = Platform::from_spec("skx-impi:proto.eager_limit=1m,proto.internal_buffer=64M").unwrap();
        assert_eq!(p.proto.eager_limit, 1 << 20);
        assert_eq!(p.proto.internal_buffer, 64 << 20);
    }

    #[test]
    fn whitespace_tolerated() {
        let p = Platform::from_spec("cray: net.bw = 9e9 , jitter = 0.01").unwrap();
        assert_eq!(p.net.bw, 9e9);
        assert_eq!(p.jitter_sigma, 0.01);
    }
}
