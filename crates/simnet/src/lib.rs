//! # nonctg-simnet — platform and network cost models
//!
//! The substrate that replaces the paper's TACC clusters: four calibrated
//! [`Platform`] presets (Skylake+Intel MPI, Skylake+MVAPICH2, Cray XC40,
//! KNL+Intel MPI), a LogGP-style [cost model](crate::Access) for memory
//! gathers, wire transfers, protocol switches, internal-buffer staging and
//! one-sided synchronization, plus deterministic [`VirtualClock`]s and
//! seeded measurement [`Jitter`].
//!
//! The runtime in `nonctg-core` executes real data movement and charges
//! these model costs to per-rank virtual clocks; the benchmark harness then
//! reads those clocks exactly the way the paper reads `MPI_Wtime`.

#![warn(missing_docs)]

mod clock;
mod cost;
mod explain;
mod fault;
mod jitter;
mod platform;
mod spec;

pub use clock::{VirtualClock, WallClock};
pub use cost::Access;
pub use explain::{SendBreakdown, SendPath};
pub use fault::{ChunkFault, CrashPoint, FaultPlan, LinkDegradation, PersistentFault, SendFault};
pub use jitter::Jitter;
pub use platform::{
    CpuModel, Datapath, MemModel, NetModel, PipelineSpec, Platform, PlatformId, ProtocolModel,
    RmaModel, DEFAULT_DEADLOCK_TIMEOUT_S,
};
pub use spec::SpecError;
