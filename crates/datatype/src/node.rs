//! The datatype tree: node kinds and derived-property computation.
//!
//! A [`Datatype`] is a cheaply clonable handle (an `Arc`) onto an immutable
//! tree of [`Kind`] nodes. All derived properties — size, bounds, extent,
//! signature, denseness, segment-count hints — are computed once at
//! construction and cached on the node, so queries are O(1) regardless of
//! how deeply types are nested.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::error::{DatatypeError, Result};
use crate::primitive::Primitive;
use crate::signature::Signature;

/// A contiguous run of bytes within one instance of a datatype,
/// relative to the instance origin (the address the user buffer starts at).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Byte offset relative to the instance origin. May be negative for
    /// resized types with a negative lower bound.
    pub offset: i64,
    /// Length in bytes. Never zero for blocks produced by iteration.
    pub len: u64,
}

/// How a subarray's dimensions map to memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayOrder {
    /// Row-major: the *last* dimension is contiguous in memory (C).
    C,
    /// Column-major: the *first* dimension is contiguous in memory (Fortran).
    Fortran,
}

/// One field of a struct datatype.
#[derive(Debug, Clone)]
pub struct StructField {
    /// Number of consecutive instances of `datatype`.
    pub blocklen: u64,
    /// Byte displacement of the field from the struct origin.
    pub displacement: i64,
    /// Element type of the field.
    pub datatype: Datatype,
}

/// The constructors of the datatype algebra, mirroring `MPI_Type_*`.
///
/// Field meanings follow the MPI calls they mirror; see the variant docs.
#[derive(Debug, Clone)]
#[allow(missing_docs)]
pub enum Kind {
    /// A predefined leaf type.
    Primitive(Primitive),
    /// `count` consecutive instances of `child`, tiled by its extent.
    Contiguous { count: u64, child: Datatype },
    /// `count` blocks of `blocklen` child elements; consecutive blocks are
    /// `stride` child *extents* apart (`MPI_Type_vector`).
    Vector { count: u64, blocklen: u64, stride: i64, child: Datatype },
    /// Like `Vector`, but the stride is given in *bytes*
    /// (`MPI_Type_create_hvector`).
    Hvector { count: u64, blocklen: u64, stride_bytes: i64, child: Datatype },
    /// Blocks of varying length at displacements counted in child extents
    /// (`MPI_Type_indexed`). Each entry is `(blocklen, displacement)`.
    Indexed { blocks: Arc<[(u64, i64)]>, child: Datatype },
    /// Blocks of varying length at *byte* displacements
    /// (`MPI_Type_create_hindexed`).
    Hindexed { blocks: Arc<[(u64, i64)]>, child: Datatype },
    /// Fixed-length blocks at displacements counted in child extents
    /// (`MPI_Type_create_indexed_block`).
    IndexedBlock { blocklen: u64, displacements: Arc<[i64]>, child: Datatype },
    /// Heterogeneous fields at byte displacements
    /// (`MPI_Type_create_struct`).
    Struct { fields: Arc<[StructField]> },
    /// An n-dimensional rectangular slice out of an n-dimensional array
    /// (`MPI_Type_create_subarray`).
    Subarray {
        sizes: Arc<[u64]>,
        subsizes: Arc<[u64]>,
        starts: Arc<[u64]>,
        order: ArrayOrder,
        child: Datatype,
    },
    /// A child with overridden lower bound and extent
    /// (`MPI_Type_create_resized`).
    Resized { lb: i64, extent: u64, child: Datatype },
}

/// Cached derived properties plus the defining [`Kind`].
#[derive(Debug)]
pub struct TypeNode {
    pub(crate) kind: Kind,
    pub(crate) size: u64,
    pub(crate) lb: i64,
    pub(crate) ub: i64,
    pub(crate) true_lb: i64,
    pub(crate) true_ub: i64,
    pub(crate) align: usize,
    /// `Some(block)` iff the full typemap is a single dense, in-order run.
    /// Empty types carry `Some(Block { offset: 0, len: 0 })`.
    pub(crate) dense: Option<Block>,
    /// Upper bound on the number of coalesced segments in one instance.
    pub(crate) seg_hint: u64,
    pub(crate) sig: Signature,
    pub(crate) committed: AtomicBool,
    /// Materialized, coalesced segment list, filled at commit time when the
    /// segment count is small enough (see [`Datatype::FLATTEN_CAP`]).
    pub(crate) flattened: OnceLock<Option<Arc<[Block]>>>,
    /// Depth of the type tree (primitives are depth 1).
    pub(crate) depth: u32,
    /// Process-unique node id; keys the compiled pack-plan cache.
    pub(crate) uid: u64,
    /// Memoized canonical form: `(normalized id, representative)`. `None`
    /// as the representative means this node is already canonical (no
    /// self-reference, which would leak the `Arc`). See `normalize`.
    pub(crate) norm: OnceLock<(u64, Option<Datatype>)>,
}

/// Next process-unique [`TypeNode`] id.
fn next_uid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A handle on an immutable derived-datatype tree.
#[derive(Clone, Debug)]
pub struct Datatype {
    pub(crate) node: Arc<TypeNode>,
}

fn cadd(a: i64, b: i64) -> Result<i64> {
    a.checked_add(b).ok_or(DatatypeError::Overflow)
}
fn cmul(a: i64, b: i64) -> Result<i64> {
    a.checked_mul(b).ok_or(DatatypeError::Overflow)
}
fn cmulu(a: u64, b: u64) -> Result<u64> {
    a.checked_mul(b).ok_or(DatatypeError::Overflow)
}

/// Bounds accumulator for min/max over typemap pieces.
#[derive(Clone, Copy)]
struct Bounds {
    lb: i64,
    ub: i64,
    tlb: i64,
    tub: i64,
    any: bool,
}

impl Bounds {
    fn new() -> Self {
        Bounds { lb: 0, ub: 0, tlb: 0, tub: 0, any: false }
    }

    fn include(&mut self, lb: i64, ub: i64, tlb: i64, tub: i64) {
        if !self.any {
            *self = Bounds { lb, ub, tlb, tub, any: true };
        } else {
            self.lb = self.lb.min(lb);
            self.ub = self.ub.max(ub);
            self.tlb = self.tlb.min(tlb);
            self.tub = self.tub.max(tub);
        }
    }
}

/// Tracks whether a sequence of emitted segments forms a single dense run,
/// and counts the coalesced segments.
struct DenseTracker {
    first: Option<Block>,
    expected_next: i64,
    dense: bool,
    segs: u64,
}

impl DenseTracker {
    fn new() -> Self {
        DenseTracker { first: None, expected_next: 0, dense: true, segs: 0 }
    }

    /// Feed the next run of `segs` segments; if the run itself is a single
    /// block `(offset, len)`, pass it so cross-run chaining can be detected.
    fn feed(&mut self, block: Option<Block>, segs: u64) {
        match block {
            Some(b) if b.len > 0 => {
                if let Some(f) = &mut self.first {
                    if self.dense && b.offset == self.expected_next {
                        f.len += b.len;
                    } else {
                        self.dense = false;
                        self.segs = self.segs.saturating_add(1);
                    }
                } else {
                    // Irregular runs may have been fed before the first
                    // single-block one; accumulate, don't reset.
                    self.first = Some(b);
                    self.segs = self.segs.saturating_add(1);
                }
                self.expected_next = b.offset.saturating_add(b.len as i64);
            }
            Some(_) => {} // empty block: contributes nothing
            None => {
                self.dense = false;
                self.segs = self.segs.saturating_add(segs);
            }
        }
    }

    fn dense_block(&self) -> Option<Block> {
        match &self.first {
            // No data at all (and no irregular runs fed): the empty type.
            None if self.dense => Some(Block { offset: 0, len: 0 }),
            Some(b) if self.dense => Some(*b),
            _ => None,
        }
    }

    fn seg_count(&self) -> u64 {
        self.segs.max(if self.first.is_none() { 0 } else { 1 })
    }
}

impl TypeNode {
    /// Builds a node from a kind, computing every cached property.
    /// Constructor-level validation (array length agreement, subarray
    /// consistency) is done by the public builders before calling this.
    pub(crate) fn build(kind: Kind) -> Result<Datatype> {
        let node = match &kind {
            Kind::Primitive(p) => {
                let size = p.size() as u64;
                TypeNode {
                    size,
                    lb: 0,
                    ub: size as i64,
                    true_lb: 0,
                    true_ub: size as i64,
                    align: p.align(),
                    dense: Some(Block { offset: 0, len: size }),
                    seg_hint: 1,
                    sig: Signature::of(*p),
                    committed: AtomicBool::new(true),
                    flattened: OnceLock::new(),
                    depth: 1,
                    uid: next_uid(),
                    norm: OnceLock::new(),
                    kind: kind.clone(),
                }
            }
            Kind::Contiguous { count, child } => {
                Self::build_blocky(&kind, &[(0i64, *count)], 1, child)?
            }
            Kind::Vector { count, blocklen, stride, child } => {
                let ext = child.extent_i64();
                let sb = cmul(*stride, ext)?;
                let offs: Vec<(i64, u64)> =
                    (0..*count).map(|j| cmul(j as i64, sb).map(|o| (o, *blocklen))).collect::<Result<_>>()?;
                Self::build_blocky(&kind, &offs, 1, child)?
            }
            Kind::Hvector { count, blocklen, stride_bytes, child } => {
                let offs: Vec<(i64, u64)> = (0..*count)
                    .map(|j| cmul(j as i64, *stride_bytes).map(|o| (o, *blocklen)))
                    .collect::<Result<_>>()?;
                Self::build_blocky(&kind, &offs, 1, child)?
            }
            Kind::Indexed { blocks, child } => {
                let ext = child.extent_i64();
                let offs: Vec<(i64, u64)> =
                    blocks.iter().map(|&(bl, d)| cmul(d, ext).map(|o| (o, bl))).collect::<Result<_>>()?;
                Self::build_blocky(&kind, &offs, 1, child)?
            }
            Kind::Hindexed { blocks, child } => {
                let offs: Vec<(i64, u64)> = blocks.iter().map(|&(bl, d)| (d, bl)).collect();
                Self::build_blocky(&kind, &offs, 1, child)?
            }
            Kind::IndexedBlock { blocklen, displacements, child } => {
                let ext = child.extent_i64();
                let offs: Vec<(i64, u64)> = displacements
                    .iter()
                    .map(|&d| cmul(d, ext).map(|o| (o, *blocklen)))
                    .collect::<Result<_>>()?;
                Self::build_blocky(&kind, &offs, 1, child)?
            }
            Kind::Struct { fields } => Self::build_struct(&kind, fields)?,
            Kind::Subarray { sizes, subsizes, starts, order, child } => {
                Self::build_subarray(&kind, sizes, subsizes, starts, *order, child)?
            }
            Kind::Resized { lb, extent, child } => {
                let ub = cadd(*lb, i64::try_from(*extent).map_err(|_| DatatypeError::Overflow)?)?;
                TypeNode {
                    size: child.size(),
                    lb: *lb,
                    ub,
                    true_lb: child.true_lb(),
                    true_ub: child.true_ub(),
                    align: child.align(),
                    dense: child.node.dense,
                    seg_hint: child.node.seg_hint,
                    sig: child.node.sig.clone(),
                    committed: AtomicBool::new(false),
                    flattened: OnceLock::new(),
                    depth: child.node.depth + 1,
                    uid: next_uid(),
                    norm: OnceLock::new(),
                    kind: kind.clone(),
                }
            }
        };
        Ok(Datatype { node: Arc::new(node) })
    }

    /// Shared construction for every kind that is "blocks of a single child
    /// type at byte offsets": contiguous, vector, hvector, indexed flavors.
    ///
    /// `offsets` holds `(byte_offset_of_block, blocklen)` pairs in typemap
    /// order; within a block, child instances tile by the child extent.
    fn build_blocky(kind: &Kind, offsets: &[(i64, u64)], _reserved: u64, child: &Datatype) -> Result<TypeNode> {
        if child.extent_i64() < 0 {
            return Err(DatatypeError::NegativeExtentChild);
        }
        let ext = child.extent_i64();
        let c = &child.node;

        let mut total: u64 = 0;
        let mut bounds = Bounds::new();
        let mut tracker = DenseTracker::new();

        // One block of `bl` child instances, as a single dense run if the
        // child itself is dense and tiles exactly by its extent.
        let child_block_dense =
            c.dense.filter(|b| ext == b.len as i64 && c.size > 0).map(|b| b.len);

        for &(off, bl) in offsets {
            if bl == 0 {
                continue;
            }
            total = total.checked_add(bl).ok_or(DatatypeError::Overflow)?;
            let span = cmul(bl as i64 - 1, ext)?;
            bounds.include(
                cadd(off, c.lb)?,
                cadd(cadd(off, span)?, c.ub)?,
                cadd(off, c.true_lb)?,
                cadd(cadd(off, span)?, c.true_ub)?,
            );
            match child_block_dense {
                Some(len) => {
                    let b = c.dense.unwrap();
                    tracker.feed(Some(Block { offset: cadd(off, b.offset)?, len: cmulu(len, bl)? }), 1);
                }
                None => {
                    if c.size == 0 {
                        // empty child: no bytes at all
                        tracker.feed(Some(Block { offset: off, len: 0 }), 0);
                    } else if bl == 1 {
                        match c.dense {
                            Some(b) => tracker.feed(Some(Block { offset: cadd(off, b.offset)?, len: b.len }), 1),
                            None => tracker.feed(None, c.seg_hint),
                        }
                    } else {
                        tracker.feed(None, cmulu(bl, c.seg_hint)?);
                    }
                }
            }
        }

        let size = cmulu(total, c.size)?;
        let (lb, ub, tlb, tub) = if bounds.any {
            (bounds.lb, bounds.ub, bounds.tlb, bounds.tub)
        } else {
            (0, 0, 0, 0)
        };

        Ok(TypeNode {
            size,
            lb,
            ub,
            true_lb: tlb,
            true_ub: tub,
            align: c.align,
            dense: tracker.dense_block(),
            seg_hint: tracker.seg_count(),
            sig: c.sig.scaled(total)?,
            committed: AtomicBool::new(false),
            flattened: OnceLock::new(),
            depth: c.depth + 1,
            uid: next_uid(),
            norm: OnceLock::new(),
            kind: kind.clone(),
        })
    }

    fn build_struct(kind: &Kind, fields: &[StructField]) -> Result<TypeNode> {
        let mut size: u64 = 0;
        let mut bounds = Bounds::new();
        let mut tracker = DenseTracker::new();
        let mut align = 1usize;
        let mut sig = Signature::empty();
        let mut depth = 0u32;

        for f in fields {
            let c = &f.datatype.node;
            depth = depth.max(c.depth);
            if f.blocklen == 0 {
                continue;
            }
            if f.datatype.extent_i64() < 0 {
                return Err(DatatypeError::NegativeExtentChild);
            }
            let ext = f.datatype.extent_i64();
            align = align.max(c.align);
            size = size
                .checked_add(cmulu(f.blocklen, c.size)?)
                .ok_or(DatatypeError::Overflow)?;
            sig = sig.plus(&c.sig.scaled(f.blocklen)?)?;
            let span = cmul(f.blocklen as i64 - 1, ext)?;
            bounds.include(
                cadd(f.displacement, c.lb)?,
                cadd(cadd(f.displacement, span)?, c.ub)?,
                cadd(f.displacement, c.true_lb)?,
                cadd(cadd(f.displacement, span)?, c.true_ub)?,
            );
            let block_dense = c.dense.filter(|b| ext == b.len as i64 && c.size > 0);
            match block_dense {
                Some(b) => tracker.feed(
                    Some(Block {
                        offset: cadd(f.displacement, b.offset)?,
                        len: cmulu(b.len, f.blocklen)?,
                    }),
                    1,
                ),
                None if c.size == 0 => {}
                None if f.blocklen == 1 => match c.dense {
                    Some(b) => tracker.feed(Some(Block { offset: cadd(f.displacement, b.offset)?, len: b.len }), 1),
                    None => tracker.feed(None, c.seg_hint),
                },
                None => tracker.feed(None, cmulu(f.blocklen, c.seg_hint)?),
            }
        }

        let (lb, mut ub, tlb, tub) = if bounds.any {
            (bounds.lb, bounds.ub, bounds.tlb, bounds.tub)
        } else {
            (0, 0, 0, 0)
        };
        // MPI epsilon rule: pad the extent so arrays of this struct keep
        // every field naturally aligned, exactly as a C compiler would.
        let raw_extent = (ub - lb) as u64;
        let a = align as u64;
        let padded = raw_extent.div_ceil(a) * a;
        ub = cadd(lb, i64::try_from(padded).map_err(|_| DatatypeError::Overflow)?)?;

        Ok(TypeNode {
            size,
            lb,
            ub,
            true_lb: tlb,
            true_ub: tub,
            align,
            // Padding means an array of structs is never byte-dense unless
            // the padding is zero and the body is dense.
            dense: tracker.dense_block().filter(|_| padded == raw_extent || size == 0),
            seg_hint: tracker.seg_count(),
            sig,
            committed: AtomicBool::new(false),
            flattened: OnceLock::new(),
            depth: depth + 1,
            uid: next_uid(),
            norm: OnceLock::new(),
            kind: kind.clone(),
        })
    }

    fn build_subarray(
        kind: &Kind,
        sizes: &[u64],
        subsizes: &[u64],
        starts: &[u64],
        order: ArrayOrder,
        child: &Datatype,
    ) -> Result<TypeNode> {
        if child.extent_i64() < 0 {
            return Err(DatatypeError::NegativeExtentChild);
        }
        let c = &child.node;
        let ext = child.extent_i64();
        let ndims = sizes.len();

        // Element strides per dimension, in child-extent units.
        let mut stride = vec![1u64; ndims];
        match order {
            ArrayOrder::C => {
                for d in (0..ndims.saturating_sub(1)).rev() {
                    stride[d] = cmulu(stride[d + 1], sizes[d + 1])?;
                }
            }
            ArrayOrder::Fortran => {
                for d in 1..ndims {
                    stride[d] = cmulu(stride[d - 1], sizes[d - 1])?;
                }
            }
        }

        let full_elems = sizes.iter().try_fold(1u64, |a, &s| cmulu(a, s))?;
        let sel_elems = subsizes.iter().try_fold(1u64, |a, &s| cmulu(a, s))?;
        let size = cmulu(sel_elems, c.size)?;

        // Subarray extent always covers the whole array (MPI semantics).
        let ub = cmul(full_elems as i64, ext)?;

        // Dimensions ordered from outermost to innermost memory stride.
        let dims_by_locality: Vec<usize> = match order {
            ArrayOrder::C => (0..ndims).collect(),
            ArrayOrder::Fortran => (0..ndims).rev().collect(),
        };

        // The innermost run: trailing (in memory order) dims selected fully,
        // then one partially-selected dim extends the run.
        let mut run_elems = 1u64;
        let mut outer_runs = 1u64;
        let mut still_inner = true;
        for &d in dims_by_locality.iter().rev() {
            if still_inner {
                if subsizes[d] == sizes[d] {
                    run_elems = cmulu(run_elems, sizes[d])?;
                    continue;
                }
                run_elems = cmulu(run_elems, subsizes[d])?;
                still_inner = false;
            } else {
                outer_runs = cmulu(outer_runs, subsizes[d])?;
            }
        }

        // First and last selected element offsets (element units).
        let mut first = 0i64;
        let mut last = 0i64;
        for d in 0..ndims {
            first = cadd(first, cmul(starts[d] as i64, stride[d] as i64)?)?;
            last = cadd(
                last,
                cmul((starts[d] + subsizes[d].saturating_sub(1)) as i64, stride[d] as i64)?,
            )?;
        }
        let empty = sel_elems == 0 || c.size == 0;
        let first_byte = if empty { 0 } else { cmul(first, ext)? };
        let (true_lb, true_ub) = if empty {
            (0, 0)
        } else {
            (cadd(first_byte, c.true_lb)?, cadd(cmul(last, ext)?, c.true_ub)?)
        };

        let child_tiles = c.dense.filter(|b| ext == b.len as i64 && c.size > 0);
        let dense = if empty {
            Some(Block { offset: 0, len: 0 })
        } else if outer_runs == 1 {
            match child_tiles {
                Some(b) => Some(Block {
                    offset: cadd(first_byte, b.offset)?,
                    len: cmulu(b.len, run_elems)?,
                }),
                None => None,
            }
        } else {
            None
        };
        let seg_hint = if sel_elems == 0 || c.size == 0 {
            0
        } else if child_tiles.is_some() {
            outer_runs
        } else {
            cmulu(sel_elems, c.seg_hint)?
        };

        Ok(TypeNode {
            size,
            lb: 0,
            ub,
            true_lb,
            true_ub,
            align: c.align,
            dense,
            seg_hint: seg_hint.max(if size > 0 { 1 } else { 0 }),
            sig: c.sig.scaled(sel_elems)?,
            committed: AtomicBool::new(false),
            flattened: OnceLock::new(),
            depth: c.depth + 1,
            uid: next_uid(),
            norm: OnceLock::new(),
            kind: kind.clone(),
        })
    }
}

impl Datatype {
    /// Above this many segments per instance, commit does not materialize a
    /// flattened representation and pack/unpack stream segments instead.
    pub const FLATTEN_CAP: u64 = 1 << 16;

    /// Total payload bytes in one instance (sum of primitive sizes).
    #[inline]
    pub fn size(&self) -> u64 {
        self.node.size
    }

    /// Lower bound of the typemap in bytes (may be negative).
    #[inline]
    pub fn lb(&self) -> i64 {
        self.node.lb
    }

    /// Upper bound of the typemap in bytes (includes struct padding).
    #[inline]
    pub fn ub(&self) -> i64 {
        self.node.ub
    }

    /// Extent: the stride at which consecutive instances tile.
    #[inline]
    pub fn extent(&self) -> u64 {
        (self.node.ub - self.node.lb) as u64
    }

    #[inline]
    pub(crate) fn extent_i64(&self) -> i64 {
        self.node.ub - self.node.lb
    }

    /// Lowest byte actually touched by data.
    #[inline]
    pub fn true_lb(&self) -> i64 {
        self.node.true_lb
    }

    /// One past the highest byte actually touched by data.
    #[inline]
    pub fn true_ub(&self) -> i64 {
        self.node.true_ub
    }

    /// Extent of the data actually touched.
    #[inline]
    pub fn true_extent(&self) -> u64 {
        (self.node.true_ub - self.node.true_lb) as u64
    }

    /// Natural alignment (max leaf alignment).
    #[inline]
    pub fn align(&self) -> usize {
        self.node.align
    }

    /// Whether one instance is a single dense run of bytes in typemap order.
    #[inline]
    pub fn is_dense(&self) -> bool {
        self.node.dense.is_some()
    }

    /// The dense run, if [`Self::is_dense`].
    #[inline]
    pub fn dense_block(&self) -> Option<Block> {
        self.node.dense
    }

    /// Whether `count` instances of this type pack as one memcpy: the type
    /// is dense *and* instances tile without gaps.
    pub fn is_contiguous_run(&self, count: u64) -> bool {
        match self.node.dense {
            Some(b) => count <= 1 || (b.len as i64 == self.extent_i64()),
            None => false,
        }
    }

    /// Upper bound on coalesced segments per instance.
    #[inline]
    pub fn seg_count_hint(&self) -> u64 {
        self.node.seg_hint
    }

    /// The multiset-of-primitives signature.
    #[inline]
    pub fn signature(&self) -> &Signature {
        &self.node.sig
    }

    /// Depth of the type tree.
    #[inline]
    pub fn depth(&self) -> u32 {
        self.node.depth
    }

    /// The defining kind of the root node.
    #[inline]
    pub fn kind(&self) -> &Kind {
        &self.node.kind
    }

    /// Whether [`Self::commit`] has been called (primitives are born
    /// committed).
    #[inline]
    pub fn is_committed(&self) -> bool {
        self.node.committed.load(Ordering::Acquire)
    }

    /// Marks the type ready for communication and precomputes the flattened
    /// segment list when it is small enough to be worth materializing.
    ///
    /// Returns `self` for chaining, mirroring the common
    /// `MPI_Type_commit(&t)` usage.
    pub fn commit(self) -> Self {
        self.node.flattened.get_or_init(|| {
            if self.node.seg_hint <= Self::FLATTEN_CAP {
                Some(crate::segiter::SegIter::new(&self, 1).collect::<Vec<_>>().into())
            } else {
                None
            }
        });
        self.node.committed.store(true, Ordering::Release);
        self
    }

    /// Errors unless the type is committed.
    pub fn require_committed(&self) -> Result<()> {
        if self.is_committed() {
            Ok(())
        } else {
            Err(DatatypeError::NotCommitted)
        }
    }

    /// The flattened segment list, if the type was committed and small.
    pub fn flattened(&self) -> Option<&Arc<[Block]>> {
        self.node.flattened.get().and_then(|o| o.as_ref())
    }

    /// Structural pointer equality (same node).
    pub fn same_type(&self, other: &Datatype) -> bool {
        Arc::ptr_eq(&self.node, &other.node)
    }

    /// Process-unique id of the root node. Clones of the same handle share
    /// an id; structurally equal but separately built types do not. Keys
    /// the compiled pack-plan cache.
    #[inline]
    pub fn type_id(&self) -> u64 {
        self.node.uid
    }
}

#[cfg(test)]
mod tests {
    use crate::Datatype;
    use crate::primitive::Primitive;

    #[test]
    fn primitive_properties() {
        let d = Datatype::primitive(Primitive::Float64);
        assert_eq!(d.size(), 8);
        assert_eq!(d.extent(), 8);
        assert_eq!(d.lb(), 0);
        assert!(d.is_dense());
        assert!(d.is_committed());
        assert_eq!(d.seg_count_hint(), 1);
        assert_eq!(d.depth(), 1);
    }

    #[test]
    fn contiguous_is_dense() {
        let d = Datatype::contiguous(10, &Datatype::f64()).unwrap();
        assert_eq!(d.size(), 80);
        assert_eq!(d.extent(), 80);
        assert!(d.is_dense());
        assert_eq!(d.seg_count_hint(), 1);
    }

    #[test]
    fn vector_every_other_element() {
        // The paper's workload: N elements at stride 2.
        let d = Datatype::vector(100, 1, 2, &Datatype::f64()).unwrap();
        assert_eq!(d.size(), 800);
        // lb 0; last block starts at 99*16, spans 8.
        assert_eq!(d.lb(), 0);
        assert_eq!(d.ub(), 99 * 16 + 8);
        assert_eq!(d.extent(), 99 * 16 + 8);
        assert!(!d.is_dense());
        assert_eq!(d.seg_count_hint(), 100);
    }

    #[test]
    fn vector_with_stride_equal_blocklen_is_dense() {
        let d = Datatype::vector(10, 4, 4, &Datatype::f64()).unwrap();
        assert!(d.is_dense());
        assert_eq!(d.seg_count_hint(), 1);
        assert_eq!(d.size(), d.extent());
    }

    #[test]
    fn negative_stride_bounds() {
        let d = Datatype::vector(3, 1, -2, &Datatype::f64()).unwrap();
        // blocks at 0, -16, -32
        assert_eq!(d.lb(), -32);
        assert_eq!(d.ub(), 8);
        assert_eq!(d.size(), 24);
    }

    #[test]
    fn zero_count_vector_is_empty() {
        let d = Datatype::vector(0, 1, 2, &Datatype::f64()).unwrap();
        assert_eq!(d.size(), 0);
        assert_eq!(d.extent(), 0);
        assert!(d.is_dense());
        assert_eq!(d.seg_count_hint(), 0);
    }

    #[test]
    fn struct_padding_follows_alignment() {
        // i32 at 0, f64 at 4 -> raw extent 12, padded to 16 (align 8).
        let d = Datatype::structure(&[
            (1, 0, Datatype::i32()),
            (1, 4, Datatype::f64()),
        ])
        .unwrap();
        assert_eq!(d.size(), 12);
        assert_eq!(d.extent(), 16);
        assert_eq!(d.true_extent(), 12);
        assert_eq!(d.align(), 8);
    }

    #[test]
    fn resized_overrides_bounds() {
        let base = Datatype::f64();
        let d = Datatype::resized(&base, -8, 32).unwrap();
        assert_eq!(d.lb(), -8);
        assert_eq!(d.ub(), 24);
        assert_eq!(d.extent(), 32);
        assert_eq!(d.true_lb(), 0);
        assert_eq!(d.true_ub(), 8);
        assert_eq!(d.size(), 8);
    }

    #[test]
    fn subarray_extent_covers_full_array() {
        // 4x6 array of f64, select 4x3 starting at column 0.
        let d = Datatype::subarray(&[4, 6], &[4, 3], &[0, 0], crate::ArrayOrder::C, &Datatype::f64())
            .unwrap();
        assert_eq!(d.size(), 12 * 8);
        assert_eq!(d.extent(), 24 * 8);
        assert_eq!(d.lb(), 0);
        assert!(!d.is_dense());
        assert_eq!(d.seg_count_hint(), 4); // one run per row
    }

    #[test]
    fn subarray_full_selection_is_dense() {
        let d = Datatype::subarray(&[4, 6], &[4, 6], &[0, 0], crate::ArrayOrder::C, &Datatype::f64())
            .unwrap();
        assert!(d.is_dense());
        assert_eq!(d.seg_count_hint(), 1);
    }

    #[test]
    fn fortran_order_flips_contiguity() {
        // Selecting a full first dimension is contiguous in Fortran order.
        let d = Datatype::subarray(&[6, 4], &[6, 1], &[0, 2], crate::ArrayOrder::Fortran, &Datatype::f64())
            .unwrap();
        assert!(d.is_dense());
        let b = d.dense_block().unwrap();
        assert_eq!(b.offset, 2 * 6 * 8);
        assert_eq!(b.len, 48);
    }

    #[test]
    fn signature_scales_through_nesting() {
        let v = Datatype::vector(10, 2, 3, &Datatype::f64()).unwrap();
        let c = Datatype::contiguous(5, &v).unwrap();
        assert_eq!(c.signature().count(Primitive::Float64), 100);
        assert_eq!(c.size(), 800);
    }

    #[test]
    fn commit_flattens_small_types() {
        let d = Datatype::vector(8, 1, 2, &Datatype::f64()).unwrap().commit();
        let f = d.flattened().expect("should flatten");
        assert_eq!(f.len(), 8);
        assert_eq!(f[0].offset, 0);
        assert_eq!(f[1].offset, 16);
    }

    #[test]
    fn huge_types_do_not_materialize() {
        let d = Datatype::vector(1 << 20, 1, 2, &Datatype::f64()).unwrap().commit();
        assert!(d.flattened().is_none());
        assert!(d.is_committed());
    }

    #[test]
    fn uncommitted_flagged() {
        let d = Datatype::vector(4, 1, 2, &Datatype::f64()).unwrap();
        assert!(!d.is_committed());
        assert!(d.require_committed().is_err());
        let d = d.commit();
        assert!(d.require_committed().is_ok());
    }

    #[test]
    fn indexed_bounds_and_size() {
        let d = Datatype::indexed(&[(2, 0), (3, 10), (1, 20)], &Datatype::i32()).unwrap();
        assert_eq!(d.size(), 6 * 4);
        assert_eq!(d.lb(), 0);
        assert_eq!(d.ub(), 21 * 4);
        assert_eq!(d.seg_count_hint(), 3);
    }

    #[test]
    fn indexed_adjacent_blocks_coalesce_in_hint() {
        // blocks (2,0) and (3,2) are adjacent -> one dense run
        let d = Datatype::indexed(&[(2, 0), (3, 2)], &Datatype::i32()).unwrap();
        assert!(d.is_dense());
        assert_eq!(d.seg_count_hint(), 1);
    }
}
