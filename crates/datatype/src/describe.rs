//! Human-readable descriptions and type-map inspection.
//!
//! The MPI standard defines a datatype by its *type map* — the sequence of
//! `(primitive, displacement)` pairs. [`Datatype::type_map_preview`]
//! materializes a bounded prefix of that map (for tests and debugging),
//! and [`Datatype::describe`] renders the constructor tree the way
//! `MPI_Type_get_envelope`/`get_contents` would let a tool print it.

use std::fmt::Write as _;

use crate::node::{ArrayOrder, Datatype, Kind};
use crate::primitive::Primitive;

/// One entry of a type map: a primitive at a byte displacement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeMapEntry {
    /// The leaf type.
    pub primitive: Primitive,
    /// Its byte displacement from the type origin.
    pub displacement: i64,
}

impl Datatype {
    /// The first `limit` entries of the type map, in typemap order.
    ///
    /// Intended for tests and debugging; the walk is O(entries visited).
    pub fn type_map_preview(&self, limit: usize) -> Vec<TypeMapEntry> {
        let mut out = Vec::with_capacity(limit.min(64));
        self.walk_typemap(0, &mut out, limit);
        out
    }

    fn walk_typemap(&self, base: i64, out: &mut Vec<TypeMapEntry>, limit: usize) {
        if out.len() >= limit {
            return;
        }
        match self.kind() {
            Kind::Primitive(p) => {
                out.push(TypeMapEntry { primitive: *p, displacement: base });
            }
            Kind::Contiguous { count, child } => {
                let ext = child.extent() as i64;
                for i in 0..*count {
                    if out.len() >= limit {
                        return;
                    }
                    child.walk_typemap(base + i as i64 * ext, out, limit);
                }
            }
            Kind::Vector { count, blocklen, stride, child } => {
                let ext = child.extent() as i64;
                walk_blocks(
                    (0..*count).map(|j| (j as i64 * stride * ext, *blocklen)),
                    child,
                    base,
                    out,
                    limit,
                );
            }
            Kind::Hvector { count, blocklen, stride_bytes, child } => {
                walk_blocks(
                    (0..*count).map(|j| (j as i64 * stride_bytes, *blocklen)),
                    child,
                    base,
                    out,
                    limit,
                );
            }
            Kind::Indexed { blocks, child } => {
                let ext = child.extent() as i64;
                walk_blocks(blocks.iter().map(|&(bl, d)| (d * ext, bl)), child, base, out, limit);
            }
            Kind::Hindexed { blocks, child } => {
                walk_blocks(blocks.iter().map(|&(bl, d)| (d, bl)), child, base, out, limit);
            }
            Kind::IndexedBlock { blocklen, displacements, child } => {
                let ext = child.extent() as i64;
                walk_blocks(
                    displacements.iter().map(|&d| (d * ext, *blocklen)),
                    child,
                    base,
                    out,
                    limit,
                );
            }
            Kind::Struct { fields } => {
                for f in fields.iter() {
                    let ext = f.datatype.extent() as i64;
                    for k in 0..f.blocklen {
                        if out.len() >= limit {
                            return;
                        }
                        f.datatype.walk_typemap(
                            base + f.displacement + k as i64 * ext,
                            out,
                            limit,
                        );
                    }
                }
            }
            Kind::Subarray { sizes, subsizes, starts, order, child } => {
                // Walk the selected index tuples directly, innermost memory
                // dimension fastest. (Reconstructing leaves from coalesced
                // segments breaks for children that do not tile densely:
                // a segment is then shorter than the child extent and the
                // old walk re-emitted whole children at segment offsets.)
                let ndims = sizes.len();
                let mut stride = vec![1i64; ndims];
                match order {
                    ArrayOrder::C => {
                        for d in (0..ndims.saturating_sub(1)).rev() {
                            stride[d] = stride[d + 1] * sizes[d + 1] as i64;
                        }
                    }
                    ArrayOrder::Fortran => {
                        for d in 1..ndims {
                            stride[d] = stride[d - 1] * sizes[d - 1] as i64;
                        }
                    }
                }
                let fastest_last: Vec<usize> = match order {
                    ArrayOrder::C => (0..ndims).collect(),
                    ArrayOrder::Fortran => (0..ndims).rev().collect(),
                };
                let ext = child.extent() as i64;
                let total: u64 = subsizes.iter().product();
                let mut idx = vec![0u64; ndims];
                for _ in 0..total {
                    if out.len() >= limit {
                        return;
                    }
                    let mut elem = 0i64;
                    for d in 0..ndims {
                        elem += (starts[d] + idx[d]) as i64 * stride[d];
                    }
                    child.walk_typemap(base + elem * ext, out, limit);
                    for &d in fastest_last.iter().rev() {
                        idx[d] += 1;
                        if idx[d] < subsizes[d] {
                            break;
                        }
                        idx[d] = 0;
                    }
                }
            }
            Kind::Resized { child, .. } => child.walk_typemap(base, out, limit),
        }
    }

    /// A one-line summary: constructor, payload, extent, segment count.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} bytes over extent {} ({} segment{})",
            self.constructor_name(),
            self.size(),
            self.extent(),
            self.seg_count_hint(),
            if self.seg_count_hint() == 1 { "" } else { "s" }
        )
    }

    /// The MPI-ish constructor name of the root node.
    pub fn constructor_name(&self) -> &'static str {
        match self.kind() {
            Kind::Primitive(p) => p.name(),
            Kind::Contiguous { .. } => "CONTIGUOUS",
            Kind::Vector { .. } => "VECTOR",
            Kind::Hvector { .. } => "HVECTOR",
            Kind::Indexed { .. } => "INDEXED",
            Kind::Hindexed { .. } => "HINDEXED",
            Kind::IndexedBlock { .. } => "INDEXED_BLOCK",
            Kind::Struct { .. } => "STRUCT",
            Kind::Subarray { .. } => "SUBARRAY",
            Kind::Resized { .. } => "RESIZED",
        }
    }

    /// Render the constructor tree, one node per line, indented.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        self.describe_into(&mut out, 0);
        out
    }

    fn describe_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        let _ = match self.kind() {
            Kind::Primitive(p) => writeln!(out, "{pad}{} ({} bytes)", p.name(), p.size()),
            Kind::Contiguous { count, child } => {
                let _ = writeln!(out, "{pad}CONTIGUOUS count={count}");
                child.describe_into(out, depth + 1);
                Ok(())
            }
            Kind::Vector { count, blocklen, stride, child } => {
                let _ = writeln!(out, "{pad}VECTOR count={count} blocklen={blocklen} stride={stride}");
                child.describe_into(out, depth + 1);
                Ok(())
            }
            Kind::Hvector { count, blocklen, stride_bytes, child } => {
                let _ = writeln!(
                    out,
                    "{pad}HVECTOR count={count} blocklen={blocklen} stride={stride_bytes}B"
                );
                child.describe_into(out, depth + 1);
                Ok(())
            }
            Kind::Indexed { blocks, child } => {
                let _ = writeln!(out, "{pad}INDEXED blocks={}", blocks.len());
                child.describe_into(out, depth + 1);
                Ok(())
            }
            Kind::Hindexed { blocks, child } => {
                let _ = writeln!(out, "{pad}HINDEXED blocks={}", blocks.len());
                child.describe_into(out, depth + 1);
                Ok(())
            }
            Kind::IndexedBlock { blocklen, displacements, child } => {
                let _ = writeln!(
                    out,
                    "{pad}INDEXED_BLOCK blocklen={blocklen} blocks={}",
                    displacements.len()
                );
                child.describe_into(out, depth + 1);
                Ok(())
            }
            Kind::Struct { fields } => {
                let _ = writeln!(out, "{pad}STRUCT fields={}", fields.len());
                for f in fields.iter() {
                    let _ = writeln!(
                        out,
                        "{pad}  field @{} x{}:",
                        f.displacement, f.blocklen
                    );
                    f.datatype.describe_into(out, depth + 2);
                }
                Ok(())
            }
            Kind::Subarray { sizes, subsizes, starts, order, child } => {
                let _ = writeln!(
                    out,
                    "{pad}SUBARRAY sizes={sizes:?} subsizes={subsizes:?} starts={starts:?} order={order:?}"
                );
                child.describe_into(out, depth + 1);
                Ok(())
            }
            Kind::Resized { lb, extent, child } => {
                let _ = writeln!(out, "{pad}RESIZED lb={lb} extent={extent}");
                child.describe_into(out, depth + 1);
                Ok(())
            }
        };
    }
}

fn walk_blocks(
    blocks: impl Iterator<Item = (i64, u64)>,
    child: &Datatype,
    base: i64,
    out: &mut Vec<TypeMapEntry>,
    limit: usize,
) {
    let ext = child.extent() as i64;
    for (off, bl) in blocks {
        for k in 0..bl {
            if out.len() >= limit {
                return;
            }
            child.walk_typemap(base + off + k as i64 * ext, out, limit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ArrayOrder;

    #[test]
    fn typemap_of_vector() {
        let d = Datatype::vector(3, 1, 2, &Datatype::f64()).unwrap();
        let tm = d.type_map_preview(10);
        assert_eq!(tm.len(), 3);
        assert_eq!(tm[0], TypeMapEntry { primitive: Primitive::Float64, displacement: 0 });
        assert_eq!(tm[1].displacement, 16);
        assert_eq!(tm[2].displacement, 32);
    }

    #[test]
    fn typemap_respects_limit() {
        let d = Datatype::vector(1000, 1, 2, &Datatype::f64()).unwrap();
        assert_eq!(d.type_map_preview(5).len(), 5);
    }

    #[test]
    fn typemap_of_struct_in_field_order() {
        let d = Datatype::structure(&[
            (1, 8, Datatype::f64()),
            (2, 0, Datatype::i32()),
        ])
        .unwrap();
        let tm = d.type_map_preview(10);
        // Typemap order = definition order, not address order.
        assert_eq!(tm[0].primitive, Primitive::Float64);
        assert_eq!(tm[0].displacement, 8);
        assert_eq!(tm[1].primitive, Primitive::Int32);
        assert_eq!(tm[1].displacement, 0);
        assert_eq!(tm[2].displacement, 4);
    }

    #[test]
    fn typemap_of_subarray_matches_segments() {
        let d = Datatype::subarray(&[3, 4], &[2, 2], &[1, 1], ArrayOrder::C, &Datatype::f64())
            .unwrap();
        let tm = d.type_map_preview(16);
        let offsets: Vec<i64> = tm.iter().map(|e| e.displacement).collect();
        assert_eq!(offsets, vec![(4 + 1) * 8, (4 + 2) * 8, (8 + 1) * 8, (8 + 2) * 8]);
    }

    #[test]
    fn typemap_total_matches_size() {
        let d = Datatype::structure(&[
            (2, 0, Datatype::i32()),
            (1, 8, Datatype::vector(3, 1, 2, &Datatype::f64()).unwrap()),
        ])
        .unwrap();
        let tm = d.type_map_preview(usize::MAX);
        let total: usize = tm.iter().map(|e| e.primitive.size()).sum();
        assert_eq!(total as u64, d.size());
    }

    #[test]
    fn describe_renders_tree() {
        let inner = Datatype::vector(4, 1, 2, &Datatype::f64()).unwrap();
        let outer = Datatype::contiguous(2, &inner).unwrap();
        let s = outer.describe();
        assert!(s.contains("CONTIGUOUS count=2"));
        assert!(s.contains("VECTOR count=4 blocklen=1 stride=2"));
        assert!(s.contains("FLOAT64"));
        assert!(outer.summary().contains("CONTIGUOUS"));
    }

    #[test]
    fn resized_describes_child() {
        let d = Datatype::resized(&Datatype::f64(), -4, 16).unwrap();
        let tm = d.type_map_preview(4);
        assert_eq!(tm, vec![TypeMapEntry { primitive: Primitive::Float64, displacement: 0 }]);
        assert!(d.describe().contains("RESIZED lb=-4 extent=16"));
    }
}

/// Whether two datatypes select the *same bytes in the same order* (equal
/// coalesced segment streams), regardless of how they were constructed.
///
/// This is the equivalence the pack engine guarantees: `layout_eq(a, b)`
/// implies `pack(src, a) == pack(src, b)` for any buffer both fit in.
/// Extents may still differ (affects multi-instance tiling).
pub fn layout_eq(a: &Datatype, b: &Datatype) -> bool {
    let mut ia = crate::segiter::SegIter::new(a, 1);
    let mut ib = crate::segiter::SegIter::new(b, 1);
    loop {
        match (ia.next(), ib.next()) {
            (None, None) => return true,
            (Some(x), Some(y)) if x == y => continue,
            _ => return false,
        }
    }
}

#[cfg(test)]
mod layout_tests {
    use super::layout_eq;
    use crate::{ArrayOrder, Datatype};

    #[test]
    fn vector_equals_equivalent_constructions() {
        let v = Datatype::vector(6, 1, 2, &Datatype::f64()).unwrap();
        let s = Datatype::subarray(&[6, 2], &[6, 1], &[0, 0], ArrayOrder::C, &Datatype::f64())
            .unwrap();
        let ib = Datatype::indexed_block(1, &[0, 2, 4, 6, 8, 10], &Datatype::f64()).unwrap();
        assert!(layout_eq(&v, &s));
        assert!(layout_eq(&v, &ib));
    }

    #[test]
    fn different_selections_differ() {
        let a = Datatype::vector(4, 1, 2, &Datatype::f64()).unwrap();
        let b = Datatype::vector(4, 1, 3, &Datatype::f64()).unwrap();
        let c = Datatype::vector(5, 1, 2, &Datatype::f64()).unwrap();
        assert!(!layout_eq(&a, &b));
        assert!(!layout_eq(&a, &c));
    }

    #[test]
    fn extent_does_not_affect_layout_equality() {
        let a = Datatype::f64();
        let r = Datatype::resized(&a, 0, 32).unwrap();
        assert!(layout_eq(&a, &r));
        assert_ne!(a.extent(), r.extent());
    }

    #[test]
    fn empty_types_are_layout_equal() {
        let a = Datatype::contiguous(0, &Datatype::f64()).unwrap();
        let b = Datatype::vector(0, 3, 7, &Datatype::i32()).unwrap();
        assert!(layout_eq(&a, &b));
    }
}
