//! x86_64 kernels: non-temporal (streaming) gathers for the huge-pack
//! regime and a 16-byte-vector gather for small odd block lengths.
//!
//! Streaming stores (`movnti`/`movntdq`) bypass the cache hierarchy on
//! the write side. For a pack whose output exceeds the last-level cache,
//! regular stores trigger read-for-ownership traffic and evict the very
//! source lines the gather is about to read — the measured 64 MB
//! strided-pack cliff. NT stores eliminate both effects. Each NT kernel
//! issues its own `sfence` before returning, so packed data is globally
//! visible to any thread that later observes the pack's completion.
//!
//! Alignment strategy: NT stores require 16/32-byte-aligned
//! destinations. Destinations here are packed buffers cut at block
//! boundaries, so the head is aligned with whole-block scalar copies
//! when the block size allows it (8-byte blocks to 32, 4-byte blocks to
//! 16); a destination whose address cannot be reached that way falls
//! back to the scalar tier for this call.

use super::{scalar, Exec, SimdTier};
#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Strided gather dispatch for the SSE2/AVX2 tiers. `ex.stream` engages
/// the non-temporal kernels where block size and destination alignment
/// permit; otherwise the best cached-store kernel for `bl` runs.
///
/// # Safety
/// Every source byte of every block lies within `src` (plan-level
/// `validate_user`); vector overreads beyond a block are guarded against
/// `src.len()` internally.
pub(crate) unsafe fn gather(
    ex: Exec,
    src: &[u8],
    first: i64,
    stride: i64,
    bl: usize,
    out: &mut [u8],
) {
    let dst_addr = out.as_mut_ptr() as usize;
    if ex.stream {
        // SAFETY (all arms): per contract; alignment checked here.
        unsafe {
            match bl {
                8 if dst_addr.is_multiple_of(8) => {
                    if ex.tier == SimdTier::Avx2 {
                        nt_gather8_avx2(src.as_ptr(), first, stride, out);
                    } else {
                        nt_gather8_sse2(src.as_ptr(), first, stride, out);
                    }
                    return;
                }
                4 if dst_addr.is_multiple_of(4) => {
                    nt_gather4_sse2(src.as_ptr(), first, stride, out);
                    return;
                }
                _ if bl >= 16 && bl.is_multiple_of(16) && dst_addr.is_multiple_of(16) => {
                    nt_gather16x_sse2(src.as_ptr(), first, stride, bl, out);
                    return;
                }
                _ => {}
            }
        }
    }
    if bl < 16 && !matches!(bl, 4 | 8) && stride > 0 {
        // SAFETY: per contract; overreads guarded inside.
        unsafe { gather_loose16(src, first, stride, bl, out) };
        return;
    }
    // SAFETY: per contract.
    unsafe { scalar::gather(src.as_ptr(), first, stride, bl, out) }
}

/// NT gather of 8-byte blocks, four per 32-byte streaming store.
/// Caller guarantees `out` is 8-byte aligned; the head is walked with
/// whole-block scalar copies up to 32-byte alignment.
///
/// # Safety
/// As [`gather`]; additionally requires AVX2 (checked by tier dispatch).
#[target_feature(enable = "avx2")]
unsafe fn nt_gather8_avx2(src: *const u8, first: i64, stride: i64, out: &mut [u8]) {
    let n = out.len() / 8;
    let mut dst = out.as_mut_ptr();
    let mut j = 0usize;
    // SAFETY: whole-block copies within `out` and validated src blocks.
    unsafe {
        while !(dst as usize).is_multiple_of(32) && j < n {
            let p = src.add((first + j as i64 * stride) as usize) as *const u64;
            (dst as *mut u64).write_unaligned(p.read_unaligned());
            dst = dst.add(8);
            j += 1;
        }
        // Eight blocks per iteration: the two adjacent 32-byte NT stores
        // complete a full 64-byte line back-to-back, so the
        // write-combining buffer closes promptly instead of being flushed
        // half-full by the interleaved loads.
        while j + 8 <= n {
            let at = |k: usize| -> i64 {
                (src.add((first + (j + k) as i64 * stride) as usize) as *const i64)
                    .read_unaligned()
            };
            // Prefetch a few lines ahead of the read stream. wrapping_add:
            // the address may run past `src`, which is fine for a prefetch
            // hint (never faults, never dereferenced).
            _mm_prefetch(
                src.wrapping_add((first + (j + 32) as i64 * stride) as usize) as *const i8,
                _MM_HINT_NTA,
            );
            let v0 = _mm256_set_epi64x(at(3), at(2), at(1), at(0));
            let v1 = _mm256_set_epi64x(at(7), at(6), at(5), at(4));
            _mm256_stream_si256(dst as *mut __m256i, v0);
            _mm256_stream_si256(dst.add(32) as *mut __m256i, v1);
            dst = dst.add(64);
            j += 8;
        }
        while j + 4 <= n {
            let at = |k: usize| -> i64 {
                (src.add((first + (j + k) as i64 * stride) as usize) as *const i64)
                    .read_unaligned()
            };
            let v = _mm256_set_epi64x(at(3), at(2), at(1), at(0));
            _mm256_stream_si256(dst as *mut __m256i, v);
            dst = dst.add(32);
            j += 4;
        }
        while j < n {
            let p = src.add((first + j as i64 * stride) as usize) as *const u64;
            (dst as *mut u64).write_unaligned(p.read_unaligned());
            dst = dst.add(8);
            j += 1;
        }
        _mm_sfence();
    }
}

/// NT gather of 8-byte blocks, two per 16-byte streaming store (SSE2
/// tier). Caller guarantees `out` is 8-byte aligned.
///
/// # Safety
/// As [`gather`].
unsafe fn nt_gather8_sse2(src: *const u8, first: i64, stride: i64, out: &mut [u8]) {
    let n = out.len() / 8;
    let mut dst = out.as_mut_ptr();
    let mut j = 0usize;
    // SAFETY: whole-block copies within `out` and validated src blocks.
    unsafe {
        while !(dst as usize).is_multiple_of(16) && j < n {
            let p = src.add((first + j as i64 * stride) as usize) as *const u64;
            (dst as *mut u64).write_unaligned(p.read_unaligned());
            dst = dst.add(8);
            j += 1;
        }
        while j + 2 <= n {
            let at = |k: usize| -> i64 {
                (src.add((first + (j + k) as i64 * stride) as usize) as *const i64)
                    .read_unaligned()
            };
            let v = _mm_set_epi64x(at(1), at(0));
            _mm_stream_si128(dst as *mut __m128i, v);
            dst = dst.add(16);
            j += 2;
        }
        if j < n {
            let p = src.add((first + j as i64 * stride) as usize) as *const u64;
            (dst as *mut u64).write_unaligned(p.read_unaligned());
        }
        _mm_sfence();
    }
}

/// NT gather of 4-byte blocks, four per 16-byte streaming store.
/// Caller guarantees `out` is 4-byte aligned.
///
/// # Safety
/// As [`gather`].
unsafe fn nt_gather4_sse2(src: *const u8, first: i64, stride: i64, out: &mut [u8]) {
    let n = out.len() / 4;
    let mut dst = out.as_mut_ptr();
    let mut j = 0usize;
    // SAFETY: whole-block copies within `out` and validated src blocks.
    unsafe {
        while !(dst as usize).is_multiple_of(16) && j < n {
            let p = src.add((first + j as i64 * stride) as usize) as *const u32;
            (dst as *mut u32).write_unaligned(p.read_unaligned());
            dst = dst.add(4);
            j += 1;
        }
        while j + 4 <= n {
            let at = |k: usize| -> i32 {
                (src.add((first + (j + k) as i64 * stride) as usize) as *const i32)
                    .read_unaligned()
            };
            let v = _mm_set_epi32(at(3), at(2), at(1), at(0));
            _mm_stream_si128(dst as *mut __m128i, v);
            dst = dst.add(16);
            j += 4;
        }
        while j < n {
            let p = src.add((first + j as i64 * stride) as usize) as *const u32;
            (dst as *mut u32).write_unaligned(p.read_unaligned());
            dst = dst.add(4);
            j += 1;
        }
        _mm_sfence();
    }
}

/// NT gather for blocks that are whole multiples of 16 bytes (e.g. the
/// 512-byte subarray rows): each block streams out as 16-byte chunks.
/// Caller guarantees `out` is 16-byte aligned, which `bl % 16 == 0`
/// then preserves block to block.
///
/// # Safety
/// As [`gather`].
unsafe fn nt_gather16x_sse2(src: *const u8, first: i64, stride: i64, bl: usize, out: &mut [u8]) {
    let n = out.len() / bl;
    let mut dst = out.as_mut_ptr();
    // SAFETY: whole-block copies within `out` and validated src blocks.
    unsafe {
        for j in 0..n {
            let mut p = src.add((first + j as i64 * stride) as usize);
            for _ in 0..bl / 16 {
                let v = _mm_loadu_si128(p as *const __m128i);
                _mm_stream_si128(dst as *mut __m128i, v);
                p = p.add(16);
                dst = dst.add(16);
            }
        }
        _mm_sfence();
    }
}

/// Gather for small odd block lengths (1..16, excluding the scalar fast
/// paths 4 and 8): one unaligned 16-byte load + 16-byte store per block.
/// Consecutive stores overlap by `16 - bl` bytes, but they are issued in
/// ascending destination order, so each store's first `bl` bytes are
/// final and the spill is rewritten by the next block. The final spill
/// is repaired by the scalar tail, which always rewrites at least the
/// last vector block's trailing bytes.
///
/// Vector-eligible count is the minimum of three guards: blocks whose
/// 16-byte load stays within `src`, blocks whose 16-byte store stays
/// within the first `n*bl` destination bytes (computed from `n*bl`, not
/// `out.len()`, so bytes past the last block are never clobbered), and
/// `n` itself. Everything past that runs scalar.
///
/// # Safety
/// As [`gather`]; requires `stride > 0` and `0 < bl < 16`.
unsafe fn gather_loose16(src: &[u8], first: i64, stride: i64, bl: usize, out: &mut [u8]) {
    debug_assert!(stride > 0 && bl > 0 && bl < 16);
    let n = out.len() / bl;
    let total = n * bl;
    // Blocks whose 16-byte source load is in-bounds.
    let max_src = if first >= 0 && first as usize + 16 <= src.len() {
        ((src.len() - 16 - first as usize) as i64 / stride + 1) as usize
    } else {
        0
    };
    // Blocks whose 16-byte destination store stays within `total`.
    let max_dst = if total >= 16 { (total - 16) / bl + 1 } else { 0 };
    let m = n.min(max_src).min(max_dst);
    // SAFETY: loads/stores guarded above; `out` exclusive.
    unsafe {
        let dst = out.as_mut_ptr();
        for j in 0..m {
            let v = _mm_loadu_si128(src.as_ptr().add((first + j as i64 * stride) as usize)
                as *const __m128i);
            _mm_storeu_si128(dst.add(j * bl) as *mut __m128i, v);
        }
        // Scalar tail. It also repairs the last vector store's spill:
        // max_dst guarantees (m-1)*bl + 16 <= n*bl, and with bl < 16
        // that forces m < n, so the tail always runs and rewrites every
        // spilled byte in [m*bl, (m-1)*bl + 16).
        for j in m..n {
            std::ptr::copy_nonoverlapping(
                src.as_ptr().add((first + j as i64 * stride) as usize),
                dst.add(j * bl),
                bl,
            );
        }
    }
}
