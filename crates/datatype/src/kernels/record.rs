//! Interleaved-record (struct) transpose kernel.
//!
//! A committed struct type with small fields compiles to a plan of tiny
//! `Copy` ops — for the paper's mixed struct, 4 + 8 bytes out of every
//! 16-byte extent. Executing that plan generically costs an op walk,
//! bounds arithmetic and two `split_at_mut` calls *per 12 packed bytes*,
//! which is the measured 1.5 GB/s struct-pack floor. This kernel lifts
//! the whole-instance loop for such plans into one call: scalar tiers
//! run a flat field loop with no per-instance slicing, and the AVX2 tier
//! compacts each instance with a single SSSE3 `pshufb` — load 16 source
//! bytes, shuffle the payload bytes to the front, one 16-byte store per
//! instance (ascending overlapping stores; the spill past `inst_size`
//! is rewritten by the next instance or the scalar remainder).
//!
//! Unpack (scatter) stays scalar per-field on every tier: a shuffle
//! *expansion* store would clobber the gap bytes between fields, and
//! struct padding must be left untouched (a documented, tested
//! guarantee).

use super::{scalar, Exec, SimdTier};

/// One field of a record: `len` bytes at instance-relative source
/// offset `src`, landing at packed offset `dst` within the instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordField {
    /// Source offset relative to the instance origin (may be negative
    /// for types with a raised lower bound).
    pub src: i64,
    /// Destination offset within the packed instance.
    pub dst: u32,
    /// Field length in bytes.
    pub len: u32,
}

/// Compiled whole-instance transpose for a small all-`Copy` plan; built
/// by the plan compiler when a type qualifies (see [`RecordKernel::new`]).
#[derive(Debug, Clone)]
pub struct RecordKernel {
    fields: Vec<RecordField>,
    inst_size: usize,
    extent: i64,
    /// Lowest field source offset: the 16-byte shuffle load window
    /// starts here.
    window_lo: i64,
    /// `pshufb` control bytes compacting the load window to the packed
    /// instance; present when the whole record fits one 16-byte window.
    shuf: Option<[u8; 16]>,
}

impl RecordKernel {
    /// Largest packed instance size a record kernel will handle.
    pub const MAX_INST: usize = 64;
    /// Largest field count a record kernel will handle.
    pub const MAX_FIELDS: usize = 16;

    /// Compile a record kernel, or `None` when the layout is outside the
    /// small-record envelope this kernel targets (larger plans do better
    /// under the generic executor's per-op kernels). `fields` must cover
    /// packed offsets `[0, inst_size)` contiguously in order, as plan
    /// `dst_off` tables do.
    pub fn new(fields: Vec<RecordField>, inst_size: usize, extent: i64) -> Option<RecordKernel> {
        if inst_size == 0
            || inst_size > Self::MAX_INST
            || extent <= 0
            || fields.is_empty()
            || fields.len() > Self::MAX_FIELDS
        {
            return None;
        }
        let mut covered = 0u64;
        for f in &fields {
            if f.dst as u64 != covered || f.len == 0 {
                return None;
            }
            covered += f.len as u64;
        }
        if covered != inst_size as u64 {
            return None;
        }
        let window_lo = fields.iter().map(|f| f.src).min().unwrap();
        let window_hi = fields.iter().map(|f| f.src + f.len as i64).max().unwrap();
        let shuf = if inst_size <= 16 && window_hi - window_lo <= 16 {
            let mut mask = [0x80u8; 16];
            for (j, m) in mask.iter_mut().enumerate().take(inst_size) {
                let f = fields
                    .iter()
                    .find(|f| (f.dst as usize) <= j && j < (f.dst + f.len) as usize)?;
                *m = (f.src + (j as i64 - f.dst as i64) - window_lo) as u8;
            }
            Some(mask)
        } else {
            None
        };
        Some(RecordKernel { fields, inst_size, extent, window_lo, shuf })
    }

    /// Packed bytes per instance.
    pub fn inst_size(&self) -> usize {
        self.inst_size
    }

    /// Whether the AVX2 tier runs this record through the `pshufb` path.
    pub fn has_shuffle(&self) -> bool {
        self.shuf.is_some()
    }

    /// Gather `n` consecutive whole instances, the first with user-buffer
    /// origin byte `base`, into `out` (`n * inst_size` bytes).
    ///
    /// # Safety
    /// Every field byte of every instance lies within `src` (plan-level
    /// `validate_user`); vector window overreads are guarded against
    /// `src.len()` internally.
    pub(crate) unsafe fn gather(&self, ex: Exec, src: &[u8], base: i64, n: usize, out: &mut [u8]) {
        debug_assert_eq!(out.len(), n * self.inst_size);
        let mut done = 0;
        #[cfg(target_arch = "x86_64")]
        if ex.tier == SimdTier::Avx2 {
            if let Some(mask) = self.shuf {
                // SAFETY: forwarded contract; AVX2 tier implies SSSE3.
                done = unsafe { self.gather_pshufb(src, base, n, out, mask) };
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = ex;
        // Scalar path / remainder: flat field loop, no per-instance
        // slicing or op-table walk.
        for i in done..n {
            let ibase = base + i as i64 * self.extent;
            let o = i * self.inst_size;
            for f in &self.fields {
                // SAFETY: field validated in-bounds by caller contract;
                // `o + dst + len <= out.len()` by construction.
                unsafe {
                    scalar::copy_run(
                        src.as_ptr().add((ibase + f.src) as usize),
                        out.as_mut_ptr().add(o + f.dst as usize),
                        f.len as usize,
                    );
                }
            }
        }
    }

    /// `pshufb` gather: returns how many leading instances were handled
    /// (the caller finishes the rest scalar). Stores overlap ascending;
    /// the spill past each packed instance is rewritten by the next
    /// store, and the guarded count keeps the final spill inside `out`
    /// where the scalar remainder rewrites it.
    ///
    /// # Safety
    /// As [`Self::gather`]; requires SSSE3 (AVX2 tier dispatch).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "ssse3")]
    unsafe fn gather_pshufb(
        &self,
        src: &[u8],
        base: i64,
        n: usize,
        out: &mut [u8],
        mask: [u8; 16],
    ) -> usize {
        use std::arch::x86_64::*;
        let start0 = base + self.window_lo;
        if start0 < 0 {
            return 0;
        }
        let start0 = start0 as usize;
        let extent = self.extent as usize;
        // Instances whose 16-byte load window is within `src`.
        let max_load = if start0 + 16 <= src.len() {
            (src.len() - 16 - start0) / extent + 1
        } else {
            0
        };
        // Instances whose 16-byte store is within `out`.
        let max_store = if out.len() >= 16 { (out.len() - 16) / self.inst_size + 1 } else { 0 };
        let m = n.min(max_load).min(max_store);
        // SAFETY: loads/stores guarded above; `out` exclusive.
        unsafe {
            let ctrl = _mm_loadu_si128(mask.as_ptr() as *const __m128i);
            let dst = out.as_mut_ptr();
            for i in 0..m {
                let v = _mm_loadu_si128(src.as_ptr().add(start0 + i * extent) as *const __m128i);
                _mm_storeu_si128(dst.add(i * self.inst_size) as *mut __m128i,
                    _mm_shuffle_epi8(v, ctrl));
            }
        }
        m
    }

    /// Scatter `n` consecutive whole instances from `input` back to the
    /// user buffer at `dst`. Scalar per-field on every tier — a shuffle
    /// expansion would clobber inter-field gap bytes, which must stay
    /// untouched.
    ///
    /// # Safety
    /// Every field byte of every instance lies within the allocation at
    /// `dst`, and no other thread concurrently writes those bytes.
    pub(crate) unsafe fn scatter(&self, input: &[u8], dst: *mut u8, base: i64, n: usize) {
        debug_assert_eq!(input.len(), n * self.inst_size);
        for i in 0..n {
            let ibase = base + i as i64 * self.extent;
            let o = i * self.inst_size;
            for f in &self.fields {
                // SAFETY: per contract; input bounds by construction.
                unsafe {
                    scalar::copy_run(
                        input.as_ptr().add(o + f.dst as usize),
                        dst.add((ibase + f.src) as usize),
                        f.len as usize,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::available_tiers;

    fn naive_gather(
        fields: &[RecordField],
        inst: usize,
        extent: i64,
        src: &[u8],
        base: i64,
        n: usize,
    ) -> Vec<u8> {
        let mut out = vec![0u8; n * inst];
        for i in 0..n {
            let ibase = base + i as i64 * extent;
            for f in fields {
                let s = (ibase + f.src) as usize;
                let d = i * inst + f.dst as usize;
                out[d..d + f.len as usize].copy_from_slice(&src[s..s + f.len as usize]);
            }
        }
        out
    }

    #[test]
    fn rejects_out_of_envelope_layouts() {
        let f = |src, dst, len| RecordField { src, dst, len };
        assert!(RecordKernel::new(vec![], 4, 8).is_none());
        assert!(RecordKernel::new(vec![f(0, 0, 4)], 4, 0).is_none());
        // Gap in packed coverage.
        assert!(RecordKernel::new(vec![f(0, 0, 4), f(8, 6, 2)], 8, 16).is_none());
        // Too large an instance.
        assert!(RecordKernel::new(vec![f(0, 0, 80)], 80, 96).is_none());
    }

    #[test]
    fn paper_struct_uses_shuffle_and_matches_naive_on_all_tiers() {
        // i32 at 0 + f64 at 8 in a 16-byte extent: the bench struct.
        let fields =
            vec![RecordField { src: 0, dst: 0, len: 4 }, RecordField { src: 8, dst: 4, len: 8 }];
        let rk = RecordKernel::new(fields.clone(), 12, 16).unwrap();
        assert!(rk.has_shuffle());
        let n = 129; // odd count exercises the scalar remainder
        let src: Vec<u8> = (0..n * 16 + 5).map(|i| (i * 31 + 7) as u8).collect();
        let want = naive_gather(&fields, 12, 16, &src, 3, n);
        for tier in available_tiers() {
            let mut out = vec![0u8; n * 12];
            // SAFETY: all fields in-bounds by construction.
            unsafe { rk.gather(Exec::no_stream(tier), &src, 3, n, &mut out) };
            assert_eq!(out, want, "tier {}", tier.name());
        }
    }

    #[test]
    fn scatter_round_trips_and_preserves_gap_bytes() {
        let fields =
            vec![RecordField { src: 0, dst: 0, len: 4 }, RecordField { src: 8, dst: 4, len: 8 }];
        let rk = RecordKernel::new(fields, 12, 16).unwrap();
        let n = 33;
        let src: Vec<u8> = (0..n * 16).map(|i| (i * 13 + 1) as u8).collect();
        let mut packed = vec![0u8; n * 12];
        // SAFETY: in-bounds by construction.
        unsafe { rk.gather(Exec::no_stream(crate::kernels::SimdTier::Scalar), &src, 0, n, &mut packed) };
        let mut back = vec![0xAAu8; src.len()];
        // SAFETY: in-bounds by construction; exclusive dst.
        unsafe { rk.scatter(&packed, back.as_mut_ptr(), 0, n) };
        for i in 0..n {
            assert_eq!(&back[i * 16..i * 16 + 4], &src[i * 16..i * 16 + 4]);
            assert_eq!(&back[i * 16 + 8..i * 16 + 16], &src[i * 16 + 8..i * 16 + 16]);
            // Gap bytes (struct padding) untouched.
            assert!(back[i * 16 + 4..i * 16 + 8].iter().all(|&b| b == 0xAA));
        }
    }

    #[test]
    fn wide_record_without_shuffle_still_matches() {
        // Three fields spanning a 40-byte window: no 16-byte shuffle.
        let fields = vec![
            RecordField { src: 0, dst: 0, len: 8 },
            RecordField { src: 16, dst: 8, len: 4 },
            RecordField { src: 32, dst: 12, len: 8 },
        ];
        let rk = RecordKernel::new(fields.clone(), 20, 48).unwrap();
        assert!(!rk.has_shuffle());
        let n = 17;
        let src: Vec<u8> = (0..n * 48).map(|i| (i * 3 + 11) as u8).collect();
        let want = naive_gather(&fields, 20, 48, &src, 0, n);
        for tier in available_tiers() {
            let mut out = vec![0u8; n * 20];
            // SAFETY: in-bounds by construction.
            unsafe { rk.gather(Exec::no_stream(tier), &src, 0, n, &mut out) };
            assert_eq!(out, want, "tier {}", tier.name());
        }
    }
}
