//! Runtime-dispatched SIMD gather/scatter kernels for the compiled-plan
//! executor.
//!
//! The plan executor in [`crate::plan`] turns every pack into a stream of
//! three primitive memory operations: dense copies, fixed-block strided
//! gathers/scatters, and (for multi-field struct layouts) a per-instance
//! record transpose. This module owns the machine-level implementations
//! of those primitives, organized as *tiers*:
//!
//! * [`SimdTier::Avx2`] — 256-bit kernels plus an SSSE3 `pshufb` record
//!   transpose and non-temporal streaming stores (x86_64, detected).
//! * [`SimdTier::Sse2`] — 128-bit kernels and streaming stores (x86_64
//!   baseline, always available there).
//! * [`SimdTier::Neon`] — 128-bit kernels (aarch64 baseline).
//! * [`SimdTier::Scalar`] — autovectorization-friendly scalar loops; the
//!   portable fallback and the differential-testing reference.
//! * [`SimdTier::Off`] — bypass this module's fast paths entirely (plain
//!   per-op scalar execution, no record kernel, no streaming stores).
//!
//! The tier is detected once per process with
//! `std::arch::is_x86_feature_detected!` (see [`simd_tier`]) and can be
//! overridden with `NONCTG_SIMD=avx2|sse2|neon|scalar|off`; a request for
//! a tier the CPU cannot run degrades to the detected tier. Streaming
//! (non-temporal) stores engage when a pack's total packed output exceeds
//! the probed last-level-cache size (see [`llc_threshold`], override
//! `NONCTG_LLC_BYTES`): past that point the output cannot be cached
//! usefully, and regular stores would evict the source data being
//! gathered — the cause of the 64 MB strided-pack cliff.
//!
//! Everything here is a **wall-clock** engine swap: kernels are
//! byte-for-byte equivalent across tiers (proven by the differential
//! proptests in `tests/kernel_props.rs` and the oracle battery), and the
//! virtual-time cost model never sees which tier ran.

use std::sync::OnceLock;

pub(crate) mod pool;
mod record;
mod scalar;

#[cfg(target_arch = "aarch64")]
mod neon;
#[cfg(target_arch = "x86_64")]
mod x86;

pub use record::{RecordField, RecordKernel};

/// Kernel implementation tier, from widest to narrowest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdTier {
    /// 256-bit AVX2 kernels + SSSE3 record transpose + streaming stores.
    Avx2,
    /// 128-bit SSE2 kernels + streaming stores (x86_64 baseline).
    Sse2,
    /// 128-bit NEON kernels (aarch64 baseline).
    Neon,
    /// Autovectorization-friendly scalar loops (portable reference).
    Scalar,
    /// Disable the kernel layer: plain per-op scalar execution only.
    Off,
}

impl SimdTier {
    /// Stable lowercase key, matching the `NONCTG_SIMD` values.
    pub fn name(self) -> &'static str {
        match self {
            SimdTier::Avx2 => "avx2",
            SimdTier::Sse2 => "sse2",
            SimdTier::Neon => "neon",
            SimdTier::Scalar => "scalar",
            SimdTier::Off => "off",
        }
    }

    /// Parse a `NONCTG_SIMD` value.
    pub fn parse(s: &str) -> Option<SimdTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "avx2" => Some(SimdTier::Avx2),
            "sse2" => Some(SimdTier::Sse2),
            "neon" => Some(SimdTier::Neon),
            "scalar" => Some(SimdTier::Scalar),
            "off" | "0" | "none" => Some(SimdTier::Off),
            _ => None,
        }
    }

    /// Whether this tier's kernels can run on the current CPU.
    pub fn is_supported(self) -> bool {
        match self {
            SimdTier::Scalar | SimdTier::Off => true,
            #[cfg(target_arch = "x86_64")]
            SimdTier::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            SimdTier::Sse2 => true,
            #[cfg(target_arch = "aarch64")]
            SimdTier::Neon => true,
            #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
            _ => false,
            #[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
            _ => false,
        }
    }

    /// Whether this tier has non-temporal (streaming) store kernels.
    pub fn has_streaming(self) -> bool {
        matches!(self, SimdTier::Avx2 | SimdTier::Sse2)
    }
}

/// The widest tier the current CPU supports, ignoring any override.
pub fn detected_tier() -> SimdTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            SimdTier::Avx2
        } else {
            SimdTier::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdTier::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdTier::Scalar
    }
}

/// The tier the pack engine uses, resolved once per process: the
/// `NONCTG_SIMD` override when set and runnable on this CPU, else the
/// detected tier (see [`detected_tier`]).
pub fn simd_tier() -> SimdTier {
    static V: OnceLock<SimdTier> = OnceLock::new();
    *V.get_or_init(|| {
        match std::env::var("NONCTG_SIMD").ok().and_then(|s| SimdTier::parse(&s)) {
            Some(t) if t.is_supported() => t,
            _ => detected_tier(),
        }
    })
}

/// Every tier runnable (and therefore differentially testable) in this
/// process, widest first. Always ends with `Scalar, Off`.
pub fn available_tiers() -> Vec<SimdTier> {
    [SimdTier::Avx2, SimdTier::Sse2, SimdTier::Neon, SimdTier::Scalar, SimdTier::Off]
        .into_iter()
        .filter(|t| t.is_supported())
        .collect()
}

/// Parse "32768K" / "36M"-style sysfs cache size strings into bytes.
fn parse_cache_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1usize << 10),
        b'M' | b'm' => (&s[..s.len() - 1], 1usize << 20),
        b'G' | b'g' => (&s[..s.len() - 1], 1usize << 30),
        _ => (s, 1usize),
    };
    digits.trim().parse::<usize>().ok()?.checked_mul(mult)
}

/// Probe the last-level (highest-level unified or data) cache size of
/// cpu0 from sysfs. `None` when sysfs is absent or unparsable.
fn probe_llc_bytes() -> Option<usize> {
    let mut best: Option<(u32, usize)> = None;
    for idx in 0..10 {
        let dir = format!("/sys/devices/system/cpu/cpu0/cache/index{idx}");
        let Ok(level) = std::fs::read_to_string(format!("{dir}/level")) else { break };
        let level: u32 = level.trim().parse().ok()?;
        let ty = std::fs::read_to_string(format!("{dir}/type")).ok()?;
        if !matches!(ty.trim(), "Unified" | "Data") {
            continue;
        }
        let size = parse_cache_size(&std::fs::read_to_string(format!("{dir}/size")).ok()?)?;
        if best.is_none_or(|(l, _)| level > l) {
            best = Some((level, size));
        }
    }
    best.map(|(_, s)| s)
}

/// Packed-output size (bytes) at which gather kernels switch to
/// non-temporal streaming stores: the probed last-level-cache size
/// (fallback 8 MiB when sysfs is unavailable), overridable with
/// `NONCTG_LLC_BYTES`. The probed value is capped at 32 MiB: virtualized
/// guests report the host's entire shared L3 (this repo's 1-vCPU CI
/// host claims 260 MB), and no single pack thread effectively owns more
/// than a few dozen MiB of a shared cache — past that, regular stores
/// are evicting other tenants, not hitting. Resolved once per process.
pub fn llc_threshold() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    *V.get_or_init(|| {
        std::env::var("NONCTG_LLC_BYTES")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or_else(|| probe_llc_bytes().unwrap_or(8 << 20).min(32 << 20))
            .max(1)
    })
}

/// Per-pack execution context, fixed at the top of a pack/unpack call
/// and threaded through the plan executor to every kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exec {
    /// The kernel tier to dispatch to.
    pub tier: SimdTier,
    /// Whether gather kernels should use non-temporal stores (set when
    /// the whole pack's output exceeds [`llc_threshold`] and the tier
    /// has streaming kernels). Meaningless for scatter (unpack) — the
    /// scattered writes are not contiguous.
    pub stream: bool,
}

impl Exec {
    /// Context for a pack producing `packed_len` total bytes under the
    /// process-default tier.
    pub fn for_pack(packed_len: usize) -> Exec {
        Exec::with_tier(simd_tier(), packed_len)
    }

    /// Context with an explicit tier (differential tests, benches).
    pub fn with_tier(tier: SimdTier, packed_len: usize) -> Exec {
        Exec { tier, stream: tier.has_streaming() && packed_len >= llc_threshold() }
    }

    /// Context that never streams (unpack side).
    pub fn no_stream(tier: SimdTier) -> Exec {
        Exec { tier, stream: false }
    }
}

/// Dense-run copy shared by every tier (small constant sizes inlined).
///
/// # Safety
/// `n` bytes readable at `src`, writable at `dst`, non-overlapping.
#[inline]
pub(crate) unsafe fn copy_run(src: *const u8, dst: *mut u8, n: usize) {
    // SAFETY: forwarded contract.
    unsafe { scalar::copy_run(src, dst, n) }
}

/// Gather whole blocks of `bl` bytes at constant `stride`, starting at
/// absolute byte `first` of `src`, into `out` (`out.len()` is a whole
/// number of blocks and selects the count). Dispatches on `ex.tier`;
/// `ex.stream` selects non-temporal stores where the tier has them.
///
/// # Safety
/// Every source byte of every block must lie within `src` — callers rely
/// on the plan-level `validate_user` hull check. (SIMD paths that read
/// *past* a block's end guard those overreads against `src.len()`
/// themselves; only the blocks proper are the caller's contract.)
pub(crate) unsafe fn gather_blocks(
    ex: Exec,
    src: &[u8],
    first: i64,
    stride: i64,
    bl: usize,
    out: &mut [u8],
) {
    match ex.tier {
        #[cfg(target_arch = "x86_64")]
        SimdTier::Avx2 | SimdTier::Sse2 => {
            // SAFETY: forwarded contract.
            unsafe { x86::gather(ex, src, first, stride, bl, out) }
        }
        #[cfg(target_arch = "aarch64")]
        SimdTier::Neon => {
            // SAFETY: forwarded contract.
            unsafe { neon::gather(src, first, stride, bl, out) }
        }
        // SAFETY: forwarded contract.
        _ => unsafe { scalar::gather(src.as_ptr(), first, stride, bl, out) },
    }
}

/// Scatter whole blocks of `bl` bytes from `input` to constant-stride
/// positions starting at absolute byte `first` of the allocation at
/// `dst`. Scatter writes are never streamed (they are not contiguous)
/// and never overread, so every tier shares the scalar fixed-block
/// kernels, which autovectorize; the tier is taken for symmetry and
/// future aarch64 specializations.
///
/// # Safety
/// Every target byte must lie within the allocation at `dst`, and no
/// other thread may concurrently write those bytes.
pub(crate) unsafe fn scatter_blocks(
    ex: Exec,
    input: &[u8],
    dst: *mut u8,
    first: i64,
    stride: i64,
    bl: usize,
) {
    let _ = ex;
    // SAFETY: forwarded contract.
    unsafe { scalar::scatter(input, dst, first, stride, bl) }
}

/// Bounds-checked gather for differential tests: validates every block
/// (and the kernel contract) against `src`, then runs the unsafe kernel
/// for `tier`/`stream`. Returns `None` if any block falls outside `src`.
pub fn gather_checked(
    tier: SimdTier,
    stream: bool,
    src: &[u8],
    first: i64,
    stride: i64,
    bl: usize,
    nblocks: usize,
) -> Option<Vec<u8>> {
    if bl == 0 || nblocks == 0 {
        // The kernels require bl > 0; a degenerate gather packs nothing.
        return Some(Vec::new());
    }
    for j in 0..nblocks as i64 {
        let off = first.checked_add(j.checked_mul(stride)?)?;
        if off < 0 || (off as usize).checked_add(bl)? > src.len() {
            return None;
        }
    }
    let mut out = vec![0u8; nblocks.checked_mul(bl)?];
    let ex = Exec { tier, stream: stream && tier.has_streaming() };
    // SAFETY: every block validated in-bounds above.
    unsafe { gather_blocks(ex, src, first, stride, bl, &mut out) };
    Some(out)
}

/// Bounds-checked scatter for differential tests; the dual of
/// [`gather_checked`]. Returns `false` (leaving `dst` untouched) if any
/// block falls outside `dst`.
pub fn scatter_checked(
    tier: SimdTier,
    input: &[u8],
    dst: &mut [u8],
    first: i64,
    stride: i64,
    bl: usize,
) -> bool {
    if bl == 0 || !input.len().is_multiple_of(bl) {
        return false;
    }
    let nblocks = input.len() / bl;
    for j in 0..nblocks as i64 {
        let Some(off) = first.checked_add(j.wrapping_mul(stride)) else { return false };
        if off < 0 || (off as usize).saturating_add(bl) > dst.len() {
            return false;
        }
    }
    let ex = Exec::no_stream(tier);
    // SAFETY: every block validated in-bounds above; `&mut dst` is
    // exclusive.
    unsafe { scatter_blocks(ex, input, dst.as_mut_ptr(), first, stride, bl) };
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference gather: the semantics every kernel must match.
    fn naive_gather(src: &[u8], first: i64, stride: i64, bl: usize, nblocks: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(nblocks * bl);
        for j in 0..nblocks as i64 {
            let off = (first + j * stride) as usize;
            out.extend_from_slice(&src[off..off + bl]);
        }
        out
    }

    fn naive_scatter(input: &[u8], dst: &mut [u8], first: i64, stride: i64, bl: usize) {
        for (j, chunk) in input.chunks_exact(bl).enumerate() {
            let off = (first + j as i64 * stride) as usize;
            dst[off..off + bl].copy_from_slice(chunk);
        }
    }

    fn src_bytes(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 7 + 13) as u8).collect()
    }

    #[test]
    fn tier_parse_round_trips() {
        for t in [SimdTier::Avx2, SimdTier::Sse2, SimdTier::Neon, SimdTier::Scalar, SimdTier::Off]
        {
            assert_eq!(SimdTier::parse(t.name()), Some(t));
        }
        assert_eq!(SimdTier::parse("AVX2"), Some(SimdTier::Avx2));
        assert_eq!(SimdTier::parse("bogus"), None);
    }

    #[test]
    fn detected_tier_is_supported_and_listed() {
        let d = detected_tier();
        assert!(d.is_supported());
        let avail = available_tiers();
        assert_eq!(avail.first(), Some(&d));
        assert_eq!(&avail[avail.len() - 2..], &[SimdTier::Scalar, SimdTier::Off]);
    }

    #[test]
    fn cache_size_strings_parse() {
        assert_eq!(parse_cache_size("32768K"), Some(32768 << 10));
        assert_eq!(parse_cache_size(" 36M\n"), Some(36 << 20));
        assert_eq!(parse_cache_size("1234"), Some(1234));
        assert_eq!(parse_cache_size("junk"), None);
    }

    /// Every available tier, with and without streaming, agrees with the
    /// naive gather across block lengths and misaligned heads/tails.
    #[test]
    fn gather_all_tiers_match_naive() {
        let src = src_bytes(4096);
        for &bl in &[1usize, 2, 3, 4, 5, 7, 8, 11, 12, 13, 16, 24, 32, 48, 64, 96] {
            for &stride in &[bl as i64, bl as i64 + 1, bl as i64 + 5, 2 * bl as i64 + 3] {
                for &first in &[0i64, 1, 3, 13] {
                    let nblocks = (((src.len() as i64 - first - bl as i64) / stride.max(1)) + 1)
                        .clamp(0, 40) as usize;
                    let want = naive_gather(&src, first, stride, bl, nblocks);
                    for tier in available_tiers() {
                        for stream in [false, true] {
                            let got = gather_checked(tier, stream, &src, first, stride, bl, nblocks)
                                .expect("in-bounds");
                            assert_eq!(
                                got,
                                want,
                                "tier {} stream {stream} bl {bl} stride {stride} first {first}",
                                tier.name()
                            );
                        }
                    }
                }
            }
        }
    }

    /// Negative strides (descending block addresses) are exact on every
    /// tier.
    #[test]
    fn gather_negative_stride_matches_naive() {
        let src = src_bytes(1024);
        let (bl, stride, first, nblocks) = (8usize, -24i64, 960i64, 40usize);
        let want = naive_gather(&src, first, stride, bl, nblocks);
        for tier in available_tiers() {
            let got =
                gather_checked(tier, true, &src, first, stride, bl, nblocks).expect("in-bounds");
            assert_eq!(got, want, "tier {}", tier.name());
        }
    }

    #[test]
    fn gather_checked_rejects_out_of_bounds() {
        let src = src_bytes(64);
        assert!(gather_checked(SimdTier::Scalar, false, &src, 0, 16, 8, 5).is_none());
        assert!(gather_checked(SimdTier::Scalar, false, &src, -1, 16, 8, 1).is_none());
    }

    #[test]
    fn scatter_all_tiers_match_naive() {
        let packed = src_bytes(31 * 12);
        for &bl in &[4usize, 8, 12, 16, 64] {
            let n = packed.len() / bl;
            let input = &packed[..n * bl];
            let stride = bl as i64 + 9;
            let mut want = vec![0xEEu8; (n as i64 * stride) as usize + bl];
            naive_scatter(input, &mut want, 3, stride, bl);
            for tier in available_tiers() {
                let mut got = vec![0xEEu8; want.len()];
                assert!(scatter_checked(tier, input, &mut got, 3, stride, bl));
                assert_eq!(got, want, "tier {} bl {bl}", tier.name());
            }
        }
    }

    #[test]
    fn scatter_checked_rejects_out_of_bounds() {
        let input = src_bytes(32);
        let mut dst = vec![0u8; 40];
        assert!(!scatter_checked(SimdTier::Scalar, &input, &mut dst, 0, 16, 8, ));
        assert!(!scatter_checked(SimdTier::Scalar, &input, &mut dst, -2, 8, 8));
        // Untouched on rejection.
        assert!(dst.iter().all(|&b| b == 0));
    }

    #[test]
    fn exec_stream_follows_tier_capability() {
        let big = usize::MAX;
        for tier in [SimdTier::Neon, SimdTier::Scalar, SimdTier::Off] {
            assert!(!Exec::with_tier(tier, big).stream, "{}", tier.name());
        }
        assert!(Exec::with_tier(SimdTier::Avx2, big).stream);
        assert!(!Exec::with_tier(SimdTier::Avx2, 0).stream);
    }
}
