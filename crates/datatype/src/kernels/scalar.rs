//! Scalar (autovectorization-friendly) kernels: the portable fallback
//! tier and the reference implementation the SIMD tiers are
//! differentially tested against. Fixed-block monomorphization gives the
//! compiler constant copy lengths, which it turns into straight-line
//! (often vectorized) moves.

/// memcpy with small constant-size fast paths: the tiny runs common in
/// struct plans compile to one or two moves instead of a libcall.
///
/// # Safety
/// `n` bytes readable at `src`, writable at `dst`, non-overlapping.
#[inline]
pub(crate) unsafe fn copy_run(src: *const u8, dst: *mut u8, n: usize) {
    use std::ptr::copy_nonoverlapping as cp;
    // SAFETY: per contract; the match only pins `n` to a constant.
    unsafe {
        match n {
            1 => cp(src, dst, 1),
            2 => cp(src, dst, 2),
            4 => cp(src, dst, 4),
            8 => cp(src, dst, 8),
            12 => cp(src, dst, 12),
            16 => cp(src, dst, 16),
            _ => cp(src, dst, n),
        }
    }
}

/// Scalar strided gather; `out.len()` selects the block count.
///
/// # Safety
/// Every source byte of every block must lie within the allocation at
/// `src` (the plan-level `validate_user` hull check).
pub(crate) unsafe fn gather(src: *const u8, first: i64, stride: i64, bl: usize, out: &mut [u8]) {
    // SAFETY: per contract.
    unsafe {
        match bl {
            4 => gather_fixed::<4>(src, first, stride, out),
            8 => gather_fixed::<8>(src, first, stride, out),
            16 => gather_fixed::<16>(src, first, stride, out),
            32 => gather_fixed::<32>(src, first, stride, out),
            64 => gather_fixed::<64>(src, first, stride, out),
            _ => {
                for (j, chunk) in out.chunks_exact_mut(bl).enumerate() {
                    let off = first + j as i64 * stride;
                    std::ptr::copy_nonoverlapping(src.add(off as usize), chunk.as_mut_ptr(), bl);
                }
            }
        }
    }
}

/// Fixed-block gather: the constant length lets the compiler emit
/// straight-line (vectorized) copies per block.
///
/// # Safety
/// See [`gather`].
unsafe fn gather_fixed<const BL: usize>(src: *const u8, first: i64, stride: i64, out: &mut [u8]) {
    for (j, chunk) in out.chunks_exact_mut(BL).enumerate() {
        let off = first + j as i64 * stride;
        // SAFETY: per gather contract.
        unsafe { std::ptr::copy_nonoverlapping(src.add(off as usize), chunk.as_mut_ptr(), BL) };
    }
}

/// Scalar strided scatter of whole `bl`-byte blocks from `input`.
///
/// # Safety
/// Every target byte must lie within the allocation at `dst`, and no
/// other thread may concurrently write those bytes.
pub(crate) unsafe fn scatter(input: &[u8], dst: *mut u8, first: i64, stride: i64, bl: usize) {
    // SAFETY: per contract.
    unsafe {
        match bl {
            4 => scatter_fixed::<4>(input, dst, first, stride),
            8 => scatter_fixed::<8>(input, dst, first, stride),
            16 => scatter_fixed::<16>(input, dst, first, stride),
            32 => scatter_fixed::<32>(input, dst, first, stride),
            64 => scatter_fixed::<64>(input, dst, first, stride),
            _ => {
                for (j, chunk) in input.chunks_exact(bl).enumerate() {
                    let off = (first + j as i64 * stride) as usize;
                    std::ptr::copy_nonoverlapping(chunk.as_ptr(), dst.add(off), bl);
                }
            }
        }
    }
}

/// Fixed-block scatter; see [`scatter`] for the safety contract.
unsafe fn scatter_fixed<const BL: usize>(input: &[u8], dst: *mut u8, first: i64, stride: i64) {
    for (j, chunk) in input.chunks_exact(BL).enumerate() {
        let off = (first + j as i64 * stride) as usize;
        // SAFETY: per scatter contract.
        unsafe { std::ptr::copy_nonoverlapping(chunk.as_ptr(), dst.add(off), BL) };
    }
}
