//! Persistent pack worker pool.
//!
//! The parallel pack path used to spawn fresh `thread::scope` workers on
//! every call, so thread spawn/join cost (~tens of microseconds) was
//! paid per pack — enough to erase the parallel win for all but huge
//! messages. This pool spawns `pack_threads() - 1` workers once, on
//! first parallel pack, and keeps them parked on a condvar.
//!
//! A job is a count of *chunks* plus a closure mapping a chunk index to
//! work; workers and the submitting caller all claim chunk indices from
//! a shared atomic counter, so load-balancing is dynamic (a worker stuck
//! on a slow chunk doesn't strand the rest). Multiple callers (rank
//! threads packing concurrently) may have jobs queued at once; workers
//! drain the queue front-first.
//!
//! Lifetime safety: the job closure borrows the caller's stack (source
//! and destination buffers). Its lifetime is erased to put it in the
//! queue, which is sound because the submitting caller does not return
//! until every chunk has *finished* (`done == total`), and a worker
//! whose stale claim sees `next >= total` never touches the closure.
//! Worker panics are caught per chunk (so `done` always advances — the
//! caller can't deadlock on a panicked chunk) and re-raised on the
//! caller's thread after the job completes.
//!
//! Under Miri the pool would leak its detached workers, so `cfg(miri)`
//! builds run every job inline on the caller.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One submitted job: `total` chunks, dispatched through `f`.
struct Task {
    /// Lifetime-erased chunk closure; valid until `done == total`, which
    /// the submitting caller blocks on.
    f: *const (dyn Fn(usize) + Sync),
    total: usize,
    /// Next chunk index to claim (may overshoot `total`).
    next: AtomicUsize,
    /// Chunks fully finished (incremented even when the chunk panicked).
    done: AtomicUsize,
    panicked: AtomicBool,
}

// SAFETY: `f` is only dereferenced for chunk indices < total, and the
// submitting caller keeps the referent alive until done == total (see
// module docs); the atomics are inherently thread-safe.
unsafe impl Send for Task {}
// SAFETY: as above.
unsafe impl Sync for Task {}

struct Pool {
    q: Mutex<VecDeque<Arc<Task>>>,
    /// Signalled when a job is pushed.
    work: Condvar,
    /// Signalled when a job completes.
    idle: Condvar,
    workers: usize,
}

fn pool() -> &'static Pool {
    static P: OnceLock<&'static Pool> = OnceLock::new();
    P.get_or_init(|| {
        let workers = if cfg!(miri) { 0 } else { crate::plan::pack_threads().saturating_sub(1) };
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            q: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            idle: Condvar::new(),
            workers,
        }));
        for _ in 0..workers {
            // A failed spawn just leaves the pool smaller; jobs still
            // complete through caller participation.
            let _ = std::thread::Builder::new()
                .name("nonctg-pack".into())
                .spawn(move || worker_loop(pool));
        }
        pool
    })
}

/// Claim and run chunks of `task` until its counter is exhausted.
fn run_chunks(pool: &Pool, task: &Arc<Task>) {
    loop {
        let i = task.next.fetch_add(1, Ordering::Relaxed);
        if i >= task.total {
            // Exhausted: drop it from the queue so workers stop
            // re-selecting it (it may already be gone).
            let mut q = pool.q.lock().unwrap();
            q.retain(|t| t.next.load(Ordering::Relaxed) < t.total);
            return;
        }
        // SAFETY: i < total, so the caller is still blocked in
        // `run` keeping the closure alive (module-docs argument).
        let f = unsafe { &*task.f };
        if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
            task.panicked.store(true, Ordering::Relaxed);
        }
        if task.done.fetch_add(1, Ordering::AcqRel) + 1 == task.total {
            // Last chunk: wake the submitting caller. Taking the queue
            // lock orders this with the caller's predicate check, so the
            // wakeup cannot be lost.
            drop(pool.q.lock().unwrap());
            pool.idle.notify_all();
        }
    }
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let task = {
            let mut q = pool.q.lock().unwrap();
            loop {
                if let Some(t) = q.front() {
                    break t.clone();
                }
                q = pool.work.wait(q).unwrap();
            }
        };
        run_chunks(pool, &task);
    }
}

/// Run `f(0..total)` across the pool, blocking until every chunk has
/// finished. The closure may borrow the caller's stack. Panics from
/// chunks are re-raised here after completion.
pub(crate) fn run(total: usize, f: &(dyn Fn(usize) + Sync)) {
    if total == 0 {
        return;
    }
    let pool = pool();
    if pool.workers == 0 || total == 1 {
        for i in 0..total {
            f(i);
        }
        return;
    }
    // SAFETY: same-layout fat-pointer transmute erasing the borrow's
    // lifetime. Sound because `run` does not return until done == total,
    // so the referent outlives every dereference (module-docs argument).
    let f_erased: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), *const (dyn Fn(usize) + Sync)>(f)
    };
    let task = Arc::new(Task {
        f: f_erased,
        total,
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        panicked: AtomicBool::new(false),
    });
    pool.q.lock().unwrap().push_back(task.clone());
    pool.work.notify_all();
    // The caller works too — it would otherwise just block.
    run_chunks(pool, &task);
    let mut q = pool.q.lock().unwrap();
    while task.done.load(Ordering::Acquire) < total {
        q = pool.idle.wait(q).unwrap();
    }
    drop(q);
    if task.panicked.load(Ordering::Relaxed) {
        panic!("pack pool chunk panicked");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_chunk_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        run(hits.len(), &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_sequential_jobs_complete() {
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            run(round + 1, &|i| {
                sum.fetch_add(i + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), (round + 1) * (round + 2) / 2);
        }
    }

    #[test]
    fn concurrent_submitters_all_complete() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let sum = AtomicUsize::new(0);
                    run(64, &|i| {
                        sum.fetch_add(i, Ordering::Relaxed);
                    });
                    assert_eq!(sum.load(Ordering::Relaxed), 63 * 64 / 2);
                });
            }
        });
    }

    #[test]
    fn chunk_panic_propagates_without_deadlock() {
        let r = std::panic::catch_unwind(|| {
            run(8, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        });
        assert!(r.is_err());
        // Pool still functional afterwards.
        let sum = AtomicUsize::new(0);
        run(8, &|_| {
            sum.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 8);
    }
}
