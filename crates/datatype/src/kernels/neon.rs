//! aarch64 NEON kernels. Deliberately minimal: the fixed-block scalar
//! kernels already autovectorize well on aarch64, so this tier only adds
//! the 16-byte-vector gather for small odd block lengths (the same
//! overlapping-store scheme as the x86 version; see
//! `x86::gather_loose16` for the guard proof). aarch64 has no
//! non-temporal store hint worth special-casing here, so `ex.stream` is
//! ignored.

use super::scalar;
use std::arch::aarch64::{vld1q_u8, vst1q_u8};

/// Strided gather dispatch for the NEON tier.
///
/// # Safety
/// Every source byte of every block lies within `src` (plan-level
/// `validate_user`); vector overreads beyond a block are guarded against
/// `src.len()` internally.
pub(crate) unsafe fn gather(src: &[u8], first: i64, stride: i64, bl: usize, out: &mut [u8]) {
    if bl < 16 && !matches!(bl, 4 | 8) && stride > 0 {
        let n = out.len() / bl;
        let total = n * bl;
        let max_src = if first >= 0 && first as usize + 16 <= src.len() {
            ((src.len() - 16 - first as usize) as i64 / stride + 1) as usize
        } else {
            0
        };
        let max_dst = if total >= 16 { (total - 16) / bl + 1 } else { 0 };
        let m = n.min(max_src).min(max_dst);
        // SAFETY: loads/stores guarded above; tail repairs the final
        // store's spill exactly as in the x86 variant.
        unsafe {
            let dst = out.as_mut_ptr();
            for j in 0..m {
                let v = vld1q_u8(src.as_ptr().add((first + j as i64 * stride) as usize));
                vst1q_u8(dst.add(j * bl), v);
            }
            for j in m..n {
                std::ptr::copy_nonoverlapping(
                    src.as_ptr().add((first + j as i64 * stride) as usize),
                    dst.add(j * bl),
                    bl,
                );
            }
        }
        return;
    }
    // SAFETY: per contract.
    unsafe { scalar::gather(src.as_ptr(), first, stride, bl, out) }
}
