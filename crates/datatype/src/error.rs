//! Error types for datatype construction and use.

use std::fmt;

/// Errors raised while building or using a [`crate::Datatype`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields; the variants themselves are documented
pub enum DatatypeError {
    /// An arithmetic computation on sizes, extents, or displacements
    /// overflowed the 64-bit range used internally.
    Overflow,
    /// Arrays passed to an indexed-style constructor had different lengths.
    MismatchedLengths { blocklens: usize, displacements: usize },
    /// Subarray parameters were inconsistent (dimension mismatch, a
    /// subsize of zero extent exceeding the full size, or a start+subsize
    /// that runs off the end of the full array).
    InvalidSubarray(String),
    /// A child datatype with a negative extent was used in a constructor
    /// that tiles instances by extent.
    NegativeExtentChild,
    /// A resized type was given a negative extent.
    NegativeExtent,
    /// The datatype has not been committed before use in an operation
    /// that requires a committed type.
    NotCommitted,
    /// A pack/unpack operation would touch bytes outside the user buffer.
    OutOfBounds {
        /// First byte (relative to the buffer origin) the operation needed.
        needed_from: i64,
        /// One past the last byte the operation needed.
        needed_to: i64,
        /// Length of the buffer actually supplied.
        buffer_len: usize,
    },
    /// The destination of a pack (or source of an unpack) was too small.
    BufferTooSmall { needed: usize, available: usize },
    /// Pack position bookkeeping was inconsistent (position beyond buffer).
    InvalidPosition { position: usize, buffer_len: usize },
    /// Type signatures of sender and receiver do not match.
    SignatureMismatch,
}

impl fmt::Display for DatatypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatatypeError::Overflow => write!(f, "size/extent arithmetic overflowed i64"),
            DatatypeError::MismatchedLengths { blocklens, displacements } => write!(
                f,
                "indexed constructor arrays differ in length: {blocklens} blocklengths vs {displacements} displacements"
            ),
            DatatypeError::InvalidSubarray(msg) => write!(f, "invalid subarray: {msg}"),
            DatatypeError::NegativeExtentChild => {
                write!(f, "child datatype has negative extent; cannot tile instances")
            }
            DatatypeError::NegativeExtent => write!(f, "resized extent must be non-negative"),
            DatatypeError::NotCommitted => write!(f, "datatype must be committed before use"),
            DatatypeError::OutOfBounds { needed_from, needed_to, buffer_len } => write!(
                f,
                "datatype touches bytes {needed_from}..{needed_to} outside user buffer of {buffer_len} bytes"
            ),
            DatatypeError::BufferTooSmall { needed, available } => {
                write!(f, "buffer too small: need {needed} bytes, have {available}")
            }
            DatatypeError::InvalidPosition { position, buffer_len } => {
                write!(f, "pack position {position} beyond buffer of {buffer_len} bytes")
            }
            DatatypeError::SignatureMismatch => {
                write!(f, "sender and receiver type signatures do not match")
            }
        }
    }
}

impl std::error::Error for DatatypeError {}

/// Convenient result alias used throughout the datatype crate.
pub type Result<T> = std::result::Result<T, DatatypeError>;
