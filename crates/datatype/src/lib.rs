//! # nonctg-datatype — an MPI-style derived-datatype engine
//!
//! A from-scratch reimplementation of the MPI derived-datatype machinery
//! that Eijkhout's *Performance of MPI sends of non-contiguous data*
//! exercises: type construction (`contiguous`, `vector`, `hvector`,
//! `indexed`, `hindexed`, `indexed_block`, `struct`, `subarray`,
//! `resized`), type-map algebra (size / extent / bounds / signatures),
//! commit-time flattening with block coalescing, streaming segment
//! iteration for arbitrarily large types, and a pack/unpack engine with
//! contiguous, strided, and generic code paths.
//!
//! ## Quick example
//!
//! ```
//! use nonctg_datatype::Datatype;
//!
//! // every other f64 out of an array of 8 — the paper's workload
//! let every_other = Datatype::vector(4, 1, 2, &Datatype::f64())
//!     .unwrap()
//!     .commit();
//! assert_eq!(every_other.size(), 32);          // 4 doubles of payload
//! assert_eq!(every_other.extent(), 3 * 16 + 8); // spans 7 doubles
//!
//! let src: Vec<u8> = (0..8).flat_map(|i| (i as f64).to_le_bytes()).collect();
//! let packed = nonctg_datatype::pack(&src, 0, &every_other, 1).unwrap();
//! assert_eq!(packed.len(), 32);
//! ```

#![warn(missing_docs)]

mod builder;
mod darray;
mod describe;
mod external;
mod error;
mod node;
mod primitive;
mod segiter;
mod signature;

pub mod kernels;
pub mod layouts;
pub mod normalize;
pub mod oracle;
pub mod pack;
pub mod plan;

pub use error::{DatatypeError, Result};
pub use kernels::{
    available_tiers, detected_tier, gather_checked, llc_threshold, scatter_checked, simd_tier,
    RecordField, RecordKernel, SimdTier,
};
pub use node::{ArrayOrder, Block, Datatype, Kind, StructField};
pub use pack::{
    pack, pack_into, pack_into_serial, pack_into_uncompiled, pack_size, pack_with_position,
    strided_form, unpack_from, unpack_from_uncompiled, unpack_with_position, Strided,
};
pub use plan::{
    cache_stats, pack_threads, parallel_threshold, plan_cache_stats, plan_for, reset_cache_stats,
    PackPlan, PlanCacheStats,
};
pub use darray::{DistArg, Distribution};
pub use describe::{layout_eq, TypeMapEntry};
pub use normalize::{norm_counters, reset_norm_counters, NORMALIZE_LIST_CAP};
pub use external::{pack_external, pack_external_size, unpack_external};
pub use oracle::{check_type, OracleReport, TypeOracle, ORACLE_ENTRY_CAP};
pub use primitive::{Primitive, Scalar};
pub use segiter::SegIter;
pub use signature::Signature;

/// Reinterpret a scalar slice as raw bytes (safe: all supported scalars are
/// plain-old-data with no padding).
pub fn as_bytes<T: Scalar>(data: &[T]) -> &[u8] {
    // SAFETY: T is a POD scalar (sealed set of integer/float types), so any
    // byte pattern is valid and there are no padding bytes.
    unsafe { std::slice::from_raw_parts(data.as_ptr().cast::<u8>(), std::mem::size_of_val(data)) }
}

/// Reinterpret a mutable scalar slice as raw bytes.
pub fn as_bytes_mut<T: Scalar>(data: &mut [T]) -> &mut [u8] {
    // SAFETY: as in `as_bytes`; scalars accept any byte pattern.
    unsafe {
        std::slice::from_raw_parts_mut(data.as_mut_ptr().cast::<u8>(), std::mem::size_of_val(data))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_bytes_roundtrip() {
        let v = [1.0f64, 2.0, 3.0];
        let b = as_bytes(&v);
        assert_eq!(b.len(), 24);
        assert_eq!(&b[0..8], &1.0f64.to_le_bytes());
    }

    #[test]
    fn as_bytes_mut_writes_through() {
        let mut v = [0u32; 2];
        as_bytes_mut(&mut v)[0..4].copy_from_slice(&7u32.to_le_bytes());
        assert_eq!(v[0], 7);
    }
}
