//! Canonical type normalization: collapse nested constructor trees into
//! minimal strided descriptors before plan compilation.
//!
//! Two structurally different construction histories frequently describe
//! the *same* byte layout — `vector(n, b, b)` is `contiguous(n*b)`, a
//! one-count wrapper is its child, an hvector whose byte stride is a
//! multiple of the child extent is a plain vector, and a subarray with a
//! single partial dimension is a strided vector in disguise. TEMPI
//! (arXiv:2012.14363) showed that canonicalizing such trees before
//! choosing a datapath is where most of the speedup of a smart engine
//! comes from: the canonical form compiles to fewer plan ops, is
//! recognized by the strided fast paths, and — crucially — lets
//! canonically-equal types share one compiled-plan cache entry.
//!
//! [`Datatype::normalized`] returns the canonical representative (which
//! may be the type itself), and [`Datatype::normalized_id`] an interned
//! process-unique id of the canonical *structure*, so separately built
//! but layout-identical types map to the same id. Every rewrite preserves
//! the typemap byte-for-byte **in typemap order** (pack output is
//! bit-identical) and the committed `(lb, extent)` pair (multi-instance
//! tiling is unchanged); when a rewrite would alter the bounds — e.g.
//! dropping struct padding — the result is wrapped in a `Resized` that
//! restores them.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::error::Result;
use crate::node::{Datatype, Kind, StructField, TypeNode};

/// Rewrites that would materialize a displacement or block list longer
/// than this keep the original constructor instead (the canonical key
/// likewise falls back to node identity above this many entries).
pub const NORMALIZE_LIST_CAP: usize = 1 << 12;

static NORM_HITS: AtomicU64 = AtomicU64::new(0);
static NORM_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of the per-node normalization cache: a hit means the
/// canonical form was already memoized on the node, a miss that the
/// rewrite pass actually ran. Surfaced through `plan::cache_stats`.
pub fn norm_counters() -> (u64, u64) {
    (NORM_HITS.load(Ordering::Relaxed), NORM_MISSES.load(Ordering::Relaxed))
}

/// Zero the normalization hit/miss counters (memoized forms stay cached).
pub fn reset_norm_counters() {
    NORM_HITS.store(0, Ordering::Relaxed);
    NORM_MISSES.store(0, Ordering::Relaxed);
}

/// Interner mapping canonical structure keys to process-unique ids.
fn interner() -> &'static Mutex<HashMap<String, u64>> {
    static I: OnceLock<Mutex<HashMap<String, u64>>> = OnceLock::new();
    I.get_or_init(|| Mutex::new(HashMap::new()))
}

fn intern(key: String) -> u64 {
    let mut map = interner().lock().expect("normalize interner poisoned");
    let next = map.len() as u64 + 1;
    *map.entry(key).or_insert(next)
}

impl Datatype {
    /// The canonical representative of this type's layout: same typemap in
    /// the same order, same `(lb, extent)`, minimal constructor tree.
    /// Memoized on the node, so repeated calls are O(1).
    pub fn normalized(&self) -> Datatype {
        match &self.norm_entry().1 {
            Some(rep) => rep.clone(),
            None => self.clone(),
        }
    }

    /// Interned id of the canonical structure. Separately built but
    /// layout-identical types share an id; this keys the compiled
    /// pack-plan cache so canonically-equal types share plan entries.
    pub fn normalized_id(&self) -> u64 {
        self.norm_entry().0
    }

    /// Whether normalization changed anything (i.e. this type was not
    /// already in canonical form).
    pub fn is_canonical(&self) -> bool {
        self.norm_entry().1.is_none()
    }

    fn norm_entry(&self) -> &(u64, Option<Datatype>) {
        if let Some(e) = self.node.norm.get() {
            NORM_HITS.fetch_add(1, Ordering::Relaxed);
            return e;
        }
        NORM_MISSES.fetch_add(1, Ordering::Relaxed);
        self.node.norm.get_or_init(|| compute_norm(self))
    }
}

/// Full normalization of one node: canonicalize children, reduce the root
/// to a fixpoint, re-impose the original bounds, intern the key.
fn compute_norm(d: &Datatype) -> (u64, Option<Datatype>) {
    let (reduced, changed) = match normalize_tree(d) {
        Ok(pair) => pair,
        // Arithmetic overflow in a rewrite: keep the original form.
        Err(_) => (d.clone(), false),
    };
    let rep = if changed {
        // Rewrites preserve the typemap but may shrink declared bounds
        // (struct padding, subarray full-array extents). Restore them so
        // `count > 1` tiling is unchanged.
        let guarded = if reduced.lb() != d.lb() || reduced.ub() != d.ub() {
            Datatype::resized(&reduced, d.lb(), d.extent()).unwrap_or_else(|_| d.clone())
        } else {
            reduced
        };
        debug_assert_eq!(guarded.size(), d.size());
        debug_assert_eq!(guarded.lb(), d.lb());
        debug_assert_eq!(guarded.ub(), d.ub());
        Some(guarded.commit())
    } else {
        None
    };
    let canonical = rep.as_ref().unwrap_or(d);
    let mut key = String::new();
    canon_key(canonical, &mut key);
    let id = intern(key);
    if let Some(rep) = &rep {
        // The representative is canonical by construction; memoize that so
        // nested lookups on it are O(1) and do not rewrite again.
        let _ = rep.node.norm.set((id, None));
    }
    (id, rep)
}

/// Canonicalize children, then reduce the root until no rule fires.
/// Returns the reduced type and whether anything changed.
fn normalize_tree(d: &Datatype) -> Result<(Datatype, bool)> {
    let (mut cur, mut changed) = with_norm_children(d)?;
    while let Some(next) = reduce_once(&cur)? {
        cur = next;
        changed = true;
    }
    Ok((cur, changed))
}

/// Rebuild `d` with canonicalized children (identity when no child moved).
fn with_norm_children(d: &Datatype) -> Result<(Datatype, bool)> {
    let rebuilt = match d.kind() {
        Kind::Primitive(_) => return Ok((d.clone(), false)),
        Kind::Contiguous { count, child } => {
            let c = child.normalized();
            if c.same_type(child) {
                return Ok((d.clone(), false));
            }
            Kind::Contiguous { count: *count, child: c }
        }
        Kind::Vector { count, blocklen, stride, child } => {
            let c = child.normalized();
            if c.same_type(child) {
                return Ok((d.clone(), false));
            }
            Kind::Vector { count: *count, blocklen: *blocklen, stride: *stride, child: c }
        }
        Kind::Hvector { count, blocklen, stride_bytes, child } => {
            let c = child.normalized();
            if c.same_type(child) {
                return Ok((d.clone(), false));
            }
            Kind::Hvector {
                count: *count,
                blocklen: *blocklen,
                stride_bytes: *stride_bytes,
                child: c,
            }
        }
        Kind::Indexed { blocks, child } => {
            let c = child.normalized();
            if c.same_type(child) {
                return Ok((d.clone(), false));
            }
            Kind::Indexed { blocks: blocks.clone(), child: c }
        }
        Kind::Hindexed { blocks, child } => {
            let c = child.normalized();
            if c.same_type(child) {
                return Ok((d.clone(), false));
            }
            Kind::Hindexed { blocks: blocks.clone(), child: c }
        }
        Kind::IndexedBlock { blocklen, displacements, child } => {
            let c = child.normalized();
            if c.same_type(child) {
                return Ok((d.clone(), false));
            }
            Kind::IndexedBlock {
                blocklen: *blocklen,
                displacements: displacements.clone(),
                child: c,
            }
        }
        Kind::Struct { fields } => {
            let norm: Vec<Datatype> = fields.iter().map(|f| f.datatype.normalized()).collect();
            if norm.iter().zip(fields.iter()).all(|(n, f)| n.same_type(&f.datatype)) {
                return Ok((d.clone(), false));
            }
            Kind::Struct {
                fields: fields
                    .iter()
                    .zip(norm)
                    .map(|(f, datatype)| StructField {
                        blocklen: f.blocklen,
                        displacement: f.displacement,
                        datatype,
                    })
                    .collect(),
            }
        }
        Kind::Subarray { sizes, subsizes, starts, order, child } => {
            let c = child.normalized();
            if c.same_type(child) {
                return Ok((d.clone(), false));
            }
            Kind::Subarray {
                sizes: sizes.clone(),
                subsizes: subsizes.clone(),
                starts: starts.clone(),
                order: *order,
                child: c,
            }
        }
        Kind::Resized { lb, extent, child } => {
            let c = child.normalized();
            if c.same_type(child) {
                return Ok((d.clone(), false));
            }
            Kind::Resized { lb: *lb, extent: *extent, child: c }
        }
    };
    Ok((TypeNode::build(rebuilt)?, true))
}

/// Whether `count > 1` and consecutive instances of `child` tile
/// seamlessly by the child extent with a dense body — the precondition
/// for merging instance runs across a block boundary.
fn child_tiles(child: &Datatype) -> bool {
    child.size() > 0
        && child
            .dense_block()
            .is_some_and(|b| b.len as i64 == child.extent_i64() && b.offset == 0)
}

fn cmul(a: i64, b: i64) -> Result<i64> {
    a.checked_mul(b).ok_or(crate::error::DatatypeError::Overflow)
}

fn cmulu(a: u64, b: u64) -> Result<u64> {
    a.checked_mul(b).ok_or(crate::error::DatatypeError::Overflow)
}

/// One local rewrite at the root (children are already canonical).
/// Returns `None` when no rule applies.
fn reduce_once(d: &Datatype) -> Result<Option<Datatype>> {
    let out = match d.kind() {
        // -- count-1 and nested-contiguous flattening ---------------------
        Kind::Contiguous { count: 1, child } => Some(child.clone()),
        Kind::Contiguous { count, child } => match child.kind() {
            Kind::Contiguous { count: n, child: inner } if *count > 0 && *n > 0 => {
                Some(TypeNode::build(Kind::Contiguous {
                    count: cmulu(*count, *n)?,
                    child: inner.clone(),
                })?)
            }
            _ => None,
        },

        // -- vector canonicalization --------------------------------------
        Kind::Vector { count, blocklen, stride, child } => {
            let (count, blocklen, stride) = (*count, *blocklen, *stride);
            if count == 0 || blocklen == 0 {
                None
            } else if count == 1 {
                Some(TypeNode::build(Kind::Contiguous { count: blocklen, child: child.clone() })?)
            } else if stride == blocklen as i64 {
                // stride == blocklen: blocks tile seamlessly.
                Some(TypeNode::build(Kind::Contiguous {
                    count: cmulu(count, blocklen)?,
                    child: child.clone(),
                })?)
            } else if let Kind::Contiguous { count: n, child: inner } = child.kind() {
                // Hoist a contiguous child into the block length.
                Some(TypeNode::build(Kind::Vector {
                    count,
                    blocklen: cmulu(blocklen, *n)?,
                    stride: cmul(stride, *n as i64)?,
                    child: inner.clone(),
                })?)
            } else {
                None
            }
        }

        // -- hvector: prefer element strides when the byte stride divides --
        Kind::Hvector { count, blocklen, stride_bytes, child } => {
            let (count, blocklen, sb) = (*count, *blocklen, *stride_bytes);
            let ext = child.extent_i64();
            if count == 0 || blocklen == 0 {
                None
            } else if count == 1 {
                Some(TypeNode::build(Kind::Contiguous { count: blocklen, child: child.clone() })?)
            } else if ext > 0 && sb % ext == 0 {
                Some(TypeNode::build(Kind::Vector {
                    count,
                    blocklen,
                    stride: sb / ext,
                    child: child.clone(),
                })?)
            } else {
                None
            }
        }

        // -- indexed flavors: drop empties, merge adjacent, find strides --
        Kind::Indexed { blocks, child } => reduce_indexed(blocks, child)?,
        Kind::Hindexed { blocks, child } => {
            let ext = child.extent_i64();
            if ext > 0 && blocks.iter().all(|&(_, o)| o % ext == 0) {
                // Byte displacements all divide the extent: an Indexed.
                let elems: Vec<(u64, i64)> = blocks.iter().map(|&(bl, o)| (bl, o / ext)).collect();
                Some(TypeNode::build(Kind::Indexed { blocks: elems.into(), child: child.clone() })?)
            } else {
                reduce_hindexed(blocks, child)?
            }
        }
        Kind::IndexedBlock { blocklen, displacements, child } => {
            let bl = *blocklen;
            if bl == 0 || displacements.is_empty() {
                None
            } else {
                let blocks: Vec<(u64, i64)> = displacements.iter().map(|&x| (bl, x)).collect();
                reduce_indexed(&blocks, child)?
            }
        }

        // -- single-field struct at displacement zero ---------------------
        Kind::Struct { fields } => {
            if fields.len() == 1 && fields[0].displacement == 0 && fields[0].blocklen > 0 {
                Some(TypeNode::build(Kind::Contiguous {
                    count: fields[0].blocklen,
                    child: fields[0].datatype.clone(),
                })?)
            } else {
                None
            }
        }

        // -- subarray: full selections and single-partial-dim strides -----
        Kind::Subarray { sizes, subsizes, starts, order, child } => {
            reduce_subarray(sizes, subsizes, starts, *order, child)?
        }

        // -- resized: collapse stacked resizes, drop no-ops ---------------
        Kind::Resized { lb, extent, child } => {
            if let Kind::Resized { child: inner, .. } = child.kind() {
                Some(TypeNode::build(Kind::Resized {
                    lb: *lb,
                    extent: *extent,
                    child: inner.clone(),
                })?)
            } else if *lb == child.lb() && *extent == child.extent() {
                Some(child.clone())
            } else {
                None
            }
        }

        Kind::Primitive(_) => None,
    };
    Ok(out)
}

/// Shared reduction for element-displacement block lists (`Indexed`, with
/// `IndexedBlock` routed through it).
fn reduce_indexed(blocks: &[(u64, i64)], child: &Datatype) -> Result<Option<Datatype>> {
    // Drop empty blocks and merge runs that are adjacent in typemap order:
    // block (bl, disp) spans bl child extents, so a successor starting at
    // disp + bl continues the same tiling seamlessly.
    let mut merged: Vec<(u64, i64)> = Vec::with_capacity(blocks.len());
    for &(bl, disp) in blocks {
        if bl == 0 {
            continue;
        }
        match merged.last_mut() {
            Some((pbl, pd)) if disp == *pd + *pbl as i64 => *pbl = pbl.checked_add(bl).ok_or(crate::error::DatatypeError::Overflow)?,
            _ => merged.push((bl, disp)),
        }
    }
    if merged.len() == blocks.len() && merged.iter().zip(blocks).all(|(a, b)| a == b) {
        // Nothing merged: still try the stride recognitions below, but only
        // if they fire; otherwise report "no change".
        return stride_of_blocks(&merged, child);
    }
    if merged.is_empty() {
        return Ok(Some(TypeNode::build(Kind::Contiguous { count: 0, child: child.clone() })?));
    }
    if let Some(t) = stride_of_blocks(&merged, child)? {
        return Ok(Some(t));
    }
    Ok(Some(TypeNode::build(Kind::Indexed { blocks: merged.into(), child: child.clone() })?))
}

/// Recognize a merged block list as contiguous or a uniform-stride vector.
fn stride_of_blocks(blocks: &[(u64, i64)], child: &Datatype) -> Result<Option<Datatype>> {
    if blocks.is_empty() {
        return Ok(None);
    }
    if blocks.len() == 1 && blocks[0].1 == 0 {
        return Ok(Some(TypeNode::build(Kind::Contiguous {
            count: blocks[0].0,
            child: child.clone(),
        })?));
    }
    let bl = blocks[0].0;
    if blocks.len() >= 2 && blocks.iter().all(|&(b, _)| b == bl) && blocks[0].1 == 0 {
        let s = blocks[1].1 - blocks[0].1;
        if s != 0
            && blocks.windows(2).all(|w| w[1].1 - w[0].1 == s)
        {
            return Ok(Some(TypeNode::build(Kind::Vector {
                count: blocks.len() as u64,
                blocklen: bl,
                stride: s,
                child: child.clone(),
            })?));
        }
    }
    Ok(None)
}

/// Reduction for byte-displacement block lists whose displacements do not
/// all divide the child extent.
fn reduce_hindexed(blocks: &[(u64, i64)], child: &Datatype) -> Result<Option<Datatype>> {
    let ext = child.extent_i64();
    let mut merged: Vec<(u64, i64)> = Vec::with_capacity(blocks.len());
    for &(bl, off) in blocks {
        if bl == 0 {
            continue;
        }
        match merged.last_mut() {
            Some((pbl, po)) if off == *po + cmul(*pbl as i64, ext)? => {
                *pbl = pbl.checked_add(bl).ok_or(crate::error::DatatypeError::Overflow)?
            }
            _ => merged.push((bl, off)),
        }
    }
    let unchanged = merged.len() == blocks.len() && merged.iter().zip(blocks).all(|(a, b)| a == b);
    if merged.is_empty() {
        return Ok(Some(TypeNode::build(Kind::Contiguous { count: 0, child: child.clone() })?));
    }
    if merged.len() == 1 && merged[0].1 == 0 {
        return Ok(Some(TypeNode::build(Kind::Contiguous {
            count: merged[0].0,
            child: child.clone(),
        })?));
    }
    let bl = merged[0].0;
    if merged.len() >= 2 && merged.iter().all(|&(b, _)| b == bl) && merged[0].1 == 0 {
        let s = merged[1].1 - merged[0].1;
        if s != 0 && merged.windows(2).all(|w| w[1].1 - w[0].1 == s) {
            return Ok(Some(TypeNode::build(Kind::Hvector {
                count: merged.len() as u64,
                blocklen: bl,
                stride_bytes: s,
                child: child.clone(),
            })?));
        }
    }
    if unchanged {
        return Ok(None);
    }
    Ok(Some(TypeNode::build(Kind::Hindexed { blocks: merged.into(), child: child.clone() })?))
}

/// Subarray reductions: a full selection is contiguous; a selection whose
/// runs form a single arithmetic progression is a vector (or an
/// indexed-block when the first run is offset). The caller's bound guard
/// restores the full-array extent afterwards.
fn reduce_subarray(
    sizes: &[u64],
    subsizes: &[u64],
    starts: &[u64],
    order: crate::node::ArrayOrder,
    child: &Datatype,
) -> Result<Option<Datatype>> {
    use crate::node::ArrayOrder;
    let ndims = sizes.len();
    let sel_elems = subsizes.iter().try_fold(1u64, |a, &s| cmulu(a, s))?;
    if sel_elems == 0 || child.size() == 0 {
        return Ok(None);
    }
    let full = subsizes == sizes;
    if full {
        return Ok(Some(TypeNode::build(Kind::Contiguous {
            count: sel_elems,
            child: child.clone(),
        })?));
    }
    if !child_tiles(child) {
        return Ok(None);
    }
    // Element strides per dimension, as in node::build_subarray.
    let mut stride = vec![1u64; ndims];
    match order {
        ArrayOrder::C => {
            for dim in (0..ndims.saturating_sub(1)).rev() {
                stride[dim] = cmulu(stride[dim + 1], sizes[dim + 1])?;
            }
        }
        ArrayOrder::Fortran => {
            for dim in 1..ndims {
                stride[dim] = cmulu(stride[dim - 1], sizes[dim - 1])?;
            }
        }
    }
    let dims_by_locality: Vec<usize> = match order {
        ArrayOrder::C => (0..ndims).collect(),
        ArrayOrder::Fortran => (0..ndims).rev().collect(),
    };
    // Innermost contiguous run, then at most one dimension may contribute
    // multiple runs for the layout to be a single arithmetic progression.
    let mut run_elems = 1u64;
    let mut outer_dims: Vec<usize> = Vec::new();
    let mut still_inner = true;
    for &dim in dims_by_locality.iter().rev() {
        if still_inner {
            if subsizes[dim] == sizes[dim] {
                run_elems = cmulu(run_elems, sizes[dim])?;
                continue;
            }
            run_elems = cmulu(run_elems, subsizes[dim])?;
            still_inner = false;
        } else if subsizes[dim] > 1 {
            outer_dims.push(dim);
        }
    }
    let mut first = 0i64;
    for dim in 0..ndims {
        first = first
            .checked_add(cmul(starts[dim] as i64, stride[dim] as i64)?)
            .ok_or(crate::error::DatatypeError::Overflow)?;
    }
    match outer_dims.as_slice() {
        [] => {
            // One run of run_elems elements at offset `first`.
            let t = if first == 0 {
                TypeNode::build(Kind::Contiguous { count: run_elems, child: child.clone() })?
            } else {
                TypeNode::build(Kind::Indexed {
                    blocks: vec![(run_elems, first)].into(),
                    child: child.clone(),
                })?
            };
            Ok(Some(t))
        }
        [dim] => {
            let nruns = subsizes[*dim];
            let s = stride[*dim] as i64;
            if first == 0 {
                Ok(Some(TypeNode::build(Kind::Vector {
                    count: nruns,
                    blocklen: run_elems,
                    stride: s,
                    child: child.clone(),
                })?))
            } else if nruns as usize <= NORMALIZE_LIST_CAP {
                let disps: Vec<i64> = (0..nruns)
                    .map(|k| cmul(k as i64, s).and_then(|o| {
                        o.checked_add(first).ok_or(crate::error::DatatypeError::Overflow)
                    }))
                    .collect::<Result<_>>()?;
                Ok(Some(TypeNode::build(Kind::IndexedBlock {
                    blocklen: run_elems,
                    displacements: disps.into(),
                    child: child.clone(),
                })?))
            } else {
                Ok(None)
            }
        }
        _ => Ok(None),
    }
}

/// Serialize the canonical structure into the interner key. Block lists
/// longer than [`NORMALIZE_LIST_CAP`] fall back to node identity (no
/// cross-type sharing, but bounded key size).
fn canon_key(d: &Datatype, out: &mut String) {
    match d.kind() {
        Kind::Primitive(p) => {
            let _ = write!(out, "p{p:?}");
        }
        Kind::Contiguous { count, child } => {
            let _ = write!(out, "c{count}(");
            canon_key(child, out);
            out.push(')');
        }
        Kind::Vector { count, blocklen, stride, child } => {
            let _ = write!(out, "v{count},{blocklen},{stride}(");
            canon_key(child, out);
            out.push(')');
        }
        Kind::Hvector { count, blocklen, stride_bytes, child } => {
            let _ = write!(out, "h{count},{blocklen},{stride_bytes}(");
            canon_key(child, out);
            out.push(')');
        }
        Kind::Indexed { blocks, child } => {
            if blocks.len() > NORMALIZE_LIST_CAP {
                let _ = write!(out, "u{}", d.type_id());
                return;
            }
            out.push('i');
            for (bl, disp) in blocks.iter() {
                let _ = write!(out, "{bl}@{disp},");
            }
            out.push('(');
            canon_key(child, out);
            out.push(')');
        }
        Kind::Hindexed { blocks, child } => {
            if blocks.len() > NORMALIZE_LIST_CAP {
                let _ = write!(out, "u{}", d.type_id());
                return;
            }
            out.push('x');
            for (bl, disp) in blocks.iter() {
                let _ = write!(out, "{bl}@{disp},");
            }
            out.push('(');
            canon_key(child, out);
            out.push(')');
        }
        Kind::IndexedBlock { blocklen, displacements, child } => {
            if displacements.len() > NORMALIZE_LIST_CAP {
                let _ = write!(out, "u{}", d.type_id());
                return;
            }
            let _ = write!(out, "b{blocklen}[");
            for disp in displacements.iter() {
                let _ = write!(out, "{disp},");
            }
            out.push_str("](");
            canon_key(child, out);
            out.push(')');
        }
        Kind::Struct { fields } => {
            if fields.len() > NORMALIZE_LIST_CAP {
                let _ = write!(out, "u{}", d.type_id());
                return;
            }
            out.push_str("s[");
            for f in fields.iter() {
                let _ = write!(out, "{}@{}:", f.blocklen, f.displacement);
                canon_key(&f.datatype, out);
                out.push(',');
            }
            out.push(']');
        }
        Kind::Subarray { sizes, subsizes, starts, order, child } => {
            let _ = write!(out, "a{sizes:?}{subsizes:?}{starts:?}{order:?}(");
            canon_key(child, out);
            out.push(')');
        }
        Kind::Resized { lb, extent, child } => {
            let _ = write!(out, "r{lb},{extent}(");
            canon_key(child, out);
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::describe::layout_eq;
    use crate::Datatype;

    #[test]
    fn dense_vector_normalizes_to_contiguous() {
        let v = Datatype::vector(10, 4, 4, &Datatype::f64()).unwrap();
        let n = v.normalized();
        assert!(matches!(n.kind(), Kind::Contiguous { count: 40, .. }));
        assert!(layout_eq(&v, &n));
        assert_eq!(n.extent(), v.extent());
    }

    #[test]
    fn count_one_wrappers_flatten() {
        let f = Datatype::f64();
        let c1 = Datatype::contiguous(1, &f).unwrap();
        assert!(c1.normalized().same_type(&c1.normalized()));
        assert!(matches!(c1.normalized().kind(), Kind::Primitive(_)));
        let v1 = Datatype::vector(1, 6, 9, &f).unwrap();
        assert!(matches!(v1.normalized().kind(), Kind::Contiguous { count: 6, .. }));
    }

    #[test]
    fn nested_contiguous_merges() {
        let inner = Datatype::contiguous(4, &Datatype::i32()).unwrap();
        let outer = Datatype::contiguous(3, &inner).unwrap();
        let n = outer.normalized();
        assert!(matches!(n.kind(), Kind::Contiguous { count: 12, .. }));
        assert!(layout_eq(&outer, &n));
    }

    #[test]
    fn vector_of_contiguous_hoists() {
        let inner = Datatype::contiguous(2, &Datatype::f64()).unwrap();
        let v = Datatype::vector(5, 3, 7, &inner).unwrap();
        let n = v.normalized();
        match n.kind() {
            Kind::Vector { count: 5, blocklen: 6, stride: 14, child } => {
                assert!(matches!(child.kind(), Kind::Primitive(_)));
            }
            k => panic!("unexpected canonical kind {k:?}"),
        }
        assert!(layout_eq(&v, &n));
        assert_eq!(n.extent(), v.extent());
    }

    #[test]
    fn hvector_with_divisible_stride_becomes_vector() {
        let h = Datatype::hvector(6, 1, 16, &Datatype::f64()).unwrap();
        let n = h.normalized();
        assert!(matches!(n.kind(), Kind::Vector { count: 6, blocklen: 1, stride: 2, .. }));
        assert!(layout_eq(&h, &n));
        // And the canonical ids agree with the equivalent vector.
        let v = Datatype::vector(6, 1, 2, &Datatype::f64()).unwrap();
        assert_eq!(h.normalized_id(), v.normalized_id());
    }

    #[test]
    fn indexed_adjacent_blocks_merge() {
        let i = Datatype::indexed(&[(2, 0), (3, 2), (1, 5)], &Datatype::i32()).unwrap();
        let n = i.normalized();
        assert!(matches!(n.kind(), Kind::Contiguous { count: 6, .. }));
        assert!(layout_eq(&i, &n));
    }

    #[test]
    fn uniform_indexed_becomes_vector() {
        let i = Datatype::indexed(&[(2, 0), (2, 5), (2, 10), (2, 15)], &Datatype::f64()).unwrap();
        let n = i.normalized();
        assert!(matches!(n.kind(), Kind::Vector { count: 4, blocklen: 2, stride: 5, .. }));
        assert!(layout_eq(&i, &n));
    }

    #[test]
    fn struct_single_field_keeps_padded_extent() {
        // One i32 field: contiguous body, but struct extent is padded.
        let s = Datatype::structure(&[(3, 0, Datatype::i32())]).unwrap();
        let n = s.normalized();
        assert!(layout_eq(&s, &n));
        assert_eq!(n.lb(), s.lb());
        assert_eq!(n.extent(), s.extent());
    }

    #[test]
    fn subarray_single_partial_dim_is_vector() {
        // 4x6 f64, select all 4 rows x 3 leading columns: 4 runs of 3.
        let s = Datatype::subarray(&[4, 6], &[4, 3], &[0, 0], crate::ArrayOrder::C, &Datatype::f64())
            .unwrap();
        let n = s.normalized();
        assert!(layout_eq(&s, &n));
        assert_eq!(n.extent(), s.extent());
        assert_eq!(n.lb(), 0);
        // Canonical form is a vector under a resized wrapper (full-array
        // extent restored).
        match n.kind() {
            Kind::Resized { child, .. } => {
                assert!(matches!(child.kind(), Kind::Vector { count: 4, blocklen: 3, stride: 6, .. }));
            }
            k => panic!("unexpected canonical kind {k:?}"),
        }
    }

    #[test]
    fn subarray_with_offset_start_uses_indexed_block() {
        let s = Datatype::subarray(&[4, 6], &[2, 3], &[1, 2], crate::ArrayOrder::C, &Datatype::f64())
            .unwrap();
        let n = s.normalized();
        assert!(layout_eq(&s, &n));
        assert_eq!(n.extent(), s.extent());
    }

    #[test]
    fn separately_built_equal_types_share_an_id() {
        let a = Datatype::vector(100, 1, 2, &Datatype::f64()).unwrap();
        let b = Datatype::vector(100, 1, 2, &Datatype::f64()).unwrap();
        assert_ne!(a.type_id(), b.type_id());
        assert_eq!(a.normalized_id(), b.normalized_id());
    }

    #[test]
    fn canonical_types_report_no_rewrite() {
        let v = Datatype::vector(8, 1, 2, &Datatype::f64()).unwrap();
        assert!(v.is_canonical());
        let dense = Datatype::vector(8, 2, 2, &Datatype::f64()).unwrap();
        assert!(!dense.is_canonical());
    }

    #[test]
    fn norm_counters_move() {
        let (_, m0) = norm_counters();
        let v = Datatype::vector(9, 1, 3, &Datatype::f64()).unwrap();
        let _ = v.normalized_id();
        let (h1, m1) = norm_counters();
        assert!(m1 > m0);
        let _ = v.normalized_id();
        let (h2, _) = norm_counters();
        assert!(h2 > h1);
    }

    #[test]
    fn resized_of_resized_collapses() {
        let base = Datatype::vector(4, 1, 2, &Datatype::f64()).unwrap();
        let r1 = Datatype::resized(&base, -8, 128).unwrap();
        let r2 = Datatype::resized(&r1, 0, 64).unwrap();
        let n = r2.normalized();
        assert!(layout_eq(&r2, &n));
        assert_eq!(n.lb(), 0);
        assert_eq!(n.extent(), 64);
        match n.kind() {
            Kind::Resized { child, .. } => assert!(matches!(child.kind(), Kind::Vector { .. })),
            k => panic!("unexpected canonical kind {k:?}"),
        }
    }
}
