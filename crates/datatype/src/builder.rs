//! Public constructors for [`Datatype`], mirroring the `MPI_Type_*` family.
//!
//! All constructors validate their arguments and compute derived properties
//! eagerly; they return uncommitted types (except primitives, which are born
//! committed). Call [`Datatype::commit`] before using a type in
//! communication, exactly as in MPI.

use std::sync::Arc;

use crate::error::{DatatypeError, Result};
use crate::node::{ArrayOrder, Datatype, Kind, StructField, TypeNode};
use crate::primitive::{Primitive, Scalar};

impl Datatype {
    /// A predefined leaf type.
    pub fn primitive(p: Primitive) -> Datatype {
        TypeNode::build(Kind::Primitive(p)).expect("primitive construction cannot fail")
    }

    /// The primitive matching a Rust scalar type.
    pub fn of<T: Scalar>() -> Datatype {
        Self::primitive(T::PRIMITIVE)
    }

    /// `MPI_BYTE`.
    pub fn byte() -> Datatype {
        Self::primitive(Primitive::Byte)
    }

    /// `MPI_PACKED` — the type of a buffer filled by `pack`; matches any
    /// signature of equal byte count.
    pub fn packed() -> Datatype {
        Self::primitive(Primitive::Packed)
    }

    /// `MPI_DOUBLE`.
    pub fn f64() -> Datatype {
        Self::primitive(Primitive::Float64)
    }

    /// `MPI_FLOAT`.
    pub fn f32() -> Datatype {
        Self::primitive(Primitive::Float32)
    }

    /// `MPI_INT`.
    pub fn i32() -> Datatype {
        Self::primitive(Primitive::Int32)
    }

    /// `MPI_INT64_T`.
    pub fn i64() -> Datatype {
        Self::primitive(Primitive::Int64)
    }

    /// `MPI_C_DOUBLE_COMPLEX`.
    pub fn complex128() -> Datatype {
        Self::primitive(Primitive::Complex128)
    }

    /// `MPI_Type_contiguous`: `count` consecutive instances of `child`.
    pub fn contiguous(count: usize, child: &Datatype) -> Result<Datatype> {
        TypeNode::build(Kind::Contiguous { count: count as u64, child: child.clone() })
    }

    /// `MPI_Type_vector`: `count` blocks of `blocklen` elements, block
    /// starts `stride` child-extents apart. `stride` may be negative.
    pub fn vector(count: usize, blocklen: usize, stride: i64, child: &Datatype) -> Result<Datatype> {
        TypeNode::build(Kind::Vector {
            count: count as u64,
            blocklen: blocklen as u64,
            stride,
            child: child.clone(),
        })
    }

    /// `MPI_Type_create_hvector`: like [`Self::vector`] but `stride_bytes`
    /// is in bytes.
    pub fn hvector(
        count: usize,
        blocklen: usize,
        stride_bytes: i64,
        child: &Datatype,
    ) -> Result<Datatype> {
        TypeNode::build(Kind::Hvector {
            count: count as u64,
            blocklen: blocklen as u64,
            stride_bytes,
            child: child.clone(),
        })
    }

    /// `MPI_Type_indexed`: blocks of `blocklens[i]` elements at
    /// `displacements[i]` child-extents.
    pub fn indexed_from(
        blocklens: &[usize],
        displacements: &[i64],
        child: &Datatype,
    ) -> Result<Datatype> {
        if blocklens.len() != displacements.len() {
            return Err(DatatypeError::MismatchedLengths {
                blocklens: blocklens.len(),
                displacements: displacements.len(),
            });
        }
        let blocks: Arc<[(u64, i64)]> = blocklens
            .iter()
            .zip(displacements)
            .map(|(&b, &d)| (b as u64, d))
            .collect();
        TypeNode::build(Kind::Indexed { blocks, child: child.clone() })
    }

    /// [`Self::indexed_from`] with `(blocklen, displacement)` pairs.
    pub fn indexed(blocks: &[(usize, i64)], child: &Datatype) -> Result<Datatype> {
        let blocks: Arc<[(u64, i64)]> = blocks.iter().map(|&(b, d)| (b as u64, d)).collect();
        TypeNode::build(Kind::Indexed { blocks, child: child.clone() })
    }

    /// `MPI_Type_create_hindexed`: displacements in bytes.
    pub fn hindexed(blocks: &[(usize, i64)], child: &Datatype) -> Result<Datatype> {
        let blocks: Arc<[(u64, i64)]> = blocks.iter().map(|&(b, d)| (b as u64, d)).collect();
        TypeNode::build(Kind::Hindexed { blocks, child: child.clone() })
    }

    /// `MPI_Type_create_indexed_block`: equal-length blocks at element
    /// displacements.
    pub fn indexed_block(
        blocklen: usize,
        displacements: &[i64],
        child: &Datatype,
    ) -> Result<Datatype> {
        TypeNode::build(Kind::IndexedBlock {
            blocklen: blocklen as u64,
            displacements: displacements.into(),
            child: child.clone(),
        })
    }

    /// `MPI_Type_create_struct`: fields given as
    /// `(blocklen, byte displacement, type)`.
    pub fn structure(fields: &[(usize, i64, Datatype)]) -> Result<Datatype> {
        let fields: Arc<[StructField]> = fields
            .iter()
            .map(|(b, d, t)| StructField {
                blocklen: *b as u64,
                displacement: *d,
                datatype: t.clone(),
            })
            .collect();
        TypeNode::build(Kind::Struct { fields })
    }

    /// `MPI_Type_create_subarray`: select an n-dimensional rectangular
    /// region (`subsizes` starting at `starts`) out of a full array of
    /// `sizes`, in C or Fortran `order`.
    pub fn subarray(
        sizes: &[usize],
        subsizes: &[usize],
        starts: &[usize],
        order: ArrayOrder,
        child: &Datatype,
    ) -> Result<Datatype> {
        let ndims = sizes.len();
        if ndims == 0 {
            return Err(DatatypeError::InvalidSubarray("ndims must be >= 1".into()));
        }
        if subsizes.len() != ndims || starts.len() != ndims {
            return Err(DatatypeError::InvalidSubarray(format!(
                "dimension mismatch: sizes={} subsizes={} starts={}",
                ndims,
                subsizes.len(),
                starts.len()
            )));
        }
        for d in 0..ndims {
            if subsizes[d] > sizes[d] {
                return Err(DatatypeError::InvalidSubarray(format!(
                    "subsize {} exceeds size {} in dimension {d}",
                    subsizes[d], sizes[d]
                )));
            }
            if subsizes[d] > 0 && starts[d] + subsizes[d] > sizes[d] {
                return Err(DatatypeError::InvalidSubarray(format!(
                    "start {} + subsize {} exceeds size {} in dimension {d}",
                    starts[d], subsizes[d], sizes[d]
                )));
            }
        }
        TypeNode::build(Kind::Subarray {
            sizes: sizes.iter().map(|&s| s as u64).collect(),
            subsizes: subsizes.iter().map(|&s| s as u64).collect(),
            starts: starts.iter().map(|&s| s as u64).collect(),
            order,
            child: child.clone(),
        })
    }

    /// `MPI_Type_create_resized`: override lower bound and extent.
    pub fn resized(child: &Datatype, lb: i64, extent: u64) -> Result<Datatype> {
        TypeNode::build(Kind::Resized { lb, extent, child: child.clone() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexed_length_mismatch_rejected() {
        let e = Datatype::indexed_from(&[1, 2], &[0], &Datatype::f64());
        assert!(matches!(e, Err(DatatypeError::MismatchedLengths { .. })));
    }

    #[test]
    fn subarray_validation() {
        let f = Datatype::f64();
        assert!(Datatype::subarray(&[], &[], &[], ArrayOrder::C, &f).is_err());
        assert!(Datatype::subarray(&[4], &[5], &[0], ArrayOrder::C, &f).is_err());
        assert!(Datatype::subarray(&[4], &[2], &[3], ArrayOrder::C, &f).is_err());
        assert!(Datatype::subarray(&[4, 4], &[2], &[0], ArrayOrder::C, &f).is_err());
        assert!(Datatype::subarray(&[4], &[2], &[2], ArrayOrder::C, &f).is_ok());
        // zero-size selections are fine regardless of start
        assert!(Datatype::subarray(&[4], &[0], &[4], ArrayOrder::C, &f).is_ok());
    }

    #[test]
    fn of_matches_explicit() {
        assert_eq!(Datatype::of::<f64>().size(), Datatype::f64().size());
        assert_eq!(
            Datatype::of::<i32>().signature().count(Primitive::Int32),
            1
        );
    }

    #[test]
    fn hvector_bytes_stride() {
        let d = Datatype::hvector(3, 2, 100, &Datatype::i32()).unwrap();
        assert_eq!(d.size(), 24);
        assert_eq!(d.ub(), 200 + 8);
    }

    #[test]
    fn indexed_block_matches_indexed() {
        let a = Datatype::indexed_block(2, &[0, 5, 11], &Datatype::i32()).unwrap();
        let b = Datatype::indexed(&[(2, 0), (2, 5), (2, 11)], &Datatype::i32()).unwrap();
        assert_eq!(a.size(), b.size());
        assert_eq!(a.extent(), b.extent());
        assert_eq!(a.seg_count_hint(), b.seg_count_hint());
    }

    #[test]
    fn nested_vectors() {
        // vector of vectors: 3 x (4 blocks of 1, stride 2) f64
        let inner = Datatype::vector(4, 1, 2, &Datatype::f64()).unwrap();
        let outer = Datatype::contiguous(3, &inner).unwrap();
        assert_eq!(outer.size(), 3 * 4 * 8);
        assert_eq!(outer.seg_count_hint(), 12);
    }
}
