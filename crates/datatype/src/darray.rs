//! Distributed arrays (`MPI_Type_create_darray`).
//!
//! Builds the datatype describing one process's share of a global
//! n-dimensional array partitioned over a process grid, with per-dimension
//! BLOCK, CYCLIC(k), or NONE distributions — the type HPC codes hand to
//! MPI-IO and to redistribution routines.
//!
//! Construction composes the existing algebra (contiguous, hindexed,
//! resized) dimension by dimension from the innermost out; each level is
//! resized to span that dimension's full global extent so outer levels
//! tile correctly. Every process's type has the extent of the whole global
//! array, and across the grid the types partition it exactly (see the
//! `darray_partition` property test).

use crate::error::{DatatypeError, Result};
use crate::node::{ArrayOrder, Datatype};

/// Per-dimension distribution of a [`Datatype::darray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Contiguous blocks of `ceil(gsize/psize)` (or a given block size).
    Block,
    /// Round-robin blocks of the given size (`None` = 1, `MPI_DISTRIBUTE_
    /// DFLT_DARG` semantics).
    Cyclic,
    /// Dimension not distributed (its process-grid extent must be 1).
    None,
}

/// Distribution argument per dimension (`MPI_DISTRIBUTE_DFLT_DARG` or a
/// specific block size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistArg {
    /// The MPI default: `ceil(gsize/psize)` for BLOCK, 1 for CYCLIC.
    Default,
    /// An explicit block size.
    Size(usize),
}

impl Datatype {
    /// `MPI_Type_create_darray`: the slice of a `gsizes` global array (in
    /// `order`) owned by `rank` of a `psizes` process grid under the given
    /// per-dimension distributions.
    ///
    /// `nprocs` must equal the product of `psizes`, and `rank < nprocs`.
    /// Ranks map to grid coordinates in row-major order (MPI semantics,
    /// independent of the array storage `order`).
    #[allow(clippy::too_many_arguments)]
    pub fn darray(
        nprocs: usize,
        rank: usize,
        gsizes: &[usize],
        distribs: &[Distribution],
        dargs: &[DistArg],
        psizes: &[usize],
        order: ArrayOrder,
        child: &Datatype,
    ) -> Result<Datatype> {
        let ndims = gsizes.len();
        if ndims == 0 {
            return Err(DatatypeError::InvalidSubarray("darray needs ndims >= 1".into()));
        }
        if distribs.len() != ndims || dargs.len() != ndims || psizes.len() != ndims {
            return Err(DatatypeError::InvalidSubarray(format!(
                "darray dimension mismatch: gsizes={ndims} distribs={} dargs={} psizes={}",
                distribs.len(),
                dargs.len(),
                psizes.len()
            )));
        }
        let grid: usize = psizes.iter().product();
        if grid != nprocs {
            return Err(DatatypeError::InvalidSubarray(format!(
                "process grid {psizes:?} has {grid} cells but nprocs = {nprocs}"
            )));
        }
        if rank >= nprocs {
            return Err(DatatypeError::InvalidSubarray(format!(
                "rank {rank} out of range for {nprocs} processes"
            )));
        }
        for d in 0..ndims {
            if distribs[d] == Distribution::None && psizes[d] != 1 {
                return Err(DatatypeError::InvalidSubarray(format!(
                    "dimension {d} is not distributed but its grid extent is {}",
                    psizes[d]
                )));
            }
            if let DistArg::Size(k) = dargs[d] {
                if k == 0 {
                    return Err(DatatypeError::InvalidSubarray(format!(
                        "dimension {d}: zero block size"
                    )));
                }
                if distribs[d] == Distribution::Block && k * psizes[d] < gsizes[d] {
                    return Err(DatatypeError::InvalidSubarray(format!(
                        "dimension {d}: BLOCK with darg {k} x {} procs cannot cover {}",
                        psizes[d], gsizes[d]
                    )));
                }
            }
        }

        // Row-major rank -> grid coordinates.
        let mut coords = vec![0usize; ndims];
        let mut rem = rank;
        for d in (0..ndims).rev() {
            coords[d] = rem % psizes[d];
            rem /= psizes[d];
        }

        // Process dimensions innermost-first so each level's child spans
        // the full global extent of all faster dimensions.
        let dims_innermost_first: Vec<usize> = match order {
            ArrayOrder::C => (0..ndims).rev().collect(),
            ArrayOrder::Fortran => (0..ndims).collect(),
        };

        let mut t = child.clone();
        for &d in &dims_innermost_first {
            t = distribute_dim(&t, gsizes[d], coords[d], psizes[d], distribs[d], dargs[d])?;
        }
        Ok(t)
    }
}

/// Distribute one dimension: select this coordinate's indices out of `g`
/// instances of `inner`, producing a type of extent `g * extent(inner)`.
fn distribute_dim(
    inner: &Datatype,
    g: usize,
    coord: usize,
    p: usize,
    dist: Distribution,
    darg: DistArg,
) -> Result<Datatype> {
    let ext = inner.extent() as i64;
    let full = (g as i64) * ext;
    let owned: Vec<(usize, i64)> = match dist {
        Distribution::None => vec![(g, 0)],
        Distribution::Block => {
            let b = match darg {
                DistArg::Default => g.div_ceil(p),
                DistArg::Size(k) => k,
            };
            let start = coord * b;
            let count = g.saturating_sub(start).min(b);
            if count == 0 {
                Vec::new()
            } else {
                vec![(count, start as i64 * ext)]
            }
        }
        Distribution::Cyclic => {
            let k = match darg {
                DistArg::Default => 1,
                DistArg::Size(k) => k,
            };
            let mut blocks = Vec::new();
            let mut start = coord * k;
            while start < g {
                let len = k.min(g - start);
                blocks.push((len, start as i64 * ext));
                start += p * k;
            }
            blocks
        }
    };
    let body = if owned.is_empty() {
        Datatype::contiguous(0, inner)?
    } else if owned.len() == 1 && owned[0].1 == 0 {
        Datatype::contiguous(owned[0].0, inner)?
    } else {
        Datatype::hindexed(&owned, inner)?
    };
    Datatype::resized(&body, 0, full as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack;

    fn f64s(n: usize) -> Vec<u8> {
        (0..n).flat_map(|i| (i as f64).to_le_bytes()).collect()
    }

    fn owned_elems(t: &Datatype, src: &[u8]) -> Vec<f64> {
        let packed = pack::pack(src, 0, t, 1).unwrap();
        packed
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect()
    }

    #[test]
    fn block_1d_splits_evenly() {
        let src = f64s(10);
        let mk = |rank| {
            Datatype::darray(
                2,
                rank,
                &[10],
                &[Distribution::Block],
                &[DistArg::Default],
                &[2],
                ArrayOrder::C,
                &Datatype::f64(),
            )
            .unwrap()
        };
        assert_eq!(owned_elems(&mk(0), &src), (0..5).map(|i| i as f64).collect::<Vec<_>>());
        assert_eq!(owned_elems(&mk(1), &src), (5..10).map(|i| i as f64).collect::<Vec<_>>());
        assert_eq!(mk(0).extent(), 80, "extent must span the global array");
    }

    #[test]
    fn block_1d_uneven_tail() {
        // g=10 over 3 procs: blocks of 4 -> 4, 4, 2.
        let src = f64s(10);
        let sizes: Vec<usize> = (0..3)
            .map(|rank| {
                let t = Datatype::darray(
                    3,
                    rank,
                    &[10],
                    &[Distribution::Block],
                    &[DistArg::Default],
                    &[3],
                    ArrayOrder::C,
                    &Datatype::f64(),
                )
                .unwrap();
                owned_elems(&t, &src).len()
            })
            .collect();
        assert_eq!(sizes, vec![4, 4, 2]);
    }

    #[test]
    fn cyclic_1d_round_robin() {
        let src = f64s(7);
        let t1 = Datatype::darray(
            2,
            1,
            &[7],
            &[Distribution::Cyclic],
            &[DistArg::Default],
            &[2],
            ArrayOrder::C,
            &Datatype::f64(),
        )
        .unwrap();
        assert_eq!(owned_elems(&t1, &src), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn block_cyclic_with_remainder() {
        // g=10, cyclic(3) over 2 procs: rank0 {0,1,2,6,7,8}, rank1 {3,4,5,9}.
        let src = f64s(10);
        let mk = |rank| {
            Datatype::darray(
                2,
                rank,
                &[10],
                &[Distribution::Cyclic],
                &[DistArg::Size(3)],
                &[2],
                ArrayOrder::C,
                &Datatype::f64(),
            )
            .unwrap()
        };
        assert_eq!(owned_elems(&mk(0), &src), vec![0.0, 1.0, 2.0, 6.0, 7.0, 8.0]);
        assert_eq!(owned_elems(&mk(1), &src), vec![3.0, 4.0, 5.0, 9.0]);
    }

    #[test]
    fn two_d_block_block_matches_subarray() {
        // 4x6 array over a 2x2 grid, BLOCK x BLOCK: rank (r,c) owns a 2x3
        // tile — identical to the equivalent subarray.
        let src = f64s(24);
        for rank in 0..4 {
            let (pr, pc) = (rank / 2, rank % 2);
            let d = Datatype::darray(
                4,
                rank,
                &[4, 6],
                &[Distribution::Block, Distribution::Block],
                &[DistArg::Default, DistArg::Default],
                &[2, 2],
                ArrayOrder::C,
                &Datatype::f64(),
            )
            .unwrap();
            let s = Datatype::subarray(
                &[4, 6],
                &[2, 3],
                &[2 * pr, 3 * pc],
                ArrayOrder::C,
                &Datatype::f64(),
            )
            .unwrap();
            assert_eq!(
                pack::pack(&src, 0, &d, 1).unwrap(),
                pack::pack(&src, 0, &s, 1).unwrap(),
                "rank {rank}"
            );
            assert_eq!(d.extent(), 24 * 8);
        }
    }

    #[test]
    fn fortran_order_flips_dimension_speed() {
        // 1-D distributed over dim 0; order only matters for >1D, where the
        // innermost dimension differs.
        let src = f64s(12);
        let t = Datatype::darray(
            2,
            0,
            &[3, 4],
            &[Distribution::None, Distribution::Block],
            &[DistArg::Default, DistArg::Default],
            &[1, 2],
            ArrayOrder::Fortran,
            &Datatype::f64(),
        )
        .unwrap();
        // Fortran: dim 0 contiguous (stride 1), dim 1 stride 3. Rank 0 of
        // 2 in dim 1 owns columns 0..2 -> elements 0..6 in memory order.
        assert_eq!(owned_elems(&t, &src), (0..6).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn partition_property_all_ranks_cover_global_exactly_once() {
        // Across a variety of distributions, the union of all ranks' types
        // covers the global array exactly, with no overlap.
        let cases: Vec<(Vec<usize>, Vec<Distribution>, Vec<DistArg>, Vec<usize>)> = vec![
            (vec![13], vec![Distribution::Block], vec![DistArg::Default], vec![4]),
            (vec![13], vec![Distribution::Cyclic], vec![DistArg::Default], vec![4]),
            (vec![13], vec![Distribution::Cyclic], vec![DistArg::Size(2)], vec![3]),
            (
                vec![6, 10],
                vec![Distribution::Block, Distribution::Cyclic],
                vec![DistArg::Default, DistArg::Size(3)],
                vec![2, 2],
            ),
            (
                vec![5, 4, 3],
                vec![Distribution::Cyclic, Distribution::Block, Distribution::None],
                vec![DistArg::Default, DistArg::Default, DistArg::Default],
                vec![3, 2, 1],
            ),
        ];
        for (gsizes, distribs, dargs, psizes) in cases {
            let nelems: usize = gsizes.iter().product();
            let nprocs: usize = psizes.iter().product();
            let src = f64s(nelems);
            let mut seen = vec![0u32; nelems];
            for rank in 0..nprocs {
                for order in [ArrayOrder::C, ArrayOrder::Fortran] {
                    if order == ArrayOrder::Fortran {
                        continue; // counted once; orders checked separately
                    }
                    let t = Datatype::darray(
                        nprocs, rank, &gsizes, &distribs, &dargs, &psizes, order,
                        &Datatype::f64(),
                    )
                    .unwrap();
                    assert_eq!(t.extent() as usize, nelems * 8, "{gsizes:?} rank {rank}");
                    for v in owned_elems(&t, &src) {
                        seen[v as usize] += 1;
                    }
                }
            }
            assert!(
                seen.iter().all(|&c| c == 1),
                "{gsizes:?}/{distribs:?}/{psizes:?}: coverage {seen:?}"
            );
        }
    }

    #[test]
    fn validation_errors() {
        let f = Datatype::f64();
        let b = [Distribution::Block];
        let d = [DistArg::Default];
        // grid/nprocs mismatch
        assert!(Datatype::darray(3, 0, &[8], &b, &d, &[2], ArrayOrder::C, &f).is_err());
        // rank out of range
        assert!(Datatype::darray(2, 2, &[8], &b, &d, &[2], ArrayOrder::C, &f).is_err());
        // NONE with psize > 1
        assert!(Datatype::darray(
            2,
            0,
            &[8],
            &[Distribution::None],
            &d,
            &[2],
            ArrayOrder::C,
            &f
        )
        .is_err());
        // BLOCK darg too small to cover
        assert!(Datatype::darray(2, 0, &[8], &b, &[DistArg::Size(2)], &[2], ArrayOrder::C, &f)
            .is_err());
        // dimension count mismatch
        assert!(Datatype::darray(2, 0, &[8, 8], &b, &d, &[2], ArrayOrder::C, &f).is_err());
    }

    #[test]
    fn empty_share_is_a_valid_empty_type() {
        // g=4 over 4 procs with BLOCK darg 2: ranks 2,3 own nothing.
        let t = Datatype::darray(
            4,
            3,
            &[4],
            &[Distribution::Block],
            &[DistArg::Size(2)],
            &[4],
            ArrayOrder::C,
            &Datatype::f64(),
        )
        .unwrap();
        assert_eq!(t.size(), 0);
        assert_eq!(t.extent(), 32);
    }
}
